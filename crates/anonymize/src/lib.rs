//! # dehealth-anonymize
//!
//! Anonymization defenses for online health data — the open problem the
//! paper leaves as future work ("developing proper anonymization
//! techniques for large-scale online health data is a challenging open
//! problem", Section VII) and the counterpart of the adversarial-
//! stylometry literature it cites (Anonymouth \[36\], Brennan et al. \[37\]).
//!
//! Two defense families, matching De-Health's two signal channels:
//!
//! - [`style`] — *style obfuscation*: rewrite post text to flatten the
//!   Table-I stylometric footprint (case normalization, misspelling
//!   correction, punctuation flattening, digit generalization).
//! - [`structure`] — *structure unlinking*: perturb the co-posting
//!   relation that builds the correlation graph (thread splitting, thread
//!   merging k-anonymity style).
//!
//! [`Defense`] composes passes over a whole [`dehealth_corpus::Forum`],
//! producing a defended copy whose utility loss is measurable (see
//! [`style::utility`]) alongside the attack degradation (the `repro
//! defense` experiment).

pub mod structure;
pub mod style;

use dehealth_corpus::Forum;

/// A composable defense pipeline over a forum.
#[derive(Debug, Clone, Default)]
pub struct Defense {
    /// Style-obfuscation passes, applied to every post in order.
    pub style_passes: Vec<style::StylePass>,
    /// Corpus-level vocabulary generalization: keep only the `keep_top`
    /// most frequent words of the forum and replace the rest with a
    /// generic token. Attacks idiosyncratic word choice (pet words,
    /// habitual misspellings, rare function words) the way k-anonymity
    /// generalizes quasi-identifiers.
    pub vocab_keep_top: Option<usize>,
    /// Structure perturbation, applied after text passes.
    pub structure: Option<structure::StructurePass>,
}

impl Defense {
    /// No-op defense.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// The full text-side defense: case + spelling + punctuation + digits
    /// plus vocabulary generalization to the 400 most common words.
    #[must_use]
    pub fn full_style() -> Self {
        Self {
            style_passes: vec![
                style::StylePass::NormalizeCase,
                style::StylePass::CorrectMisspellings,
                style::StylePass::FlattenPunctuation,
                style::StylePass::GeneralizeDigits,
            ],
            vocab_keep_top: Some(400),
            structure: None,
        }
    }

    /// The full defense: style obfuscation plus thread splitting.
    #[must_use]
    pub fn full() -> Self {
        Self { structure: Some(structure::StructurePass::SplitThreads), ..Self::full_style() }
    }

    /// Apply the defense to a forum, returning a defended copy.
    #[must_use]
    pub fn apply(&self, forum: &Forum, seed: u64) -> Forum {
        let mut posts = forum.posts.clone();
        for post in &mut posts {
            for pass in &self.style_passes {
                post.text = pass.apply(&post.text);
            }
        }
        if let Some(keep) = self.vocab_keep_top {
            let whitelist = style::top_words(posts.iter().map(|p| p.text.as_str()), keep);
            for post in &mut posts {
                post.text = style::generalize_vocabulary(&post.text, &whitelist);
            }
        }
        let mut out = Forum::from_posts(forum.n_users, forum.n_threads, posts);
        if let Some(s) = &self.structure {
            out = s.apply(&out, seed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dehealth_corpus::ForumConfig;

    #[test]
    fn noop_defense_preserves_forum() {
        let forum = Forum::generate(&ForumConfig::tiny(), 1);
        let defended = Defense::none().apply(&forum, 2);
        assert_eq!(defended.posts.len(), forum.posts.len());
        assert_eq!(defended.posts[0].text, forum.posts[0].text);
        assert_eq!(defended.n_threads, forum.n_threads);
    }

    #[test]
    fn full_style_changes_text_but_not_structure() {
        let forum = Forum::generate(&ForumConfig::tiny(), 3);
        let defended = Defense::full_style().apply(&forum, 4);
        assert_eq!(defended.n_threads, forum.n_threads);
        let changed =
            forum.posts.iter().zip(&defended.posts).filter(|(a, b)| a.text != b.text).count();
        assert!(changed > forum.posts.len() / 2, "style passes changed too little");
        // Thread assignments untouched.
        assert!(forum.posts.iter().zip(&defended.posts).all(|(a, b)| a.thread == b.thread));
    }

    #[test]
    fn full_defense_also_perturbs_threads() {
        let forum = Forum::generate(&ForumConfig::tiny(), 5);
        let defended = Defense::full().apply(&forum, 6);
        // Thread splitting isolates every post.
        assert_eq!(defended.n_threads, defended.posts.len());
    }
}
