//! Structure-unlinking passes: perturb the co-posting relation that the
//! UDA correlation graph is built from.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dehealth_corpus::Forum;

/// One structure perturbation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructurePass {
    /// Give every post its own singleton thread: the correlation graph
    /// becomes edgeless (maximal unlinking, destroys the discussion
    /// context entirely).
    SplitThreads,
    /// Merge all threads of a board into one mega-thread: co-posting
    /// becomes board-level, drowning pairwise signal in noise
    /// (k-anonymity-flavoured generalization). Falls back to
    /// [`StructurePass::SplitThreads`] when board metadata is absent.
    MergeBoards,
    /// Randomly reassign each post to one of the existing threads,
    /// keeping thread-size marginals roughly intact.
    ShuffleThreads,
}

impl StructurePass {
    /// Apply the pass, returning a new forum.
    #[must_use]
    pub fn apply(&self, forum: &Forum, seed: u64) -> Forum {
        match self {
            StructurePass::SplitThreads => split_threads(forum),
            StructurePass::MergeBoards => merge_boards(forum),
            StructurePass::ShuffleThreads => shuffle_threads(forum, seed),
        }
    }
}

fn split_threads(forum: &Forum) -> Forum {
    let posts = forum
        .posts
        .iter()
        .enumerate()
        .map(|(i, p)| dehealth_corpus::Post { author: p.author, thread: i, text: p.text.clone() })
        .collect::<Vec<_>>();
    let n_threads = posts.len();
    Forum::from_posts(forum.n_users, n_threads, posts)
}

fn merge_boards(forum: &Forum) -> Forum {
    if forum.thread_board.is_empty() {
        return split_threads(forum);
    }
    let n_boards = forum.thread_board.iter().max().map_or(1, |&b| b + 1);
    let posts = forum
        .posts
        .iter()
        .map(|p| dehealth_corpus::Post {
            author: p.author,
            thread: forum.thread_board[p.thread],
            text: p.text.clone(),
        })
        .collect::<Vec<_>>();
    Forum::from_posts(forum.n_users, n_boards, posts)
}

fn shuffle_threads(forum: &Forum, seed: u64) -> Forum {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_threads = forum.n_threads.max(1);
    let posts = forum
        .posts
        .iter()
        .map(|p| dehealth_corpus::Post {
            author: p.author,
            thread: rng.gen_range(0..n_threads),
            text: p.text.clone(),
        })
        .collect::<Vec<_>>();
    Forum::from_posts(forum.n_users, n_threads, posts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dehealth_corpus::{ForumConfig, Post};

    fn forum() -> Forum {
        Forum::generate(&ForumConfig::tiny(), 11)
    }

    #[test]
    fn split_isolates_every_post() {
        let f = forum();
        let d = StructurePass::SplitThreads.apply(&f, 0);
        assert_eq!(d.n_threads, d.posts.len());
        // No two posts share a thread.
        let mut seen = std::collections::HashSet::new();
        assert!(d.posts.iter().all(|p| seen.insert(p.thread)));
    }

    #[test]
    fn merge_boards_coarsens_threads() {
        let f = forum();
        let d = StructurePass::MergeBoards.apply(&f, 0);
        assert!(d.n_threads < f.n_threads, "{} !< {}", d.n_threads, f.n_threads);
        assert_eq!(d.posts.len(), f.posts.len());
    }

    #[test]
    fn merge_without_board_metadata_falls_back_to_split() {
        let raw = Forum::from_posts(
            2,
            2,
            vec![
                Post { author: 0, thread: 0, text: "a".into() },
                Post { author: 1, thread: 1, text: "b".into() },
            ],
        );
        let d = StructurePass::MergeBoards.apply(&raw, 0);
        assert_eq!(d.n_threads, d.posts.len());
    }

    #[test]
    fn shuffle_keeps_posts_and_thread_count() {
        let f = forum();
        let d = StructurePass::ShuffleThreads.apply(&f, 7);
        assert_eq!(d.posts.len(), f.posts.len());
        assert_eq!(d.n_threads, f.n_threads);
        // Deterministic.
        let d2 = StructurePass::ShuffleThreads.apply(&f, 7);
        assert!(d.posts.iter().zip(&d2.posts).all(|(a, b)| a.thread == b.thread));
    }

    #[test]
    fn authors_never_change() {
        let f = forum();
        for pass in
            [StructurePass::SplitThreads, StructurePass::MergeBoards, StructurePass::ShuffleThreads]
        {
            let d = pass.apply(&f, 3);
            assert!(f.posts.iter().zip(&d.posts).all(|(a, b)| a.author == b.author));
        }
    }
}
