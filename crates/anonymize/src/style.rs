//! Style-obfuscation passes.
//!
//! Each pass targets specific Table-I feature groups:
//!
//! | Pass | Features flattened |
//! |---|---|
//! | [`StylePass::NormalizeCase`] | uppercase %, word shape, letter case habits |
//! | [`StylePass::CorrectMisspellings`] | the 248 misspelling features |
//! | [`StylePass::FlattenPunctuation`] | punctuation frequencies, `!`/`?` habits |
//! | [`StylePass::GeneralizeDigits`] | digit frequencies (dosages, lab values) |
//!
//! Passes are pure text→text functions, so they compose and are trivially
//! testable. [`utility`] measures how much of the post's content survives
//! (token-level Jaccard) — the anonymization-vs-utility trade-off the
//! paper's Section VII discusses.

use dehealth_text::lexicon::correction;
use dehealth_text::tokenize::{tokenize, TokenKind};

/// One style-obfuscation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StylePass {
    /// Lowercase everything: removes case habits (ALLCAPS emphasis,
    /// sloppy sentence starts, camel case).
    NormalizeCase,
    /// Replace each of the 248 known misspellings with its correction.
    CorrectMisspellings,
    /// Replace `!` and `?` runs with `.` and drop decorative punctuation
    /// (`;`, `:`, `"`); keeps sentence boundaries.
    FlattenPunctuation,
    /// Replace every digit run with the generic token `N`: removes
    /// dosage/lab-value fingerprints while keeping "a number was here".
    GeneralizeDigits,
}

impl StylePass {
    /// Apply the pass to one post.
    #[must_use]
    pub fn apply(&self, text: &str) -> String {
        match self {
            StylePass::NormalizeCase => text.to_lowercase(),
            StylePass::CorrectMisspellings => correct_misspellings(text),
            StylePass::FlattenPunctuation => flatten_punctuation(text),
            StylePass::GeneralizeDigits => generalize_digits(text),
        }
    }
}

fn correct_misspellings(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_end = 0;
    for tok in tokenize(text) {
        out.push_str(&text[last_end..tok.start]);
        let end = tok.start + tok.text.len();
        if tok.kind == TokenKind::Word {
            match correction(tok.text) {
                Some(fix) => out.push_str(fix),
                None => out.push_str(tok.text),
            }
        } else {
            out.push_str(tok.text);
        }
        last_end = end;
    }
    out.push_str(&text[last_end..]);
    out
}

fn flatten_punctuation(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut prev_was_terminal = false;
    for c in text.chars() {
        match c {
            '!' | '?' => {
                if !prev_was_terminal {
                    out.push('.');
                    prev_was_terminal = true;
                }
            }
            '.' => {
                if !prev_was_terminal {
                    out.push('.');
                    prev_was_terminal = true;
                }
            }
            ';' | ':' | '"' => {
                // Dropped entirely (decorative for style purposes).
                prev_was_terminal = false;
            }
            _ => {
                out.push(c);
                prev_was_terminal = false;
            }
        }
    }
    out
}

fn generalize_digits(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_digits = false;
    for c in text.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('N');
                in_digits = true;
            }
        } else {
            out.push(c);
            in_digits = false;
        }
    }
    out
}

/// The `keep` most frequent (lowercased) word tokens across `posts`.
#[must_use]
pub fn top_words<'a, I: IntoIterator<Item = &'a str>>(
    posts: I,
    keep: usize,
) -> std::collections::HashSet<String> {
    let mut counts: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for text in posts {
        for tok in tokenize(text) {
            if tok.kind == TokenKind::Word {
                *counts.entry(tok.text.to_lowercase()).or_insert(0) += 1;
            }
        }
    }
    let mut ranked: Vec<(String, usize)> = counts.into_iter().collect();
    ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.into_iter().take(keep).map(|(w, _)| w).collect()
}

/// Replace every word token not in `whitelist` (case-insensitive) with the
/// generic token `thing`, preserving all non-word characters.
#[must_use]
pub fn generalize_vocabulary(text: &str, whitelist: &std::collections::HashSet<String>) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_end = 0;
    for tok in tokenize(text) {
        out.push_str(&text[last_end..tok.start]);
        let end = tok.start + tok.text.len();
        if tok.kind == TokenKind::Word && !whitelist.contains(&tok.text.to_lowercase()) {
            out.push_str("thing");
        } else {
            out.push_str(tok.text);
        }
        last_end = end;
    }
    out.push_str(&text[last_end..]);
    out
}

/// Utility retention: token-level Jaccard between the original and the
/// defended post (case-insensitive word tokens only). 1.0 = identical
/// content, 0.0 = nothing shared.
#[must_use]
pub fn utility(original: &str, defended: &str) -> f64 {
    let words = |t: &str| -> std::collections::HashSet<String> {
        tokenize(t)
            .into_iter()
            .filter(|tok| tok.kind == TokenKind::Word)
            .map(|tok| tok.text.to_lowercase())
            .collect()
    };
    let a = words(original);
    let b = words(defended);
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(&b).count();
    let union = a.union(&b).count();
    inter as f64 / union.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_normalization() {
        assert_eq!(StylePass::NormalizeCase.apply("I LOVE Caps"), "i love caps");
    }

    #[test]
    fn misspelling_correction() {
        let fixed = StylePass::CorrectMisspellings.apply("i recieve my diabetis results");
        assert_eq!(fixed, "i receive my diabetes results");
        // Unknown words untouched, casing of corrections is lexicon-side.
        assert_eq!(StylePass::CorrectMisspellings.apply("perfectly fine"), "perfectly fine");
    }

    #[test]
    fn misspelling_correction_preserves_punctuation() {
        let fixed = StylePass::CorrectMisspellings.apply("wow, thier dog? yes!");
        assert_eq!(fixed, "wow, their dog? yes!");
    }

    #[test]
    fn punctuation_flattening() {
        assert_eq!(StylePass::FlattenPunctuation.apply("help!!! now??"), "help. now.");
        assert_eq!(StylePass::FlattenPunctuation.apply("a; b: c\"d"), "a b cd");
        // Periods deduplicate but remain.
        assert_eq!(StylePass::FlattenPunctuation.apply("end... start"), "end. start");
    }

    #[test]
    fn digit_generalization() {
        assert_eq!(StylePass::GeneralizeDigits.apply("took 40 mg at 10:30"), "took N mg at N:N");
    }

    #[test]
    fn passes_are_idempotent() {
        for pass in [
            StylePass::NormalizeCase,
            StylePass::CorrectMisspellings,
            StylePass::FlattenPunctuation,
            StylePass::GeneralizeDigits,
        ] {
            let t = "I realy took 40 mg!!! SO tired; honestly??";
            let once = pass.apply(t);
            let twice = pass.apply(&once);
            assert_eq!(once, twice, "{pass:?} not idempotent");
        }
    }

    #[test]
    fn top_words_ranks_by_frequency() {
        let top = top_words(["a a a b b c", "a b d"], 2);
        assert!(top.contains("a") && top.contains("b"));
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn vocabulary_generalization_replaces_rare_words() {
        let wl: std::collections::HashSet<String> =
            ["the", "pain"].iter().map(|s| s.to_string()).collect();
        let out = generalize_vocabulary("the pain is fibromyalga!", &wl);
        assert_eq!(out, "the pain thing thing!");
    }

    #[test]
    fn utility_bounds() {
        assert_eq!(utility("a b c", "a b c"), 1.0);
        assert_eq!(utility("", ""), 1.0);
        assert_eq!(utility("alpha beta", "gamma delta"), 0.0);
        let u = utility("the pain is severe", "the pain is mild");
        assert!(u > 0.0 && u < 1.0);
    }

    #[test]
    fn correction_keeps_high_utility() {
        let original = "i recieve my diabetis results today";
        let defended = StylePass::CorrectMisspellings.apply(original);
        // Two of six tokens change: Jaccard = 4/8 = 0.5.
        assert!((utility(original, &defended) - 0.5).abs() < 1e-12);
    }
}
