//! Criterion micro-benchmarks for the De-Health pipeline stages:
//! feature extraction, UDA-graph construction, similarity matrices,
//! Top-K selection (direct vs graph matching), and classifier training.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dehealth_core::topk::{direct_selection, matching_selection};
use dehealth_core::{SimilarityEngine, SimilarityWeights, UdaGraph};
use dehealth_corpus::{Forum, ForumConfig};
use dehealth_graph::community::community_stats;
use dehealth_ml::{Classifier, Dataset, Knn, KnnMetric, Rlsc, SmoSvm, SvmParams};
use dehealth_stylometry::extract;

const SAMPLE_POST: &str = "Hi everyone, i have been taking the new medicine for 3 weeks now \
and honestly the pain improves although the nausea remains awful. my doctor said that the \
dose of 40 mg is normal but i realy wonder whether the fatigue is a side effect. has anyone \
experienced the same? thanks in advance!";

fn bench_feature_extraction(c: &mut Criterion) {
    c.bench_function("stylometry/extract_one_post", |b| {
        b.iter(|| extract(black_box(SAMPLE_POST)));
    });
}

fn bench_uda_build(c: &mut Criterion) {
    let forum = Forum::generate(&ForumConfig::tiny(), 1);
    c.bench_function("core/uda_build_tiny_forum", |b| {
        b.iter(|| UdaGraph::build(black_box(&forum)));
    });
}

fn bench_similarity_matrix(c: &mut Criterion) {
    let forum = Forum::generate(&ForumConfig::tiny(), 2);
    let split = dehealth_corpus::closed_world_split(
        &forum,
        &dehealth_corpus::SplitConfig::fraction(0.5),
        3,
    );
    let aux = UdaGraph::build(&split.auxiliary);
    let anon = UdaGraph::build(&split.anonymized);
    c.bench_function("core/similarity_matrix_tiny", |b| {
        b.iter(|| {
            let engine = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 10);
            black_box(engine.matrix())
        });
    });
}

fn pseudo_random_matrix(n1: usize, n2: usize) -> Vec<Vec<f64>> {
    let mut state = 88172645463325252u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n1).map(|_| (0..n2).map(|_| next()).collect()).collect()
}

fn bench_topk_selection(c: &mut Criterion) {
    let m = pseudo_random_matrix(60, 120);
    c.bench_function("core/topk_direct_60x120", |b| {
        b.iter(|| direct_selection(black_box(&m), 10));
    });
    c.bench_function("core/topk_matching_60x120", |b| {
        b.iter(|| matching_selection(black_box(&m), 3));
    });
}

fn classifier_dataset() -> Dataset {
    let mut d = Dataset::new(8);
    let m = pseudo_random_matrix(120, 8);
    for (i, row) in m.iter().enumerate() {
        let label = i % 4;
        let mut x = row.clone();
        x[label] += 2.0; // separable structure
        d.push(&x, label);
    }
    d
}

fn bench_classifiers(c: &mut Criterion) {
    let d = classifier_dataset();
    c.bench_function("ml/knn_fit_predict", |b| {
        b.iter_batched(
            || d.clone(),
            |train| {
                let mut knn = Knn::new(3, KnnMetric::Cosine);
                knn.fit(&train);
                black_box(knn.predict(train.sample(0)))
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("ml/smo_fit", |b| {
        b.iter_batched(
            || d.clone(),
            |train| {
                let mut svm = SmoSvm::new(SvmParams::default());
                svm.fit(&train);
                black_box(svm.predict(train.sample(0)))
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("ml/rlsc_fit", |b| {
        b.iter_batched(
            || d.clone(),
            |train| {
                let mut m = Rlsc::new(1.0);
                m.fit(&train);
                black_box(m.predict(train.sample(0)))
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_graph_ops(c: &mut Criterion) {
    let forum = Forum::generate(&ForumConfig::webmd_like(400), 5);
    let uda = UdaGraph::build(&forum);
    c.bench_function("graph/community_stats_400_users", |b| {
        b.iter(|| community_stats(black_box(&uda.graph), 0));
    });
}

fn bench_corpus_generation(c: &mut Criterion) {
    let mut cfg = ForumConfig::webmd_like(50);
    cfg.mean_post_words = 60.0;
    c.bench_function("corpus/generate_50_users", |b| {
        b.iter(|| Forum::generate(black_box(&cfg), 9));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        bench_feature_extraction,
        bench_uda_build,
        bench_similarity_matrix,
        bench_topk_selection,
        bench_classifiers,
        bench_graph_ops,
        bench_corpus_generation,
}
criterion_main!(benches);
