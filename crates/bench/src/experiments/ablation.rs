//! Ablation studies for De-Health's design choices (not a paper figure,
//! but the knobs Section III motivates):
//!
//! 1. Similarity components — how much of the Top-K power comes from the
//!    attribute term `s^a` versus the degree/distance terms (the paper
//!    sets `c = (0.05, 0.05, 0.9)` arguing that sparse disconnected
//!    graphs make degree/distance weak)?
//! 2. Algorithm-2 filtering — how much does the threshold sweep shrink
//!    candidate sets, and at what rejection cost?
//! 3. Landmark count ħ — sensitivity of Top-K success to the number of
//!    landmarks.

use dehealth_core::topk::rank_of;
use dehealth_core::{FilterConfig, Filtered, SimilarityEngine, SimilarityWeights, UdaGraph};
use dehealth_corpus::{closed_world_split, Forum, ForumConfig, Split, SplitConfig};

use crate::pct;

fn split_for(n_users: usize, seed: u64) -> Split {
    let forum = Forum::generate(&ForumConfig::webmd_like(n_users), seed);
    closed_world_split(&forum, &SplitConfig::fraction(0.5), seed + 1)
}

fn topk_rate(split: &Split, weights: SimilarityWeights, landmarks: usize, k: usize) -> f64 {
    let aux = UdaGraph::build(&split.auxiliary);
    let anon = UdaGraph::build(&split.anonymized);
    let engine = SimilarityEngine::new(&anon, &aux, weights, landmarks);
    let matrix = engine.matrix();
    let mut hits = 0usize;
    let mut total = 0usize;
    for u in 0..split.anonymized.n_users {
        if let Some(t) = split.oracle.true_mapping(u) {
            total += 1;
            if rank_of(&matrix, u, t).is_some_and(|r| r < k) {
                hits += 1;
            }
        }
    }
    hits as f64 / total.max(1) as f64
}

/// Run the similarity-component ablation (Top-10 success by weight mix).
pub fn run_weights(n_users: usize, seed: u64) {
    let split = split_for(n_users, seed);
    println!("\n# Ablation: similarity components (Top-10 success, {n_users} users)");
    println!("{:<34} {:>9}", "weights (c1, c2, c3)", "top-10");
    for (label, w) in [
        ("paper default (0.05, 0.05, 0.9)", SimilarityWeights::default()),
        ("attributes only (0, 0, 1)", SimilarityWeights { c1: 0.0, c2: 0.0, c3: 1.0 }),
        ("degree only (1, 0, 0)", SimilarityWeights { c1: 1.0, c2: 0.0, c3: 0.0 }),
        ("distance only (0, 1, 0)", SimilarityWeights { c1: 0.0, c2: 1.0, c3: 0.0 }),
        (
            "uniform (1/3, 1/3, 1/3)",
            SimilarityWeights { c1: 1.0 / 3.0, c2: 1.0 / 3.0, c3: 1.0 / 3.0 },
        ),
    ] {
        println!("{:<34} {:>9}", label, pct(topk_rate(&split, w, 50, 10)));
    }
}

/// Run the landmark-count ablation.
pub fn run_landmarks(n_users: usize, seed: u64) {
    let split = split_for(n_users, seed);
    println!("\n# Ablation: landmark count ħ (Top-10 success, distance-heavy weights)");
    println!("{:>10} {:>9}", "landmarks", "top-10");
    // Use distance-weighted similarity so the landmark count matters.
    let w = SimilarityWeights { c1: 0.1, c2: 0.6, c3: 0.3 };
    for h in [1usize, 5, 20, 50, 100] {
        println!("{:>10} {:>9}", h, pct(topk_rate(&split, w, h, 10)));
    }
}

/// Run the Algorithm-2 filtering ablation: candidate-set shrinkage and
/// rejection/true-mapping-loss rates for several (ε, ℓ).
pub fn run_filtering(n_users: usize, seed: u64) {
    let split = split_for(n_users, seed);
    let aux = UdaGraph::build(&split.auxiliary);
    let anon = UdaGraph::build(&split.anonymized);
    let engine = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 50);
    let matrix = engine.matrix();
    let candidates = dehealth_core::topk::direct_selection(&matrix, 20);

    println!("\n# Ablation: Algorithm-2 filtering (K=20, {n_users} users)");
    println!(
        "{:>8} {:>7} {:>12} {:>10} {:>12}",
        "epsilon", "levels", "mean |Cu|", "rejected", "truth kept"
    );
    for (eps, levels) in [(0.0, 10), (0.01, 10), (0.05, 10), (0.01, 4), (0.2, 10)] {
        let filtered = dehealth_core::filter::filter_candidates(
            &matrix,
            &candidates,
            &FilterConfig { epsilon: eps, levels },
        );
        let mut kept_sizes = 0usize;
        let mut rejected = 0usize;
        let mut truth_kept = 0usize;
        let mut total_truth = 0usize;
        for (u, f) in filtered.iter().enumerate() {
            match f {
                Filtered::Kept(kept) => {
                    kept_sizes += kept.len();
                    if let Some(t) = split.oracle.true_mapping(u) {
                        total_truth += 1;
                        if kept.contains(&t) {
                            truth_kept += 1;
                        }
                    }
                }
                Filtered::Rejected => {
                    rejected += 1;
                    if split.oracle.true_mapping(u).is_some() {
                        total_truth += 1;
                    }
                }
            }
        }
        let n = filtered.len().max(1);
        println!(
            "{:>8} {:>7} {:>12.1} {:>10} {:>12}",
            eps,
            levels,
            kept_sizes as f64 / (n - rejected).max(1) as f64,
            pct(rejected as f64 / n as f64),
            pct(truth_kept as f64 / total_truth.max(1) as f64)
        );
    }
}

/// Content-feature ablation: per-post author attribution (KNN, cosine)
/// with the Table-I space versus the extended space with hashed content
/// n-grams (Section II-B's deferred "content features").
pub fn run_content(seed: u64) {
    use dehealth_ml::{Classifier, Dataset, Knn, KnnMetric};
    use dehealth_stylometry::{extract, extract_extended, M, M_CONTENT};

    let mut cfg = ForumConfig::webmd_like(20);
    cfg.fixed_posts = Some(12);
    cfg.mean_post_words = 50.0;
    cfg.style_strength = 0.3;
    let forum = Forum::generate(&cfg, seed);

    // Per-post attribution: first half of each user's posts train, the
    // rest test.
    let mut base_train = Dataset::new(M);
    let mut base_test = Dataset::new(M);
    let mut ext_train = Dataset::new(M + M_CONTENT);
    let mut ext_test = Dataset::new(M + M_CONTENT);
    for u in 0..forum.n_users {
        let posts = forum.user_posts(u);
        for (i, &pi) in posts.iter().enumerate() {
            let text = &forum.posts[pi].text;
            let dense = extract(text).to_dense();
            let ext = extract_extended(text);
            if i < posts.len() / 2 {
                base_train.push(&dense, u);
                ext_train.push(&ext, u);
            } else {
                base_test.push(&dense, u);
                ext_test.push(&ext, u);
            }
        }
    }
    let acc = |train: &Dataset, test: &Dataset| -> f64 {
        // Min-max scale (fit on train only): raw length counts would
        // otherwise dominate the cosine.
        let scaler = dehealth_ml::MinMaxScaler::fit(train);
        let mut train = train.clone();
        let mut test = test.clone();
        scaler.transform(&mut train);
        scaler.transform(&mut test);
        let mut knn = Knn::new(3, KnnMetric::Cosine);
        knn.fit(&train);
        let pred: Vec<usize> = knn.predict_all(&test).into_iter().map(|p| p.label).collect();
        let truth: Vec<usize> = (0..test.len()).map(|i| test.label(i)).collect();
        dehealth_ml::accuracy(&pred, &truth)
    };
    println!(
        "
# Ablation: content features (per-post attribution, 20 users)"
    );
    println!("{:<34} {:>9}", "feature space", "accuracy");
    println!("{:<34} {:>9}", "Table I (M = 1302)", pct(acc(&base_train, &base_test)));
    println!("{:<34} {:>9}", "Table I + content n-grams", pct(acc(&ext_train, &ext_test)));
}

/// Run all ablations.
pub fn run(n_users: usize, seed: u64) {
    run_weights(n_users, seed);
    run_landmarks(n_users, seed);
    run_filtering(n_users, seed);
    run_content(seed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_term_dominates_sparse_graphs() {
        let split = split_for(120, 5);
        let attr_only = topk_rate(&split, SimilarityWeights { c1: 0.0, c2: 0.0, c3: 1.0 }, 10, 10);
        let degree_only =
            topk_rate(&split, SimilarityWeights { c1: 1.0, c2: 0.0, c3: 0.0 }, 10, 10);
        // The paper's justification for c3 = 0.9: attributes carry far
        // more signal than degrees in these graphs.
        assert!(attr_only > degree_only, "attr {attr_only} <= degree {degree_only}");
    }

    #[test]
    fn filtering_never_grows_candidate_sets() {
        let split = split_for(60, 6);
        let aux = UdaGraph::build(&split.auxiliary);
        let anon = UdaGraph::build(&split.anonymized);
        let engine = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 10);
        let matrix = engine.matrix();
        let candidates = dehealth_core::topk::direct_selection(&matrix, 10);
        let filtered = dehealth_core::filter::filter_candidates(
            &matrix,
            &candidates,
            &FilterConfig::default(),
        );
        for (u, f) in filtered.iter().enumerate() {
            if let Filtered::Kept(kept) = f {
                assert!(kept.len() <= candidates[u].len());
            }
        }
    }
}
