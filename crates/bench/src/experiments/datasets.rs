//! Figures 1 and 2: dataset marginals — CDF of users by post count and
//! post length distribution — for the WebMD-like and HealthBoards-like
//! simulated corpora.

use dehealth_corpus::{Forum, ForumConfig};

use crate::{pct, print_series};

/// Summary statistics for one simulated corpus.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Dataset label.
    pub name: &'static str,
    /// Users.
    pub n_users: usize,
    /// Posts.
    pub n_posts: usize,
    /// Mean posts per user.
    pub mean_posts_per_user: f64,
    /// Fraction of users with fewer than 5 posts (paper: WebMD 87.3%, HB
    /// 75.4%).
    pub frac_below_5: f64,
    /// Mean post length in words (paper: 127.59 / 147.24).
    pub mean_post_words: f64,
}

/// Compute the stats of one corpus.
#[must_use]
pub fn stats(name: &'static str, forum: &Forum) -> DatasetStats {
    DatasetStats {
        name,
        n_users: forum.n_users,
        n_posts: forum.posts.len(),
        mean_posts_per_user: forum.posts.len() as f64 / forum.n_users as f64,
        frac_below_5: forum.fraction_users_below(5),
        mean_post_words: forum.mean_post_words(),
    }
}

/// Generate both corpora at `n_users` scale.
#[must_use]
pub fn both_forums(n_users: usize, seed: u64) -> (Forum, Forum) {
    (
        Forum::generate(&ForumConfig::webmd_like(n_users), seed),
        Forum::generate(&ForumConfig::healthboards_like(n_users), seed + 1),
    )
}

/// Run Fig. 1: CDF of users with respect to the number of posts.
pub fn run_fig1(n_users: usize, seed: u64) {
    let (webmd, hb) = both_forums(n_users, seed);
    for (name, forum) in [("WebMD-like", &webmd), ("HealthBoards-like", &hb)] {
        let s = stats("", forum);
        let cdf = forum.posts_per_user_cdf();
        let sampled: Vec<(usize, String)> = [1usize, 2, 5, 10, 20, 50, 100, 200, 500]
            .iter()
            .map(|&k| {
                let f = cdf.iter().take_while(|&&(c, _)| c <= k).last().map_or(0.0, |&(_, f)| f);
                (k, pct(f))
            })
            .collect();
        print_series(
            &format!(
                "Fig 1 [{name}]: CDF of users vs posts (mean {:.2} posts/user, {} users)",
                s.mean_posts_per_user, s.n_users
            ),
            "#posts <=",
            "fraction of users",
            &sampled,
        );
        println!("  users with < 5 posts: {} (paper: WebMD 87.3%, HB 75.4%)", pct(s.frac_below_5));
    }
}

/// Run Fig. 2: post length distribution.
pub fn run_fig2(n_users: usize, seed: u64) {
    let (webmd, hb) = both_forums(n_users, seed);
    for (name, forum, paper_mean) in
        [("WebMD-like", &webmd, 127.59), ("HealthBoards-like", &hb, 147.24)]
    {
        let hist = forum.post_length_histogram(50);
        let rows: Vec<(String, String)> =
            hist.iter().take(16).map(|&(b, f)| (format!("{b}-{}", b + 49), pct(f))).collect();
        print_series(
            &format!(
                "Fig 2 [{name}]: post length distribution (mean {:.1} words; paper mean {paper_mean})",
                forum.mean_post_words()
            ),
            "words",
            "fraction of posts",
            &rows,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_shapes_match_paper() {
        let (webmd, hb) = both_forums(800, 5);
        let sw = stats("webmd", &webmd);
        let sh = stats("hb", &hb);
        // Ordering claims from the paper.
        assert!(sh.mean_posts_per_user > sw.mean_posts_per_user);
        assert!(sw.frac_below_5 > sh.frac_below_5 - 0.05);
        assert!(sw.frac_below_5 > 0.6);
        assert!(sw.mean_post_words > 60.0);
    }
}
