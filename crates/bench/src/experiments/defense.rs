//! Defense evaluation — the paper's Section-VII future work, made
//! concrete: how much does each anonymization defense degrade the
//! De-Health attack, and at what utility cost?
//!
//! The defended quantity is the *anonymized* dataset (what a data owner
//! would publish); the adversary's auxiliary data are outside the owner's
//! control and stay unmodified.

use dehealth_anonymize::structure::StructurePass;
use dehealth_anonymize::style::{utility, StylePass};
use dehealth_anonymize::Defense;
use dehealth_core::{AttackConfig, DeHealth};
use dehealth_corpus::{closed_world_split, Forum, ForumConfig, Split, SplitConfig};

use crate::pct;

/// One measured defense row.
#[derive(Debug, Clone)]
pub struct DefenseRow {
    /// Defense label.
    pub name: &'static str,
    /// Top-K candidate hit rate after the defense.
    pub candidate_hit: f64,
    /// Refined-DA accuracy after the defense.
    pub accuracy: f64,
    /// Mean token-Jaccard utility retention of the defended posts.
    pub utility: f64,
}

/// The evaluated defense suite.
#[must_use]
pub fn defense_suite() -> Vec<(&'static str, Defense)> {
    vec![
        ("none", Defense::none()),
        ("case only", Defense { style_passes: vec![StylePass::NormalizeCase], ..Defense::none() }),
        (
            "spelling only",
            Defense { style_passes: vec![StylePass::CorrectMisspellings], ..Defense::none() },
        ),
        ("vocab top-400", Defense { vocab_keep_top: Some(400), ..Defense::none() }),
        ("full style", Defense::full_style()),
        (
            "split threads",
            Defense { structure: Some(StructurePass::SplitThreads), ..Defense::none() },
        ),
        ("full style + split threads", Defense::full()),
    ]
}

fn measure(split: &Split, defense: &Defense, seed: u64) -> (f64, f64, f64) {
    let defended = defense.apply(&split.anonymized, seed);
    let mean_utility = if split.anonymized.posts.is_empty() {
        1.0
    } else {
        split
            .anonymized
            .posts
            .iter()
            .zip(&defended.posts)
            .map(|(a, b)| utility(&a.text, &b.text))
            .sum::<f64>()
            / split.anonymized.posts.len() as f64
    };
    let attack =
        DeHealth::new(AttackConfig { top_k: 5, n_landmarks: 10, seed, ..AttackConfig::default() });
    let outcome = attack.run(&split.auxiliary, &defended);
    let eval = outcome.evaluate(&split.oracle);
    (eval.candidate_hit_rate(), eval.accuracy(), mean_utility)
}

/// Run the defense evaluation at `n_users` scale.
pub fn run(n_users: usize, seed: u64) -> Vec<DefenseRow> {
    let mut cfg = ForumConfig::webmd_like(n_users);
    cfg.fixed_posts = Some(10);
    cfg.mean_post_words = 60.0;
    cfg.style_strength = 0.4;
    let forum = Forum::generate(&cfg, seed);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), seed + 1);

    println!("\n# Defense evaluation ({n_users} users, Top-5 De-Health attack)");
    println!("{:<28} {:>12} {:>10} {:>9}", "defense", "top-5 hit", "accuracy", "utility");
    let mut rows = Vec::new();
    for (name, defense) in defense_suite() {
        let (hit, acc, util) = measure(&split, &defense, seed + 2);
        println!("{:<28} {:>12} {:>10} {:>9}", name, pct(hit), pct(acc), pct(util));
        rows.push(DefenseRow { name, candidate_hit: hit, accuracy: acc, utility: util });
    }
    println!("\nReading: surface rewrites (case, spelling, digits, rare words)");
    println!("shave only a few points off the attack because the dominant");
    println!("signal — relative frequencies of common function words — survives");
    println!("any rewrite that preserves meaning. This is the paper's own");
    println!("position (Sections I and VII, citing adversarial stylometry):");
    println!("durable style obfuscation is hard, and naive anonymization of");
    println!("health-forum text does not protect privacy.");
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defenses_degrade_but_do_not_defeat_the_attack() {
        let rows = run(40, 9);
        let baseline = rows.iter().find(|r| r.name == "none").unwrap();
        let full_style = rows.iter().find(|r| r.name == "full style").unwrap();
        // Style obfuscation must not *help* the attacker (small slack for
        // evaluation noise on 40 users)...
        assert!(
            full_style.accuracy <= baseline.accuracy + 0.1,
            "full style raised accuracy: {} > {}",
            full_style.accuracy,
            baseline.accuracy
        );
        // ...and per the adversarial-stylometry literature the paper
        // cites, it must not defeat the attack either: the function-word
        // channel survives surface rewrites.
        assert!(full_style.accuracy > 0.15, "surface rewrites unexpectedly defeated the attack");
        // The no-op defense keeps full utility; real defenses lose some.
        assert!((baseline.utility - 1.0).abs() < 1e-12);
        assert!(full_style.utility < 1.0);
        assert!(full_style.utility > 0.3, "full defense destroyed too much utility");
    }
}
