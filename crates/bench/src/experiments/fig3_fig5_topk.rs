//! Figures 3 and 5: CDF of correct Top-K de-anonymization.
//!
//! Fig. 3 (closed world): auxiliary fractions 50%, 70%, 90% of each user's
//! posts. Fig. 5 (open world): overlap ratios 50%, 70%, 90%. Both report,
//! for a sweep of K, the fraction of anonymized users whose true mapping
//! falls inside their Top-K candidate set.

use dehealth_core::{SimilarityEngine, SimilarityWeights, UdaGraph};
use dehealth_corpus::{
    closed_world_split, open_world_split, Forum, ForumConfig, Split, SplitConfig,
};

use crate::{pct, print_series};

/// K values reported in the CDF.
pub const K_SWEEP: [usize; 8] = [1, 5, 10, 25, 50, 100, 250, 500];

/// Compute the Top-K success CDF of one split using the Top-K phase alone.
#[must_use]
pub fn topk_cdf(split: &Split, n_landmarks: usize) -> Vec<(usize, f64)> {
    let aux_uda = UdaGraph::build(&split.auxiliary);
    let anon_uda = UdaGraph::build(&split.anonymized);
    let engine =
        SimilarityEngine::new(&anon_uda, &aux_uda, SimilarityWeights::default(), n_landmarks);
    let matrix = engine.matrix();
    let mut ranks: Vec<usize> = Vec::new();
    let mut n_overlap = 0usize;
    for u in 0..split.anonymized.n_users {
        if let Some(truth) = split.oracle.true_mapping(u) {
            n_overlap += 1;
            if let Some(r) = dehealth_core::topk::rank_of(&matrix, u, truth) {
                ranks.push(r);
            }
        }
    }
    K_SWEEP
        .iter()
        .map(|&k| {
            let hits = ranks.iter().filter(|&&r| r < k).count();
            (k, hits as f64 / n_overlap.max(1) as f64)
        })
        .collect()
}

/// Run Fig. 3 (closed world).
pub fn run_fig3(n_users: usize, seed: u64) {
    for (name, config) in [
        ("WebMD-like", ForumConfig::webmd_like(n_users)),
        ("HB-like", ForumConfig::healthboards_like(n_users)),
    ] {
        let forum = Forum::generate(&config, seed);
        for frac in [0.5, 0.7, 0.9] {
            let split = closed_world_split(&forum, &SplitConfig::fraction(frac), seed + 1);
            let cdf = topk_cdf(&split, 50);
            let rows: Vec<(usize, String)> = cdf.iter().map(|&(k, f)| (k, pct(f))).collect();
            print_series(
                &format!(
                    "Fig 3 [{name}, {}% auxiliary]: CDF of correct Top-K DA ({} anonymized users)",
                    (frac * 100.0) as u32,
                    split.anonymized.n_users
                ),
                "K",
                "success",
                &rows,
            );
        }
    }
}

/// Run Fig. 5 (open world).
pub fn run_fig5(n_users: usize, seed: u64) {
    for (name, config) in [
        ("WebMD-like", ForumConfig::webmd_like(n_users)),
        ("HB-like", ForumConfig::healthboards_like(n_users)),
    ] {
        let forum = Forum::generate(&config, seed);
        for ratio in [0.5, 0.7, 0.9] {
            let split = open_world_split(&forum, ratio, seed + 2);
            let cdf = topk_cdf(&split, 50);
            let rows: Vec<(usize, String)> = cdf.iter().map(|&(k, f)| (k, pct(f))).collect();
            print_series(
                &format!(
                    "Fig 5 [{name}, {}% overlap]: CDF of correct Top-K DA ({} anonymized users, {} overlapping)",
                    (ratio * 100.0) as u32,
                    split.anonymized.n_users,
                    split.oracle.n_overlapping()
                ),
                "K",
                "success",
                &rows,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_monotone_and_beats_chance() {
        let forum = Forum::generate(&ForumConfig::webmd_like(150), 3);
        let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 4);
        let cdf = topk_cdf(&split, 10);
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1));
        // Top-10 of ~150 candidates at chance would be ~6.7%.
        let top10 = cdf.iter().find(|&&(k, _)| k == 10).unwrap().1;
        assert!(top10 > 0.2, "top-10 = {top10}");
    }

    #[test]
    fn open_world_is_harder_than_closed_world() {
        let forum = Forum::generate(&ForumConfig::webmd_like(200), 5);
        let closed = topk_cdf(&closed_world_split(&forum, &SplitConfig::fraction(0.5), 6), 10);
        let open = topk_cdf(&open_world_split(&forum, 0.5, 6), 10);
        let at = |cdf: &[(usize, f64)], k: usize| cdf.iter().find(|&&(kk, _)| kk == k).unwrap().1;
        // Closed world should be at least roughly as good at K=50.
        assert!(at(&closed, 50) + 0.15 >= at(&open, 50));
    }
}
