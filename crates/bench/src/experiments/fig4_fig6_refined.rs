//! Figures 4 and 6: refined-DA accuracy (and FP rate) of De-Health versus
//! the Stylometry baseline.
//!
//! Fig. 4 (closed world): 50 users with 20 or 40 posts each, half for
//! training; classifiers KNN and SMO; K ∈ {5, 10, 15, 20}.
//! Fig. 6 (open world): 100 users with 40 posts each, overlap ratios 50%,
//! 70%, 90%; mean-verification with r = 0.25.

use dehealth_core::{stylometry_baseline, AttackConfig, ClassifierKind, DeHealth, Verification};
use dehealth_corpus::{
    closed_world_split, open_world_split, Forum, ForumConfig, Oracle, Split, SplitConfig,
};

use crate::pct;

/// One measured cell of Fig. 4 / Fig. 6.
#[derive(Debug, Clone)]
pub struct RefinedCell {
    /// Method label (`Stylometry` or `De-Health (K=..)`).
    pub method: String,
    /// DA accuracy `Y_c / Y`.
    pub accuracy: f64,
    /// FP rate (open world only; 0 in closed world).
    pub fp_rate: f64,
}

fn forum_with_posts(n_users: usize, posts_per_user: usize, seed: u64) -> Forum {
    let mut cfg = ForumConfig::webmd_like(n_users);
    cfg.fixed_posts = Some(posts_per_user);
    // The paper's refined-DA instances are hard: short noisy posts and
    // insufficient training data (Section V-A2). Real users are far less
    // stylometrically distinctive than fully idiosyncratic personas, so
    // weaken the style signal and shorten posts to the paper's regime.
    cfg.style_strength = 0.08;
    cfg.mean_post_words = 35.0;
    Forum::generate(&cfg, seed)
}

fn classifier_name(kind: ClassifierKind) -> &'static str {
    match kind {
        ClassifierKind::Knn { .. } => "KNN",
        ClassifierKind::Smo => "SMO",
        ClassifierKind::Rlsc { .. } => "RLSC",
        ClassifierKind::Centroid => "NN",
    }
}

fn baseline_accuracy(
    split: &Split,
    kind: ClassifierKind,
    verification: Verification,
    seed: u64,
) -> RefinedCell {
    let mapping =
        stylometry_baseline(&split.auxiliary, &split.anonymized, kind, verification, seed);
    score("Stylometry".into(), &mapping, &split.oracle)
}

fn dehealth_accuracy(
    split: &Split,
    kind: ClassifierKind,
    verification: Verification,
    k: usize,
    seed: u64,
) -> RefinedCell {
    let attack = DeHealth::new(AttackConfig {
        top_k: k,
        n_landmarks: 5,
        classifier: kind,
        verification,
        seed,
        ..AttackConfig::default()
    });
    let outcome = attack.run(&split.auxiliary, &split.anonymized);
    score(format!("De-Health (K={k})"), &outcome.mapping, &split.oracle)
}

fn score(method: String, mapping: &[Option<usize>], oracle: &Oracle) -> RefinedCell {
    let mut correct = 0usize;
    let mut n_overlap = 0usize;
    let mut fp = 0usize;
    let mut n_non = 0usize;
    for (u, m) in mapping.iter().enumerate() {
        match oracle.true_mapping(u) {
            Some(t) => {
                n_overlap += 1;
                if *m == Some(t) {
                    correct += 1;
                }
            }
            None => {
                n_non += 1;
                if m.is_some() {
                    fp += 1;
                }
            }
        }
    }
    RefinedCell {
        method,
        accuracy: if n_overlap == 0 { 0.0 } else { correct as f64 / n_overlap as f64 },
        fp_rate: if n_non == 0 { 0.0 } else { fp as f64 / n_non as f64 },
    }
}

/// One Fig. 4 evaluation group (e.g. `SMO-20`): baseline + K sweep.
#[must_use]
pub fn fig4_group(
    posts_per_user: usize,
    kind: ClassifierKind,
    n_users: usize,
    seed: u64,
) -> Vec<RefinedCell> {
    let forum = forum_with_posts(n_users, posts_per_user, seed);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), seed + 1);
    let mut cells = vec![baseline_accuracy(&split, kind, Verification::None, seed)];
    for k in [5, 10, 15, 20] {
        cells.push(dehealth_accuracy(&split, kind, Verification::None, k, seed));
    }
    cells
}

/// Run Fig. 4 (closed world, 50 users).
pub fn run_fig4(seed: u64) {
    println!("\n# Fig 4: closed-world refined DA accuracy (50 users)");
    println!("{:<10} {:<20} {:>9}", "Setting", "Method", "Accuracy");
    for (posts, kind) in [
        (20, ClassifierKind::Knn { k: 3 }),
        (20, ClassifierKind::Smo),
        (40, ClassifierKind::Knn { k: 3 }),
        (40, ClassifierKind::Smo),
    ] {
        let setting = format!("{}-{}", classifier_name(kind), posts / 2);
        for cell in fig4_group(posts, kind, 50, seed) {
            println!("{:<10} {:<20} {:>9}", setting, cell.method, pct(cell.accuracy));
        }
    }
}

/// One Fig. 6 evaluation group: open world at one overlap ratio.
#[must_use]
pub fn fig6_group(
    overlap: f64,
    kind: ClassifierKind,
    n_users: usize,
    seed: u64,
) -> Vec<RefinedCell> {
    let forum = forum_with_posts(n_users, 40, seed);
    let split = open_world_split(&forum, overlap, seed + 3);
    let verification = Verification::Mean { r: 0.25 };
    let mut cells = vec![baseline_accuracy(&split, kind, verification, seed)];
    for k in [5, 10, 15, 20] {
        cells.push(dehealth_accuracy(&split, kind, verification, k, seed));
    }
    cells
}

/// Run Fig. 6 (open world, 100 users, r = 0.25).
pub fn run_fig6(seed: u64) {
    println!("\n# Fig 6: open-world refined DA (100 users, mean-verification r=0.25)");
    println!("{:<10} {:<20} {:>9} {:>8}", "Setting", "Method", "Accuracy", "FP");
    for overlap in [0.5, 0.7, 0.9] {
        for kind in [ClassifierKind::Knn { k: 3 }, ClassifierKind::Smo] {
            let setting = format!("{}%-{}", (overlap * 100.0) as u32, classifier_name(kind));
            for cell in fig6_group(overlap, kind, 100, seed) {
                println!(
                    "{:<10} {:<20} {:>9} {:>8}",
                    setting,
                    cell.method,
                    pct(cell.accuracy),
                    pct(cell.fp_rate)
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dehealth_beats_stylometry_closed_world() {
        // Moderate instance for test speed: 30 users, 20 posts each, KNN.
        // The paper's ordering is an average-case claim; aggregate over
        // two seeds to damp small-instance noise.
        let mut baseline = 0.0;
        let mut dehealth_k5 = 0.0;
        for seed in [11, 29] {
            let cells = fig4_group(20, ClassifierKind::Knn { k: 3 }, 30, seed);
            baseline += cells[0].accuracy;
            dehealth_k5 += cells[1].accuracy;
        }
        assert!(dehealth_k5 >= baseline - 0.2, "De-Health {dehealth_k5} << Stylometry {baseline}");
        assert!(dehealth_k5 / 2.0 > 0.2, "De-Health accuracy too low: {dehealth_k5}");
    }

    #[test]
    fn smaller_k_is_at_least_as_good_with_scarce_data() {
        let cells = fig4_group(10, ClassifierKind::Knn { k: 3 }, 20, 13);
        let k5 = cells[1].accuracy;
        let k20 = cells[4].accuracy;
        // Paper: "De-Health has better accuracy for a smaller K than for a
        // larger K" when training data are scarce; allow slack for noise.
        assert!(k5 + 0.15 >= k20, "k5={k5}, k20={k20}");
    }

    #[test]
    fn open_world_fp_rate_is_bounded_by_verification() {
        let cells = fig6_group(0.5, ClassifierKind::Knn { k: 3 }, 20, 17);
        let dehealth = &cells[1];
        // Mean-verification should reject a decent share of absent users.
        assert!(dehealth.fp_rate < 0.9, "fp = {}", dehealth.fp_rate);
    }
}
