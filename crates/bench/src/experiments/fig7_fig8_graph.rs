//! Figures 7 and 8 (Appendix B): correlation-graph degree distribution and
//! community structure.

use dehealth_core::UdaGraph;
use dehealth_corpus::{Forum, ForumConfig};
use dehealth_graph::community::community_stats;
use dehealth_graph::degree_cdf;

use crate::{pct, print_series};

/// Run Fig. 7: degree-distribution CDFs of both correlation graphs.
pub fn run_fig7(n_users: usize, seed: u64) {
    for (name, config) in [
        ("WebMD-like", ForumConfig::webmd_like(n_users)),
        ("HB-like", ForumConfig::healthboards_like(n_users)),
    ] {
        let forum = Forum::generate(&config, seed);
        let uda = UdaGraph::build(&forum);
        let cdf = degree_cdf(&uda.graph);
        let sampled: Vec<(usize, String)> = [0usize, 1, 2, 5, 10, 20, 50, 100, 500]
            .iter()
            .map(|&d| {
                let f = cdf.iter().take_while(|&&(dd, _)| dd <= d).last().map_or(0.0, |&(_, f)| f);
                (d, pct(f))
            })
            .collect();
        let mean_deg = (0..uda.n_users()).map(|u| uda.graph.degree(u)).sum::<usize>() as f64
            / uda.n_users() as f64;
        print_series(
            &format!("Fig 7 [{name}]: degree CDF (mean degree {mean_deg:.2})"),
            "degree <=",
            "fraction of users",
            &sampled,
        );
    }
}

/// Run Fig. 8: community structure of the WebMD-like graph under degree
/// thresholds 0 (original), 11, 21, 31.
pub fn run_fig8(n_users: usize, seed: u64) {
    let forum = Forum::generate(&ForumConfig::webmd_like(n_users), seed);
    let uda = UdaGraph::build(&forum);
    println!("\n# Fig 8: WebMD-like community structure (paper: disconnected; 10-100 communities)");
    println!(
        "{:>11} {:>10} {:>12} {:>9} {:>14}",
        "min degree", "components", "communities", "isolated", "largest comm."
    );
    for min_degree in [0usize, 11, 21, 31] {
        let s = community_stats(&uda.graph, min_degree);
        println!(
            "{:>11} {:>10} {:>12} {:>9} {:>14}",
            min_degree,
            s.components,
            s.communities,
            s.isolated,
            s.community_sizes.first().copied().unwrap_or(0)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_graph_is_weakly_connected_like_paper() {
        let forum = Forum::generate(&ForumConfig::webmd_like(500), 7);
        let uda = UdaGraph::build(&forum);
        let s = community_stats(&uda.graph, 0);
        // Appendix B: "the graph is not connected (consisting of several
        // components)" and "about 10 - 100 communities".
        assert!(s.components > 1, "graph unexpectedly connected");
        assert!(s.communities >= 5, "too few communities: {}", s.communities);
        // Low mean degree claim.
        let mean_deg = (0..uda.n_users()).map(|u| uda.graph.degree(u)).sum::<usize>() as f64
            / uda.n_users() as f64;
        assert!(mean_deg < 30.0, "mean degree too high: {mean_deg}");
    }
}
