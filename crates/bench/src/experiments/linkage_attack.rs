//! Section VI: the linkage attack — NameLink + AvatarLink against the
//! simulated world.
//!
//! Paper headline: 1676 WebMD→HB username links; 347 of 2805 avatar
//! targets (12.4%) linked to real people; 137 users linked by both tools;
//! > 33.4% of avatar-linked users found on 2+ services.

use dehealth_linkage::{
    run_linkage_attack, AvatarLinkConfig, LinkageReport, NameLinkConfig, World, WorldConfig,
};

use crate::pct;

/// Run the linkage attack at `n_people` scale and print the Section-VI
/// style summary.
pub fn run(n_people: usize, seed: u64) -> LinkageReport {
    let world = World::generate(&WorldConfig { n_people, ..WorldConfig::default() }, seed);
    let report =
        run_linkage_attack(&world, &NameLinkConfig::default(), &AvatarLinkConfig::default());

    println!("\n# Section VI: linkage attack ({n_people} forum users)");
    println!(
        "NameLink:   {} users linked to other services (precision {})",
        report.n_name_linked(),
        pct(LinkageReport::precision(&report.name_links))
    );
    println!(
        "AvatarLink: {} of {} avatar targets linked ({}; paper: 347/2805 = 12.4%), precision {}",
        report.n_avatar_linked(),
        report.n_avatar_targets,
        pct(report.n_avatar_linked() as f64 / report.n_avatar_targets.max(1) as f64),
        pct(LinkageReport::precision(&report.avatar_links))
    );
    println!("Overlap:    {} users linked by both tools (paper: 137)", report.n_overlap);
    println!(
        "Multi-service: {} of avatar-linked users on 2+ services (paper: >33.4%)",
        pct(report.multi_service_fraction())
    );
    let with_name = report.profiles.values().filter(|p| p.full_name.is_some()).count();
    let with_phone = report.profiles.values().filter(|p| p.phone.is_some()).count();
    let sensitive =
        report.profiles.values().filter(|p| p.sensitive && p.full_name.is_some()).count();
    println!(
        "Profiles:   {} full names, {} phone numbers, {} sensitive conditions tied to real names",
        with_name, with_phone, sensitive
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_shape_holds() {
        let report = run(2805, 21);
        let rate = report.n_avatar_linked() as f64 / report.n_avatar_targets.max(1) as f64;
        // Paper: 12.4% of avatar targets linked. Same order of magnitude.
        assert!(rate > 0.04 && rate < 0.4, "avatar link rate {rate}");
        assert!(report.n_name_linked() > report.n_avatar_linked() / 2);
        assert!(report.n_overlap > 0);
    }
}
