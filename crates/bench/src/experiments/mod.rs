//! One module per reproduced table/figure.

pub mod ablation;
pub mod datasets;
pub mod defense;
pub mod fig3_fig5_topk;
pub mod fig4_fig6_refined;
pub mod fig7_fig8_graph;
pub mod linkage_attack;
pub mod recall;
pub mod scale;
pub mod scaling;
pub mod service;
pub mod snapshot_load;
pub mod table1;
pub mod theory_bounds;
