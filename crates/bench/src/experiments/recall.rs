//! Recall experiment: the approximate fast tier's recall-vs-speed curve.
//!
//! The scale sweep showed the Top-K stage dominating wall-clock at large
//! corpora (726s of 766s at 100k auxiliary users) with every pruned pair
//! still paying an exact O(1) bound check and every survivor a full f64
//! score. The engine's [`ExactnessMode::Approx`] dial trades a bounded
//! slice of recall for skipping that work: the Top-K margin prescreen
//! drops pairs whose upper bound clears the admission floor by less than
//! `margin`, and the refined stage classifies through u8-quantized
//! arenas, exactly rescoring only the top margin band.
//!
//! This experiment measures what the dial actually buys. Per tier
//! (defaults: 1k and 10k auxiliary users) it runs the exact pipeline
//! once as ground truth, then the approximate tier at every margin in
//! [`MARGINS`], and records per point:
//!
//! - **recall@1** — fraction of anonymized users whose exact best
//!   candidate is still the approximate best candidate;
//! - **recall@k** — fraction of all exact Top-K candidate entries the
//!   approximate run recovered;
//! - **mapping agreement** — fraction of refined decisions (including
//!   `⊥`) unchanged from the exact run;
//! - per-stage wall-clock and the derived Top-K / refined / end-to-end
//!   speedups;
//! - the engine's prescreen decision counters (admitted / skipped /
//!   rescored).
//!
//! `margin = 0.0` is asserted **bit-identical** to the exact run —
//! candidate sets, candidate score bits and mapping — so the committed
//! curve always carries its own exactness anchor, and the CI smoke run
//! re-derives it at a small corpus on every push. Results land in
//! `BENCH_recall.json`.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use dehealth_core::{AttackConfig, ClassifierKind};
use dehealth_corpus::{closed_world_split, Forum, ForumConfig, SplitConfig};
use dehealth_engine::{
    Engine, EngineConfig, EngineOutcome, ExactnessMode, RefinedMode, ScoringMode,
};
use dehealth_service::PreparedCorpus;

/// The margin sweep: `0.0` is the exactness anchor (asserted
/// bit-identical to [`ExactnessMode::Exact`]); the rest trace the
/// recall-vs-speed curve from conservative to aggressive. Margins are in
/// score units — under the default weights scores live in `[0, 2.05]`
/// (`0.05·3 + 0.05·2 + 0.9·2`), with the attribute term dominating.
pub const MARGINS: [f64; 7] = [0.0, 0.02, 0.03, 0.05, 0.1, 0.2, 0.5];

/// Default sweep tiers (auxiliary users) when `--users` is not given.
pub const DEFAULT_TIERS: [usize; 2] = [1_000, 10_000];

/// One margin point of one tier's curve.
#[derive(Debug, Clone)]
pub struct RecallPoint {
    /// The prescreen/rescore confidence margin.
    pub margin: f64,
    /// Fraction of users whose exact best candidate stayed best.
    pub recall_at_1: f64,
    /// Fraction of exact Top-K candidate entries recovered.
    pub recall_at_k: f64,
    /// Fraction of refined decisions (incl. `⊥`) matching the exact run.
    pub mapping_agreement: f64,
    /// Approximate Top-K stage seconds.
    pub topk_seconds: f64,
    /// Approximate refined stage seconds.
    pub refined_seconds: f64,
    /// Approximate whole-attack seconds.
    pub total_seconds: f64,
    /// Exact Top-K seconds / approximate Top-K seconds.
    pub topk_speedup: f64,
    /// Exact refined seconds / approximate refined seconds.
    pub refined_speedup: f64,
    /// Exact total seconds / approximate total seconds.
    pub total_speedup: f64,
    /// Pairs fully scored under the active prescreen.
    pub prescreen_admitted: u64,
    /// Pairs dropped by the prescreen without exact scoring.
    pub prescreen_skipped: u64,
    /// Refined users rescored exactly from the margin band.
    pub prescreen_rescored: u64,
}

/// One tier of the sweep: the exact baseline plus its margin curve.
#[derive(Debug, Clone)]
pub struct RecallTier {
    /// Auxiliary users at this tier.
    pub aux_users: usize,
    /// Anonymized users the attacks targeted.
    pub anon_users: usize,
    /// Exact Top-K stage seconds (the speedup denominator).
    pub exact_topk_seconds: f64,
    /// Exact refined stage seconds.
    pub exact_refined_seconds: f64,
    /// Exact whole-attack seconds.
    pub exact_total_seconds: f64,
    /// The margin curve, in [`MARGINS`] order.
    pub points: Vec<RecallPoint>,
}

/// The engine configuration of the measured production path — the same
/// `(Indexed, Shared)` shape as the scale sweep, with the exactness dial
/// as the only moving part.
fn recall_engine(exactness: ExactnessMode) -> Engine {
    Engine::new(EngineConfig {
        attack: AttackConfig { top_k: 10, n_landmarks: 30, ..AttackConfig::default() },
        n_threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        block_size: 16,
        scoring: ScoringMode::Indexed,
        refined: RefinedMode::Shared,
        candidate_budget: None,
        exactness,
    })
}

fn stage_seconds(outcome: &EngineOutcome, name: &str) -> f64 {
    outcome.report.stage(name).map_or(0.0, |s| s.seconds)
}

fn to_bits(scores: &[Vec<(usize, f64)>]) -> Vec<Vec<(usize, u64)>> {
    scores.iter().map(|row| row.iter().map(|&(v, s)| (v, s.to_bits())).collect()).collect()
}

/// Fraction of users whose exact best candidate is still the
/// approximate best candidate (users with no exact candidates are
/// excluded from the denominator).
fn recall_at_1(exact: &EngineOutcome, approx: &EngineOutcome) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for (e, a) in exact.candidate_scores.iter().zip(&approx.candidate_scores) {
        if let Some(&(best, _)) = e.first() {
            total += 1;
            hits += usize::from(a.first().is_some_and(|&(v, _)| v == best));
        }
    }
    if total == 0 {
        1.0
    } else {
        hits as f64 / total as f64
    }
}

/// Fraction of all exact Top-K candidate entries the approximate run
/// recovered (pooled across users).
fn recall_at_k(exact: &EngineOutcome, approx: &EngineOutcome) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for (e, a) in exact.candidate_scores.iter().zip(&approx.candidate_scores) {
        total += e.len();
        hits += e.iter().filter(|&&(v, _)| a.iter().any(|&(w, _)| w == v)).count();
    }
    if total == 0 {
        1.0
    } else {
        hits as f64 / total as f64
    }
}

/// Fraction of refined decisions (including `⊥`) matching the exact run.
fn mapping_agreement(exact: &EngineOutcome, approx: &EngineOutcome) -> f64 {
    if exact.mapping.is_empty() {
        return 1.0;
    }
    let hits = exact.mapping.iter().zip(&approx.mapping).filter(|(e, a)| e == a).count();
    hits as f64 / exact.mapping.len() as f64
}

fn speedup(exact: f64, approx: f64) -> f64 {
    if approx > 0.0 {
        exact / approx
    } else {
        0.0
    }
}

/// Run the sweep and write `BENCH_recall.json` to the working directory.
///
/// # Errors
/// Propagates I/O errors from writing the JSON file.
pub fn run(users: Option<usize>, seed: u64) -> io::Result<PathBuf> {
    let path = PathBuf::from("BENCH_recall.json");
    let tiers: Vec<usize> = users.map_or_else(|| DEFAULT_TIERS.to_vec(), |u| vec![u]);
    run_to(&path, &tiers, seed)?;
    Ok(path)
}

/// Run the sweep over explicit tiers and write the JSON report to `path`.
///
/// # Panics
/// Panics when the `margin = 0.0` point is not bit-identical to the
/// exact run — the committed curve must carry a verified exactness
/// anchor.
///
/// # Errors
/// Propagates I/O errors from writing the JSON file.
pub fn run_to(path: &Path, tiers: &[usize], seed: u64) -> io::Result<Vec<RecallTier>> {
    println!("\n# Recall: approximate-tier margin sweep {MARGINS:?} at tiers {tiers:?}");
    let mut results = Vec::new();
    for &tier in tiers {
        let forum = Forum::generate(&ForumConfig::webmd_like(tier), seed);
        let split = closed_world_split(&forum, &SplitConfig::fraction(0.7), seed.wrapping_add(1));
        drop(forum);
        let anonymized = split.anonymized;
        let mut corpus = PreparedCorpus::build(split.auxiliary, ClassifierKind::default());
        // Quantize once up front — the persisted-arena serving shape, so
        // approximate attacks measure the kernels, not re-quantization.
        assert!(corpus.ensure_quantized(), "KNN corpus context must be quantizable");

        let exact = corpus.attack(&recall_engine(ExactnessMode::Exact), &anonymized);
        assert!(exact.report.prescreen.is_empty(), "exact mode must make no prescreen decisions");
        let exact_topk_seconds = stage_seconds(&exact, "topk");
        let exact_refined_seconds = stage_seconds(&exact, "refined");
        let exact_total_seconds = exact.report.total_seconds();
        println!(
            "  tier {tier}: exact topk {exact_topk_seconds:.3}s, refined \
             {exact_refined_seconds:.3}s, total {exact_total_seconds:.3}s"
        );

        let mut points = Vec::new();
        for &margin in &MARGINS {
            let engine = recall_engine(ExactnessMode::Approx { margin });
            let approx = corpus.attack(&engine, &anonymized);
            if margin == 0.0 {
                // The exactness anchor: a zero margin must change nothing.
                assert_eq!(exact.candidates, approx.candidates, "tier {tier}: candidates");
                assert_eq!(
                    to_bits(&exact.candidate_scores),
                    to_bits(&approx.candidate_scores),
                    "tier {tier}: candidate score bits"
                );
                assert_eq!(exact.mapping, approx.mapping, "tier {tier}: mappings");
            }
            let p = approx.report.prescreen;
            let point = RecallPoint {
                margin,
                recall_at_1: recall_at_1(&exact, &approx),
                recall_at_k: recall_at_k(&exact, &approx),
                mapping_agreement: mapping_agreement(&exact, &approx),
                topk_seconds: stage_seconds(&approx, "topk"),
                refined_seconds: stage_seconds(&approx, "refined"),
                total_seconds: approx.report.total_seconds(),
                topk_speedup: speedup(exact_topk_seconds, stage_seconds(&approx, "topk")),
                refined_speedup: speedup(exact_refined_seconds, stage_seconds(&approx, "refined")),
                total_speedup: speedup(exact_total_seconds, approx.report.total_seconds()),
                prescreen_admitted: p.admitted,
                prescreen_skipped: p.skipped,
                prescreen_rescored: p.rescored,
            };
            println!(
                "    margin {:>5.2}: recall@1 {:.4}, recall@k {:.4}, mapping {:.4}, topk \
                 {:.3}s ({:>5.2}x), refined {:.3}s ({:>5.2}x), total {:.3}s ({:>5.2}x); \
                 prescreen {} admitted / {} skipped / {} rescored",
                point.margin,
                point.recall_at_1,
                point.recall_at_k,
                point.mapping_agreement,
                point.topk_seconds,
                point.topk_speedup,
                point.refined_seconds,
                point.refined_speedup,
                point.total_seconds,
                point.total_speedup,
                point.prescreen_admitted,
                point.prescreen_skipped,
                point.prescreen_rescored,
            );
            points.push(point);
        }
        results.push(RecallTier {
            aux_users: tier,
            anon_users: anonymized.n_users,
            exact_topk_seconds,
            exact_refined_seconds,
            exact_total_seconds,
            points,
        });
    }
    write_json(path, seed, &results)?;
    println!("  wrote {}", path.display());
    Ok(results)
}

/// Hand-rolled JSON (the workspace carries no serialization dependency).
fn write_json(path: &Path, seed: u64, tiers: &[RecallTier]) -> io::Result<()> {
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"recall\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"machine_parallelism\": {parallelism},");
    let _ = writeln!(
        out,
        "  \"contract\": \"margin 0.0 verified bit-identical to ExactnessMode::Exact \
         (candidates, score bits, mapping) at every tier; recall measured against the \
         exact run of the same tier\","
    );
    out.push_str("  \"tiers\": [\n");
    for (i, t) in tiers.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"aux_users\": {}, \"anon_users\": {}, \"exact_topk_seconds\": {:.6}, \
             \"exact_refined_seconds\": {:.6}, \"exact_total_seconds\": {:.6},",
            t.aux_users,
            t.anon_users,
            t.exact_topk_seconds,
            t.exact_refined_seconds,
            t.exact_total_seconds,
        );
        out.push_str("     \"points\": [\n");
        for (j, p) in t.points.iter().enumerate() {
            let _ = write!(
                out,
                "      {{\"margin\": {}, \"recall_at_1\": {:.6}, \"recall_at_k\": {:.6}, \
                 \"mapping_agreement\": {:.6}, \"topk_seconds\": {:.6}, \
                 \"refined_seconds\": {:.6}, \"total_seconds\": {:.6}, \
                 \"topk_speedup\": {:.4}, \"refined_speedup\": {:.4}, \
                 \"total_speedup\": {:.4}, \"prescreen_admitted\": {}, \
                 \"prescreen_skipped\": {}, \"prescreen_rescored\": {}}}",
                p.margin,
                p.recall_at_1,
                p.recall_at_k,
                p.mapping_agreement,
                p.topk_seconds,
                p.refined_seconds,
                p.total_seconds,
                p.topk_speedup,
                p.refined_speedup,
                p.total_speedup,
                p.prescreen_admitted,
                p.prescreen_skipped,
                p.prescreen_rescored,
            );
            out.push_str(if j + 1 < t.points.len() { ",\n" } else { "\n" });
        }
        out.push_str("     ]}");
        out.push_str(if i + 1 < tiers.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_anchors_exactness_and_writes_json() {
        let dir = std::env::temp_dir().join("dehealth-recall-test");
        let path = dir.join("BENCH_recall.json");
        let results = run_to(&path, &[120], 5).unwrap();
        assert_eq!(results.len(), 1);
        let tier = &results[0];
        assert_eq!(tier.aux_users, 120);
        assert_eq!(tier.points.len(), MARGINS.len());
        // The zero-margin anchor: perfect recall and agreement by
        // construction (bit-identity was asserted inside the run).
        let anchor = &tier.points[0];
        assert_eq!(anchor.margin, 0.0);
        assert_eq!(anchor.recall_at_1, 1.0);
        assert_eq!(anchor.recall_at_k, 1.0);
        assert_eq!(anchor.mapping_agreement, 1.0);
        // The anchor makes no prescreen decisions beyond admissions
        // (margin 0.0 runs the scorer with the prescreen disarmed);
        // the widest margin must actually skip work.
        assert_eq!(anchor.prescreen_skipped, 0);
        let widest = tier.points.last().unwrap();
        assert!(widest.prescreen_skipped > 0, "margin {} never skipped a pair", widest.margin);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"recall\""));
        assert!(text.contains("\"recall_at_1\""));
        assert!(text.contains("\"prescreen_skipped\""));
        assert!(text.contains("\"topk_speedup\""));
        let _ = std::fs::remove_dir_all(dir);
    }
}
