//! Scale experiment: the order-of-magnitude corpus sweep (1k → 10k →
//! 100k auxiliary users) with the sampled differential oracle that keeps
//! the fast paths provably exact where the full O(N²) oracles cannot run.
//!
//! Every other benchmark in this harness tops out at a few hundred users;
//! this one sweeps three tiers a decade apart and, per tier, measures the
//! whole lifecycle: synthetic corpus generation (with a reproducibility
//! digest), corpus preparation (feature extraction + derived structures),
//! streamed snapshot encode, and one full attack over the production
//! `(Indexed, Shared)` engine path — per-stage wall-clock, pair counts,
//! pruning, arena bytes and process RSS ceilings all land in
//! `BENCH_scale.json`.
//!
//! ## The oracle contract
//!
//! - Tiers up to [`FULL_ORACLE_MAX_USERS`]
//!   (`scaling::FULL_ORACLE_MAX_USERS`) additionally run the full
//!   `(Dense, PerUser)` differential oracle and assert the *entire*
//!   outcome — candidate sets, candidate score bits, mapping — is
//!   bit-identical.
//! - **Every** tier (including 100k) runs the *sampled* oracle: a seeded
//!   random subset of anonymized users gets its dense Top-K row recomputed
//!   from `SimilarityEngine::scores_for` ([`SAMPLED_TOPK_USERS`] rows) and
//!   its refined decision recomputed by the per-user-from-scratch
//!   `refine_user` reference ([`SAMPLED_REFINED_USERS`] users), each
//!   compared bit-exactly against what the engine produced. A mismatch
//!   panics the experiment — committed numbers always come from runs that
//!   agree with the reference.
//!
//! ## The growth contract
//!
//! After the sweep, per-stage growth curves are fitted to `t ∝ N^e`
//! (log-log least squares over tiers with measurable values) and the
//! experiment asserts the indexed Top-K and shared refined stages stay
//! **sub-quadratic** (`e < 2`). For Top-K the asserted series is the
//! *fully-scored pair count*, not wall-clock: the closed-world split
//! scales both sides with `N`, so the candidate-pair universe is `N²`
//! by construction and even the indexed path owes every pair its O(1)
//! upper-bound check — its asymptotic win is the vanishing fraction of
//! pairs that survive to full scoring (the dense oracle's scored-pair
//! exponent is exactly 2 on the same split). Pair counts are also
//! deterministic per seed, so the assertion can never flake on machine
//! noise; the wall-clock exponents are recorded alongside, unasserted.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use dehealth_core::refined::{RefinedConfig, Side};
use dehealth_core::uda::{extract_post_features, UdaGraph};
use dehealth_core::{refine_user, AttackConfig, BoundedTopK, ClassifierKind, SimilarityEngine};
use dehealth_corpus::snapshot::{encode_forum, fnv1a, SectionBuf};
use dehealth_corpus::{closed_world_split, Forum, ForumConfig, SplitConfig};
use dehealth_engine::{
    Engine, EngineConfig, EngineReport, ExactnessMode, RefinedMode, ScoringMode,
};
use dehealth_service::PreparedCorpus;

use super::scaling::FULL_ORACLE_MAX_USERS;

/// Seeded random anonymized users whose dense Top-K rows are recomputed
/// and compared bit-exactly at every tier.
pub const SAMPLED_TOPK_USERS: usize = 24;

/// Seeded random anonymized users whose refined decision is recomputed by
/// the per-user reference path and compared at every tier.
pub const SAMPLED_REFINED_USERS: usize = 8;

/// Tiers smaller than this are dropped from the sweep (their timings are
/// pure noise).
const MIN_TIER: usize = 30;

/// Below this wall-clock a stage timing is noise and is excluded from the
/// growth-exponent fit.
const FIT_FLOOR_SECONDS: f64 = 1e-3;

/// One tier of the sweep.
#[derive(Debug, Clone)]
pub struct ScaleTier {
    /// Generated forum users at this tier.
    pub aux_users: usize,
    /// Anonymized users the attack targeted.
    pub anon_users: usize,
    /// Auxiliary posts prepared into the corpus.
    pub aux_posts: usize,
    /// FNV-1a digest of the generated forum's snapshot encoding — the
    /// reproducibility pin (same seed ⇒ same digest, any thread count).
    pub corpus_digest: u64,
    /// Forum generation wall-clock seconds.
    pub gen_seconds: f64,
    /// Corpus preparation (feature extraction + derived structures).
    pub build_seconds: f64,
    /// Streamed snapshot encode wall-clock seconds.
    pub snapshot_seconds: f64,
    /// Snapshot size on disk.
    pub snapshot_bytes: u64,
    /// Attack `prepare` stage seconds (anonymized-side extraction).
    pub prepare_seconds: f64,
    /// Attack Top-K stage seconds (indexed path).
    pub topk_seconds: f64,
    /// Fully scored `(anonymized, auxiliary)` pairs.
    pub topk_pairs: u64,
    /// Pairs pruned by the indexed upper bound (hot/rare split included).
    pub topk_pairs_pruned: u64,
    /// Attack refined stage seconds (shared path).
    pub refined_seconds: f64,
    /// Whole-attack wall-clock seconds.
    pub total_attack_seconds: f64,
    /// Index/context arena bytes resident on the heap.
    pub resident_arena_bytes: usize,
    /// Process resident set right after the corpus build, bytes.
    pub vm_rss_bytes: u64,
    /// Process peak resident set so far, bytes (monotone across tiers —
    /// the sweep runs tiers ascending so each reading is the ceiling up
    /// to and including its own tier).
    pub vm_hwm_bytes: u64,
    /// `"full+sampled"` below the full-oracle ceiling, `"sampled"` above.
    pub oracle: &'static str,
}

/// Fitted per-stage growth exponents (`t ∝ N^e`); `None` when fewer than
/// two tiers produced measurable timings.
#[derive(Debug, Clone, Copy, Default)]
pub struct GrowthFit {
    /// Indexed Top-K wall-clock exponent (informational — see the
    /// module docs for why time cannot be the asserted series).
    pub topk: Option<f64>,
    /// Indexed Top-K *fully-scored pair* exponent — asserted `< 2`
    /// (dense scoring is exactly 2 on the same split).
    pub topk_pairs: Option<f64>,
    /// Shared refined stage wall-clock exponent — asserted `< 2`.
    pub refined: Option<f64>,
    /// Corpus build exponent (informational).
    pub build: Option<f64>,
    /// Snapshot-size exponent (informational).
    pub snapshot_bytes: Option<f64>,
}

/// splitmix64 — the experiment's tiny seeded generator for picking oracle
/// samples (the workspace's `rand` lives in the corpus crate; the bench
/// harness keeps its sampling self-contained and pinned).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `k` distinct seeded indices from `0..n`, ascending.
fn sample_indices(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut state = seed ^ 0x5851_f42d_4c95_7f2d;
    let mut picked = std::collections::BTreeSet::new();
    while picked.len() < k.min(n) {
        picked.insert((splitmix64(&mut state) % n as u64) as usize);
    }
    picked.into_iter().collect()
}

/// `(VmRSS, VmHWM)` of this process in bytes — Linux `/proc` readings,
/// `(0, 0)` elsewhere.
fn proc_memory() -> (u64, u64) {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let grab = |key: &str| {
        text.lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse::<u64>().ok())
            .map_or(0, |kb| kb * 1024)
    };
    (grab("VmRSS:"), grab("VmHWM:"))
}

/// Log-log least-squares slope of `seconds` (or any positive measure)
/// against tier size, over points above `floor`.
fn fitted_exponent(points: &[(f64, f64)], floor: f64) -> Option<f64> {
    let pts: Vec<(f64, f64)> =
        points.iter().filter(|&&(_, y)| y > floor).map(|&(x, y)| (x.ln(), y.ln())).collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    (denom.abs() > 1e-12).then(|| (n * sxy - sx * sy) / denom)
}

/// The engine configuration of the measured production path.
fn scale_engine() -> Engine {
    Engine::new(EngineConfig {
        attack: AttackConfig { top_k: 10, n_landmarks: 30, ..AttackConfig::default() },
        n_threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        block_size: 16,
        scoring: ScoringMode::Indexed,
        refined: RefinedMode::Shared,
        candidate_budget: None,
        exactness: ExactnessMode::Exact,
    })
}

fn stage(report: &EngineReport, name: &str) -> (f64, u64, u64) {
    report.stage(name).map_or((0.0, 0, 0), |s| (s.seconds, s.items, s.skipped))
}

/// FNV-1a digest of a forum's snapshot encoding — the byte-identity
/// fingerprint the determinism checks compare.
fn forum_digest(forum: &Forum) -> u64 {
    let mut buf = SectionBuf::new();
    encode_forum(forum, &mut buf);
    fnv1a(&buf.into_bytes())
}

/// Run the sweep and write `BENCH_scale.json` to the working directory.
///
/// # Errors
/// Propagates I/O errors from writing the JSON file.
pub fn run(users: usize, seed: u64) -> io::Result<PathBuf> {
    let path = PathBuf::from("BENCH_scale.json");
    run_to(&path, users, seed)?;
    Ok(path)
}

/// Run the sweep over an explicit, ascending tier list (the
/// `repro scale --tiers` form) and write `BENCH_scale.json` to the
/// working directory.
///
/// # Errors
/// Propagates I/O errors from writing the JSON file.
pub fn run_tiers(tiers: &[usize], seed: u64) -> io::Result<PathBuf> {
    let path = PathBuf::from("BENCH_scale.json");
    run_tiers_to(&path, tiers, seed)?;
    Ok(path)
}

/// Run the sweep (tiers `users/100`, `users/10`, `users`, smallest first)
/// and write the JSON report to `path`.
///
/// # Panics
/// Panics when any oracle comparison (full or sampled) disagrees with the
/// engine, or when the fitted indexed-Top-K scored-pair or shared-refined
/// wall-clock growth exponent reaches 2 — the committed numbers must come
/// from runs that are both exact and sub-quadratic.
///
/// # Errors
/// Propagates I/O errors from writing the JSON file.
pub fn run_to(path: &Path, users: usize, seed: u64) -> io::Result<Vec<ScaleTier>> {
    let mut tiers: Vec<usize> =
        [users / 100, users / 10, users].into_iter().filter(|&t| t >= MIN_TIER).collect();
    tiers.dedup();
    run_tiers_to(path, &tiers, seed)
}

/// [`run_to`] with an explicit tier list instead of the default
/// decade pyramid. Tiers below `MIN_TIER` (30 users) are dropped (their timings
/// are noise); the sweep runs smallest-first, so the list must be
/// ascending.
///
/// # Panics
/// As [`run_to`], plus when no tier survives the minimum-tier filter or
/// the list is not strictly ascending.
///
/// # Errors
/// Propagates I/O errors from writing the JSON file.
pub fn run_tiers_to(path: &Path, tiers: &[usize], seed: u64) -> io::Result<Vec<ScaleTier>> {
    let tiers: Vec<usize> = tiers.iter().copied().filter(|&t| t >= MIN_TIER).collect();
    assert!(!tiers.is_empty(), "corpus too small for any tier (need ≥ {MIN_TIER} users)");
    assert!(
        tiers.windows(2).all(|w| w[0] < w[1]),
        "tiers must be strictly ascending (the peak-RSS readings are only a ceiling when \
         tiers grow)"
    );
    let users = *tiers.last().expect("non-empty tier list");
    println!(
        "\n# Scale: tiers {tiers:?} auxiliary users; full oracle ≤ {FULL_ORACLE_MAX_USERS}, \
         sampled oracle ({SAMPLED_TOPK_USERS} topk rows + {SAMPLED_REFINED_USERS} refined \
         users) at every tier"
    );

    let engine = scale_engine();
    let cfg = engine.config().attack.clone();
    let mut results: Vec<ScaleTier> = Vec::new();
    for &tier in &tiers {
        let config = ForumConfig::webmd_like(tier);
        let t0 = Instant::now();
        let forum = Forum::generate(&config, seed);
        let gen_seconds = t0.elapsed().as_secs_f64();
        let corpus_digest = forum_digest(&forum);

        // Generator-determinism pin: at tiers where a regeneration is
        // affordable, the same seed must yield byte-identical corpora at
        // different worker-thread counts (the two-phase generator's
        // contract; `BENCH_scale.json` rows are only trustworthy if the
        // corpus behind them is reproducible).
        if tier <= 10_000 {
            for threads in [1usize, 3] {
                let again = Forum::generate_with_threads(&config, seed, threads);
                assert_eq!(
                    forum_digest(&again),
                    corpus_digest,
                    "generator not deterministic at tier {tier} with {threads} threads"
                );
            }
        }

        let split = closed_world_split(&forum, &SplitConfig::fraction(0.7), seed.wrapping_add(1));
        drop(forum);
        let anonymized = split.anonymized;
        let t0 = Instant::now();
        let corpus = PreparedCorpus::build(split.auxiliary, ClassifierKind::default());
        let build_seconds = t0.elapsed().as_secs_f64();
        let (vm_rss_bytes, vm_hwm_bytes) = proc_memory();
        let memory = corpus.memory_stats();

        let snap_path = std::env::temp_dir().join(format!("dehealth-scale-{tier}.snap"));
        let t0 = Instant::now();
        corpus.save_streaming(&snap_path).map_err(io::Error::other)?;
        let snapshot_seconds = t0.elapsed().as_secs_f64();
        let snapshot_bytes = std::fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0);
        let _ = std::fs::remove_file(&snap_path);

        let outcome = corpus.attack(&engine, &anonymized);
        let (prepare_seconds, _, _) = stage(&outcome.report, "prepare");
        let (topk_seconds, topk_pairs, topk_pairs_pruned) = stage(&outcome.report, "topk");
        let (refined_seconds, _, _) = stage(&outcome.report, "refined");

        let full_oracle = tier <= FULL_ORACLE_MAX_USERS;
        if full_oracle {
            let oracle_engine = Engine::new(EngineConfig {
                scoring: ScoringMode::Dense,
                refined: RefinedMode::PerUser,
                ..engine.config().clone()
            });
            let reference = corpus.attack(&oracle_engine, &anonymized);
            assert_eq!(outcome.candidates, reference.candidates, "tier {tier}: candidate sets");
            assert_eq!(
                to_bits(&outcome.candidate_scores),
                to_bits(&reference.candidate_scores),
                "tier {tier}: candidate score bits"
            );
            assert_eq!(outcome.mapping, reference.mapping, "tier {tier}: mappings");
        } else {
            println!(
                "  tier {tier}: full dense/per-user oracle SKIPPED (O(N²) at this scale); \
                 sampled oracle covers {SAMPLED_TOPK_USERS}/{} Top-K rows and \
                 {SAMPLED_REFINED_USERS} refined users bit-exactly",
                anonymized.n_users
            );
        }

        // Sampled differential oracle — every tier, full oracle or not.
        let anon_feats = extract_post_features(&anonymized);
        let anon_uda = UdaGraph::build_with_features(&anonymized, &anon_feats);
        let sim = SimilarityEngine::new(&anon_uda, corpus.uda(), cfg.weights, cfg.n_landmarks);
        for &u in &sample_indices(anonymized.n_users, SAMPLED_TOPK_USERS, seed ^ 0x7075) {
            let mut heap = BoundedTopK::new(cfg.top_k);
            for (v, s) in sim.scores_for(u) {
                heap.insert(v, s);
            }
            let dense: Vec<(usize, u64)> =
                heap.into_sorted_entries().into_iter().map(|(v, s)| (v, s.to_bits())).collect();
            let engine_row: Vec<(usize, u64)> =
                outcome.candidate_scores[u].iter().map(|&(v, s)| (v, s.to_bits())).collect();
            assert_eq!(engine_row, dense, "tier {tier}: sampled Top-K row of user {u}");
        }
        let anon_side = Side { forum: &anonymized, uda: &anon_uda, post_features: &anon_feats };
        let aux_side =
            Side { forum: corpus.forum(), uda: corpus.uda(), post_features: corpus.features() };
        let refined_cfg = RefinedConfig {
            classifier: cfg.classifier,
            verification: cfg.verification,
            seed: cfg.seed,
        };
        let mut scratch_row = vec![f64::NEG_INFINITY; corpus.n_users()];
        for &u in &sample_indices(anonymized.n_users, SAMPLED_REFINED_USERS, seed ^ 0x5246) {
            for &(v, s) in &outcome.candidate_scores[u] {
                scratch_row[v] = s;
            }
            let reference = refine_user(
                u,
                &outcome.candidates[u],
                &anon_side,
                &aux_side,
                &scratch_row,
                &refined_cfg,
            );
            assert_eq!(
                reference, outcome.mapping[u],
                "tier {tier}: sampled refined decision of user {u}"
            );
            for &(v, _) in &outcome.candidate_scores[u] {
                scratch_row[v] = f64::NEG_INFINITY;
            }
        }

        // Candidate-budget recall contract, probed once at the smallest
        // tier: under a binding budget each user's best candidate — and
        // therefore the Top-K recall@1 — must survive.
        if tier == tiers[0] {
            let total: usize = outcome.candidate_scores.iter().map(Vec::len).sum();
            let budget_engine = Engine::new(EngineConfig {
                candidate_budget: Some(total / 2),
                ..engine.config().clone()
            });
            let budgeted = corpus.attack(&budget_engine, &anonymized);
            let trimmed = budgeted.report.stage("budget").map_or(0, |s| s.skipped);
            assert!(trimmed > 0, "tier {tier}: budget of {} never bound", total / 2);
            for (full, capped) in outcome.candidate_scores.iter().zip(&budgeted.candidate_scores) {
                assert_eq!(
                    full.first().map(|&(v, s)| (v, s.to_bits())),
                    capped.first().map(|&(v, s)| (v, s.to_bits())),
                    "tier {tier}: candidate budget dropped a best-scoring candidate"
                );
            }
            println!(
                "  tier {tier}: candidate budget {}/{total} trimmed {trimmed} entries, \
                 recall contract held",
                total / 2
            );
        }

        let result = ScaleTier {
            aux_users: tier,
            anon_users: anonymized.n_users,
            aux_posts: corpus.n_posts(),
            corpus_digest,
            gen_seconds,
            build_seconds,
            snapshot_seconds,
            snapshot_bytes,
            prepare_seconds,
            topk_seconds,
            topk_pairs,
            topk_pairs_pruned,
            refined_seconds,
            total_attack_seconds: outcome.report.total_seconds(),
            resident_arena_bytes: memory.resident_arena_bytes,
            vm_rss_bytes,
            vm_hwm_bytes,
            oracle: if full_oracle { "full+sampled" } else { "sampled" },
        };
        println!(
            "  tier {:>7}: gen {:>7.2}s, build {:>7.2}s, snapshot {:>6.2}s ({} bytes), \
             attack {:>7.2}s (topk {:>7.2}s: {} scored + {} pruned; refined {:>7.2}s), \
             RSS {} MiB (peak {} MiB), oracle {}",
            result.aux_users,
            result.gen_seconds,
            result.build_seconds,
            result.snapshot_seconds,
            result.snapshot_bytes,
            result.total_attack_seconds,
            result.topk_seconds,
            result.topk_pairs,
            result.topk_pairs_pruned,
            result.refined_seconds,
            result.vm_rss_bytes / (1 << 20),
            result.vm_hwm_bytes / (1 << 20),
            result.oracle,
        );
        results.push(result);
    }

    let growth = fit_growth(&results);
    if results.len() >= 2 {
        if let Some(e) = growth.topk_pairs {
            assert!(e < 2.0, "indexed Top-K scored-pair count grew quadratically (N^{e:.2})");
        }
        if let Some(e) = growth.refined {
            assert!(e < 2.0, "shared refined stage grew super-quadratically (N^{e:.2})");
        }
    }
    let fmt_exp = |e: Option<f64>| e.map_or("n/a".to_string(), |e| format!("N^{e:.2}"));
    println!(
        "  growth: topk scored pairs {} (wall-clock {}), refined {}, build {}, \
         snapshot bytes {}",
        fmt_exp(growth.topk_pairs),
        fmt_exp(growth.topk),
        fmt_exp(growth.refined),
        fmt_exp(growth.build),
        fmt_exp(growth.snapshot_bytes)
    );

    write_json(path, users, seed, &results, growth)?;
    println!("  wrote {}", path.display());
    Ok(results)
}

fn to_bits(scores: &[Vec<(usize, f64)>]) -> Vec<Vec<(usize, u64)>> {
    scores.iter().map(|row| row.iter().map(|&(v, s)| (v, s.to_bits())).collect()).collect()
}

fn fit_growth(results: &[ScaleTier]) -> GrowthFit {
    let series = |f: fn(&ScaleTier) -> f64| -> Vec<(f64, f64)> {
        results.iter().map(|r| (r.aux_users as f64, f(r))).collect()
    };
    GrowthFit {
        topk: fitted_exponent(&series(|r| r.topk_seconds), FIT_FLOOR_SECONDS),
        topk_pairs: fitted_exponent(&series(|r| r.topk_pairs as f64), 0.0),
        refined: fitted_exponent(&series(|r| r.refined_seconds), FIT_FLOOR_SECONDS),
        build: fitted_exponent(&series(|r| r.build_seconds), FIT_FLOOR_SECONDS),
        snapshot_bytes: fitted_exponent(&series(|r| r.snapshot_bytes as f64), 0.0),
    }
}

/// Hand-rolled JSON (the workspace carries no serialization dependency).
fn write_json(
    path: &Path,
    users: usize,
    seed: u64,
    tiers: &[ScaleTier],
    growth: GrowthFit,
) -> io::Result<()> {
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let exp = |e: Option<f64>| e.map_or("null".to_string(), |e| format!("{e:.4}"));
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"scale\",");
    let _ = writeln!(out, "  \"users\": {users},");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"machine_parallelism\": {parallelism},");
    let _ = writeln!(out, "  \"full_oracle_max_users\": {FULL_ORACLE_MAX_USERS},");
    let _ = writeln!(out, "  \"sampled_topk_users\": {SAMPLED_TOPK_USERS},");
    let _ = writeln!(out, "  \"sampled_refined_users\": {SAMPLED_REFINED_USERS},");
    let _ = writeln!(
        out,
        "  \"contract\": \"indexed Top-K rows and refined decisions verified bit-exact \
         against the dense/per-user reference: full oracle at tiers <= full_oracle_max_users, \
         seeded sampled oracle at every tier\","
    );
    out.push_str("  \"tiers\": [\n");
    for (i, t) in tiers.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"aux_users\": {}, \"anon_users\": {}, \"aux_posts\": {}, \
             \"corpus_digest\": \"{:#018x}\", \"gen_seconds\": {:.6}, \
             \"build_seconds\": {:.6}, \"snapshot_seconds\": {:.6}, \"snapshot_bytes\": {}, \
             \"prepare_seconds\": {:.6}, \"topk_seconds\": {:.6}, \"topk_pairs\": {}, \
             \"topk_pairs_pruned\": {}, \"refined_seconds\": {:.6}, \
             \"total_attack_seconds\": {:.6}, \"resident_arena_bytes\": {}, \
             \"vm_rss_bytes\": {}, \"vm_hwm_bytes\": {}, \"oracle\": \"{}\"}}",
            t.aux_users,
            t.anon_users,
            t.aux_posts,
            t.corpus_digest,
            t.gen_seconds,
            t.build_seconds,
            t.snapshot_seconds,
            t.snapshot_bytes,
            t.prepare_seconds,
            t.topk_seconds,
            t.topk_pairs,
            t.topk_pairs_pruned,
            t.refined_seconds,
            t.total_attack_seconds,
            t.resident_arena_bytes,
            t.vm_rss_bytes,
            t.vm_hwm_bytes,
            t.oracle,
        );
        out.push_str(if i + 1 < tiers.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"growth_exponents\": {");
    let _ = write!(
        out,
        "\"topk_scored_pairs\": {}, \"topk_seconds\": {}, \"refined_seconds\": {}, \
         \"build_seconds\": {}, \"snapshot_bytes\": {}",
        exp(growth.topk_pairs),
        exp(growth.topk),
        exp(growth.refined),
        exp(growth.build),
        exp(growth.snapshot_bytes)
    );
    out.push_str("}\n}\n");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_seeded_and_distinct() {
        let a = sample_indices(1000, 24, 7);
        let b = sample_indices(1000, 24, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 24);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "indices not distinct/ascending");
        assert_ne!(a, sample_indices(1000, 24, 8));
        assert_eq!(sample_indices(5, 24, 7).len(), 5);
    }

    #[test]
    fn exponent_fit_recovers_known_slopes() {
        let quadratic: Vec<(f64, f64)> =
            [100.0, 1000.0, 10000.0].iter().map(|&n| (n, 1e-6 * n * n)).collect();
        let e = fitted_exponent(&quadratic, 1e-3).unwrap();
        assert!((e - 2.0).abs() < 1e-9, "got {e}");
        let linear: Vec<(f64, f64)> =
            [100.0, 1000.0, 10000.0].iter().map(|&n| (n, 1e-4 * n)).collect();
        let e = fitted_exponent(&linear, 1e-3).unwrap();
        assert!((e - 1.0).abs() < 1e-9, "got {e}");
        // Noise-floor gating: one measurable point is not a fit.
        assert!(fitted_exponent(&[(100.0, 1e-5), (1000.0, 0.5)], 1e-3).is_none());
    }

    #[test]
    fn sweep_runs_oracles_and_writes_json() {
        let dir = std::env::temp_dir().join("dehealth-scale-test");
        let path = dir.join("BENCH_scale.json");
        // 300 users → tiers [30, 300]; both under the full-oracle ceiling,
        // so this exercises full + sampled oracles, the budget probe, the
        // determinism regeneration and the JSON writer end to end.
        let results = run_to(&path, 300, 5).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].aux_users, 30);
        assert_eq!(results[1].aux_users, 300);
        for t in &results {
            assert_eq!(t.oracle, "full+sampled");
            assert!(t.anon_users > 0);
            assert!(t.snapshot_bytes > 0);
            assert!(t.build_seconds > 0.0);
            assert!(t.total_attack_seconds > 0.0);
            assert!(t.corpus_digest != 0);
        }
        assert!(results[1].snapshot_bytes > results[0].snapshot_bytes);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"scale\""));
        assert!(text.contains("\"oracle\": \"full+sampled\""));
        assert!(text.contains("\"growth_exponents\""));
        assert!(text.contains("\"corpus_digest\""));
        assert!(text.contains("\"vm_hwm_bytes\""));
        let _ = std::fs::remove_dir_all(dir);
    }
}
