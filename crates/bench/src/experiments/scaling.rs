//! Scaling experiment: engine throughput as a function of worker threads,
//! scoring path, and refined-DA materialization path.
//!
//! Runs the parallel engine's attack on a medium synthetic forum at 1, 2,
//! 4 and 8 worker threads — through the dense all-pairs sweep
//! ([`ScoringMode::Dense`]) and the inverted-index sparse path
//! ([`ScoringMode::Indexed`]) for the Top-K stage, and through both
//! refined-DA paths ([`RefinedMode::Shared`], the materialize-once fast
//! path, vs [`RefinedMode::PerUser`], the from-scratch oracle) — records
//! per-stage wall-clock, throughput and pruning counters from the
//! [`EngineReport`](dehealth_engine::EngineReport), and emits
//! `BENCH_scaling.json` so future PRs have a performance trajectory to
//! compare against. The Top-K phase is embarrassingly parallel; on a
//! machine with ≥ 8 physical cores the 8-thread run should reach ≥ 3× the
//! single-thread pair throughput (thread counts beyond the machine's
//! parallelism can't speed up further — the JSON records
//! `machine_parallelism` so readings from small CI boxes aren't
//! misinterpreted). All scoring paths produce bit-identical candidate
//! sets, and both refined paths produce bit-identical mappings — asserted
//! on every run of this experiment, so the committed numbers always come
//! from configurations that agree on the answer.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use dehealth_core::AttackConfig;
use dehealth_corpus::{closed_world_split, Forum, ForumConfig, SplitConfig};
use dehealth_engine::{Engine, EngineConfig, ExactnessMode, RefinedMode, ScoringMode};

/// Thread counts swept by the experiment.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// `(scoring, refined)` path combinations swept by the experiment: both
/// Top-K scoring paths with the shared refined fast path, plus the
/// per-user refined oracle (on indexed scoring) so the JSON documents the
/// refined-stage speedup next to the numbers it improved on.
pub const PATH_SWEEP: [(ScoringMode, RefinedMode); 3] = [
    (ScoringMode::Dense, RefinedMode::Shared),
    (ScoringMode::Indexed, RefinedMode::Shared),
    (ScoringMode::Indexed, RefinedMode::PerUser),
];

/// Largest corpus at which the full differential oracles still run as
/// part of a sweep: the dense all-pairs Top-K sweep and the per-user
/// refined path are both O(N²)-ish in the corpus size and would silently
/// turn a 100k-user sweep into a run that never finishes. Above this,
/// sweeps keep only the `(Indexed, Shared)` production path and exactness
/// is covered by the *sampled* oracle of the `scale` experiment instead.
pub const FULL_ORACLE_MAX_USERS: usize = 2000;

/// The `(scoring, refined)` path combinations actually swept at a given
/// corpus size: everything in [`PATH_SWEEP`] up to
/// [`FULL_ORACLE_MAX_USERS`], only the production `(Indexed, Shared)`
/// path beyond it.
#[must_use]
pub fn sweep_paths(users: usize) -> &'static [(ScoringMode, RefinedMode)] {
    if users <= FULL_ORACLE_MAX_USERS {
        &PATH_SWEEP
    } else {
        &PATH_SWEEP[1..2]
    }
}

/// One `(users × threads × paths)` measurement.
#[derive(Debug, Clone)]
pub struct ScalingRun {
    /// Total generated forum users.
    pub users: usize,
    /// Worker threads.
    pub threads: usize,
    /// Scoring path (`"dense"` or `"indexed"`).
    pub mode: &'static str,
    /// Refined-DA path (`"shared"` or `"peruser"`).
    pub refined_mode: &'static str,
    /// Fully scored `(anonymized, auxiliary)` pairs in the Top-K stage.
    pub topk_pairs: u64,
    /// Pairs pruned by the indexed upper bound (0 on the dense path).
    pub topk_pairs_pruned: u64,
    /// Top-K stage wall-clock seconds.
    pub topk_seconds: f64,
    /// Top-K stage throughput (fully scored pairs/s).
    pub topk_pairs_per_sec: f64,
    /// Refined stage wall-clock seconds.
    pub refined_seconds: f64,
    /// Refined stage throughput (anonymized users de-anonymized per
    /// second, context build included for the shared path).
    pub refined_users_per_sec: f64,
    /// Whole-attack wall-clock seconds (all stages).
    pub total_seconds: f64,
}

fn mode_name(mode: ScoringMode) -> &'static str {
    match mode {
        ScoringMode::Dense => "dense",
        ScoringMode::Indexed => "indexed",
    }
}

fn refined_name(mode: RefinedMode) -> &'static str {
    match mode {
        RefinedMode::Shared => "shared",
        RefinedMode::PerUser => "peruser",
    }
}

/// Run the sweep and write `BENCH_scaling.json` to the working directory.
///
/// # Errors
/// Propagates I/O errors from writing the JSON file.
pub fn run(users: usize, seed: u64) -> io::Result<PathBuf> {
    let path = PathBuf::from("BENCH_scaling.json");
    run_to(&path, users, seed)?;
    Ok(path)
}

/// Run the sweep and write the JSON report to `path`.
///
/// # Panics
/// Panics if any two configurations disagree on the final mapping — the
/// committed numbers must come from paths that agree on the answer.
///
/// # Errors
/// Propagates I/O errors from writing the JSON file.
pub fn run_to(path: &Path, users: usize, seed: u64) -> io::Result<Vec<ScalingRun>> {
    let forum = Forum::generate(&ForumConfig::webmd_like(users), seed);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.7), seed.wrapping_add(1));
    println!(
        "\n# Scaling: {} anonymized × {} auxiliary users, threads {THREAD_SWEEP:?}, \
         dense vs indexed scoring, shared vs per-user refined",
        split.anonymized.n_users, split.auxiliary.n_users
    );

    let paths = sweep_paths(users);
    if paths.len() < PATH_SWEEP.len() {
        println!(
            "  NOTE: {users} users exceeds the full-oracle ceiling of {FULL_ORACLE_MAX_USERS}; \
             the O(N²) dense sweep and per-user refined oracle are SKIPPED at this scale. \
             Exactness at large tiers is covered by `repro scale`'s sampled differential \
             oracle (seeded random Top-K rows and refined users, verified bit-exactly)."
        );
    }
    let mut runs = Vec::new();
    let mut reference_mapping: Option<Vec<Option<usize>>> = None;
    for &threads in &THREAD_SWEEP {
        for &(mode, refined) in paths {
            let engine = Engine::new(EngineConfig {
                attack: AttackConfig { top_k: 10, n_landmarks: 30, ..AttackConfig::default() },
                n_threads: threads,
                block_size: 16,
                scoring: mode,
                refined,
                candidate_budget: None,
                exactness: ExactnessMode::Exact,
            });
            let outcome = engine.run(&split.auxiliary, &split.anonymized);
            match &reference_mapping {
                Some(reference) => assert_eq!(
                    reference, &outcome.mapping,
                    "paths must agree on the mapping ({mode:?}, {refined:?}, {threads} threads)"
                ),
                None => reference_mapping = Some(outcome.mapping.clone()),
            }
            let report = &outcome.report;
            let topk = report.stage("topk").expect("topk stage always runs");
            let refined_stage = report.stage("refined").expect("refined stage always runs");
            let run = ScalingRun {
                users,
                threads,
                mode: mode_name(mode),
                refined_mode: refined_name(refined),
                topk_pairs: topk.items,
                topk_pairs_pruned: topk.skipped,
                topk_seconds: topk.seconds,
                topk_pairs_per_sec: topk.throughput(),
                refined_seconds: refined_stage.seconds,
                refined_users_per_sec: refined_stage.throughput(),
                total_seconds: report.total_seconds(),
            };
            println!(
                "  threads {:>2} {:<7} {:<7}: topk {:>8.3}s ({:>12.0} pairs/s, {:>8} pruned), \
                 refined {:>8.3}s ({:>8.0} users/s), total {:>8.3}s",
                run.threads,
                run.mode,
                run.refined_mode,
                run.topk_seconds,
                run.topk_pairs_per_sec,
                run.topk_pairs_pruned,
                run.refined_seconds,
                run.refined_users_per_sec,
                run.total_seconds
            );
            runs.push(run);
        }
    }
    let dense_1 = runs.iter().find(|r| r.threads == 1 && r.mode == "dense");
    let indexed_1 =
        runs.iter().find(|r| r.threads == 1 && r.mode == "indexed" && r.refined_mode == "shared");
    if let (Some(d), Some(i)) = (dense_1, indexed_1) {
        if i.topk_seconds > 0.0 && d.topk_pairs > 0 {
            println!(
                "  indexed vs dense at 1 thread: {:.2}× topk wall-clock, {:.1}% of pairs \
                 fully scored",
                d.topk_seconds / i.topk_seconds.max(1e-12),
                100.0 * i.topk_pairs as f64 / d.topk_pairs as f64
            );
        }
    }
    let peruser_1 =
        runs.iter().find(|r| r.threads == 1 && r.mode == "indexed" && r.refined_mode == "peruser");
    if let (Some(s), Some(p)) = (indexed_1, peruser_1) {
        if s.refined_seconds > 0.0 {
            println!(
                "  shared vs per-user refined at 1 thread: {:.2}× refined wall-clock",
                p.refined_seconds / s.refined_seconds.max(1e-12)
            );
        }
    }

    write_json(path, users, seed, &runs)?;
    println!("  wrote {}", path.display());
    Ok(runs)
}

/// Hand-rolled JSON (the workspace carries no serialization dependency).
fn write_json(path: &Path, users: usize, seed: u64, runs: &[ScalingRun]) -> io::Result<()> {
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"scaling\",");
    let _ = writeln!(out, "  \"users\": {users},");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"machine_parallelism\": {parallelism},");
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"users\": {}, \"threads\": {}, \"mode\": \"{}\", \"refined_mode\": \"{}\", \
             \"topk_pairs\": {}, \"topk_pairs_pruned\": {}, \"topk_seconds\": {:.6}, \
             \"topk_pairs_per_sec\": {:.1}, \"refined_seconds\": {:.6}, \
             \"refined_users_per_sec\": {:.1}, \"total_seconds\": {:.6}}}",
            r.users,
            r.threads,
            r.mode,
            r.refined_mode,
            r.topk_pairs,
            r.topk_pairs_pruned,
            r.topk_seconds,
            r.topk_pairs_per_sec,
            r.refined_seconds,
            r.refined_users_per_sec,
            r.total_seconds
        );
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_oracle_paths_are_gated_by_corpus_size() {
        assert_eq!(sweep_paths(60).len(), PATH_SWEEP.len());
        assert_eq!(sweep_paths(FULL_ORACLE_MAX_USERS).len(), PATH_SWEEP.len());
        let gated = sweep_paths(FULL_ORACLE_MAX_USERS + 1);
        assert_eq!(gated, &[(ScoringMode::Indexed, RefinedMode::Shared)]);
        assert_eq!(sweep_paths(100_000), gated);
    }

    #[test]
    fn sweep_runs_and_writes_json() {
        let dir = std::env::temp_dir().join("dehealth-scaling-test");
        let path = dir.join("BENCH_scaling.json");
        let runs = run_to(&path, 60, 5).unwrap();
        assert_eq!(runs.len(), THREAD_SWEEP.len() * PATH_SWEEP.len());
        for (chunk, &threads) in runs.chunks(PATH_SWEEP.len()).zip(&THREAD_SWEEP) {
            assert!(chunk.iter().all(|r| r.threads == threads));
            assert!(chunk.iter().all(|r| r.total_seconds > 0.0));
            assert!(chunk.iter().all(|r| r.refined_seconds > 0.0));
            assert!(chunk.iter().all(|r| r.refined_users_per_sec > 0.0));
        }
        let dense: Vec<&ScalingRun> = runs.iter().filter(|r| r.mode == "dense").collect();
        let indexed: Vec<&ScalingRun> =
            runs.iter().filter(|r| r.mode == "indexed" && r.refined_mode == "shared").collect();
        // The dense oracle scores every present pair and never prunes;
        // all thread counts agree on the workload.
        assert!(dense.iter().all(|r| r.topk_pairs == dense[0].topk_pairs && r.topk_pairs > 0));
        assert!(dense.iter().all(|r| r.topk_pairs_pruned == 0));
        // The indexed path prunes (> 0) and therefore fully scores
        // strictly fewer pairs than the dense sweep — the acceptance
        // criterion of the sparse-scoring PR — while covering the same
        // workload (scored + pruned = dense pairs). Pruning decisions are
        // per-user, so thread counts agree here too.
        assert!(
            indexed.iter().all(|r| r.topk_pairs_pruned > 0),
            "indexed path pruned nothing: {indexed:?}"
        );
        assert!(indexed.iter().all(|r| r.topk_pairs < dense[0].topk_pairs));
        assert!(indexed.iter().all(|r| r.topk_pairs + r.topk_pairs_pruned == dense[0].topk_pairs));
        assert!(indexed.iter().all(|r| r.topk_pairs == indexed[0].topk_pairs));
        // Every sweep carries the per-user refined oracle for comparison
        // (mapping equality with the shared path is asserted inside
        // `run_to` itself).
        let peruser: Vec<&ScalingRun> =
            runs.iter().filter(|r| r.refined_mode == "peruser").collect();
        assert_eq!(peruser.len(), THREAD_SWEEP.len());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"scaling\""));
        assert!(text.contains("\"machine_parallelism\""));
        assert!(text.contains("\"threads\": 8"));
        assert!(text.contains("\"mode\": \"indexed\""));
        assert!(text.contains("\"refined_mode\": \"peruser\""));
        assert!(text.contains("\"topk_pairs_pruned\""));
        assert!(text.contains("\"refined_users_per_sec\""));
        let _ = std::fs::remove_dir_all(dir);
    }
}
