//! Scaling experiment: engine throughput as a function of worker threads
//! and scoring path.
//!
//! Runs the parallel engine's attack on a medium synthetic forum at 1, 2,
//! 4 and 8 worker threads — once through the dense all-pairs sweep
//! ([`ScoringMode::Dense`]) and once through the inverted-index sparse
//! path ([`ScoringMode::Indexed`]) — records per-stage wall-clock,
//! throughput and pruning counters from the
//! [`EngineReport`](dehealth_engine::EngineReport), and emits
//! `BENCH_scaling.json` so future PRs have a performance trajectory to
//! compare against. The Top-K phase is embarrassingly parallel; on a
//! machine with ≥ 8 physical cores the 8-thread run should reach ≥ 3× the
//! single-thread pair throughput (thread counts beyond the machine's
//! parallelism can't speed up further — the JSON records
//! `machine_parallelism` so readings from small CI boxes aren't
//! misinterpreted). Both paths produce bit-identical candidate sets; the
//! indexed path additionally *prunes*: `topk_pairs_pruned` counts pairs
//! whose upper bound could not beat the running Top-K floor and whose
//! degree/distance terms were therefore never computed.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use dehealth_core::AttackConfig;
use dehealth_corpus::{closed_world_split, Forum, ForumConfig, SplitConfig};
use dehealth_engine::{Engine, EngineConfig, ScoringMode};

/// Thread counts swept by the experiment.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Scoring paths swept by the experiment.
pub const MODE_SWEEP: [ScoringMode; 2] = [ScoringMode::Dense, ScoringMode::Indexed];

/// One `(users × threads × scoring mode)` measurement.
#[derive(Debug, Clone)]
pub struct ScalingRun {
    /// Total generated forum users.
    pub users: usize,
    /// Worker threads.
    pub threads: usize,
    /// Scoring path (`"dense"` or `"indexed"`).
    pub mode: &'static str,
    /// Fully scored `(anonymized, auxiliary)` pairs in the Top-K stage.
    pub topk_pairs: u64,
    /// Pairs pruned by the indexed upper bound (0 on the dense path).
    pub topk_pairs_pruned: u64,
    /// Top-K stage wall-clock seconds.
    pub topk_seconds: f64,
    /// Top-K stage throughput (fully scored pairs/s).
    pub topk_pairs_per_sec: f64,
    /// Refined stage wall-clock seconds.
    pub refined_seconds: f64,
    /// Whole-attack wall-clock seconds (all stages).
    pub total_seconds: f64,
}

fn mode_name(mode: ScoringMode) -> &'static str {
    match mode {
        ScoringMode::Dense => "dense",
        ScoringMode::Indexed => "indexed",
    }
}

/// Run the sweep and write `BENCH_scaling.json` to the working directory.
///
/// # Errors
/// Propagates I/O errors from writing the JSON file.
pub fn run(users: usize, seed: u64) -> io::Result<PathBuf> {
    let path = PathBuf::from("BENCH_scaling.json");
    run_to(&path, users, seed)?;
    Ok(path)
}

/// Run the sweep and write the JSON report to `path`.
///
/// # Errors
/// Propagates I/O errors from writing the JSON file.
pub fn run_to(path: &Path, users: usize, seed: u64) -> io::Result<Vec<ScalingRun>> {
    let forum = Forum::generate(&ForumConfig::webmd_like(users), seed);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.7), seed.wrapping_add(1));
    println!(
        "\n# Scaling: {} anonymized × {} auxiliary users, threads {THREAD_SWEEP:?}, \
         dense vs indexed scoring",
        split.anonymized.n_users, split.auxiliary.n_users
    );

    let mut runs = Vec::new();
    for &threads in &THREAD_SWEEP {
        for &mode in &MODE_SWEEP {
            let engine = Engine::new(EngineConfig {
                attack: AttackConfig { top_k: 10, n_landmarks: 30, ..AttackConfig::default() },
                n_threads: threads,
                block_size: 16,
                scoring: mode,
            });
            let outcome = engine.run(&split.auxiliary, &split.anonymized);
            let report = &outcome.report;
            let topk = report.stage("topk").expect("topk stage always runs");
            let refined = report.stage("refined").expect("refined stage always runs");
            let run = ScalingRun {
                users,
                threads,
                mode: mode_name(mode),
                topk_pairs: topk.items,
                topk_pairs_pruned: topk.skipped,
                topk_seconds: topk.seconds,
                topk_pairs_per_sec: topk.throughput(),
                refined_seconds: refined.seconds,
                total_seconds: report.total_seconds(),
            };
            println!(
                "  threads {:>2} {:<7}: topk {:>8.3}s ({:>12.0} pairs/s, {:>10} pruned), \
                 refined {:>8.3}s, total {:>8.3}s",
                run.threads,
                run.mode,
                run.topk_seconds,
                run.topk_pairs_per_sec,
                run.topk_pairs_pruned,
                run.refined_seconds,
                run.total_seconds
            );
            runs.push(run);
        }
    }
    let dense_1 = runs.iter().find(|r| r.threads == 1 && r.mode == "dense");
    let indexed_1 = runs.iter().find(|r| r.threads == 1 && r.mode == "indexed");
    if let (Some(d), Some(i)) = (dense_1, indexed_1) {
        if i.topk_seconds > 0.0 && d.topk_pairs > 0 {
            println!(
                "  indexed vs dense at 1 thread: {:.2}× topk wall-clock, {:.1}% of pairs \
                 fully scored",
                d.topk_seconds / i.topk_seconds.max(1e-12),
                100.0 * i.topk_pairs as f64 / d.topk_pairs as f64
            );
        }
    }

    write_json(path, users, seed, &runs)?;
    println!("  wrote {}", path.display());
    Ok(runs)
}

/// Hand-rolled JSON (the workspace carries no serialization dependency).
fn write_json(path: &Path, users: usize, seed: u64, runs: &[ScalingRun]) -> io::Result<()> {
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"scaling\",");
    let _ = writeln!(out, "  \"users\": {users},");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"machine_parallelism\": {parallelism},");
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"users\": {}, \"threads\": {}, \"mode\": \"{}\", \"topk_pairs\": {}, \
             \"topk_pairs_pruned\": {}, \"topk_seconds\": {:.6}, \"topk_pairs_per_sec\": {:.1}, \
             \"refined_seconds\": {:.6}, \"total_seconds\": {:.6}}}",
            r.users,
            r.threads,
            r.mode,
            r.topk_pairs,
            r.topk_pairs_pruned,
            r.topk_seconds,
            r.topk_pairs_per_sec,
            r.refined_seconds,
            r.total_seconds
        );
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_writes_json() {
        let dir = std::env::temp_dir().join("dehealth-scaling-test");
        let path = dir.join("BENCH_scaling.json");
        let runs = run_to(&path, 60, 5).unwrap();
        assert_eq!(runs.len(), THREAD_SWEEP.len() * MODE_SWEEP.len());
        for (chunk, &threads) in runs.chunks(MODE_SWEEP.len()).zip(&THREAD_SWEEP) {
            assert!(chunk.iter().all(|r| r.threads == threads));
            assert!(chunk.iter().all(|r| r.total_seconds > 0.0));
        }
        let dense: Vec<&ScalingRun> = runs.iter().filter(|r| r.mode == "dense").collect();
        let indexed: Vec<&ScalingRun> = runs.iter().filter(|r| r.mode == "indexed").collect();
        // The dense oracle scores every present pair and never prunes;
        // all thread counts agree on the workload.
        assert!(dense.iter().all(|r| r.topk_pairs == dense[0].topk_pairs && r.topk_pairs > 0));
        assert!(dense.iter().all(|r| r.topk_pairs_pruned == 0));
        // The indexed path prunes (> 0) and therefore fully scores
        // strictly fewer pairs than the dense sweep — the acceptance
        // criterion of the sparse-scoring PR — while covering the same
        // workload (scored + pruned = dense pairs). Pruning decisions are
        // per-user, so thread counts agree here too.
        assert!(
            indexed.iter().all(|r| r.topk_pairs_pruned > 0),
            "indexed path pruned nothing: {indexed:?}"
        );
        assert!(indexed.iter().all(|r| r.topk_pairs < dense[0].topk_pairs));
        assert!(indexed.iter().all(|r| r.topk_pairs + r.topk_pairs_pruned == dense[0].topk_pairs));
        assert!(indexed.iter().all(|r| r.topk_pairs == indexed[0].topk_pairs));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"scaling\""));
        assert!(text.contains("\"machine_parallelism\""));
        assert!(text.contains("\"threads\": 8"));
        assert!(text.contains("\"mode\": \"indexed\""));
        assert!(text.contains("\"topk_pairs_pruned\""));
        let _ = std::fs::remove_dir_all(dir);
    }
}
