//! Scaling experiment: engine throughput as a function of worker threads.
//!
//! Runs the parallel engine's attack on a medium synthetic forum at 1, 2,
//! 4 and 8 worker threads, records per-stage wall-clock/throughput from
//! the [`EngineReport`](dehealth_engine::EngineReport), and emits
//! `BENCH_scaling.json` so future PRs have a performance trajectory to
//! compare against. The Top-K phase is embarrassingly parallel; on a
//! machine with ≥ 8 physical cores the 8-thread run should reach ≥ 3× the
//! single-thread pair throughput (thread counts beyond the machine's
//! parallelism can't speed up further — the JSON records
//! `machine_parallelism` so readings from small CI boxes aren't
//! misinterpreted).

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use dehealth_core::AttackConfig;
use dehealth_corpus::{closed_world_split, Forum, ForumConfig, SplitConfig};
use dehealth_engine::{Engine, EngineConfig};

/// Thread counts swept by the experiment.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// One `(users × threads)` measurement.
#[derive(Debug, Clone)]
pub struct ScalingRun {
    /// Total generated forum users.
    pub users: usize,
    /// Worker threads.
    pub threads: usize,
    /// Scored `(anonymized, auxiliary)` pairs in the Top-K stage.
    pub topk_pairs: u64,
    /// Top-K stage wall-clock seconds.
    pub topk_seconds: f64,
    /// Top-K stage throughput (pairs/s).
    pub topk_pairs_per_sec: f64,
    /// Refined stage wall-clock seconds.
    pub refined_seconds: f64,
    /// Whole-attack wall-clock seconds (all stages).
    pub total_seconds: f64,
}

/// Run the sweep and write `BENCH_scaling.json` to the working directory.
///
/// # Errors
/// Propagates I/O errors from writing the JSON file.
pub fn run(users: usize, seed: u64) -> io::Result<PathBuf> {
    let path = PathBuf::from("BENCH_scaling.json");
    run_to(&path, users, seed)?;
    Ok(path)
}

/// Run the sweep and write the JSON report to `path`.
///
/// # Errors
/// Propagates I/O errors from writing the JSON file.
pub fn run_to(path: &Path, users: usize, seed: u64) -> io::Result<Vec<ScalingRun>> {
    let forum = Forum::generate(&ForumConfig::webmd_like(users), seed);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.7), seed.wrapping_add(1));
    println!(
        "\n# Scaling: {} anonymized × {} auxiliary users, threads {THREAD_SWEEP:?}",
        split.anonymized.n_users, split.auxiliary.n_users
    );

    let mut runs = Vec::new();
    for &threads in &THREAD_SWEEP {
        let engine = Engine::new(EngineConfig {
            attack: AttackConfig { top_k: 10, n_landmarks: 30, ..AttackConfig::default() },
            n_threads: threads,
            block_size: 16,
        });
        let outcome = engine.run(&split.auxiliary, &split.anonymized);
        let report = &outcome.report;
        let topk = report.stage("topk").expect("topk stage always runs");
        let refined = report.stage("refined").expect("refined stage always runs");
        let run = ScalingRun {
            users,
            threads,
            topk_pairs: topk.items,
            topk_seconds: topk.seconds,
            topk_pairs_per_sec: topk.throughput(),
            refined_seconds: refined.seconds,
            total_seconds: report.total_seconds(),
        };
        println!(
            "  threads {:>2}: topk {:>8.3}s ({:>12.0} pairs/s), refined {:>8.3}s, total {:>8.3}s",
            run.threads,
            run.topk_seconds,
            run.topk_pairs_per_sec,
            run.refined_seconds,
            run.total_seconds
        );
        runs.push(run);
    }
    if let (Some(first), Some(last)) = (runs.first(), runs.last()) {
        if first.topk_seconds > 0.0 {
            println!(
                "  topk speedup at {} threads vs 1: {:.2}×",
                last.threads,
                first.topk_seconds / last.topk_seconds.max(1e-12)
            );
        }
    }

    write_json(path, users, seed, &runs)?;
    println!("  wrote {}", path.display());
    Ok(runs)
}

/// Hand-rolled JSON (the workspace carries no serialization dependency).
fn write_json(path: &Path, users: usize, seed: u64, runs: &[ScalingRun]) -> io::Result<()> {
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"scaling\",");
    let _ = writeln!(out, "  \"users\": {users},");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"machine_parallelism\": {parallelism},");
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"users\": {}, \"threads\": {}, \"topk_pairs\": {}, \
             \"topk_seconds\": {:.6}, \"topk_pairs_per_sec\": {:.1}, \
             \"refined_seconds\": {:.6}, \"total_seconds\": {:.6}}}",
            r.users,
            r.threads,
            r.topk_pairs,
            r.topk_seconds,
            r.topk_pairs_per_sec,
            r.refined_seconds,
            r.total_seconds
        );
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_writes_json() {
        let dir = std::env::temp_dir().join("dehealth-scaling-test");
        let path = dir.join("BENCH_scaling.json");
        let runs = run_to(&path, 60, 5).unwrap();
        assert_eq!(runs.len(), THREAD_SWEEP.len());
        for (run, &threads) in runs.iter().zip(&THREAD_SWEEP) {
            assert_eq!(run.threads, threads);
            assert!(run.topk_pairs > 0);
            assert!(run.total_seconds > 0.0);
        }
        // All thread counts score the same number of pairs.
        assert!(runs.iter().all(|r| r.topk_pairs == runs[0].topk_pairs));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"scaling\""));
        assert!(text.contains("\"machine_parallelism\""));
        assert!(text.contains("\"threads\": 8"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
