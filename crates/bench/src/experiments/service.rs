//! Service benchmark: snapshot persistence vs cold corpus builds, and
//! sustained attack throughput over the wire.
//!
//! Measures the two numbers the serving layer exists for:
//!
//! 1. **Restart cost** — wall-clock of a cold [`PreparedCorpus::build`]
//!    (full stylometric feature extraction) vs a
//!    [`PreparedCorpus::load`] of the equivalent snapshot (file read +
//!    cheap merges, no text analysis). The load must come in below 25% of
//!    the cold build — asserted here, so the committed
//!    `BENCH_service.json` always demonstrates the property.
//! 2. **Serving throughput, per wire encoding** — a daemon is started on
//!    an ephemeral local port with the snapshot-loaded corpus, and the
//!    same anonymized batch is attacked repeatedly over TCP at 1 and
//!    `machine_parallelism` worker threads, once over legacy
//!    newline-JSON and once over binary frames. Each run records
//!    attacks/sec, users/sec, the request's exact **bytes on the wire**
//!    (the binary frame is asserted strictly smaller than the JSON
//!    rendering of the same forum), and the daemon's own per-request
//!    **stage timers** — mean `daemon_parse/queue/engine/emit_seconds`
//!    differenced around the run — so the JSON shows where each
//!    encoding's wall time goes (parse and emit are billed to the
//!    worker pool, never the front thread).
//! 3. **Latency under concurrent load** — several clients attack the
//!    daemon simultaneously with barrier-synchronized sends, so the
//!    requests land inside one coalescing window and the daemon fuses
//!    them into shared engine passes (`daemon_batch_size` is differenced
//!    around the phase to record how many). p50/p90/p99 request latency
//!    is read back from the daemon's own
//!    `daemon_command_seconds{cmd="attack"}` histogram (the telemetry
//!    layer's instrument, isolated to the concurrent phase by
//!    differencing snapshots), and the histogram's `count` is asserted
//!    equal to the number of requests issued. Quantiles carry the
//!    telemetry layer's explicit overflow marker: a value at the ladder
//!    ceiling is written to the JSON as a flagged floor
//!    (`latency_p??_overflow: true`), never as a fabricated measurement.
//!    Each client's own wall-clock is recorded too, plus the
//!    **spread** (slowest minus fastest): with every coalesced reply
//!    serialized by the workers and released together, the spread
//!    should be a small fraction of the batch wall time, not a serial
//!    staircase.
//!
//! Every wire attack — serial and concurrent — is compared against the
//! in-process serial `DeHealth::run` on the freshly built corpus —
//! mapping and candidate sets must be identical, so the committed
//! numbers always come from a daemon that agrees with the reference
//! implementation bit for bit.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use dehealth_core::{AttackConfig, DeHealth};
use dehealth_corpus::{closed_world_split, Forum, ForumConfig, SplitConfig};
use dehealth_engine::EngineConfig;
use dehealth_service::daemon::Daemon;
use dehealth_service::{AttackOptions, PreparedCorpus, ServiceClient, WireEncoding};
use dehealth_telemetry::{HistogramSnapshot, Quantile};

/// Attack parameters used throughout the benchmark (matching the scaling
/// experiment's sweep so the numbers are comparable).
fn attack_config() -> AttackConfig {
    AttackConfig { top_k: 10, n_landmarks: 30, ..AttackConfig::default() }
}

/// One wire-throughput measurement.
#[derive(Debug, Clone)]
pub struct WireRun {
    /// Wire encoding of the attack requests (`"json"` or `"binary"`).
    pub encoding: &'static str,
    /// Worker threads the daemon used per attack.
    pub threads: usize,
    /// Repeated attacks of the same batch.
    pub rounds: usize,
    /// Exact size of one attack request on the wire, bytes.
    pub request_bytes: usize,
    /// Total wall-clock across the rounds (client-side, protocol
    /// overhead included).
    pub total_seconds: f64,
    /// Attacks per second.
    pub attacks_per_sec: f64,
    /// Anonymized users de-anonymized per second.
    pub users_per_sec: f64,
    /// Mean per-request raw-bytes→validated-request time on a worker
    /// (`daemon_parse_seconds` differenced around the run).
    pub parse_seconds: f64,
    /// Mean per-request wait for a worker plus coalescing window
    /// (`daemon_queue_seconds`).
    pub queue_seconds: f64,
    /// Mean per-request engine execution time
    /// (`daemon_engine_seconds`).
    pub engine_seconds: f64,
    /// Mean per-request reply-serialization time on a worker
    /// (`daemon_emit_seconds`).
    pub emit_seconds: f64,
}

/// The concurrent-load measurement: several clients attacking at once,
/// latency quantiles read from the daemon's own request histogram.
#[derive(Debug, Clone)]
pub struct ConcurrentRun {
    /// Simultaneous client connections.
    pub clients: usize,
    /// Attacks each client issued.
    pub rounds_per_client: usize,
    /// Wall-clock from first request sent to last response received.
    pub total_seconds: f64,
    /// Attacks per second across all clients.
    pub attacks_per_sec: f64,
    /// Mean per-request latency (daemon-side, exact sum/count).
    pub mean_seconds: f64,
    /// Estimated median request latency (overflow-marked).
    pub p50: Quantile,
    /// Estimated 90th-percentile request latency (overflow-marked).
    pub p90: Quantile,
    /// Estimated 99th-percentile request latency (overflow-marked).
    pub p99: Quantile,
    /// Fused engine passes the daemon's coalescing window produced for
    /// this phase's attacks (differenced `daemon_batch_size` count).
    pub batches: u64,
    /// Each client's own wall-clock for its attack, seconds (sorted
    /// ascending).
    pub client_seconds: Vec<f64>,
    /// Slowest client minus fastest client, seconds: near-uniform
    /// release of a coalesced batch keeps this a small fraction of the
    /// batch wall time.
    pub spread_seconds: f64,
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct ServiceBench {
    /// Total generated forum users.
    pub users: usize,
    /// Anonymized users per attack batch.
    pub anon_users: usize,
    /// Cold corpus build (feature extraction + derivations), seconds.
    pub cold_build_seconds: f64,
    /// Snapshot serialization + write, seconds.
    pub snapshot_save_seconds: f64,
    /// Snapshot size on disk, bytes.
    pub snapshot_bytes: u64,
    /// Snapshot read + restore, seconds.
    pub snapshot_load_seconds: f64,
    /// `snapshot_load_seconds / cold_build_seconds`.
    pub load_vs_build_ratio: f64,
    /// Wire-throughput sweep.
    pub wire: Vec<WireRun>,
    /// Concurrent-load latency distribution.
    pub concurrent: ConcurrentRun,
}

/// Run the benchmark and write `BENCH_service.json` to the working
/// directory.
///
/// # Errors
/// Propagates I/O errors from the snapshot file, the daemon socket, or
/// the JSON report.
pub fn run(users: usize, seed: u64) -> io::Result<PathBuf> {
    let path = PathBuf::from("BENCH_service.json");
    run_to(&path, users, seed)?;
    Ok(path)
}

/// Run the benchmark and write the JSON report to `path`.
///
/// # Panics
/// Panics if the snapshot round-trip is not bit-exact, the load/build
/// ratio misses the 25% budget, or any wire attack disagrees with the
/// in-process reference — the committed numbers must come from a
/// configuration that holds the serving layer's guarantees.
///
/// # Errors
/// Propagates I/O errors.
pub fn run_to(path: &Path, users: usize, seed: u64) -> io::Result<ServiceBench> {
    let forum = Forum::generate(&ForumConfig::webmd_like(users), seed);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.7), seed.wrapping_add(1));
    println!(
        "\n# Service: {} auxiliary users ({} posts), {} anonymized users, snapshot vs cold build \
         + wire throughput",
        split.auxiliary.n_users,
        split.auxiliary.posts.len(),
        split.anonymized.n_users,
    );

    // Cold build (the daemon-restart cost without snapshots).
    let t0 = Instant::now();
    let corpus = PreparedCorpus::build(split.auxiliary.clone(), attack_config().classifier);
    let cold_build_seconds = t0.elapsed().as_secs_f64();

    // Snapshot save / load round-trip.
    let snap_path = std::env::temp_dir().join(format!("dehealth-service-bench-{seed}.snap"));
    let t0 = Instant::now();
    corpus.save(&snap_path).map_err(io::Error::other)?;
    let snapshot_save_seconds = t0.elapsed().as_secs_f64();
    let snapshot_bytes = std::fs::metadata(&snap_path)?.len();
    let (loaded, snapshot_load_seconds) =
        PreparedCorpus::load_timed(&snap_path).map_err(io::Error::other)?;
    assert_eq!(
        loaded.to_snapshot_bytes(),
        corpus.to_snapshot_bytes(),
        "snapshot round-trip must be bit-exact"
    );
    let load_vs_build_ratio = snapshot_load_seconds / cold_build_seconds.max(1e-12);
    println!(
        "  cold build {cold_build_seconds:.3}s, snapshot save {snapshot_save_seconds:.3}s \
         ({snapshot_bytes} bytes), load {snapshot_load_seconds:.3}s \
         ({:.1}% of cold build)",
        100.0 * load_vs_build_ratio
    );
    assert!(
        load_vs_build_ratio < 0.25,
        "snapshot load took {:.1}% of the cold build (budget: 25%)",
        100.0 * load_vs_build_ratio
    );

    // In-process reference: the serial attack on the freshly built side.
    let reference = DeHealth::new(attack_config()).run(&split.auxiliary, &split.anonymized);

    // Wire throughput against the snapshot-loaded corpus.
    let daemon = Daemon::bind_with_corpus(
        "127.0.0.1:0",
        EngineConfig { attack: attack_config(), ..EngineConfig::default() },
        Some(loaded),
    )?;
    let mut client = ServiceClient::connect(daemon.addr())?;
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut wire = Vec::new();
    let rounds = 3usize;
    let mut thread_sweep = vec![1];
    if parallelism > 1 {
        thread_sweep.push(parallelism);
    }
    let registry = daemon.registry();
    let stage_hists = [
        registry.histogram("daemon_parse_seconds"),
        registry.histogram("daemon_queue_seconds"),
        registry.histogram("daemon_engine_seconds"),
        registry.histogram("daemon_emit_seconds"),
    ];
    for encoding in [WireEncoding::Json, WireEncoding::Binary] {
        let encoding_label = match encoding {
            WireEncoding::Json => "json",
            WireEncoding::Binary => "binary",
        };
        client.set_encoding(encoding);
        for &threads in &thread_sweep {
            let options = AttackOptions { threads: Some(threads), ..AttackOptions::default() };
            let request_bytes = client.encode_attack_request(&split.anonymized, &options).len();
            let stages_before: Vec<_> = stage_hists.iter().map(|h| h.snapshot()).collect();
            let t0 = Instant::now();
            for _ in 0..rounds {
                let reply = client.attack(&split.anonymized, &options).map_err(io::Error::other)?;
                assert_eq!(
                    reply.mapping, reference.mapping,
                    "wire attack ({encoding_label}) must match the in-process serial attack"
                );
                assert_eq!(reply.candidates, reference.candidates);
            }
            let total_seconds = t0.elapsed().as_secs_f64();
            let mut stage_means = [0.0f64; 4];
            for (mean, (hist, before)) in
                stage_means.iter_mut().zip(stage_hists.iter().zip(&stages_before))
            {
                *mean = histogram_delta(before, &hist.snapshot()).mean_seconds();
            }
            let run = WireRun {
                encoding: encoding_label,
                threads,
                rounds,
                request_bytes,
                total_seconds,
                attacks_per_sec: rounds as f64 / total_seconds.max(1e-12),
                users_per_sec: (rounds * split.anonymized.n_users) as f64
                    / total_seconds.max(1e-12),
                parse_seconds: stage_means[0],
                queue_seconds: stage_means[1],
                engine_seconds: stage_means[2],
                emit_seconds: stage_means[3],
            };
            println!(
                "  wire attack × {rounds} [{encoding_label}, {request_bytes} B/req] at \
                 {threads} threads: {total_seconds:.3}s ({:.2} attacks/s, {:.0} users/s; \
                 stage means parse {:.4}s / queue {:.4}s / engine {:.4}s / emit {:.4}s)",
                run.attacks_per_sec,
                run.users_per_sec,
                run.parse_seconds,
                run.queue_seconds,
                run.engine_seconds,
                run.emit_seconds,
            );
            wire.push(run);
        }
    }
    // The binary frame must beat the JSON rendering of the same forum on
    // the wire — the committed numbers always demonstrate the saving.
    for json_run in wire.iter().filter(|r| r.encoding == "json") {
        let binary_run = wire
            .iter()
            .find(|r| r.encoding == "binary" && r.threads == json_run.threads)
            .expect("both encodings swept the same thread counts");
        assert!(
            binary_run.request_bytes < json_run.request_bytes,
            "binary frame ({} B) must be smaller than the JSON request ({} B)",
            binary_run.request_bytes,
            json_run.request_bytes
        );
    }
    // Concurrent load: several clients, each its own connection, all
    // attacking at 1 worker thread so the contention is real. The sends
    // are barrier-synchronized so all requests land inside the daemon's
    // coalescing window and exercise the fused batch path (the number of
    // batches is differenced from `daemon_batch_size`). Latency
    // quantiles come from the daemon's own attack histogram, isolated to
    // this phase by differencing snapshots around it.
    let clients = 4usize;
    let rounds_per_client = 1usize;
    let attack_hist =
        daemon.registry().histogram_with("daemon_command_seconds", &[("cmd", "attack")]);
    let batch_hist = daemon.registry().histogram("daemon_batch_size");
    let before = attack_hist.snapshot();
    let batches_before = batch_hist.count();
    let barrier = std::sync::Barrier::new(clients);
    let t0 = Instant::now();
    let mut client_seconds: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let anonymized = &split.anonymized;
                let reference = &reference;
                let barrier = &barrier;
                let addr = daemon.addr();
                scope.spawn(move || {
                    let mut client = ServiceClient::connect(addr).expect("client connect");
                    let options = AttackOptions { threads: Some(1), ..AttackOptions::default() };
                    let mut own_seconds = 0.0f64;
                    for _ in 0..rounds_per_client {
                        barrier.wait();
                        let sent = Instant::now();
                        let reply = client.attack(anonymized, &options).expect("wire attack");
                        own_seconds += sent.elapsed().as_secs_f64();
                        assert_eq!(
                            reply.mapping, reference.mapping,
                            "concurrent wire attack must match the serial reference"
                        );
                        assert_eq!(reply.candidates, reference.candidates);
                    }
                    own_seconds
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    client_seconds.sort_by(f64::total_cmp);
    let spread_seconds = client_seconds.last().copied().unwrap_or(0.0)
        - client_seconds.first().copied().unwrap_or(0.0);
    let concurrent_seconds = t0.elapsed().as_secs_f64();
    let issued = clients * rounds_per_client;
    let delta = histogram_delta(&before, &attack_hist.snapshot());
    assert_eq!(
        delta.count(),
        issued as u64,
        "the attack histogram must count every concurrent request"
    );
    let batches = batch_hist.count() - batches_before;
    assert!(
        (1..=issued as u64).contains(&batches),
        "the coalescing window must flush between 1 and {issued} batches, got {batches}"
    );
    let concurrent = ConcurrentRun {
        clients,
        rounds_per_client,
        total_seconds: concurrent_seconds,
        attacks_per_sec: issued as f64 / concurrent_seconds.max(1e-12),
        mean_seconds: delta.mean_seconds(),
        p50: delta.quantile(0.5),
        p90: delta.quantile(0.9),
        p99: delta.quantile(0.99),
        batches,
        client_seconds,
        spread_seconds,
    };
    println!(
        "  concurrent: {clients} clients × {rounds_per_client} attacks in \
         {concurrent_seconds:.3}s ({:.2} attacks/s across {batches} fused batch(es); \
         latency mean {:.3}s, p50 {}, p90 {}, p99 {}; per-client spread {:.3}s)",
        concurrent.attacks_per_sec,
        concurrent.mean_seconds,
        fmt_quantile(concurrent.p50),
        fmt_quantile(concurrent.p90),
        fmt_quantile(concurrent.p99),
        concurrent.spread_seconds,
    );

    // The registry handle taken above outlives the daemon; `join`
    // consumes the daemon itself.
    client.shutdown().map_err(io::Error::other)?;
    daemon.join();
    let _ = std::fs::remove_file(&snap_path);

    // Every attack issued in this benchmark — serial sweep plus the
    // concurrent phase — must have left exactly one histogram sample.
    let total_attacks = wire.iter().map(|r| r.rounds).sum::<usize>() + issued;
    assert_eq!(
        registry.histogram_with("daemon_command_seconds", &[("cmd", "attack")]).count(),
        total_attacks as u64,
        "attack-latency histogram count must equal the attacks issued"
    );

    let bench = ServiceBench {
        users,
        anon_users: split.anonymized.n_users,
        cold_build_seconds,
        snapshot_save_seconds,
        snapshot_bytes,
        snapshot_load_seconds,
        load_vs_build_ratio,
        wire,
        concurrent,
    };
    write_json(path, seed, &bench)?;
    println!("  wrote {}", path.display());
    Ok(bench)
}

/// Render a [`Quantile`] for the console: overflow estimates print as an
/// explicit floor (`≥1000.000s`), never as a plain measurement.
fn fmt_quantile(q: Quantile) -> String {
    if q.overflow {
        format!("≥{:.3}s (overflow)", q.seconds)
    } else {
        format!("{:.3}s", q.seconds)
    }
}

/// Per-bucket difference of two snapshots of the same histogram,
/// isolating the samples recorded between them.
fn histogram_delta(before: &HistogramSnapshot, after: &HistogramSnapshot) -> HistogramSnapshot {
    let mut counts = after.counts;
    for (count, earlier) in counts.iter_mut().zip(&before.counts) {
        *count -= earlier;
    }
    HistogramSnapshot { counts, sum_nanos: after.sum_nanos - before.sum_nanos }
}

/// Hand-rolled JSON (the workspace carries no serialization dependency).
fn write_json(path: &Path, seed: u64, b: &ServiceBench) -> io::Result<()> {
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"service\",");
    let _ = writeln!(out, "  \"users\": {},", b.users);
    let _ = writeln!(out, "  \"anon_users\": {},", b.anon_users);
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"machine_parallelism\": {parallelism},");
    let _ = writeln!(out, "  \"cold_build_seconds\": {:.6},", b.cold_build_seconds);
    let _ = writeln!(out, "  \"snapshot_save_seconds\": {:.6},", b.snapshot_save_seconds);
    let _ = writeln!(out, "  \"snapshot_bytes\": {},", b.snapshot_bytes);
    let _ = writeln!(out, "  \"snapshot_load_seconds\": {:.6},", b.snapshot_load_seconds);
    let _ = writeln!(out, "  \"load_vs_build_ratio\": {:.6},", b.load_vs_build_ratio);
    out.push_str("  \"wire\": [\n");
    for (i, r) in b.wire.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"encoding\": \"{}\", \"threads\": {}, \"rounds\": {}, \
             \"request_bytes\": {}, \"total_seconds\": {:.6}, \
             \"attacks_per_sec\": {:.3}, \"users_per_sec\": {:.1}, \
             \"parse_seconds\": {:.6}, \"queue_seconds\": {:.6}, \
             \"engine_seconds\": {:.6}, \"emit_seconds\": {:.6}}}",
            r.encoding,
            r.threads,
            r.rounds,
            r.request_bytes,
            r.total_seconds,
            r.attacks_per_sec,
            r.users_per_sec,
            r.parse_seconds,
            r.queue_seconds,
            r.engine_seconds,
            r.emit_seconds,
        );
        out.push_str(if i + 1 < b.wire.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let c = &b.concurrent;
    let _ = writeln!(out, "  \"concurrent\": {{");
    let _ = writeln!(out, "    \"clients\": {},", c.clients);
    let _ = writeln!(out, "    \"rounds_per_client\": {},", c.rounds_per_client);
    let _ = writeln!(out, "    \"total_seconds\": {:.6},", c.total_seconds);
    let _ = writeln!(out, "    \"attacks_per_sec\": {:.3},", c.attacks_per_sec);
    let _ = writeln!(out, "    \"batches\": {},", c.batches);
    let _ = writeln!(out, "    \"latency_mean_seconds\": {:.6},", c.mean_seconds);
    let _ = writeln!(out, "    \"latency_p50_seconds\": {:.6},", c.p50.seconds);
    let _ = writeln!(out, "    \"latency_p50_overflow\": {},", c.p50.overflow);
    let _ = writeln!(out, "    \"latency_p90_seconds\": {:.6},", c.p90.seconds);
    let _ = writeln!(out, "    \"latency_p90_overflow\": {},", c.p90.overflow);
    let _ = writeln!(out, "    \"latency_p99_seconds\": {:.6},", c.p99.seconds);
    let _ = writeln!(out, "    \"latency_p99_overflow\": {},", c.p99.overflow);
    let per_client: Vec<String> = c.client_seconds.iter().map(|s| format!("{s:.6}")).collect();
    let _ = writeln!(out, "    \"client_seconds\": [{}],", per_client.join(", "));
    let _ = writeln!(out, "    \"spread_seconds\": {:.6}", c.spread_seconds);
    out.push_str("  }\n}\n");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_asserts_parity_and_writes_json() {
        let dir = std::env::temp_dir().join("dehealth-service-bench-test");
        let path = dir.join("BENCH_service.json");
        // Parity with the serial reference and the round-trip bit-parity
        // are asserted inside `run_to` itself; the load-vs-build budget
        // must hold even at this small scale.
        let bench = run_to(&path, 80, 9).unwrap();
        assert!(bench.load_vs_build_ratio < 0.25);
        assert!(!bench.wire.is_empty());
        assert!(bench.wire.iter().all(|r| r.attacks_per_sec > 0.0));
        // Both encodings swept; the binary-vs-JSON bytes-on-wire
        // assertion ran inside `run_to`. The worker-side stage timers
        // must have recorded real work for every run.
        assert!(bench.wire.iter().any(|r| r.encoding == "json"));
        assert!(bench.wire.iter().any(|r| r.encoding == "binary"));
        for r in &bench.wire {
            assert!(r.request_bytes > 0, "{}: empty request?", r.encoding);
            assert!(r.parse_seconds > 0.0, "{}: parse not billed to workers", r.encoding);
            assert!(r.engine_seconds > 0.0, "{}: engine stage missing", r.encoding);
            assert!(r.emit_seconds > 0.0, "{}: emit not billed to workers", r.encoding);
            assert!(r.queue_seconds >= 0.0);
        }
        // The concurrent phase's histogram-count and batch-count
        // assertions ran inside `run_to`; the derived quantiles must be
        // coherent, and at this scale (sub-second attacks, 1000s
        // ceiling) none may resolve to the overflow bucket.
        assert!(bench.concurrent.clients > 1);
        assert!(bench.concurrent.batches >= 1);
        assert!(bench.concurrent.batches <= 4, "4 synced attacks cannot need more batches");
        assert!(bench.concurrent.p50.seconds > 0.0);
        assert!(bench.concurrent.p50.seconds <= bench.concurrent.p90.seconds);
        assert!(bench.concurrent.p90.seconds <= bench.concurrent.p99.seconds);
        assert!(!bench.concurrent.p99.overflow, "sub-second attacks cannot overflow the ladder");
        // Per-client latencies and their spread: every client is
        // accounted for, and sorted order holds.
        assert_eq!(bench.concurrent.client_seconds.len(), bench.concurrent.clients);
        assert!(bench.concurrent.client_seconds.windows(2).all(|w| w[0] <= w[1]));
        assert!(bench.concurrent.spread_seconds >= 0.0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"service\""));
        assert!(text.contains("\"load_vs_build_ratio\""));
        assert!(text.contains("\"attacks_per_sec\""));
        assert!(text.contains("\"encoding\": \"binary\""));
        assert!(text.contains("\"request_bytes\""));
        assert!(text.contains("\"parse_seconds\""));
        assert!(text.contains("\"emit_seconds\""));
        assert!(text.contains("\"latency_p99_seconds\""));
        assert!(text.contains("\"latency_p99_overflow\": false"));
        assert!(text.contains("\"batches\""));
        assert!(text.contains("\"client_seconds\""));
        assert!(text.contains("\"spread_seconds\""));
        let _ = std::fs::remove_dir_all(dir);
    }
}
