//! Snapshot-load benchmark: owned vs. zero-copy (mmap) reload latency
//! across a corpus-size sweep → `BENCH_snapshot.json`.
//!
//! This is the number the v2 snapshot format exists for. Both modes load
//! the *same* file; the owned path verifies every checksum and decodes
//! every section into heap structures, while the mapped path borrows the
//! attribute-index and refined-context arenas straight out of the
//! mapping (and skips the redundant FNV sweep). The benchmark asserts,
//! at every size of a ≥4× sweep:
//!
//! - **parity** — the mapped-loaded corpus re-serializes to bytes
//!   identical to the owned-loaded one (the cheap proxy for the full
//!   wire-attack parity that `tests/service_parity.rs` pins);
//! - **zero residency** — the mapped corpus keeps 0 arena bytes on the
//!   heap, the owned corpus keeps them all;
//! - **sub-linear relative growth** — going from the smallest to the
//!   largest corpus, the mapped load time grows by strictly less than
//!   the owned load time (the arenas the owned path must checksum +
//!   decode + allocate are exactly the bytes the mapped path never
//!   touches), and at the largest size the mapped load is strictly
//!   faster outright.
//!
//! Timings take the best of [`REPEATS`] runs to shave scheduler noise;
//! the committed JSON records every size × mode cell.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use dehealth_corpus::{closed_world_split, Forum, ForumConfig, SplitConfig};
use dehealth_service::{LoadMode, PreparedCorpus};

/// Timing repetitions per (size, mode) cell; the minimum is reported.
pub const REPEATS: usize = 3;

/// One (corpus size × load mode) measurement.
#[derive(Debug, Clone)]
pub struct LoadCell {
    /// Total generated forum users at this sweep point.
    pub users: usize,
    /// Auxiliary users actually in the snapshot.
    pub aux_users: usize,
    /// Snapshot size on disk, bytes.
    pub snapshot_bytes: u64,
    /// Best-of-[`REPEATS`] owned load, seconds.
    pub owned_seconds: f64,
    /// Best-of-[`REPEATS`] mapped load, seconds.
    pub mapped_seconds: f64,
    /// Arena bytes the owned load keeps resident.
    pub owned_resident_bytes: usize,
    /// Arena bytes the mapped load borrows from the file instead.
    pub mapped_borrowed_bytes: usize,
}

/// Run the benchmark and write `BENCH_snapshot.json` to the working
/// directory. `base_users` is the smallest sweep point; the sweep is
/// `{1, 2, 4} × base_users`.
///
/// # Errors
/// Propagates I/O errors from the snapshot files or the JSON report.
pub fn run(base_users: usize, seed: u64) -> io::Result<PathBuf> {
    let path = PathBuf::from("BENCH_snapshot.json");
    run_to(&path, base_users, seed)?;
    Ok(path)
}

/// Run the benchmark and write the JSON report to `path`.
///
/// # Panics
/// Panics if any property documented in the [module docs](self) fails —
/// the committed numbers must come from a configuration that holds the
/// zero-copy layer's guarantees.
///
/// # Errors
/// Propagates I/O errors.
pub fn run_to(path: &Path, base_users: usize, seed: u64) -> io::Result<Vec<LoadCell>> {
    let sweep: Vec<usize> = [1usize, 2, 4].iter().map(|m| m * base_users).collect();
    println!(
        "\n# Snapshot load: owned vs mapped reload latency, {} → {} users (4× sweep)",
        sweep[0],
        sweep[sweep.len() - 1]
    );
    let mut cells = Vec::new();
    for &users in &sweep {
        let forum = Forum::generate(&ForumConfig::webmd_like(users), seed);
        let split = closed_world_split(&forum, &SplitConfig::fraction(0.7), seed.wrapping_add(1));
        let aux_users = split.auxiliary.n_users;
        let corpus = PreparedCorpus::build(split.auxiliary, Default::default());
        let snap_path = std::env::temp_dir().join(format!("dehealth-snapload-{seed}-{users}.snap"));
        corpus.save(&snap_path).map_err(io::Error::other)?;
        let snapshot_bytes = std::fs::metadata(&snap_path)?.len();

        let timed = |mode: LoadMode| -> Result<(PreparedCorpus, f64), io::Error> {
            let mut best = f64::INFINITY;
            let mut last = None;
            for _ in 0..REPEATS {
                let t0 = Instant::now();
                let loaded =
                    PreparedCorpus::load_with(&snap_path, mode).map_err(io::Error::other)?;
                best = best.min(t0.elapsed().as_secs_f64());
                last = Some(loaded);
            }
            Ok((last.expect("REPEATS >= 1"), best))
        };
        let (owned, owned_seconds) = timed(LoadMode::Owned)?;
        let (mapped, mapped_seconds) = timed(LoadMode::Mapped)?;

        // Parity: both modes restore the same corpus, bit for bit.
        assert!(!owned.is_mapped() && mapped.is_mapped());
        assert_eq!(
            mapped.to_snapshot_bytes(),
            owned.to_snapshot_bytes(),
            "mapped and owned loads must restore identical corpora"
        );
        let owned_memory = owned.memory_stats();
        let mapped_memory = mapped.memory_stats();
        assert_eq!(mapped_memory.resident_arena_bytes, 0, "mapped arenas must not be resident");
        assert_eq!(owned_memory.borrowed_arena_bytes, 0);
        assert_eq!(owned_memory.resident_arena_bytes, mapped_memory.borrowed_arena_bytes);

        let cell = LoadCell {
            users,
            aux_users,
            snapshot_bytes,
            owned_seconds,
            mapped_seconds,
            owned_resident_bytes: owned_memory.resident_arena_bytes,
            mapped_borrowed_bytes: mapped_memory.borrowed_arena_bytes,
        };
        println!(
            "  {users:>6} users ({aux_users} aux, {snapshot_bytes} bytes): owned \
             {owned_seconds:.4}s, mapped {mapped_seconds:.4}s ({:.0}% of owned; {} arena bytes \
             stay on disk)",
            100.0 * cell.mapped_seconds / cell.owned_seconds.max(1e-12),
            cell.mapped_borrowed_bytes,
        );
        cells.push(cell);
        let _ = std::fs::remove_file(&snap_path);
    }

    // Sub-linear relative growth across the ≥4× sweep: the mapped load's
    // marginal cost must be strictly below the owned load's (it skips
    // the per-byte work on exactly the sections that dominate growth),
    // and at the top of the sweep mapped must win outright.
    let (first, last) = (&cells[0], &cells[cells.len() - 1]);
    let owned_growth = last.owned_seconds - first.owned_seconds;
    let mapped_growth = last.mapped_seconds - first.mapped_seconds;
    assert!(
        mapped_growth < owned_growth,
        "mapped load grew by {mapped_growth:.4}s over the sweep, owned by {owned_growth:.4}s — \
         the zero-copy path must grow sub-linearly vs. the owned path"
    );
    assert!(
        last.mapped_seconds < last.owned_seconds,
        "mapped load ({:.4}s) must beat owned load ({:.4}s) at the largest corpus",
        last.mapped_seconds,
        last.owned_seconds
    );

    write_json(path, seed, &cells)?;
    println!("  wrote {}", path.display());
    Ok(cells)
}

/// Hand-rolled JSON (the workspace carries no serialization dependency).
fn write_json(path: &Path, seed: u64, cells: &[LoadCell]) -> io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"snapshot-load\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"repeats\": {REPEATS},");
    out.push_str("  \"sweep\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"users\": {}, \"aux_users\": {}, \"snapshot_bytes\": {}, \
             \"owned_seconds\": {:.6}, \"mapped_seconds\": {:.6}, \
             \"owned_resident_bytes\": {}, \"mapped_borrowed_bytes\": {}}}",
            c.users,
            c.aux_users,
            c.snapshot_bytes,
            c.owned_seconds,
            c.mapped_seconds,
            c.owned_resident_bytes,
            c.mapped_borrowed_bytes
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_asserts_parity_residency_and_growth_and_writes_json() {
        let dir = std::env::temp_dir().join("dehealth-snapload-bench-test");
        let path = dir.join("BENCH_snapshot.json");
        let cells = run_to(&path, 60, 13).unwrap();
        assert_eq!(cells.len(), 3);
        assert!(cells.windows(2).all(|w| w[0].snapshot_bytes < w[1].snapshot_bytes));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"snapshot-load\""));
        assert!(text.contains("\"mapped_seconds\""));
        assert!(text.contains("\"mapped_borrowed_bytes\""));
        let _ = std::fs::remove_dir_all(dir);
    }
}
