//! Table I: the stylometric feature inventory, with counts and non-zero
//! usage measured on a simulated corpus.

use dehealth_corpus::{Forum, ForumConfig};
use dehealth_stylometry::{categories, extract, M};

/// Run Table I: print every category with its feature count and the
/// fraction of features of that category observed (non-zero) at least once
/// in the corpus.
pub fn run(n_users: usize, seed: u64) {
    let forum = Forum::generate(&ForumConfig::webmd_like(n_users), seed);
    let mut seen = vec![false; M];
    for post in &forum.posts {
        for (i, _) in extract(&post.text).iter_nonzero() {
            seen[i] = true;
        }
    }
    println!("\n# Table I: stylometric features (M = {M})");
    println!("{:<30} {:>6} {:>12}", "Category", "Count", "Observed");
    for c in categories() {
        let observed = (c.start..c.start + c.count).filter(|&i| seen[i]).count();
        println!(
            "{:<30} {:>6} {:>11.1}%",
            c.name,
            c.count,
            100.0 * observed as f64 / c.count as f64
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_features_cover_every_category() {
        let forum = Forum::generate(&ForumConfig::tiny(), 3);
        let mut seen = vec![false; M];
        for post in &forum.posts {
            for (i, _) in extract(&post.text).iter_nonzero() {
                seen[i] = true;
            }
        }
        for c in categories() {
            let observed = (c.start..c.start + c.count).filter(|&i| seen[i]).count();
            assert!(observed > 0, "category {} never observed", c.name);
        }
    }
}
