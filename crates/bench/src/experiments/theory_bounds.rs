//! Section IV validation: theoretical bounds versus Monte-Carlo empirical
//! success rates.

use dehealth_theory::{pairwise_bound, simulate, topk_bound, DistanceModel};

/// Run the bound-validation experiment: for a sweep of separation gaps,
/// print the Theorem-1 and Theorem-3 lower bounds next to the measured
/// success rates.
pub fn run(seed: u64) {
    println!("\n# Section IV: bounds vs Monte-Carlo (n2=100, K=10, 2000 trials)");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "gap/d", "T1 bound", "exact (mc)", "T3 bound", "top-10 (mc)"
    );
    for gap in [0.5, 1.0, 2.0, 3.0, 4.0, 6.0] {
        let m = DistanceModel {
            lambda_correct: 2.0,
            lambda_incorrect: 2.0 + gap,
            range_correct: 1.0,
            range_incorrect: 1.0,
        };
        let t1 = pairwise_bound(&m);
        let t3 = topk_bound(&m, 100, 10);
        let mc = simulate(&m, 100, 10, 2000, seed);
        println!(
            "{:>6.1} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            gap, t1, mc.exact_rate, t3, mc.topk_rate
        );
    }
}

#[cfg(test)]
mod tests {
    use dehealth_theory::{pairwise_bound, simulate, topk_bound, DistanceModel};

    #[test]
    fn bounds_are_valid_lower_bounds_across_gaps() {
        for gap in [1.0, 2.0, 4.0] {
            let m = DistanceModel {
                lambda_correct: 2.0,
                lambda_incorrect: 2.0 + gap,
                range_correct: 1.0,
                range_incorrect: 1.0,
            };
            let mc = simulate(&m, 100, 10, 1500, 33);
            // The Theorem-3 bound must hold empirically (tolerance for MC
            // noise). Theorem 1 is a pairwise bound; check with n2=2.
            assert!(mc.topk_rate >= topk_bound(&m, 100, 10) - 0.05);
            let pair = simulate(&m, 2, 1, 1500, 34);
            assert!(pair.exact_rate >= pairwise_bound(&m) - 0.05);
        }
    }
}
