//! # dehealth-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation, each printing the same rows/series the paper reports (see
//! EXPERIMENTS.md for paper-vs-measured records). The `repro` binary
//! dispatches to these modules; `benches/` holds the Criterion
//! micro-benchmarks.
//!
//! Experiments default to laptop-scale populations (hundreds to a few
//! thousand users). Scale is a parameter everywhere, so paper-scale runs
//! are a matter of patience, not code.

pub mod experiments;
pub mod report;

/// Print a two-column table with a caption.
pub fn print_series<X: std::fmt::Display, Y: std::fmt::Display>(
    caption: &str,
    x_label: &str,
    y_label: &str,
    rows: &[(X, Y)],
) {
    println!("\n# {caption}");
    println!("{x_label:>12}  {y_label}");
    for (x, y) in rows {
        println!("{x:>12}  {y}");
    }
}

/// Format a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(0.873), "87.3%");
    }
}
