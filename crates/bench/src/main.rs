//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment> [--users N] [--seed S]
//!
//! experiments:
//!   fig1     CDF of users vs number of posts
//!   fig2     post length distribution
//!   table1   stylometric feature inventory
//!   fig3     closed-world Top-K DA CDF (aux 50/70/90%)
//!   fig4     closed-world refined DA accuracy (KNN/SMO, K sweep)
//!   fig5     open-world Top-K DA CDF (overlap 50/70/90%)
//!   fig6     open-world refined DA accuracy + FP rate
//!   fig7     correlation-graph degree CDF
//!   fig8     community structure under degree thresholds
//!   linkage  Section VI linkage attack
//!   theory   Section IV bounds vs Monte-Carlo
//!   scaling  engine throughput vs worker threads (BENCH_scaling.json)
//!   all      everything above
//! ```

use dehealth_bench::experiments::{
    ablation, datasets, defense, fig3_fig5_topk, fig4_fig6_refined, fig7_fig8_graph,
    linkage_attack, scaling, table1, theory_bounds,
};

struct Args {
    experiment: String,
    users: Option<usize>,
    seed: u64,
}

fn parse_args() -> Args {
    let mut experiment = String::from("all");
    let mut users = None;
    let mut seed = 42u64;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--users" => {
                users = argv.next().and_then(|v| v.parse().ok());
            }
            "--seed" => {
                if let Some(v) = argv.next().and_then(|v| v.parse().ok()) {
                    seed = v;
                }
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other if !other.starts_with('-') => experiment = other.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    Args { experiment, users, seed }
}

fn print_help() {
    println!(
        "repro <fig1|fig2|table1|fig3|fig4|fig5|fig6|fig7|fig8|linkage|theory|ablation|defense|scaling|all> \
         [--users N] [--seed S]"
    );
}

fn main() {
    let args = parse_args();
    let seed = args.seed;
    // Default scales chosen so `repro all` finishes in minutes on a laptop.
    let marginal_users = args.users.unwrap_or(4000);
    let topk_users = args.users.unwrap_or(800);
    let graph_users = args.users.unwrap_or(2000);
    let linkage_people = args.users.unwrap_or(2805);

    let run = |name: &str| args.experiment == name || args.experiment == "all";

    if run("fig1") {
        datasets::run_fig1(marginal_users, seed);
    }
    if run("fig2") {
        datasets::run_fig2(marginal_users, seed);
    }
    if run("table1") {
        table1::run(topk_users.min(1000), seed);
    }
    if run("fig3") {
        fig3_fig5_topk::run_fig3(topk_users, seed);
    }
    if run("fig4") {
        fig4_fig6_refined::run_fig4(seed);
    }
    if run("fig5") {
        fig3_fig5_topk::run_fig5(topk_users, seed);
    }
    if run("fig6") {
        fig4_fig6_refined::run_fig6(seed);
    }
    if run("fig7") {
        fig7_fig8_graph::run_fig7(graph_users, seed);
    }
    if run("fig8") {
        fig7_fig8_graph::run_fig8(graph_users, seed);
    }
    if run("linkage") {
        let _ = linkage_attack::run(linkage_people, seed);
    }
    if run("theory") {
        theory_bounds::run(seed);
    }
    if run("ablation") {
        ablation::run(topk_users.min(400), seed);
    }
    if run("defense") {
        let _ = defense::run(topk_users.min(150), seed);
    }
    if run("scaling") {
        if let Err(e) = scaling::run(args.users.unwrap_or(600), seed) {
            eprintln!("scaling: failed to write BENCH_scaling.json: {e}");
            std::process::exit(1);
        }
    }
    if ![
        "fig1", "fig2", "table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "linkage",
        "theory", "ablation", "defense", "scaling", "all",
    ]
    .contains(&args.experiment.as_str())
    {
        eprintln!("unknown experiment {}", args.experiment);
        print_help();
        std::process::exit(2);
    }
}
