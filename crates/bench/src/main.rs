//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment> [--users N] [--seed S]
//!
//! experiments:
//!   fig1     CDF of users vs number of posts
//!   fig2     post length distribution
//!   table1   stylometric feature inventory
//!   fig3     closed-world Top-K DA CDF (aux 50/70/90%)
//!   fig4     closed-world refined DA accuracy (KNN/SMO, K sweep)
//!   fig5     open-world Top-K DA CDF (overlap 50/70/90%)
//!   fig6     open-world refined DA accuracy + FP rate
//!   fig7     correlation-graph degree CDF
//!   fig8     community structure under degree thresholds
//!   linkage  Section VI linkage attack
//!   theory   Section IV bounds vs Monte-Carlo
//!   scaling  engine throughput vs worker threads (BENCH_scaling.json)
//!   scale    order-of-magnitude corpus sweep w/ sampled oracle (BENCH_scale.json;
//!            defaults to 100k users — not part of `all`)
//!            [--tiers 1k,10k] sweeps an explicit tier list instead of the
//!            default /100, /10, ×1 pyramid; [--max-users N] sets the
//!            pyramid's top tier (synonym of --users for this experiment)
//!   recall   approximate-tier margin sweep: recall@1/recall@k vs per-stage
//!            speedup at 1k and 10k users (BENCH_recall.json; --users N runs
//!            a single tier — not part of `all`)
//!   service  snapshot persistence + daemon wire throughput (BENCH_service.json)
//!   snapshot-load  owned vs mmap reload latency sweep (BENCH_snapshot.json)
//!   all      everything above
//!
//! serving commands (not part of `all`):
//!   snapshot write a prepared-corpus snapshot     [--users N] [--seed S] [--path corpus.snap]
//!   serve    run the attack daemon                [--path corpus.snap] [--addr 127.0.0.1:7699]
//!                                                 [--mmap | --owned]
//!                                                 [--metrics-addr HOST:PORT]
//! ```
//!
//! `repro snapshot` generates the synthetic forum, takes the closed-world
//! split, prepares the auxiliary side (feature extraction + derived
//! structures) and persists it. `repro serve` loads that snapshot (or
//! prepares a corpus in-process when the file is absent) and serves the
//! newline-delimited-JSON protocol until a client sends `shutdown`; the
//! anonymized half of the same `--users/--seed` split is what
//! `examples/attack_service.rs` replays against it. `--mmap` (the
//! default) loads the snapshot zero-copy — the big arenas stay in the
//! file mapping — and prints load time plus resident-vs-borrowed section
//! bytes; `--owned` forces the eager copying load for comparison.
//! `--metrics-addr HOST:PORT` additionally serves the daemon's metric
//! registry in the Prometheus text format over a read-only HTTP
//! responder, and on graceful shutdown the daemon's final counters plus
//! a top-line attack-latency summary are printed either way.

use std::path::Path;

use dehealth_bench::experiments::{
    ablation, datasets, defense, fig3_fig5_topk, fig4_fig6_refined, fig7_fig8_graph,
    linkage_attack, recall, scale, scaling, service, snapshot_load, table1, theory_bounds,
};
use dehealth_service::LoadMode;

struct Args {
    experiment: String,
    users: Option<usize>,
    seed: u64,
    path: Option<String>,
    addr: String,
    metrics_addr: Option<String>,
    load_mode: LoadMode,
    /// Explicit `scale` tier list (`--tiers 1k,10k`).
    tiers: Option<Vec<usize>>,
    /// Top tier of the default `scale` pyramid (`--max-users 50000`).
    max_users: Option<usize>,
}

/// Parse a user-count token with an optional `k`/`m` decimal suffix
/// (`"1k"` → 1000, `"10k"` → 10000, `"2m"` → 2000000, `"800"` → 800).
fn parse_users_token(token: &str) -> Option<usize> {
    let token = token.trim();
    let (digits, scale) = match token.as_bytes().last()? {
        b'k' | b'K' => (&token[..token.len() - 1], 1_000),
        b'm' | b'M' => (&token[..token.len() - 1], 1_000_000),
        _ => (token, 1),
    };
    digits.parse::<usize>().ok().map(|n| n * scale)
}

fn parse_args() -> Args {
    let mut experiment = String::from("all");
    let mut users = None;
    let mut seed = 42u64;
    let mut path = None;
    let mut addr = String::from("127.0.0.1:7699");
    let mut metrics_addr = None;
    let mut load_mode = LoadMode::Mapped;
    let mut tiers = None;
    let mut max_users = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--users" => {
                users = argv.next().and_then(|v| v.parse().ok());
            }
            "--tiers" => {
                tiers = argv.next().map(|v| {
                    v.split(',')
                        .map(|t| {
                            parse_users_token(t).unwrap_or_else(|| {
                                eprintln!("invalid tier {t:?} (expected e.g. 1k, 10k, 50000)");
                                std::process::exit(2);
                            })
                        })
                        .collect()
                });
            }
            "--max-users" => {
                max_users = argv.next().and_then(|v| parse_users_token(&v));
            }
            "--seed" => {
                if let Some(v) = argv.next().and_then(|v| v.parse().ok()) {
                    seed = v;
                }
            }
            "--path" => {
                path = argv.next();
            }
            "--addr" => {
                if let Some(v) = argv.next() {
                    addr = v;
                }
            }
            "--metrics-addr" => {
                metrics_addr = argv.next();
            }
            "--mmap" => load_mode = LoadMode::Mapped,
            "--owned" => load_mode = LoadMode::Owned,
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other if !other.starts_with('-') => experiment = other.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    Args { experiment, users, seed, path, addr, metrics_addr, load_mode, tiers, max_users }
}

fn print_help() {
    println!(
        "repro <fig1|fig2|table1|fig3|fig4|fig5|fig6|fig7|fig8|linkage|theory|ablation|defense|scaling|service|snapshot-load|all> \
         [--users N] [--seed S]\n\
         repro scale [--users N | --max-users N] [--tiers 1k,10k] [--seed S]   \
         # 1k/10k/100k sweep by default; not in `all`\n\
         repro recall [--users N] [--seed S]  # approx-tier margin sweep, 1k+10k tiers by \
         default; not in `all`\n\
         repro snapshot [--users N] [--seed S] [--path corpus.snap]\n\
         repro serve [--path corpus.snap] [--addr 127.0.0.1:7699] [--users N] [--seed S] \
         [--mmap | --owned] [--metrics-addr HOST:PORT]"
    );
}

/// The auxiliary/anonymized split `snapshot`, `serve` and the example
/// client all regenerate deterministically from `--users`/`--seed`.
fn serving_split(users: usize, seed: u64) -> dehealth_corpus::Split {
    let forum =
        dehealth_corpus::Forum::generate(&dehealth_corpus::ForumConfig::webmd_like(users), seed);
    dehealth_corpus::closed_world_split(
        &forum,
        &dehealth_corpus::SplitConfig::fraction(0.7),
        seed.wrapping_add(1),
    )
}

fn run_snapshot_command(users: usize, seed: u64, path: &str) {
    use std::time::Instant;
    let split = serving_split(users, seed);
    println!(
        "preparing auxiliary corpus: {} users, {} posts…",
        split.auxiliary.n_users,
        split.auxiliary.posts.len()
    );
    let t0 = Instant::now();
    let corpus = dehealth_service::PreparedCorpus::build(
        split.auxiliary,
        dehealth_core::refined::ClassifierKind::default(),
    );
    let build_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    if let Err(e) = corpus.save(Path::new(path)) {
        eprintln!("snapshot: failed to write {path}: {e}");
        std::process::exit(1);
    }
    let save_secs = t0.elapsed().as_secs_f64();
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {path}: {bytes} bytes (format v2, 8-byte-aligned sections; build \
         {build_secs:.3}s, save {save_secs:.3}s); serve it with `repro serve --path {path}` \
         (add --owned to skip the zero-copy mmap load)"
    );
}

fn run_serve_command(
    users: usize,
    seed: u64,
    path: Option<&str>,
    addr: &str,
    metrics_addr: Option<&str>,
    mode: LoadMode,
) {
    let corpus = match path {
        Some(path) if Path::new(path).exists() => {
            match dehealth_service::PreparedCorpus::load_timed_with(Path::new(path), mode) {
                Ok((corpus, secs)) => {
                    let memory = corpus.memory_stats();
                    println!(
                        "loaded snapshot {path} ({}): {} users, {} posts in {secs:.3}s \
                         (feature extraction skipped)",
                        if corpus.is_mapped() { "mmap, zero-copy" } else { "owned" },
                        corpus.n_users(),
                        corpus.n_posts()
                    );
                    println!(
                        "  arena bytes: {} resident on heap, {} borrowed from the mapping",
                        memory.resident_arena_bytes, memory.borrowed_arena_bytes
                    );
                    corpus
                }
                Err(e) => {
                    eprintln!("serve: failed to load {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => {
            println!("no snapshot given/found; preparing a corpus in-process…");
            let split = serving_split(users, seed);
            dehealth_service::PreparedCorpus::build(
                split.auxiliary,
                dehealth_core::refined::ClassifierKind::default(),
            )
        }
    };
    let daemon = match dehealth_service::Daemon::bind_with_corpus(
        addr,
        dehealth_service::daemon::default_config(),
        Some(corpus),
    ) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("serve: failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("serving on {} (send {{\"cmd\":\"shutdown\"}} to stop)", daemon.addr());
    // Grab the registry before `join` consumes the daemon: the shutdown
    // summary reads it afterwards, and the scrape endpoint shares it.
    let registry = daemon.registry();
    let metrics_server =
        metrics_addr.map(|metrics_addr| {
            match dehealth_service::MetricsServer::bind(metrics_addr, registry.clone()) {
                Ok(server) => {
                    println!("metrics (Prometheus text) on http://{}/metrics", server.addr());
                    server
                }
                Err(e) => {
                    eprintln!("serve: failed to bind metrics endpoint {metrics_addr}: {e}");
                    std::process::exit(1);
                }
            }
        });
    daemon.join();
    drop(metrics_server);
    println!("daemon shut down");
    print_shutdown_summary(&registry);
}

/// Final stats + top-line latency summary, read back from the daemon's
/// registry after it has shut down.
fn print_shutdown_summary(registry: &dehealth_telemetry::Registry) {
    let count = |name: &str| registry.counter(name).get();
    println!(
        "  served {} requests ({} errors), {} attacks ({} users attacked, {} mapped)",
        count("daemon_requests_total"),
        count("daemon_errors_total"),
        count("daemon_attacks_total"),
        count("daemon_attacked_users_total"),
        count("daemon_mapped_users_total"),
    );
    println!(
        "  corpus updates: {}; connections rejected: {}, dropped: {}",
        count("daemon_corpus_updates_total"),
        count("daemon_rejected_connections_total"),
        count("daemon_dropped_connections_total"),
    );
    let attacks = registry.histogram_with("daemon_command_seconds", &[("cmd", "attack")]);
    let snapshot = attacks.snapshot();
    if snapshot.count() > 0 {
        // An overflow-resident quantile is a floor, not an estimate —
        // render it as `>ceiling` so the summary never fabricates.
        let fmt = |q: dehealth_telemetry::Quantile| {
            if q.overflow {
                format!(">{:.3}s", q.seconds)
            } else {
                format!("{:.3}s", q.seconds)
            }
        };
        println!(
            "  attack latency: mean {:.3}s, p50 {}, p90 {}, p99 {} over {} requests",
            snapshot.mean_seconds(),
            fmt(snapshot.quantile(0.5)),
            fmt(snapshot.quantile(0.9)),
            fmt(snapshot.quantile(0.99)),
            snapshot.count(),
        );
    }
}

fn main() {
    let args = parse_args();
    let seed = args.seed;
    // Default scales chosen so `repro all` finishes in minutes on a laptop.
    let marginal_users = args.users.unwrap_or(4000);
    let topk_users = args.users.unwrap_or(800);
    let graph_users = args.users.unwrap_or(2000);
    let linkage_people = args.users.unwrap_or(2805);

    let run = |name: &str| args.experiment == name || args.experiment == "all";

    if run("fig1") {
        datasets::run_fig1(marginal_users, seed);
    }
    if run("fig2") {
        datasets::run_fig2(marginal_users, seed);
    }
    if run("table1") {
        table1::run(topk_users.min(1000), seed);
    }
    if run("fig3") {
        fig3_fig5_topk::run_fig3(topk_users, seed);
    }
    if run("fig4") {
        fig4_fig6_refined::run_fig4(seed);
    }
    if run("fig5") {
        fig3_fig5_topk::run_fig5(topk_users, seed);
    }
    if run("fig6") {
        fig4_fig6_refined::run_fig6(seed);
    }
    if run("fig7") {
        fig7_fig8_graph::run_fig7(graph_users, seed);
    }
    if run("fig8") {
        fig7_fig8_graph::run_fig8(graph_users, seed);
    }
    if run("linkage") {
        let _ = linkage_attack::run(linkage_people, seed);
    }
    if run("theory") {
        theory_bounds::run(seed);
    }
    if run("ablation") {
        ablation::run(topk_users.min(400), seed);
    }
    if run("defense") {
        let _ = defense::run(topk_users.min(150), seed);
    }
    if run("scaling") {
        if let Err(e) = scaling::run(args.users.unwrap_or(600), seed) {
            eprintln!("scaling: failed to write BENCH_scaling.json: {e}");
            std::process::exit(1);
        }
    }
    if run("service") {
        if let Err(e) = service::run(args.users.unwrap_or(600), seed) {
            eprintln!("service: failed to run the service benchmark: {e}");
            std::process::exit(1);
        }
    }
    if run("snapshot-load") {
        // `--users` is the *smallest* sweep point; the sweep tops out 4×
        // higher.
        if let Err(e) = snapshot_load::run(args.users.unwrap_or(150), seed) {
            eprintln!("snapshot-load: failed to run the snapshot-load benchmark: {e}");
            std::process::exit(1);
        }
    }
    // `scale` is deliberately not part of `all`: its default corpus is
    // 100k users and the sweep takes tens of minutes.
    if args.experiment == "scale" {
        let result = match &args.tiers {
            Some(tiers) => scale::run_tiers(tiers, seed),
            None => scale::run(args.max_users.or(args.users).unwrap_or(100_000), seed),
        };
        match result {
            Ok(path) => println!("scale: report at {}", path.display()),
            Err(e) => {
                eprintln!("scale: failed to write BENCH_scale.json: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    // `recall` is also excluded from `all`: its default tiers (1k and
    // 10k users, six attacks each) take minutes, and its JSON is a
    // committed artifact regenerated deliberately, not on every sweep.
    if args.experiment == "recall" {
        match recall::run(args.users, seed) {
            Ok(path) => println!("recall: report at {}", path.display()),
            Err(e) => {
                eprintln!("recall: failed to write BENCH_recall.json: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if args.experiment == "snapshot" {
        let path = args.path.clone().unwrap_or_else(|| "corpus.snap".to_string());
        run_snapshot_command(args.users.unwrap_or(600), seed, &path);
        return;
    }
    if args.experiment == "serve" {
        run_serve_command(
            args.users.unwrap_or(600),
            seed,
            args.path.as_deref(),
            &args.addr,
            args.metrics_addr.as_deref(),
            args.load_mode,
        );
        return;
    }
    if ![
        "fig1",
        "fig2",
        "table1",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "linkage",
        "theory",
        "ablation",
        "defense",
        "scaling",
        "service",
        "snapshot-load",
        "all",
    ]
    .contains(&args.experiment.as_str())
    {
        eprintln!("unknown experiment {}", args.experiment);
        print_help();
        std::process::exit(2);
    }
}
