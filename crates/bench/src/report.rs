//! Plain-text result persistence: CSV writers for experiment series so
//! runs can be archived and plotted without adding serialization
//! dependencies.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A CSV table under construction (comma separator, `"`-quoted cells when
/// needed, `\n` line endings).
#[derive(Debug, Clone, Default)]
pub struct Csv {
    buf: String,
    n_cols: usize,
}

impl Csv {
    /// Start a table with a header row.
    ///
    /// # Panics
    /// Panics on an empty header.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        assert!(!header.is_empty(), "empty header");
        let mut csv = Self { buf: String::new(), n_cols: header.len() };
        csv.push_row(header);
        csv
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn push_row<S: AsRef<str>>(&mut self, cells: &[S]) {
        assert_eq!(cells.len(), self.n_cols, "row arity mismatch");
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&escape(cell.as_ref()));
        }
        self.buf.push('\n');
    }

    /// Append a row of display-formatted values.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn push_display_row(&mut self, cells: &[&dyn std::fmt::Display]) {
        let strings: Vec<String> = cells
            .iter()
            .map(|c| {
                let mut s = String::new();
                write!(s, "{c}").expect("formatting never fails for String");
                s
            })
            .collect();
        self.push_row(&strings);
    }

    /// The CSV text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Number of data rows (excluding the header).
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.buf.lines().count().saturating_sub(1)
    }

    /// Write to a file, creating parent directories.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, &self.buf)
    }
}

/// Quote a cell if it contains a separator, quote, or newline.
fn escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Convenience: write an `(x, y)` series as a two-column CSV.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_series<X: std::fmt::Display, Y: std::fmt::Display>(
    path: &Path,
    x_label: &str,
    y_label: &str,
    rows: &[(X, Y)],
) -> io::Result<()> {
    let mut csv = Csv::new(&[x_label, y_label]);
    for (x, y) in rows {
        csv.push_row(&[x.to_string(), y.to_string()]);
    }
    csv.write_to(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_table() {
        let mut csv = Csv::new(&["k", "rate"]);
        csv.push_row(&["1", "0.5"]);
        csv.push_row(&["10", "0.9"]);
        assert_eq!(csv.as_str(), "k,rate\n1,0.5\n10,0.9\n");
        assert_eq!(csv.n_rows(), 2);
    }

    #[test]
    fn quoting() {
        let mut csv = Csv::new(&["name", "note"]);
        csv.push_row(&["a,b", "say \"hi\""]);
        assert_eq!(csv.as_str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn display_rows() {
        let mut csv = Csv::new(&["k", "rate"]);
        csv.push_display_row(&[&5usize, &0.25f64]);
        assert!(csv.as_str().ends_with("5,0.25\n"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut csv = Csv::new(&["a", "b"]);
        csv.push_row(&["only-one"]);
    }

    #[test]
    fn roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("dehealth-report-test");
        let path = dir.join("series.csv");
        write_series(&path, "k", "rate", &[(1, 0.5), (2, 0.75)]).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "k,rate\n1,0.5\n2,0.75\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
