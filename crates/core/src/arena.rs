//! Storage-generic typed arenas: one view type over two backings.
//!
//! The hot read-only structures of a prepared corpus — the
//! [`AttributeIndex`](crate::index::AttributeIndex) posting/user tables
//! and the [`RefinedContext`](crate::refined::RefinedContext) feature
//! arenas — hold their scalar data in [`ArenaView`]s. A view is either
//!
//! - **owned**: a plain `Vec<T>` (freshly built structures, v1 snapshot
//!   decodes, and any structure about to be mutated), or
//! - **mapped**: a `(SharedBytes, Range)` pair borrowing a little-endian
//!   byte region of a loaded snapshot — typically an `mmap`ed file —
//!   reinterpreted in place through [`dehealth_mapped`]'s
//!   alignment-checked casts.
//!
//! This is the *owner-plus-view split* that makes zero-copy loading
//! expressible in safe Rust: instead of a self-referential struct
//! holding both a mapping and slices into it, each view holds a cheap
//! [`Arc`](std::sync::Arc) clone of the backing plus a byte range, and
//! resolves the typed slice on access. The mapping stays alive exactly
//! as long as any view over it, and dropping the last view unmaps the
//! file — which is what makes corpus eviction nearly free.
//!
//! Mutation goes through [`ArenaView::to_mut`], which promotes a mapped
//! view to an owned `Vec` by copying once — copy-on-write at the arena
//! level. Code that only reads never pays more than an enum dispatch
//! per *slice resolution* (callers hoist [`ArenaView::as_slice`] out of
//! hot loops).

use std::fmt;
use std::ops::{Deref, Range};

use dehealth_mapped::{subrange, LePod, SharedBytes};

/// Why a byte region could not be viewed in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaCastError {
    /// The region's address is not aligned for the element type (or its
    /// length is not a whole number of elements). With the v2 snapshot
    /// format's alignment guarantees this indicates a corrupt or
    /// mis-framed file — loaders surface it as a typed snapshot error.
    Unaligned,
    /// This target cannot reinterpret little-endian bytes in place at
    /// all (big-endian). Loaders fall back to the copying decode.
    Unsupported,
    /// The region is not inside the provided backing buffer (an internal
    /// framing bug, never expected from file contents).
    OutOfBounds,
}

#[derive(Clone)]
enum Inner<T: LePod> {
    Owned(Vec<T>),
    Mapped { bytes: SharedBytes, range: Range<usize> },
}

/// A typed scalar arena over owned or borrowed little-endian storage
/// (see the [module docs](self)).
///
/// ```
/// use dehealth_core::arena::ArenaView;
/// use dehealth_mapped::ByteSource;
///
/// // One backing, two views — no copies.
/// let backing = ByteSource::from_vec(
///     [1u64, 2, 3, 4].iter().flat_map(|v| v.to_le_bytes()).collect(),
/// );
/// let all = backing.bytes().to_vec();
/// let view = ArenaView::<u64>::try_mapped(&backing, &backing.bytes()[8..24]).unwrap();
/// assert_eq!(&*view, &[2, 3]);
/// assert!(view.is_borrowed());
/// assert_eq!(all.len(), 32);
///
/// // Mutation promotes to owned storage (copy-on-write).
/// let mut view = view;
/// view.to_mut().push(9);
/// assert_eq!(&*view, &[2, 3, 9]);
/// assert!(!view.is_borrowed());
/// ```
#[derive(Clone)]
pub struct ArenaView<T: LePod> {
    inner: Inner<T>,
}

impl<T: LePod> Default for ArenaView<T> {
    fn default() -> Self {
        Self { inner: Inner::Owned(Vec::new()) }
    }
}

impl<T: LePod + fmt::Debug> fmt::Debug for ArenaView<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.is_borrowed() { "mapped" } else { "owned" };
        f.debug_struct("ArenaView").field("len", &self.len()).field("backing", &kind).finish()
    }
}

impl<T: LePod> From<Vec<T>> for ArenaView<T> {
    fn from(values: Vec<T>) -> Self {
        Self { inner: Inner::Owned(values) }
    }
}

impl<T: LePod> ArenaView<T> {
    /// An owned view over `values`.
    #[must_use]
    pub fn from_vec(values: Vec<T>) -> Self {
        values.into()
    }

    /// A borrowed view over `region`, which must be a subslice of
    /// `backing`'s bytes, aligned for `T` and a whole number of
    /// elements.
    ///
    /// # Errors
    /// [`ArenaCastError`] when the region cannot be viewed in place —
    /// callers either fall back to a copying decode (`Unsupported`) or
    /// surface a typed snapshot error (`Unaligned` under the v2 format's
    /// alignment guarantee).
    pub fn try_mapped(backing: &SharedBytes, region: &[u8]) -> Result<Self, ArenaCastError> {
        let range = subrange(backing.bytes(), region).ok_or(ArenaCastError::OutOfBounds)?;
        if T::cast_slice(region).is_none() {
            return Err(if cfg!(target_endian = "big") {
                ArenaCastError::Unsupported
            } else {
                ArenaCastError::Unaligned
            });
        }
        Ok(Self { inner: Inner::Mapped { bytes: backing.clone(), range } })
    }

    /// The typed slice. Owned storage returns the `Vec`'s slice;
    /// mapped storage re-resolves the (construction-validated) cast over
    /// the backing bytes. Hoist this out of hot loops.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        match &self.inner {
            Inner::Owned(v) => v,
            Inner::Mapped { bytes, range } => T::cast_slice(&bytes.bytes()[range.clone()])
                .expect("arena cast validated at construction"),
        }
    }

    /// Mutable access, promoting a mapped view to owned storage by
    /// copying its elements once (copy-on-write).
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let Inner::Mapped { .. } = &self.inner {
            self.inner = Inner::Owned(self.as_slice().to_vec());
        }
        match &mut self.inner {
            Inner::Owned(v) => v,
            Inner::Mapped { .. } => unreachable!("promoted above"),
        }
    }

    /// `true` when the elements live in a loaded snapshot's bytes rather
    /// than in an owned `Vec`.
    #[must_use]
    pub fn is_borrowed(&self) -> bool {
        matches!(self.inner, Inner::Mapped { .. })
    }

    /// The arena's size in bytes.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }

    /// Bytes this view keeps resident on the heap: [`Self::byte_len`]
    /// for owned storage, 0 for mapped storage (the backing pages belong
    /// to the file mapping and are reclaimable/shareable).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        if self.is_borrowed() {
            0
        } else {
            self.byte_len()
        }
    }
}

impl<T: LePod> Deref for ArenaView<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

/// Decode a little-endian byte region into owned values — the copying
/// counterpart of [`ArenaView::try_mapped`], used for v1 snapshots, for
/// owned load mode, and as the big-endian fallback.
pub trait DecodeLe: LePod {
    /// Decode `bytes` (length must be a whole number of elements).
    #[must_use]
    fn decode_le(bytes: &[u8]) -> Vec<Self>;
}

impl DecodeLe for u8 {
    fn decode_le(bytes: &[u8]) -> Vec<Self> {
        bytes.to_vec()
    }
}

impl DecodeLe for u32 {
    fn decode_le(bytes: &[u8]) -> Vec<Self> {
        debug_assert_eq!(bytes.len() % 4, 0);
        bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes"))).collect()
    }
}

impl DecodeLe for u64 {
    fn decode_le(bytes: &[u8]) -> Vec<Self> {
        debug_assert_eq!(bytes.len() % 8, 0);
        bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))).collect()
    }
}

impl DecodeLe for f64 {
    fn decode_le(bytes: &[u8]) -> Vec<Self> {
        debug_assert_eq!(bytes.len() % 8, 0);
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect()
    }
}

impl<T: DecodeLe> ArenaView<T> {
    /// View `region` in place over `backing` when possible, otherwise
    /// decode it into owned storage. `backing = None` always decodes
    /// (the owned load path).
    ///
    /// # Errors
    /// [`ArenaCastError::Unaligned`] when a backing was supplied but the
    /// region violates the alignment the caller's format guarantees —
    /// corrupt framing, surfaced as a typed error rather than silently
    /// absorbed by a copy. (`Unsupported` targets fall back to the
    /// copying decode instead; they can never cast.)
    pub fn from_region(
        backing: Option<&SharedBytes>,
        region: &[u8],
    ) -> Result<Self, ArenaCastError> {
        match backing {
            Some(bytes) => match Self::try_mapped(bytes, region) {
                Ok(view) => Ok(view),
                Err(ArenaCastError::Unsupported) => Ok(Self::from_vec(T::decode_le(region))),
                Err(e) => Err(e),
            },
            None => Ok(Self::from_vec(T::decode_le(region))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dehealth_mapped::ByteSource;

    fn backing_of(words: &[u64]) -> SharedBytes {
        ByteSource::from_vec(words.iter().flat_map(|v| v.to_le_bytes()).collect())
    }

    #[test]
    fn owned_and_mapped_views_agree() {
        let backing = backing_of(&[10, 20, 30]);
        let mapped = ArenaView::<u64>::try_mapped(&backing, backing.bytes()).unwrap();
        let owned = ArenaView::from_vec(vec![10u64, 20, 30]);
        assert_eq!(&*mapped, &*owned);
        assert!(mapped.is_borrowed() && !owned.is_borrowed());
        assert_eq!(mapped.byte_len(), 24);
        assert_eq!(mapped.resident_bytes(), 0);
        assert_eq!(owned.resident_bytes(), 24);
    }

    #[test]
    fn misaligned_region_is_refused() {
        let backing = backing_of(&[1, 2, 3]);
        let region = &backing.bytes()[4..20];
        assert_eq!(
            ArenaView::<u64>::try_mapped(&backing, region).unwrap_err(),
            ArenaCastError::Unaligned
        );
        // …and from_region propagates it rather than silently copying.
        assert!(ArenaView::<u64>::from_region(Some(&backing), region).is_err());
        // Without a backing the same bytes decode owned.
        let view = ArenaView::<u64>::from_region(None, region).unwrap();
        assert_eq!(view.len(), 2);
        assert!(!view.is_borrowed());
    }

    #[test]
    fn foreign_region_is_out_of_bounds() {
        let backing = backing_of(&[1, 2]);
        let other = [0u8; 8];
        assert_eq!(
            ArenaView::<u64>::try_mapped(&backing, &other).unwrap_err(),
            ArenaCastError::OutOfBounds
        );
    }

    #[test]
    fn to_mut_promotes_and_detaches_from_backing() {
        let backing = backing_of(&[7, 8]);
        let mut view = ArenaView::<u64>::try_mapped(&backing, backing.bytes()).unwrap();
        view.to_mut().push(9);
        assert_eq!(&*view, &[7, 8, 9]);
        assert!(!view.is_borrowed());
        // The original backing is untouched.
        assert_eq!(backing.bytes().len(), 16);
    }

    #[test]
    fn decode_le_matches_casts() {
        let backing = backing_of(&[0x0102_0304_0506_0708, f64::to_bits(-2.5)]);
        let bytes = backing.bytes();
        assert_eq!(u64::decode_le(&bytes[..8]), vec![0x0102_0304_0506_0708]);
        assert_eq!(u32::decode_le(&bytes[..8]), vec![0x0506_0708, 0x0102_0304]);
        assert_eq!(f64::decode_le(&bytes[8..]), vec![-2.5]);
        assert_eq!(u8::decode_le(&bytes[..2]), vec![0x08, 0x07]);
    }

    #[test]
    fn dropping_views_releases_the_backing() {
        let backing = backing_of(&[1, 2, 3, 4]);
        let weak = std::sync::Arc::downgrade(&backing);
        let a = ArenaView::<u32>::try_mapped(&backing, &backing.bytes()[..8]).unwrap();
        let b = a.clone();
        drop(backing);
        assert!(weak.upgrade().is_some(), "views keep the backing alive");
        drop(a);
        drop(b);
        assert!(weak.upgrade().is_none(), "last view frees the backing");
    }
}
