//! The end-to-end De-Health attack (Algorithm 1) and the Stylometry
//! baseline it is compared against in Section V.

use dehealth_corpus::{Forum, Oracle};

use crate::filter::{filter_candidates, FilterConfig, Filtered};
use crate::refined::{refine_user_shared, RefinedConfig, RefinedContext, RefinedScratch, Side};
use crate::similarity::{SimilarityEngine, SimilarityWeights};
use crate::topk::{direct_selection, matching_selection, rank_of, CandidateSets, Selection};
use crate::uda::UdaGraph;

pub use crate::refined::{ClassifierKind, Verification};

/// Full attack configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackConfig {
    /// Similarity weights `(c1, c2, c3)`; default `(0.05, 0.05, 0.9)`.
    pub weights: SimilarityWeights,
    /// Number of landmark users ħ per side; default 50.
    pub n_landmarks: usize,
    /// Candidate-set size K; default 10.
    pub top_k: usize,
    /// Candidate-selection strategy.
    pub selection: Selection,
    /// Optional Algorithm-2 filtering.
    pub filtering: Option<FilterConfig>,
    /// Refined-DA classifier.
    pub classifier: ClassifierKind,
    /// Open-world verification scheme.
    pub verification: Verification,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self {
            weights: SimilarityWeights::default(),
            n_landmarks: 50,
            top_k: 10,
            selection: Selection::Direct,
            filtering: None,
            classifier: ClassifierKind::default(),
            verification: Verification::default(),
            seed: 0,
        }
    }
}

/// The De-Health attack.
#[derive(Debug, Clone, Default)]
pub struct DeHealth {
    config: AttackConfig,
}

/// Everything the attack produced for one (auxiliary, anonymized) pair.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    config: AttackConfig,
    /// `similarity[u][v]` for each anonymized `u`, auxiliary `v` (absent
    /// auxiliary users are `-inf`).
    pub similarity: Vec<Vec<f64>>,
    /// Final candidate set per anonymized user (post-filtering; empty =
    /// rejected in the Top-K phase).
    pub candidates: CandidateSets,
    /// Refined-DA decision per anonymized user (`None` = `u → ⊥`).
    pub mapping: Vec<Option<usize>>,
}

impl DeHealth {
    /// Create the attack with the given configuration.
    #[must_use]
    pub fn new(config: AttackConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// Run both phases against an anonymized forum using an auxiliary
    /// forum.
    #[must_use]
    pub fn run(&self, auxiliary: &Forum, anonymized: &Forum) -> AttackOutcome {
        let aux_feats = crate::uda::extract_post_features(auxiliary);
        let anon_feats = crate::uda::extract_post_features(anonymized);
        let aux_uda = UdaGraph::build_with_features(auxiliary, &aux_feats);
        let anon_uda = UdaGraph::build_with_features(anonymized, &anon_feats);
        self.run_prepared(
            &Side { forum: auxiliary, uda: &aux_uda, post_features: &aux_feats },
            &Side { forum: anonymized, uda: &anon_uda, post_features: &anon_feats },
        )
    }

    /// Run with pre-built UDA graphs and per-post features (lets callers
    /// amortize feature extraction across parameter sweeps).
    #[must_use]
    pub fn run_prepared(&self, aux: &Side<'_>, anon: &Side<'_>) -> AttackOutcome {
        let cfg = &self.config;
        // Phase 1: structural similarity + Top-K candidates.
        let engine = SimilarityEngine::new(anon.uda, aux.uda, cfg.weights, cfg.n_landmarks);
        let similarity = engine.matrix();
        let mut candidates = match cfg.selection {
            Selection::Direct => direct_selection(&similarity, cfg.top_k),
            Selection::GraphMatching => matching_selection(&similarity, cfg.top_k),
        };
        if let Some(filter_cfg) = &cfg.filtering {
            let filtered = filter_candidates(&similarity, &candidates, filter_cfg);
            for (cands, f) in candidates.iter_mut().zip(filtered) {
                match f {
                    Filtered::Kept(kept) => *cands = kept,
                    Filtered::Rejected => cands.clear(),
                }
            }
        }
        // Phase 2: refined DA within each candidate set, through the
        // materialize-once fast path (bit-identical to the per-user
        // oracle `refine_user` — see tests/refined_parity.rs).
        let refined_cfg = RefinedConfig {
            classifier: cfg.classifier,
            verification: cfg.verification,
            seed: cfg.seed,
        };
        let anon_ctx = RefinedContext::build(anon, cfg.classifier);
        let aux_ctx = RefinedContext::build(aux, cfg.classifier);
        let mut scratch = RefinedScratch::new();
        let mapping = (0..anon.forum.n_users)
            .map(|u| {
                refine_user_shared(
                    u,
                    &candidates[u],
                    anon,
                    aux,
                    &anon_ctx,
                    &aux_ctx,
                    &similarity[u],
                    &refined_cfg,
                    &mut scratch,
                )
            })
            .collect();
        AttackOutcome { config: cfg.clone(), similarity, candidates, mapping }
    }
}

/// The Stylometry baseline: refined DA over *all* present auxiliary users,
/// with no Top-K phase ("equivalent to the second phase (refined DA) of
/// De-Health", Section V-A2).
#[must_use]
pub fn stylometry_baseline(
    auxiliary: &Forum,
    anonymized: &Forum,
    classifier: ClassifierKind,
    verification: Verification,
    seed: u64,
) -> Vec<Option<usize>> {
    let aux_feats = crate::uda::extract_post_features(auxiliary);
    let anon_feats = crate::uda::extract_post_features(anonymized);
    let aux_uda = UdaGraph::build_with_features(auxiliary, &aux_feats);
    let anon_uda = UdaGraph::build_with_features(anonymized, &anon_feats);
    let aux = Side { forum: auxiliary, uda: &aux_uda, post_features: &aux_feats };
    let anon = Side { forum: anonymized, uda: &anon_uda, post_features: &anon_feats };
    // Verification still needs similarity rows; use attribute-only weights.
    let engine = SimilarityEngine::new(anon.uda, aux.uda, SimilarityWeights::default(), 5);
    let similarity = engine.matrix();
    let all_candidates = aux_uda.present_users();
    let refined_cfg = RefinedConfig { classifier, verification, seed };
    // The baseline trains on *every* present auxiliary user for every
    // anonymized user, so the shared arena pays off even more than in the
    // Top-K-bounded attack.
    let anon_ctx = RefinedContext::build(&anon, classifier);
    let aux_ctx = RefinedContext::build(&aux, classifier);
    let mut scratch = RefinedScratch::new();
    (0..anonymized.n_users)
        .map(|u| {
            refine_user_shared(
                u,
                &all_candidates,
                &anon,
                &aux,
                &anon_ctx,
                &aux_ctx,
                &similarity[u],
                &refined_cfg,
                &mut scratch,
            )
        })
        .collect()
}

/// Scoring of an [`AttackOutcome`] against the hidden ground truth.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Per-user rank of the true mapping in the similarity ordering
    /// (`None` for non-overlapping users).
    pub truth_rank: Vec<Option<usize>>,
    /// Number of anonymized users with a true mapping (`Y`).
    pub n_overlapping: usize,
    /// Users whose true mapping is inside the final candidate set.
    pub candidate_hits: usize,
    /// Correct refined-DA mappings (`Y_c`).
    pub correct: usize,
    /// Users mapped to *some* auxiliary user.
    pub mapped: usize,
    /// Non-overlapping users incorrectly mapped to an auxiliary user.
    pub false_positives: usize,
    /// Non-overlapping users (candidates for `u → ⊥`).
    pub n_non_overlapping: usize,
}

impl AttackOutcome {
    /// The configuration that produced this outcome.
    #[must_use]
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// Score against the oracle.
    ///
    /// # Panics
    /// Panics if the oracle's size differs from the anonymized user count.
    #[must_use]
    pub fn evaluate(&self, oracle: &Oracle) -> Evaluation {
        assert_eq!(oracle.len(), self.mapping.len(), "oracle size mismatch");
        let mut truth_rank = Vec::with_capacity(oracle.len());
        let mut candidate_hits = 0;
        let mut correct = 0;
        let mut mapped = 0;
        let mut false_positives = 0;
        let mut n_overlapping = 0;
        for u in 0..oracle.len() {
            let truth = oracle.true_mapping(u);
            if self.mapping[u].is_some() {
                mapped += 1;
            }
            match truth {
                Some(t) => {
                    n_overlapping += 1;
                    truth_rank.push(rank_of(&self.similarity, u, t));
                    if self.candidates[u].contains(&t) {
                        candidate_hits += 1;
                    }
                    if self.mapping[u] == Some(t) {
                        correct += 1;
                    }
                }
                None => {
                    truth_rank.push(None);
                    if self.mapping[u].is_some() {
                        false_positives += 1;
                    }
                }
            }
        }
        Evaluation {
            truth_rank,
            n_overlapping,
            candidate_hits,
            correct,
            mapped,
            false_positives,
            n_non_overlapping: oracle.len() - n_overlapping,
        }
    }
}

impl Evaluation {
    /// Fraction of overlapping users whose true mapping ranks inside the
    /// Top-`k` similarity ordering (the CDF of Figs. 3 and 5).
    #[must_use]
    pub fn top_k_success_rate(&self, k: usize) -> f64 {
        if self.n_overlapping == 0 {
            return 0.0;
        }
        let hits = self.truth_rank.iter().filter(|r| matches!(r, Some(rank) if *rank < k)).count();
        hits as f64 / self.n_overlapping as f64
    }

    /// DA accuracy `Y_c / Y` (Section V-A2).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.n_overlapping == 0 {
            0.0
        } else {
            self.correct as f64 / self.n_overlapping as f64
        }
    }

    /// Fraction of overlapping users whose true mapping survived into the
    /// final candidate set.
    #[must_use]
    pub fn candidate_hit_rate(&self) -> f64 {
        if self.n_overlapping == 0 {
            0.0
        } else {
            self.candidate_hits as f64 / self.n_overlapping as f64
        }
    }

    /// False-positive rate: non-overlapping users mapped to somebody,
    /// over all non-overlapping users (0 in closed world).
    #[must_use]
    pub fn fp_rate(&self) -> f64 {
        if self.n_non_overlapping == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.n_non_overlapping as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dehealth_corpus::{closed_world_split, ForumConfig, SplitConfig};

    fn tiny_attack() -> (AttackOutcome, dehealth_corpus::Split) {
        let forum = Forum::generate(&ForumConfig::tiny(), 42);
        let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 7);
        let attack =
            DeHealth::new(AttackConfig { top_k: 5, n_landmarks: 10, ..AttackConfig::default() });
        (attack.run(&split.auxiliary, &split.anonymized), split)
    }

    #[test]
    fn outcome_shape_is_consistent() {
        let (out, split) = tiny_attack();
        let n1 = split.anonymized.n_users;
        assert_eq!(out.similarity.len(), n1);
        assert_eq!(out.candidates.len(), n1);
        assert_eq!(out.mapping.len(), n1);
        assert!(out.candidates.iter().all(|c| c.len() <= 5));
    }

    #[test]
    fn topk_beats_chance_on_tiny_forum() {
        let (out, split) = tiny_attack();
        let eval = out.evaluate(&split.oracle);
        // Chance level for Top-5 of ~60 aux users is ~5/60 = 8%; the attack
        // should do far better because text carries persona signal.
        let rate = eval.top_k_success_rate(5);
        assert!(rate > 0.3, "top-5 rate = {rate}");
    }

    #[test]
    fn refined_accuracy_beats_chance() {
        let (out, split) = tiny_attack();
        let eval = out.evaluate(&split.oracle);
        assert!(eval.accuracy() > 0.2, "accuracy = {}", eval.accuracy());
        // Accuracy cannot exceed the candidate hit rate.
        assert!(eval.accuracy() <= eval.candidate_hit_rate() + 1e-12);
    }

    #[test]
    fn top_k_rate_is_monotone_in_k() {
        let (out, split) = tiny_attack();
        let eval = out.evaluate(&split.oracle);
        let mut prev = 0.0;
        for k in [1, 2, 5, 10, 20, 50] {
            let r = eval.top_k_success_rate(k);
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    fn closed_world_has_zero_fp_rate() {
        let (out, split) = tiny_attack();
        let eval = out.evaluate(&split.oracle);
        assert_eq!(eval.n_non_overlapping, 0);
        assert_eq!(eval.fp_rate(), 0.0);
    }

    #[test]
    fn matching_selection_runs() {
        let forum = Forum::generate(&ForumConfig::tiny(), 1);
        let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 2);
        let attack = DeHealth::new(AttackConfig {
            selection: Selection::GraphMatching,
            top_k: 3,
            n_landmarks: 5,
            ..AttackConfig::default()
        });
        let out = attack.run(&split.auxiliary, &split.anonymized);
        assert!(out.candidates.iter().all(|c| c.len() <= 3));
        let eval = out.evaluate(&split.oracle);
        assert!(eval.top_k_success_rate(3) > 0.2);
    }
}
