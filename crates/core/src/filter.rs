//! Candidate filtering (Algorithm 2).
//!
//! A threshold vector `T` partitions the global similarity range `[s_l,
//! s_u]` into `ℓ` levels; each user keeps the candidates that survive the
//! highest non-empty threshold level. A user whose candidates all fall
//! below the lowest threshold is rejected (`u → ⊥`).

use crate::topk::CandidateSets;

/// Filtering parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterConfig {
    /// Offset ε added to the global minimum similarity when building the
    /// threshold interval (Algorithm 2, line 2).
    pub epsilon: f64,
    /// Number of threshold levels ℓ (line 3).
    pub levels: usize,
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self { epsilon: 0.01, levels: 10 }
    }
}

/// Result of filtering one user's candidate set.
#[derive(Debug, Clone, PartialEq)]
pub enum Filtered {
    /// Candidates surviving the chosen threshold level.
    Kept(Vec<usize>),
    /// No candidate survived: the user is declared absent (`u → ⊥`).
    Rejected,
}

/// Running `(min, max)` over the finite similarity scores (Algorithm 2,
/// lines 1-2). Shards of a blockwise scoring pass each accumulate their
/// own bounds and [`merge`](ScoreBounds::merge) them afterwards — min/max
/// are order-independent, so the result is bit-identical to a dense-matrix
/// scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreBounds {
    /// Smallest finite score observed.
    pub min: f64,
    /// Largest finite score observed.
    pub max: f64,
}

impl Default for ScoreBounds {
    fn default() -> Self {
        Self::new()
    }
}

impl ScoreBounds {
    /// Empty bounds (no score observed yet).
    #[must_use]
    pub fn new() -> Self {
        Self { min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Account for one score; non-finite scores (masked pairs) are ignored.
    pub fn observe(&mut self, s: f64) {
        if s.is_finite() {
            self.min = self.min.min(s);
            self.max = self.max.max(s);
        }
    }

    /// Fold another shard's bounds into this one.
    pub fn merge(&mut self, other: Self) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `true` if no finite score was ever observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !self.max.is_finite()
    }
}

/// The Algorithm-2 threshold vector `T` for the observed score bounds:
/// `levels` values descending from the global maximum to `min + epsilon`.
/// Empty when `bounds` is empty (every user is then rejected).
///
/// # Panics
/// Panics if `config.levels < 2`.
#[must_use]
pub fn threshold_vector(bounds: ScoreBounds, config: &FilterConfig) -> Vec<f64> {
    assert!(config.levels >= 2, "need at least 2 threshold levels");
    if bounds.is_empty() {
        return Vec::new();
    }
    let s_upper = bounds.max;
    let s_lower = (bounds.min + config.epsilon).min(s_upper);
    let l = config.levels;
    (0..l).map(|i| s_upper - (i as f64 / (l - 1) as f64) * (s_upper - s_lower)).collect()
}

/// Apply the threshold vector to one user's candidate set: keep the
/// survivors of the highest non-empty level, reject if none survives even
/// the lowest. `score_of` maps a candidate id to its similarity score —
/// a dense matrix row and a sparse candidate-score list plug in equally.
pub fn filter_user<F: Fn(usize) -> f64>(
    score_of: F,
    candidates: &[usize],
    thresholds: &[f64],
) -> Filtered {
    for &t in thresholds {
        let kept: Vec<usize> = candidates.iter().copied().filter(|&v| score_of(v) >= t).collect();
        if !kept.is_empty() {
            return Filtered::Kept(kept);
        }
    }
    Filtered::Rejected
}

/// Apply Algorithm 2 to all candidate sets.
///
/// `matrix[u][v]` must hold the similarity scores used to build the
/// candidate sets. Returns one [`Filtered`] per anonymized user.
///
/// # Panics
/// Panics if `config.levels < 2`.
#[must_use]
pub fn filter_candidates(
    matrix: &[Vec<f64>],
    candidates: &CandidateSets,
    config: &FilterConfig,
) -> Vec<Filtered> {
    let mut bounds = ScoreBounds::new();
    for row in matrix {
        for &s in row {
            bounds.observe(s);
        }
    }
    let thresholds = threshold_vector(bounds, config);
    candidates
        .iter()
        .enumerate()
        .map(|(u, cands)| filter_user(|v| matrix[u][v], cands, &thresholds))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_candidates_survive_high_threshold() {
        // User 0: one clear winner at 0.9, noise at 0.1/0.2.
        let m = vec![vec![0.9, 0.2, 0.1]];
        let cands = vec![vec![0, 1, 2]];
        let out = filter_candidates(&m, &cands, &FilterConfig { epsilon: 0.0, levels: 10 });
        assert_eq!(out[0], Filtered::Kept(vec![0]));
    }

    #[test]
    fn weak_users_keep_low_threshold_survivors() {
        // User 1's best score is the global minimum region: survives only
        // at the lowest levels but is still kept (not rejected) since the
        // lowest threshold equals min + eps <= its score when eps = 0.
        let m = vec![vec![0.9, 0.8], vec![0.3, 0.25]];
        let cands = vec![vec![0, 1], vec![0, 1]];
        let out = filter_candidates(&m, &cands, &FilterConfig { epsilon: 0.0, levels: 5 });
        assert!(matches!(out[1], Filtered::Kept(_)));
    }

    #[test]
    fn epsilon_rejects_bottom_users() {
        // With eps > 0 the lowest threshold exceeds the global minimum, so
        // a user whose only candidate sits at the minimum is rejected.
        let m = vec![vec![1.0], vec![0.0]];
        let cands = vec![vec![0], vec![0]];
        let out = filter_candidates(&m, &cands, &FilterConfig { epsilon: 0.1, levels: 4 });
        assert_eq!(out[0], Filtered::Kept(vec![0]));
        assert_eq!(out[1], Filtered::Rejected);
    }

    #[test]
    fn filtering_shrinks_but_never_grows() {
        let m = vec![vec![0.5, 0.4, 0.45, 0.1]];
        let cands = vec![vec![0, 2, 1, 3]];
        let out = filter_candidates(&m, &cands, &FilterConfig::default());
        if let Filtered::Kept(kept) = &out[0] {
            assert!(kept.len() <= 4);
            assert!(kept.iter().all(|v| cands[0].contains(v)));
        } else {
            panic!("expected kept");
        }
    }

    #[test]
    fn all_masked_scores_reject_everything() {
        let m = vec![vec![f64::NEG_INFINITY]];
        let cands = vec![vec![0]];
        let out = filter_candidates(&m, &cands, &FilterConfig::default());
        assert_eq!(out[0], Filtered::Rejected);
    }

    #[test]
    #[should_panic(expected = "threshold levels")]
    fn too_few_levels_panics() {
        let _ = filter_candidates(&[], &Vec::new(), &FilterConfig { epsilon: 0.0, levels: 1 });
    }

    #[test]
    fn sharded_bounds_merge_matches_global_scan() {
        let scores = [0.4, f64::NEG_INFINITY, 0.9, 0.1, 0.6];
        let mut global = ScoreBounds::new();
        for &s in &scores {
            global.observe(s);
        }
        let mut merged = ScoreBounds::new();
        for shard in scores.chunks(2) {
            let mut local = ScoreBounds::new();
            for &s in shard {
                local.observe(s);
            }
            merged.merge(local);
        }
        assert_eq!(merged, global);
        assert_eq!(merged.min, 0.1);
        assert_eq!(merged.max, 0.9);
    }

    #[test]
    fn empty_bounds_yield_no_thresholds() {
        assert!(ScoreBounds::new().is_empty());
        assert!(threshold_vector(ScoreBounds::new(), &FilterConfig::default()).is_empty());
        assert_eq!(filter_user(|_| 1.0, &[0], &[]), Filtered::Rejected);
    }

    #[test]
    fn filter_user_on_sparse_scores_matches_dense() {
        let m = vec![vec![0.9, 0.2, 0.1]];
        let cands = vec![vec![0, 1, 2]];
        let cfg = FilterConfig { epsilon: 0.0, levels: 10 };
        let dense = filter_candidates(&m, &cands, &cfg);
        // Sparse path: same bounds, per-candidate score lookup only.
        let mut bounds = ScoreBounds::new();
        for &s in &m[0] {
            bounds.observe(s);
        }
        let thresholds = threshold_vector(bounds, &cfg);
        let sparse = filter_user(|v| m[0][v], &cands[0], &thresholds);
        assert_eq!(dense[0], sparse);
    }
}
