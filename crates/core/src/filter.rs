//! Candidate filtering (Algorithm 2).
//!
//! A threshold vector `T` partitions the global similarity range `[s_l,
//! s_u]` into `ℓ` levels; each user keeps the candidates that survive the
//! highest non-empty threshold level. A user whose candidates all fall
//! below the lowest threshold is rejected (`u → ⊥`).

use crate::topk::CandidateSets;

/// Filtering parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterConfig {
    /// Offset ε added to the global minimum similarity when building the
    /// threshold interval (Algorithm 2, line 2).
    pub epsilon: f64,
    /// Number of threshold levels ℓ (line 3).
    pub levels: usize,
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self { epsilon: 0.01, levels: 10 }
    }
}

/// Result of filtering one user's candidate set.
#[derive(Debug, Clone, PartialEq)]
pub enum Filtered {
    /// Candidates surviving the chosen threshold level.
    Kept(Vec<usize>),
    /// No candidate survived: the user is declared absent (`u → ⊥`).
    Rejected,
}

/// Apply Algorithm 2 to all candidate sets.
///
/// `matrix[u][v]` must hold the similarity scores used to build the
/// candidate sets. Returns one [`Filtered`] per anonymized user.
///
/// # Panics
/// Panics if `config.levels < 2`.
#[must_use]
pub fn filter_candidates(
    matrix: &[Vec<f64>],
    candidates: &CandidateSets,
    config: &FilterConfig,
) -> Vec<Filtered> {
    assert!(config.levels >= 2, "need at least 2 threshold levels");
    // Global bounds over finite scores (lines 1-2).
    let mut s_max = f64::NEG_INFINITY;
    let mut s_min = f64::INFINITY;
    for row in matrix {
        for &s in row {
            if s.is_finite() {
                s_max = s_max.max(s);
                s_min = s_min.min(s);
            }
        }
    }
    if !s_max.is_finite() {
        // Degenerate: no finite scores at all.
        return candidates.iter().map(|_| Filtered::Rejected).collect();
    }
    let s_upper = s_max;
    let s_lower = (s_min + config.epsilon).min(s_upper);
    let l = config.levels;
    let thresholds: Vec<f64> = (0..l)
        .map(|i| s_upper - (i as f64 / (l - 1) as f64) * (s_upper - s_lower))
        .collect();

    candidates
        .iter()
        .enumerate()
        .map(|(u, cands)| {
            for &t in &thresholds {
                let kept: Vec<usize> =
                    cands.iter().copied().filter(|&v| matrix[u][v] >= t).collect();
                if !kept.is_empty() {
                    return Filtered::Kept(kept);
                }
            }
            Filtered::Rejected
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_candidates_survive_high_threshold() {
        // User 0: one clear winner at 0.9, noise at 0.1/0.2.
        let m = vec![vec![0.9, 0.2, 0.1]];
        let cands = vec![vec![0, 1, 2]];
        let out = filter_candidates(&m, &cands, &FilterConfig { epsilon: 0.0, levels: 10 });
        assert_eq!(out[0], Filtered::Kept(vec![0]));
    }

    #[test]
    fn weak_users_keep_low_threshold_survivors() {
        // User 1's best score is the global minimum region: survives only
        // at the lowest levels but is still kept (not rejected) since the
        // lowest threshold equals min + eps <= its score when eps = 0.
        let m = vec![vec![0.9, 0.8], vec![0.3, 0.25]];
        let cands = vec![vec![0, 1], vec![0, 1]];
        let out = filter_candidates(&m, &cands, &FilterConfig { epsilon: 0.0, levels: 5 });
        assert!(matches!(out[1], Filtered::Kept(_)));
    }

    #[test]
    fn epsilon_rejects_bottom_users() {
        // With eps > 0 the lowest threshold exceeds the global minimum, so
        // a user whose only candidate sits at the minimum is rejected.
        let m = vec![vec![1.0], vec![0.0]];
        let cands = vec![vec![0], vec![0]];
        let out = filter_candidates(&m, &cands, &FilterConfig { epsilon: 0.1, levels: 4 });
        assert_eq!(out[0], Filtered::Kept(vec![0]));
        assert_eq!(out[1], Filtered::Rejected);
    }

    #[test]
    fn filtering_shrinks_but_never_grows() {
        let m = vec![vec![0.5, 0.4, 0.45, 0.1]];
        let cands = vec![vec![0, 2, 1, 3]];
        let out = filter_candidates(&m, &cands, &FilterConfig::default());
        if let Filtered::Kept(kept) = &out[0] {
            assert!(kept.len() <= 4);
            assert!(kept.iter().all(|v| cands[0].contains(v)));
        } else {
            panic!("expected kept");
        }
    }

    #[test]
    fn all_masked_scores_reject_everything() {
        let m = vec![vec![f64::NEG_INFINITY]];
        let cands = vec![vec![0]];
        let out = filter_candidates(&m, &cands, &FilterConfig::default());
        assert_eq!(out[0], Filtered::Rejected);
    }

    #[test]
    #[should_panic(expected = "threshold levels")]
    fn too_few_levels_panics() {
        let _ = filter_candidates(&[], &Vec::new(), &FilterConfig { epsilon: 0.0, levels: 1 });
    }
}
