//! Inverted-index sparse candidate scoring.
//!
//! The all-pairs sweep of [`SimilarityEngine::scores_for`] touches every
//! `(anonymized, auxiliary)` pair and merges both users' attribute lists
//! per pair. With the paper's default weights (`c1, c2, c3 = 0.05, 0.05,
//! 0.9`, Section III-B) the *sparse* attribute term dominates the score,
//! so most of that work is wasted: pairs that share few or no attributes
//! can never beat the running Top-K floor.
//!
//! This module replaces the sweep with work proportional to actual
//! attribute co-occurrence:
//!
//! - [`AttributeIndex`] maps each attribute to the posting list of
//!   auxiliary users exhibiting it (with their `l_v(A_i)` weights), plus
//!   per-user totals `|A(v)|` and `Σ l_v`. It is built once per auxiliary
//!   side and appended to incrementally as streaming sessions ingest new
//!   users.
//! - [`IndexedScorer`] scores one anonymized user by probing only the
//!   posting lists of that user's own attributes, accumulating per-pair
//!   intersection counts and min-weight sums. Both Jaccard terms are then
//!   computed *exactly* from the accumulators — `union = |A(u)| + |A(v)| -
//!   inter` and `wunion = Σ_u + Σ_v - Σ min` are the same integers the
//!   dense merge counts, so the divisions produce bit-identical `f64`s.
//! - Pairs are pruned against the [`BoundedTopK::floor`] with a cheap
//!   monotone upper bound: a pair sharing no attributes can score at most
//!   `c1·s^d_max + c2·s^s_max` (degree similarity caps at 3 and distance
//!   similarity at 2 — *exact* `f64` caps, because
//!   [`padded_cosine`](crate::similarity::padded_cosine) clamps to 1 and
//!   the min/max ratios cannot round past 1), and a pair with exact
//!   attribute similarity `s^a` at most `c1·3 + c2·2 + c3·s^a`. Only
//!   pairs whose bound beats the floor fall back to the full
//!   degree/distance computation.
//!
//! **Exactness.** Pruning never changes the outcome. `f64` multiplication
//! by a non-negative constant and `f64` addition are monotone, so the
//! bound — evaluated with the same association as
//! [`SimilarityEngine::similarity`], `(c1·s^d + c2·s^s) + c3·s^a` — is a
//! true upper bound on the rounded score. The floor of a [`BoundedTopK`]
//! never decreases, and a pair is pruned only when its bound is *strictly*
//! below the floor (an equal-score pair could still enter on the smaller-id
//! tie-break), so every pruned pair would have been rejected by
//! [`BoundedTopK::insert`] anyway. `tests/index_parity.rs` differential-
//! tests this path against the dense oracle at 1/2/8 threads.
//!
//! **Caveat.** Pruning skips pairs without computing their scores, so the
//! running [`ScoreBounds`] of a pruned pass no
//! longer sees the global minimum. Callers that feed Algorithm-2 filtering
//! (which thresholds against that minimum) must score with pruning
//! disabled — the engine does this automatically whenever
//! `AttackConfig::filtering` is set.

use dehealth_corpus::snapshot::{SectionBuf, SectionReader, SnapshotError};
use dehealth_stylometry::UserAttributes;

use crate::filter::ScoreBounds;
use crate::similarity::SimilarityEngine;
use crate::topk::BoundedTopK;
use crate::uda::UdaGraph;

/// One entry of a posting list: an auxiliary user exhibiting the
/// attribute, with its post-count weight `l_v(A_i)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Auxiliary user id (in the index's id space).
    pub user: u32,
    /// Attribute weight `l_v(A_i)`.
    pub weight: u32,
}

#[derive(Debug, Clone, Copy)]
struct UserEntry {
    /// `|A(v)|`.
    attr_count: u32,
    /// `Σ_i l_v(A_i)`.
    weight_sum: u64,
    /// `false` for absent users (no posts) — they are never scored.
    present: bool,
}

/// Attribute → posting-list inverted index over one auxiliary user
/// population.
///
/// Users are appended in increasing id order ([`Self::push_user`]), so
/// every posting list stays sorted by user id and a streaming session can
/// probe only the suffix of users ingested after a given watermark.
///
/// ```
/// use dehealth_core::index::AttributeIndex;
/// use dehealth_stylometry::UserAttributes;
///
/// let mut index = AttributeIndex::new();
/// index.push_user(&UserAttributes::from_weights(vec![(3, 2), (7, 1)]), true);
/// index.push_user(&UserAttributes::from_weights(vec![(7, 4)]), true);
/// index.push_user(&UserAttributes::new(), false); // absent user
/// assert_eq!(index.n_users(), 3);
/// assert_eq!(index.posting(7).len(), 2);
/// assert_eq!(index.posting(3).len(), 1);
/// assert_eq!(index.present_from(0), &[0, 1]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AttributeIndex {
    /// `postings[attr]` = users exhibiting `attr`, ascending by id.
    postings: Vec<Vec<Posting>>,
    users: Vec<UserEntry>,
    /// Ids of present users, ascending.
    present: Vec<u32>,
    /// Total posting entries (Σ nnz) — the index's memory footprint.
    n_postings: usize,
}

impl AttributeIndex {
    /// An empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the index over every user of a UDA graph (absent users — no
    /// posts — are registered but get no postings).
    #[must_use]
    pub fn from_uda(uda: &UdaGraph) -> Self {
        let mut index = Self::new();
        index.append_uda(uda);
        index
    }

    /// Append every user of a UDA graph, in id order — the single place
    /// encoding the presence convention (`post_counts[v] > 0`), shared by
    /// one-shot builds and streaming sessions ingesting a chunk.
    pub fn append_uda(&mut self, uda: &UdaGraph) {
        for (v, attrs) in uda.attributes.iter().enumerate() {
            self.push_user(attrs, uda.post_counts[v] > 0);
        }
    }

    /// Append the next user (id = current [`Self::n_users`]) with its
    /// attribute set. `present` marks users that actually have posts;
    /// absent users occupy an id but are never offered as candidates.
    ///
    /// Returns the id assigned to the user.
    pub fn push_user(&mut self, attrs: &UserAttributes, present: bool) -> usize {
        let id = self.users.len();
        let id32 = u32::try_from(id).expect("more than u32::MAX indexed users");
        if present {
            for &(attr, weight) in attrs.as_weights() {
                let attr = attr as usize;
                if attr >= self.postings.len() {
                    self.postings.resize_with(attr + 1, Vec::new);
                }
                self.postings[attr].push(Posting { user: id32, weight });
                self.n_postings += 1;
            }
            self.present.push(id32);
        }
        self.users.push(UserEntry {
            attr_count: u32::try_from(attrs.len()).expect("attribute count overflows u32"),
            weight_sum: attrs.weight_sum(),
            present,
        });
        id
    }

    /// Number of users registered (present and absent).
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Total posting entries across all attributes.
    #[must_use]
    pub fn n_postings(&self) -> usize {
        self.n_postings
    }

    /// The posting list of one attribute, ascending by user id (empty for
    /// attributes no user exhibits).
    #[must_use]
    pub fn posting(&self, attr: usize) -> &[Posting] {
        self.postings.get(attr).map_or(&[], Vec::as_slice)
    }

    /// Ids of present users `>= from`, ascending — the population a
    /// streaming session scores after ingesting users up to watermark
    /// `from`.
    #[must_use]
    pub fn present_from(&self, from: usize) -> &[u32] {
        let from = u32::try_from(from).expect("watermark overflows u32");
        let start = self.present.partition_point(|&v| v < from);
        &self.present[start..]
    }

    /// Serialize into a snapshot section: the per-user totals, then every
    /// posting list (see ARCHITECTURE.md for the byte layout). The
    /// `present` list and `n_postings` are derivable and not stored.
    ///
    /// # Panics
    /// Panics if the index holds more than `u32::MAX` attributes or any
    /// posting list longer than `u32::MAX` (beyond any supported corpus).
    pub fn encode(&self, buf: &mut SectionBuf) {
        buf.put_u32(u32::try_from(self.users.len()).expect("user count overflows u32"));
        for u in &self.users {
            buf.put_u32(u.attr_count);
            buf.put_u64(u.weight_sum);
            buf.put_u8(u8::from(u.present));
        }
        buf.put_u32(u32::try_from(self.postings.len()).expect("attribute count overflows u32"));
        for plist in &self.postings {
            buf.put_u32(u32::try_from(plist.len()).expect("posting list overflows u32"));
            for p in plist {
                buf.put_u32(p.user);
                buf.put_u32(p.weight);
            }
        }
    }

    /// Deserialize an index written by [`Self::encode`], revalidating
    /// every structural invariant (ascending posting lists, ids in range,
    /// postings only for present users, positive weights).
    ///
    /// # Errors
    /// [`SnapshotError::Truncated`] or [`SnapshotError::Malformed`] on
    /// malformed payloads; never panics.
    pub fn decode(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let n_users = r.take_u32()? as usize;
        if n_users > r.remaining() / 13 {
            // Each user entry occupies 13 bytes.
            return Err(SnapshotError::Malformed { context: "implausible index user count" });
        }
        let mut users = Vec::with_capacity(n_users);
        let mut present = Vec::new();
        for id in 0..n_users {
            let attr_count = r.take_u32()?;
            let weight_sum = r.take_u64()?;
            let present_flag = match r.take_u8()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::Malformed { context: "invalid presence flag" }),
            };
            if present_flag {
                present.push(id as u32);
            }
            users.push(UserEntry { attr_count, weight_sum, present: present_flag });
        }
        let n_attrs = r.take_u32()? as usize;
        if n_attrs > r.remaining() / 4 {
            return Err(SnapshotError::Malformed { context: "implausible attribute count" });
        }
        let mut postings = Vec::with_capacity(n_attrs);
        let mut n_postings = 0usize;
        for _ in 0..n_attrs {
            let len = r.take_u32()? as usize;
            if len > r.remaining() / 8 {
                return Err(SnapshotError::Malformed { context: "implausible posting length" });
            }
            let mut plist = Vec::with_capacity(len);
            for _ in 0..len {
                let user = r.take_u32()?;
                let weight = r.take_u32()?;
                if user as usize >= n_users || weight == 0 {
                    return Err(SnapshotError::Malformed { context: "invalid posting entry" });
                }
                if !users[user as usize].present {
                    return Err(SnapshotError::Malformed {
                        context: "posting references absent user",
                    });
                }
                if plist.last().is_some_and(|p: &Posting| p.user >= user) {
                    return Err(SnapshotError::Malformed { context: "posting list not ascending" });
                }
                plist.push(Posting { user, weight });
            }
            n_postings += plist.len();
            postings.push(plist);
        }
        Ok(Self { postings, users, present, n_postings })
    }
}

/// Per-pair work counters of one scoring pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairTally {
    /// Pairs fully scored (degree + distance + attribute terms).
    pub scored: u64,
    /// Pairs skipped because their upper bound could not beat the Top-K
    /// floor.
    pub pruned: u64,
}

impl std::ops::AddAssign for PairTally {
    fn add_assign(&mut self, rhs: Self) {
        self.scored += rhs.scored;
        self.pruned += rhs.pruned;
    }
}

/// Reusable per-worker accumulators for [`IndexedScorer::score_user`].
///
/// Dense over the scored auxiliary range but reset sparsely (only touched
/// slots are cleared), so a worker reuses one scratch across its whole
/// block without per-user `O(|V2|)` zeroing.
#[derive(Debug, Clone)]
pub struct IndexScratch {
    /// `|A(u) ∩ A(v)|` per local auxiliary user.
    inter: Vec<u32>,
    /// `Σ min(l_u, l_v)` over the shared attributes, per local user.
    min_sum: Vec<u64>,
    /// Local ids with `inter > 0`, in first-touch order.
    touched: Vec<u32>,
}

impl IndexScratch {
    fn new(n_local: usize) -> Self {
        Self {
            inter: vec![0; n_local],
            min_sum: vec![0; n_local],
            touched: Vec::with_capacity(n_local.min(1024)),
        }
    }
}

/// Sparse scorer: drives one [`SimilarityEngine`] through an
/// [`AttributeIndex`] instead of the all-pairs sweep.
///
/// `from` anchors the engine's auxiliary id space inside the index: the
/// engine's local auxiliary user `v` is index user `from + v`. A one-shot
/// attack uses `from = 0` with an index over the whole auxiliary side; a
/// streaming session passes the pre-ingest watermark so only the freshly
/// appended posting suffixes are probed.
#[derive(Debug)]
pub struct IndexedScorer<'e, 'i> {
    sim: &'e SimilarityEngine<'e>,
    index: &'i AttributeIndex,
    from: usize,
    prune: bool,
    /// `c1·s^d_max + c2·s^s_max`, evaluated with the same association as
    /// the score itself (negative weights contribute their maximum, 0).
    struct_bound: f64,
}

impl<'e, 'i> IndexedScorer<'e, 'i> {
    /// Create a scorer over `sim`'s auxiliary side, which must occupy the
    /// index ids `from..index.n_users()`.
    ///
    /// `prune` enables upper-bound pruning. Disable it when the caller
    /// needs exact [`ScoreBounds`] over *all* present pairs (Algorithm-2
    /// filtering); scoring stays accumulator-driven either way.
    ///
    /// # Panics
    /// Panics if the index tail does not match the engine's auxiliary
    /// population.
    #[must_use]
    pub fn new(
        sim: &'e SimilarityEngine<'e>,
        index: &'i AttributeIndex,
        from: usize,
        prune: bool,
    ) -> Self {
        assert_eq!(
            index.n_users() - from,
            sim.n_aux(),
            "index tail (from {from}) does not cover the engine's auxiliary side"
        );
        let w = sim.weights();
        let td = if w.c1 >= 0.0 { w.c1 * 3.0 } else { 0.0 };
        let ts = if w.c2 >= 0.0 { w.c2 * 2.0 } else { 0.0 };
        Self { sim, index, from, prune, struct_bound: td + ts }
    }

    /// Fresh accumulators sized for this scorer's auxiliary range.
    #[must_use]
    pub fn scratch(&self) -> IndexScratch {
        IndexScratch::new(self.index.n_users() - self.from)
    }

    /// `true` if upper-bound pruning is enabled.
    #[must_use]
    pub fn prunes(&self) -> bool {
        self.prune
    }

    /// Score anonymized user `u` against every present auxiliary user of
    /// this scorer's range, feeding `top` (candidate ids in *index* id
    /// space) and `bounds` exactly like the dense sweep would — except
    /// that pruned pairs are skipped entirely.
    pub fn score_user(
        &self,
        u: usize,
        scratch: &mut IndexScratch,
        top: &mut BoundedTopK,
        bounds: &mut ScoreBounds,
    ) -> PairTally {
        let w = self.sim.weights();
        let anon_attrs = &self.sim.anon_uda().attributes[u];
        let u_len = anon_attrs.len() as u64;
        let u_wsum = anon_attrs.weight_sum();

        // Probe the posting list of each of u's attributes, accumulating
        // intersection counts and min-weight sums per touched pair.
        for &(attr, x) in anon_attrs.as_weights() {
            let plist = self.index.posting(attr as usize);
            let start = plist.partition_point(|p| (p.user as usize) < self.from);
            for p in &plist[start..] {
                let lv = p.user as usize - self.from;
                if scratch.inter[lv] == 0 {
                    scratch.touched.push(lv as u32);
                }
                scratch.inter[lv] += 1;
                scratch.min_sum[lv] += u64::from(x.min(p.weight));
            }
        }

        let mut tally = PairTally::default();

        // Shared-attribute pairs: both Jaccard terms come exactly from the
        // accumulators, then the structural upper bound decides whether the
        // degree/distance terms are worth computing at all.
        for k in 0..scratch.touched.len() {
            let lv = scratch.touched[k] as usize;
            let v = self.from + lv;
            let entry = self.index.users[v];
            debug_assert!(entry.present, "absent users have no posts, hence no postings");
            let inter = u64::from(scratch.inter[lv]);
            let union = u_len + u64::from(entry.attr_count) - inter;
            let min_sum = scratch.min_sum[lv];
            let wunion = u_wsum + entry.weight_sum - min_sum;
            // Same integers, same divisions, same addition order as
            // `UserAttributes::jaccard + weighted_jaccard`.
            let s_attr = inter as f64 / union as f64 + min_sum as f64 / wunion as f64;
            let attr_term = w.c3 * s_attr;
            if self.prune {
                if let Some(floor) = top.floor() {
                    if self.struct_bound + attr_term < floor {
                        tally.pruned += 1;
                        continue;
                    }
                }
            }
            let s = (w.c1 * self.sim.degree_similarity(u, lv)
                + w.c2 * self.sim.distance_similarity(u, lv))
                + attr_term;
            top.insert(v, s);
            bounds.observe(s);
            tally.scored += 1;
        }

        // Zero-shared pairs: the attribute term is exactly 0 (both Jaccard
        // conventions give 0.0 on an empty intersection), matching the
        // dense merge bit for bit.
        let zero_term = w.c3 * 0.0;
        for &v32 in self.index.present_from(self.from) {
            let lv = v32 as usize - self.from;
            if scratch.inter[lv] != 0 {
                continue;
            }
            if self.prune {
                if let Some(floor) = top.floor() {
                    if self.struct_bound + zero_term < floor {
                        tally.pruned += 1;
                        continue;
                    }
                }
            }
            let s = (w.c1 * self.sim.degree_similarity(u, lv)
                + w.c2 * self.sim.distance_similarity(u, lv))
                + zero_term;
            top.insert(v32 as usize, s);
            bounds.observe(s);
            tally.scored += 1;
        }

        // Sparse reset: clear only the touched slots.
        for &lv32 in &scratch.touched {
            let lv = lv32 as usize;
            scratch.inter[lv] = 0;
            scratch.min_sum[lv] = 0;
        }
        scratch.touched.clear();
        tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::SimilarityWeights;
    use dehealth_corpus::{Forum, Post};

    fn uda(posts: Vec<Post>, n_users: usize, n_threads: usize) -> UdaGraph {
        UdaGraph::build(&Forum::from_posts(n_users, n_threads, posts))
    }

    fn p(author: usize, thread: usize, text: &str) -> Post {
        Post { author, thread, text: text.into() }
    }

    fn texts() -> Vec<&'static str> {
        vec![
            "I realy hate this migrane pain!",
            "rest helps a lot, the doctor said so.",
            "20 mg twice a day & water",
            "she was SO tired yesterday?!",
            "ok",
            "my doctor prescribed rest and the pain went away after 3 days",
        ]
    }

    /// A pair of UDA graphs with absent users on the auxiliary side.
    fn sides() -> (UdaGraph, UdaGraph) {
        let anon_posts: Vec<Post> =
            texts().iter().enumerate().map(|(i, t)| p(i % 4, i % 3, t)).collect();
        let mut aux_posts: Vec<Post> =
            texts().iter().enumerate().map(|(i, t)| p(i % 5, i % 3, t)).collect();
        aux_posts.push(p(6, 2, "extra words entirely"));
        // Users 5 of 7 has no posts: absent.
        (uda(anon_posts, 4, 3), uda(aux_posts, 7, 3))
    }

    fn dense_topk(sim: &SimilarityEngine<'_>, u: usize, k: usize) -> (Vec<(usize, f64)>, usize) {
        let mut top = BoundedTopK::new(k);
        let mut n = 0;
        for (v, s) in sim.scores_for(u) {
            top.insert(v, s);
            n += 1;
        }
        (top.into_sorted_entries(), n)
    }

    #[test]
    fn index_registers_all_users_and_skips_absent_postings() {
        let (_, aux) = sides();
        let index = AttributeIndex::from_uda(&aux);
        assert_eq!(index.n_users(), 7);
        assert_eq!(index.present_from(0).len(), 6);
        assert!(!index.present_from(0).contains(&5));
        assert!(index.n_postings() > 0);
        // Posting lists are ascending by user id.
        for attr in 0..2048 {
            let plist = index.posting(attr);
            assert!(plist.windows(2).all(|w| w[0].user < w[1].user));
            assert!(plist.iter().all(|p| p.user != 5), "absent user in posting {attr}");
        }
    }

    #[test]
    fn indexed_matches_dense_bit_for_bit_without_pruning() {
        let (anon, aux) = sides();
        for weights in [
            SimilarityWeights::default(),
            SimilarityWeights { c1: 0.3, c2: 0.3, c3: 0.4 },
            SimilarityWeights { c1: 0.0, c2: 0.0, c3: 1.0 },
        ] {
            let sim = SimilarityEngine::new(&anon, &aux, weights, 3);
            let index = sim.attribute_index();
            let scorer = IndexedScorer::new(&sim, &index, 0, false);
            let mut scratch = scorer.scratch();
            for u in 0..sim.n_anon() {
                let mut top = BoundedTopK::new(4);
                let mut bounds = ScoreBounds::new();
                let tally = scorer.score_user(u, &mut scratch, &mut top, &mut bounds);
                let (dense, n_present) = dense_topk(&sim, u, 4);
                let sparse = top.into_sorted_entries();
                assert_eq!(tally.scored, n_present as u64);
                assert_eq!(tally.pruned, 0);
                assert_eq!(sparse.len(), dense.len());
                for (a, b) in sparse.iter().zip(&dense) {
                    assert_eq!(a.0, b.0, "candidate diverges for u={u}");
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "score bits diverge for u={u}");
                }
            }
        }
    }

    #[test]
    fn pruning_skips_pairs_but_keeps_the_same_candidates() {
        let (anon, aux) = sides();
        let sim = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 3);
        let index = sim.attribute_index();
        let pruned_scorer = IndexedScorer::new(&sim, &index, 0, true);
        assert!(pruned_scorer.prunes());
        let mut scratch = pruned_scorer.scratch();
        let mut total = PairTally::default();
        for u in 0..sim.n_anon() {
            let mut top = BoundedTopK::new(2);
            let mut bounds = ScoreBounds::new();
            let tally = pruned_scorer.score_user(u, &mut scratch, &mut top, &mut bounds);
            total += tally;
            let (dense, n_present) = dense_topk(&sim, u, 2);
            assert_eq!(tally.scored + tally.pruned, n_present as u64, "every pair accounted");
            let sparse = top.into_sorted_entries();
            for (a, b) in sparse.iter().zip(&dense) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
        assert!(total.scored > 0);
    }

    #[test]
    fn zero_k_heap_prunes_every_pair() {
        let (anon, aux) = sides();
        let sim = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 3);
        let index = sim.attribute_index();
        let scorer = IndexedScorer::new(&sim, &index, 0, true);
        let mut scratch = scorer.scratch();
        let mut top = BoundedTopK::new(0);
        let mut bounds = ScoreBounds::new();
        let tally = scorer.score_user(0, &mut scratch, &mut top, &mut bounds);
        assert_eq!(tally.scored, 0);
        assert!(tally.pruned > 0);
        assert!(bounds.is_empty());
    }

    #[test]
    fn watermark_scores_only_the_posting_suffix() {
        // Global index over 2 + aux users; the engine sees only the tail.
        let (anon, aux) = sides();
        let mut index = AttributeIndex::new();
        index.push_user(&dehealth_stylometry::UserAttributes::from_weights(vec![(1, 9)]), true);
        index.push_user(&dehealth_stylometry::UserAttributes::new(), false);
        let from = index.n_users();
        index.append_uda(&aux);
        let sim = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 3);
        let scorer = IndexedScorer::new(&sim, &index, from, false);
        let mut scratch = scorer.scratch();
        for u in 0..sim.n_anon() {
            let mut top = BoundedTopK::new(10);
            let mut bounds = ScoreBounds::new();
            scorer.score_user(u, &mut scratch, &mut top, &mut bounds);
            let entries = top.into_sorted_entries();
            // Candidate ids live in the global index space, offset by the
            // watermark, and never include pre-watermark users.
            assert!(entries.iter().all(|&(v, _)| v >= from));
            let (dense, _) = dense_topk(&sim, u, 10);
            let expect: Vec<(usize, f64)> = dense.iter().map(|&(v, s)| (v + from, s)).collect();
            assert_eq!(entries.len(), expect.len());
            for (a, b) in entries.iter().zip(&expect) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }

    #[test]
    fn scratch_resets_between_users() {
        let (anon, aux) = sides();
        let sim = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 3);
        let index = sim.attribute_index();
        let scorer = IndexedScorer::new(&sim, &index, 0, false);
        let mut shared = scorer.scratch();
        // Scoring u = 0 twice with the same scratch must give identical
        // results (a dirty scratch would double the accumulators).
        let run = |scratch: &mut IndexScratch| {
            let mut top = BoundedTopK::new(5);
            let mut bounds = ScoreBounds::new();
            scorer.score_user(0, scratch, &mut top, &mut bounds);
            top.into_sorted_entries()
        };
        let first = run(&mut shared);
        let second = run(&mut shared);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn mismatched_watermark_is_rejected() {
        let (anon, aux) = sides();
        let sim = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 3);
        let index = sim.attribute_index();
        let _ = IndexedScorer::new(&sim, &index, 1, false);
    }
}
