//! Inverted-index sparse candidate scoring.
//!
//! The all-pairs sweep of [`SimilarityEngine::scores_for`] touches every
//! `(anonymized, auxiliary)` pair and merges both users' attribute lists
//! per pair. With the paper's default weights (`c1, c2, c3 = 0.05, 0.05,
//! 0.9`, Section III-B) the *sparse* attribute term dominates the score,
//! so most of that work is wasted: pairs that share few or no attributes
//! can never beat the running Top-K floor.
//!
//! This module replaces the sweep with work proportional to actual
//! attribute co-occurrence:
//!
//! - [`AttributeIndex`] maps each attribute to the posting list of
//!   auxiliary users exhibiting it (with their `l_v(A_i)` weights), plus
//!   per-user totals `|A(v)|` and `Σ l_v`. It is built once per auxiliary
//!   side and appended to incrementally as streaming sessions ingest new
//!   users.
//! - [`IndexedScorer`] scores one anonymized user by probing only the
//!   posting lists of that user's own attributes, accumulating per-pair
//!   intersection counts and min-weight sums. Both Jaccard terms are then
//!   computed *exactly* from the accumulators — `union = |A(u)| + |A(v)| -
//!   inter` and `wunion = Σ_u + Σ_v - Σ min` are the same integers the
//!   dense merge counts, so the divisions produce bit-identical `f64`s.
//! - Posting-list *skew* is handled by a hot/rare split at scorer
//!   construction: attributes whose lists touch ≥ 1/8th of the present
//!   population (stylometric attribute sets are projections of one shared
//!   feature space, so common features produce lists of length ≈ `|V2|`)
//!   move off the probe path into per-user bitmask rows and a transposed
//!   `(slot, weight)` CSR. Intersections then come from popcounts,
//!   pruning uses a monotone upper bound on the weighted term, and only
//!   surviving pairs pay the exact hot merge — keeping per-anonymized-user
//!   work near `O(rare postings + |V2|·words)` instead of
//!   `O(Σ hot-list length)`.
//! - Pairs are pruned against the [`BoundedTopK::floor`] with a cheap
//!   monotone upper bound: a pair sharing no attributes can score at most
//!   `c1·s^d_max + c2·s^s_max` (degree similarity caps at 3 and distance
//!   similarity at 2 — *exact* `f64` caps, because
//!   [`padded_cosine`](crate::similarity::padded_cosine) clamps to 1 and
//!   the min/max ratios cannot round past 1), and a pair with exact
//!   attribute similarity `s^a` at most `c1·3 + c2·2 + c3·s^a`. Only
//!   pairs whose bound beats the floor fall back to the full
//!   degree/distance computation.
//!
//! **Exactness.** Pruning never changes the outcome. `f64` multiplication
//! by a non-negative constant and `f64` addition are monotone, so the
//! bound — evaluated with the same association as
//! [`SimilarityEngine::similarity`], `(c1·s^d + c2·s^s) + c3·s^a` — is a
//! true upper bound on the rounded score. The floor of a [`BoundedTopK`]
//! never decreases, and a pair is pruned only when its bound is *strictly*
//! below the floor (an equal-score pair could still enter on the smaller-id
//! tie-break), so every pruned pair would have been rejected by
//! [`BoundedTopK::insert`] anyway. `tests/index_parity.rs` differential-
//! tests this path against the dense oracle at 1/2/8 threads.
//!
//! **Caveat.** Pruning skips pairs without computing their scores, so the
//! running [`ScoreBounds`] of a pruned pass no
//! longer sees the global minimum. Callers that feed Algorithm-2 filtering
//! (which thresholds against that minimum) must score with pruning
//! disabled — the engine does this automatically whenever
//! `AttackConfig::filtering` is set.

use dehealth_corpus::snapshot::{SectionBuf, SectionReader, SectionWrite, SnapshotError};
use dehealth_mapped::SharedBytes;
use dehealth_stylometry::UserAttributes;

use crate::arena::{ArenaCastError, ArenaView};
use crate::filter::ScoreBounds;
use crate::similarity::{QuantizedStructural, SimilarityEngine};
use crate::topk::BoundedTopK;
use crate::uda::UdaGraph;

/// One entry of a posting list: an auxiliary user exhibiting the
/// attribute, with its post-count weight `l_v(A_i)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Auxiliary user id (in the index's id space).
    pub user: u32,
    /// Attribute weight `l_v(A_i)`.
    pub weight: u32,
}

/// One attribute's posting list, borrowed from the index: parallel
/// user-id and weight arrays (users strictly ascending).
#[derive(Debug, Clone, Copy)]
pub struct PostingsRef<'a> {
    /// Auxiliary user ids exhibiting the attribute, strictly ascending.
    pub users: &'a [u32],
    /// The matching weights `l_v(A_i)`, parallel to `users`.
    pub weights: &'a [u32],
}

impl<'a> PostingsRef<'a> {
    const EMPTY: PostingsRef<'static> = PostingsRef { users: &[], weights: &[] };

    /// Number of postings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// `true` when no user exhibits the attribute.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The `i`-th posting.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn get(&self, i: usize) -> Posting {
        Posting { user: self.users[i], weight: self.weights[i] }
    }

    /// Iterate the postings in ascending user order.
    pub fn iter(&self) -> impl Iterator<Item = Posting> + 'a {
        self.users.iter().zip(self.weights).map(|(&user, &weight)| Posting { user, weight })
    }

    /// The suffix of postings with `user >= from` — what a streaming
    /// session probes after a watermark.
    #[must_use]
    pub fn suffix(&self, from: u32) -> PostingsRef<'a> {
        let start = self.users.partition_point(|&u| u < from);
        PostingsRef { users: &self.users[start..], weights: &self.weights[start..] }
    }
}

/// One attribute's appendable posting list (the building-side storage).
#[derive(Debug, Clone, Default)]
struct AttrPostings {
    users: Vec<u32>,
    weights: Vec<u32>,
}

/// Posting storage: appendable per-attribute lists while building or
/// streaming, or a flattened CSR over (possibly snapshot-borrowed)
/// arenas once decoded. [`AttributeIndex::posting`] presents both as
/// [`PostingsRef`]s, so readers never care which they got.
#[derive(Debug, Clone)]
enum PostingStore {
    Dynamic { lists: Vec<AttrPostings>, n_postings: usize },
    Csr { starts: ArenaView<u64>, users: ArenaView<u32>, weights: ArenaView<u32> },
}

impl Default for PostingStore {
    fn default() -> Self {
        PostingStore::Dynamic { lists: Vec::new(), n_postings: 0 }
    }
}

/// Attribute → posting-list inverted index over one auxiliary user
/// population.
///
/// Users are appended in increasing id order ([`Self::push_user`]), so
/// every posting list stays sorted by user id and a streaming session can
/// probe only the suffix of users ingested after a given watermark.
///
/// The per-user tables and posting arenas are **storage-generic**
/// ([`ArenaView`]): a freshly built index owns its `Vec`s, while an
/// index decoded from a v2 snapshot through [`Self::decode_v2`] borrows
/// them straight out of the (typically memory-mapped) file. Appending
/// promotes borrowed storage to owned copy-on-write.
///
/// ```
/// use dehealth_core::index::AttributeIndex;
/// use dehealth_stylometry::UserAttributes;
///
/// let mut index = AttributeIndex::new();
/// index.push_user(&UserAttributes::from_weights(vec![(3, 2), (7, 1)]), true);
/// index.push_user(&UserAttributes::from_weights(vec![(7, 4)]), true);
/// index.push_user(&UserAttributes::new(), false); // absent user
/// assert_eq!(index.n_users(), 3);
/// assert_eq!(index.posting(7).len(), 2);
/// assert_eq!(index.posting(3).len(), 1);
/// assert_eq!(index.present_from(0), &[0, 1]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AttributeIndex {
    /// Per-user `|A(v)|`.
    attr_counts: ArenaView<u32>,
    /// Per-user `Σ_i l_v(A_i)`.
    weight_sums: ArenaView<u64>,
    /// Per-user presence flag (0/1); absent users — no posts — are never
    /// scored.
    present_flags: ArenaView<u8>,
    /// Ids of present users, ascending.
    present: ArenaView<u32>,
    /// `posting(attr)` = users exhibiting `attr`, ascending by id.
    postings: PostingStore,
}

impl AttributeIndex {
    /// An empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the index over every user of a UDA graph (absent users — no
    /// posts — are registered but get no postings).
    #[must_use]
    pub fn from_uda(uda: &UdaGraph) -> Self {
        let mut index = Self::new();
        index.append_uda(uda);
        index
    }

    /// Append every user of a UDA graph, in id order — the single place
    /// encoding the presence convention (`post_counts[v] > 0`), shared by
    /// one-shot builds and streaming sessions ingesting a chunk.
    pub fn append_uda(&mut self, uda: &UdaGraph) {
        self.append_uda_suffix(uda, 0);
    }

    /// Append the users `from..` of a UDA graph, in id order — the
    /// incremental-ingest path of a corpus that already indexed the first
    /// `from` users of the same (merged) graph (in which case `from`
    /// equals [`Self::n_users`] and ids line up; a streaming session
    /// instead appends whole chunk-local graphs via [`Self::append_uda`],
    /// where ids are offset by the users already indexed).
    pub fn append_uda_suffix(&mut self, uda: &UdaGraph, from: usize) {
        for (v, attrs) in uda.attributes.iter().enumerate().skip(from) {
            self.push_user(attrs, uda.post_counts[v] > 0);
        }
    }

    /// Append the next user (id = current [`Self::n_users`]) with its
    /// attribute set. `present` marks users that actually have posts;
    /// absent users occupy an id but are never offered as candidates.
    /// Snapshot-borrowed storage is promoted to owned first
    /// (copy-on-write).
    ///
    /// Returns the id assigned to the user.
    pub fn push_user(&mut self, attrs: &UserAttributes, present: bool) -> usize {
        let id = self.n_users();
        let id32 = u32::try_from(id).expect("more than u32::MAX indexed users");
        let (lists, n_postings) = self.dynamic_postings();
        if present {
            for &(attr, weight) in attrs.as_weights() {
                let attr = attr as usize;
                if attr >= lists.len() {
                    lists.resize_with(attr + 1, AttrPostings::default);
                }
                lists[attr].users.push(id32);
                lists[attr].weights.push(weight);
                *n_postings += 1;
            }
            self.present.to_mut().push(id32);
        }
        self.attr_counts
            .to_mut()
            .push(u32::try_from(attrs.len()).expect("attribute count overflows u32"));
        self.weight_sums.to_mut().push(attrs.weight_sum());
        self.present_flags.to_mut().push(u8::from(present));
        id
    }

    /// The appendable posting lists, promoting decoded CSR storage (owned
    /// or snapshot-borrowed) into per-attribute `Vec`s first.
    fn dynamic_postings(&mut self) -> (&mut Vec<AttrPostings>, &mut usize) {
        if let PostingStore::Csr { starts, users, weights } = &self.postings {
            let starts = starts.as_slice();
            let (users, weights) = (users.as_slice(), weights.as_slice());
            let mut lists = Vec::with_capacity(starts.len().saturating_sub(1));
            for w in starts.windows(2) {
                let range = w[0] as usize..w[1] as usize;
                lists.push(AttrPostings {
                    users: users[range.clone()].to_vec(),
                    weights: weights[range].to_vec(),
                });
            }
            self.postings = PostingStore::Dynamic { lists, n_postings: users.len() };
        }
        match &mut self.postings {
            PostingStore::Dynamic { lists, n_postings } => (lists, n_postings),
            PostingStore::Csr { .. } => unreachable!("promoted above"),
        }
    }

    /// Number of users registered (present and absent).
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.attr_counts.len()
    }

    /// Number of attribute slots (highest exhibited attribute + 1).
    #[must_use]
    pub fn n_attrs(&self) -> usize {
        match &self.postings {
            PostingStore::Dynamic { lists, .. } => lists.len(),
            PostingStore::Csr { starts, .. } => starts.len().saturating_sub(1),
        }
    }

    /// Total posting entries across all attributes.
    #[must_use]
    pub fn n_postings(&self) -> usize {
        match &self.postings {
            PostingStore::Dynamic { n_postings, .. } => *n_postings,
            PostingStore::Csr { users, .. } => users.len(),
        }
    }

    /// `|A(v)|` and `Σ_i l_v(A_i)` of one user.
    ///
    /// # Panics
    /// Panics when `v` is out of range.
    #[must_use]
    pub fn user_totals(&self, v: usize) -> (u32, u64) {
        (self.attr_counts.as_slice()[v], self.weight_sums.as_slice()[v])
    }

    /// `true` when user `v` has posts (and therefore postings).
    ///
    /// # Panics
    /// Panics when `v` is out of range.
    #[must_use]
    pub fn is_present(&self, v: usize) -> bool {
        self.present_flags.as_slice()[v] != 0
    }

    /// The posting list of one attribute, ascending by user id (empty for
    /// attributes no user exhibits).
    #[must_use]
    pub fn posting(&self, attr: usize) -> PostingsRef<'_> {
        match &self.postings {
            PostingStore::Dynamic { lists, .. } => {
                lists.get(attr).map_or(PostingsRef::EMPTY, |l| PostingsRef {
                    users: &l.users,
                    weights: &l.weights,
                })
            }
            PostingStore::Csr { starts, users, weights } => {
                let starts = starts.as_slice();
                if attr + 1 >= starts.len() {
                    return PostingsRef::EMPTY;
                }
                let range = starts[attr] as usize..starts[attr + 1] as usize;
                PostingsRef {
                    users: &users.as_slice()[range.clone()],
                    weights: &weights.as_slice()[range],
                }
            }
        }
    }

    /// Ids of present users `>= from`, ascending — the population a
    /// streaming session scores after ingesting users up to watermark
    /// `from`.
    #[must_use]
    pub fn present_from(&self, from: usize) -> &[u32] {
        let from = u32::try_from(from).expect("watermark overflows u32");
        let present = self.present.as_slice();
        let start = present.partition_point(|&v| v < from);
        &present[start..]
    }

    /// `true` when any arena of this index borrows a loaded snapshot's
    /// bytes instead of owning them.
    #[must_use]
    pub fn is_borrowed(&self) -> bool {
        let csr_borrowed = match &self.postings {
            PostingStore::Dynamic { .. } => false,
            PostingStore::Csr { starts, users, weights } => {
                starts.is_borrowed() || users.is_borrowed() || weights.is_borrowed()
            }
        };
        csr_borrowed
            || self.attr_counts.is_borrowed()
            || self.weight_sums.is_borrowed()
            || self.present_flags.is_borrowed()
            || self.present.is_borrowed()
    }

    /// `(resident, borrowed)` arena bytes: heap bytes this index keeps
    /// resident vs. bytes it reads straight out of a loaded snapshot.
    #[must_use]
    pub fn arena_bytes(&self) -> (usize, usize) {
        let views = [
            (self.attr_counts.resident_bytes(), self.attr_counts.byte_len()),
            (self.weight_sums.resident_bytes(), self.weight_sums.byte_len()),
            (self.present_flags.resident_bytes(), self.present_flags.byte_len()),
            (self.present.resident_bytes(), self.present.byte_len()),
        ];
        let (mut resident, mut total) =
            views.iter().fold((0, 0), |(r, t), &(vr, vt)| (r + vr, t + vt));
        match &self.postings {
            PostingStore::Dynamic { lists, n_postings } => {
                resident += n_postings * 8 + lists.len() * std::mem::size_of::<AttrPostings>();
                total += n_postings * 8 + lists.len() * std::mem::size_of::<AttrPostings>();
            }
            PostingStore::Csr { starts, users, weights } => {
                for (r, t) in [
                    (starts.resident_bytes(), starts.byte_len()),
                    (users.resident_bytes(), users.byte_len()),
                    (weights.resident_bytes(), weights.byte_len()),
                ] {
                    resident += r;
                    total += t;
                }
            }
        }
        (resident, total - resident)
    }

    /// Serialize into a v1 snapshot section: the per-user totals, then
    /// every posting list (see ARCHITECTURE.md for the byte layout). The
    /// `present` list and `n_postings` are derivable and not stored.
    /// Kept for compatibility fixtures; new snapshots use
    /// [`Self::encode_v2`].
    ///
    /// # Panics
    /// Panics if the index holds more than `u32::MAX` attributes or any
    /// posting list longer than `u32::MAX` (beyond any supported corpus).
    pub fn encode(&self, buf: &mut SectionBuf) {
        let n_users = self.n_users();
        buf.put_u32(u32::try_from(n_users).expect("user count overflows u32"));
        let attr_counts = self.attr_counts.as_slice();
        let weight_sums = self.weight_sums.as_slice();
        let present_flags = self.present_flags.as_slice();
        for v in 0..n_users {
            buf.put_u32(attr_counts[v]);
            buf.put_u64(weight_sums[v]);
            buf.put_u8(present_flags[v]);
        }
        buf.put_u32(u32::try_from(self.n_attrs()).expect("attribute count overflows u32"));
        for attr in 0..self.n_attrs() {
            let plist = self.posting(attr);
            buf.put_u32(u32::try_from(plist.len()).expect("posting list overflows u32"));
            for p in plist.iter() {
                buf.put_u32(p.user);
                buf.put_u32(p.weight);
            }
        }
    }

    /// Deserialize an index written by [`Self::encode`] (the v1 payload
    /// schema), revalidating every structural invariant (ascending
    /// posting lists, ids in range, postings only for present users,
    /// positive weights). Always copies — the v1 layout is unaligned.
    ///
    /// # Errors
    /// [`SnapshotError::Truncated`] or [`SnapshotError::Malformed`] on
    /// malformed payloads; never panics.
    pub fn decode(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let n_users = r.take_u32()? as usize;
        if n_users > r.remaining() / 13 {
            // Each user entry occupies 13 bytes.
            return Err(SnapshotError::Malformed { context: "implausible index user count" });
        }
        let mut attr_counts = Vec::with_capacity(n_users);
        let mut weight_sums = Vec::with_capacity(n_users);
        let mut present_flags = Vec::with_capacity(n_users);
        let mut present = Vec::new();
        for id in 0..n_users {
            attr_counts.push(r.take_u32()?);
            weight_sums.push(r.take_u64()?);
            let flag = r.take_u8()?;
            if flag > 1 {
                return Err(SnapshotError::Malformed { context: "invalid presence flag" });
            }
            if flag == 1 {
                present.push(id as u32);
            }
            present_flags.push(flag);
        }
        let n_attrs = r.take_u32()? as usize;
        if n_attrs > r.remaining() / 4 {
            return Err(SnapshotError::Malformed { context: "implausible attribute count" });
        }
        let mut starts = Vec::with_capacity(n_attrs + 1);
        let mut users: Vec<u32> = Vec::new();
        let mut weights: Vec<u32> = Vec::new();
        starts.push(0u64);
        for _ in 0..n_attrs {
            let len = r.take_u32()? as usize;
            if len > r.remaining() / 8 {
                return Err(SnapshotError::Malformed { context: "implausible posting length" });
            }
            let list_start = users.len();
            for _ in 0..len {
                let user = r.take_u32()?;
                let weight = r.take_u32()?;
                if user as usize >= n_users || weight == 0 {
                    return Err(SnapshotError::Malformed { context: "invalid posting entry" });
                }
                if present_flags[user as usize] == 0 {
                    return Err(SnapshotError::Malformed {
                        context: "posting references absent user",
                    });
                }
                if users.len() > list_start && users[users.len() - 1] >= user {
                    return Err(SnapshotError::Malformed { context: "posting list not ascending" });
                }
                users.push(user);
                weights.push(weight);
            }
            starts.push(users.len() as u64);
        }
        Ok(Self {
            attr_counts: attr_counts.into(),
            weight_sums: weight_sums.into(),
            present_flags: present_flags.into(),
            present: present.into(),
            postings: PostingStore::Csr {
                starts: starts.into(),
                users: users.into(),
                weights: weights.into(),
            },
        })
    }

    /// Serialize into a v2 snapshot section: eight `u64` counts, then the
    /// per-user tables and the flattened CSR posting arenas, each padded
    /// to an 8-byte payload offset (see ARCHITECTURE.md for the byte
    /// layout). Unlike the v1 schema this persists the `present` id list
    /// too, so a zero-copy load derives nothing.
    pub fn encode_v2<W: SectionWrite>(&self, buf: &mut W) {
        let n_attrs = self.n_attrs();
        buf.put_u64(self.n_users() as u64);
        buf.put_u64(n_attrs as u64);
        buf.put_u64(self.n_postings() as u64);
        buf.put_u64(self.present.len() as u64);
        buf.put_u32_arena(self.attr_counts.as_slice());
        buf.put_u64_arena(self.weight_sums.as_slice());
        buf.align8();
        for &f in self.present_flags.as_slice() {
            buf.put_u8(f);
        }
        buf.put_u32_arena(self.present.as_slice());
        match &self.postings {
            PostingStore::Csr { starts, users, weights } => {
                buf.put_u64_arena(starts.as_slice());
                buf.put_u32_arena(users.as_slice());
                buf.put_u32_arena(weights.as_slice());
            }
            PostingStore::Dynamic { lists, n_postings } => {
                buf.align8();
                let mut at = 0u64;
                buf.put_u64(at);
                for l in lists {
                    at += l.users.len() as u64;
                    buf.put_u64(at);
                }
                debug_assert_eq!(at as usize, *n_postings);
                buf.align8();
                for l in lists {
                    for &u in &l.users {
                        buf.put_u32(u);
                    }
                }
                buf.align8();
                for l in lists {
                    for &w in &l.weights {
                        buf.put_u32(w);
                    }
                }
            }
        }
    }

    /// Deserialize an index written by [`Self::encode_v2`]. With a
    /// `backing`, every arena becomes a zero-copy [`ArenaView`] borrowing
    /// the snapshot's bytes (the v2 alignment guarantee makes the casts
    /// succeed); without one — or on targets that cannot cast
    /// little-endian bytes in place — the arenas are copied out instead.
    /// Either way every structural invariant of [`Self::decode`] is
    /// re-validated, so downstream scorers can index unchecked.
    ///
    /// # Errors
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Malformed`] on
    /// malformed payloads, [`SnapshotError::Misaligned`] when an arena
    /// that the format guarantees aligned is not (corrupt framing or an
    /// unaligned backing); never panics.
    pub fn decode_v2(
        r: &mut SectionReader<'_>,
        backing: Option<&SharedBytes>,
    ) -> Result<Self, SnapshotError> {
        let limit = r.remaining();
        let n_users = r.take_len(limit)?;
        let n_attrs = r.take_len(limit)?;
        let n_postings = r.take_len(limit)?;
        let n_present = r.take_len(limit)?;
        if n_present > n_users || n_postings > limit / 8 {
            return Err(SnapshotError::Malformed { context: "implausible index counts" });
        }
        let attr_counts = take_view::<u32>(r, backing, n_users, "index attr_counts arena")?;
        let weight_sums = take_view::<u64>(r, backing, n_users, "index weight_sums arena")?;
        let flags_bytes = r.take_arena(n_users)?;
        let present_flags = ArenaView::<u8>::from_region(backing, flags_bytes)
            .map_err(|e| cast_error(e, "index present_flags arena"))?;
        let present = take_view::<u32>(r, backing, n_present, "index present arena")?;
        let starts = take_view::<u64>(
            r,
            backing,
            n_attrs
                .checked_add(1)
                .ok_or(SnapshotError::Malformed { context: "implausible index counts" })?,
            "index posting starts arena",
        )?;
        let users = take_view::<u32>(r, backing, n_postings, "index posting users arena")?;
        let weights = take_view::<u32>(r, backing, n_postings, "index posting weights arena")?;

        // Validation scans — the same invariants the v1 decoder enforces,
        // over the (possibly borrowed) arenas, without copying anything.
        {
            let flags = present_flags.as_slice();
            if flags.iter().any(|&f| f > 1) {
                return Err(SnapshotError::Malformed { context: "invalid presence flag" });
            }
            let present = present.as_slice();
            let mut expect = present.iter();
            for (id, &f) in flags.iter().enumerate() {
                if f == 1 && expect.next() != Some(&(id as u32)) {
                    return Err(SnapshotError::Malformed {
                        context: "present list disagrees with presence flags",
                    });
                }
            }
            if expect.next().is_some() {
                return Err(SnapshotError::Malformed {
                    context: "present list disagrees with presence flags",
                });
            }
            let starts = starts.as_slice();
            if starts.first() != Some(&0) || starts.last() != Some(&(n_postings as u64)) {
                return Err(SnapshotError::Malformed {
                    context: "posting starts do not cover arena",
                });
            }
            if starts.windows(2).any(|w| w[0] > w[1]) {
                return Err(SnapshotError::Malformed { context: "posting starts not monotone" });
            }
            let users_arena = users.as_slice();
            let weights_arena = weights.as_slice();
            for w in starts.windows(2) {
                let list = &users_arena[w[0] as usize..w[1] as usize];
                for &user in list {
                    if user as usize >= n_users {
                        return Err(SnapshotError::Malformed { context: "invalid posting entry" });
                    }
                    if flags[user as usize] == 0 {
                        return Err(SnapshotError::Malformed {
                            context: "posting references absent user",
                        });
                    }
                }
                if list.windows(2).any(|p| p[0] >= p[1]) {
                    return Err(SnapshotError::Malformed { context: "posting list not ascending" });
                }
            }
            if weights_arena.contains(&0) {
                return Err(SnapshotError::Malformed { context: "invalid posting entry" });
            }
        }

        Ok(Self {
            attr_counts,
            weight_sums,
            present_flags,
            present,
            postings: PostingStore::Csr { starts, users, weights },
        })
    }
}

/// Map an [`ArenaCastError`] to the matching [`SnapshotError`].
fn cast_error(e: ArenaCastError, context: &'static str) -> SnapshotError {
    match e {
        ArenaCastError::Unaligned => SnapshotError::Misaligned { context },
        // `from_region` only surfaces Unaligned; anything else is a
        // framing bug, reported as generic malformation.
        ArenaCastError::Unsupported | ArenaCastError::OutOfBounds => {
            SnapshotError::Malformed { context }
        }
    }
}

/// Take an aligned arena of `n` elements of `T` as a (zero-copy where
/// possible) view — the shared primitive of every v2 section decoder.
pub(crate) fn take_view<T: crate::arena::DecodeLe>(
    r: &mut SectionReader<'_>,
    backing: Option<&SharedBytes>,
    n: usize,
    context: &'static str,
) -> Result<ArenaView<T>, SnapshotError> {
    let bytes =
        n.checked_mul(std::mem::size_of::<T>()).ok_or(SnapshotError::Malformed { context })?;
    let region = r.take_arena(bytes)?;
    ArenaView::from_region(backing, region).map_err(|e| cast_error(e, context))
}

/// Per-pair work counters of one scoring pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairTally {
    /// Pairs fully scored (degree + distance + attribute terms).
    pub scored: u64,
    /// Pairs skipped because their upper bound could not beat the Top-K
    /// floor.
    pub pruned: u64,
    /// Pairs fully scored *under an active prescreen margin* — the exact
    /// scorings the approximate tier still paid. Always 0 in exact mode.
    pub admitted: u64,
    /// Pairs dropped by the margin prescreen: either the global bound or
    /// the per-pair quantized ceiling cleared the floor by less than the
    /// margin, so they were skipped without exact scoring (their true
    /// score is `< floor + margin`, up to quantization slack). Always 0
    /// in exact mode.
    pub skipped: u64,
}

impl std::ops::AddAssign for PairTally {
    fn add_assign(&mut self, rhs: Self) {
        self.scored += rhs.scored;
        self.pruned += rhs.pruned;
        self.admitted += rhs.admitted;
        self.skipped += rhs.skipped;
    }
}

/// Reusable per-worker accumulators for [`IndexedScorer::score_user`].
///
/// Dense over the scored auxiliary range but reset sparsely (only touched
/// slots are cleared), so a worker reuses one scratch across its whole
/// block without per-user `O(|V2|)` zeroing.
#[derive(Debug, Clone)]
pub struct IndexScratch {
    /// `|A(u) ∩ A(v)|` over *rare* attributes, per local auxiliary user.
    inter: Vec<u32>,
    /// `Σ min(l_u, l_v)` over the shared rare attributes, per local user.
    min_sum: Vec<u64>,
    /// Local ids with rare `inter > 0`, in first-touch order.
    touched: Vec<u32>,
    /// The anonymized user's weight per hot slot (dense over hot slots,
    /// sparsely reset via `u_slots`).
    u_hot: Vec<u32>,
    /// The anonymized user's hot-slot bitmask.
    u_mask: Vec<u64>,
    /// Hot slots the anonymized user occupies, for the sparse reset.
    u_slots: Vec<u32>,
}

impl IndexScratch {
    fn new(n_local: usize, n_hot: usize, words: usize) -> Self {
        Self {
            inter: vec![0; n_local],
            min_sum: vec![0; n_local],
            touched: Vec::with_capacity(n_local.min(1024)),
            u_hot: vec![0; n_hot],
            u_mask: vec![0; words],
            u_slots: Vec::with_capacity(n_hot.min(1024)),
        }
    }
}

/// Hot-attribute side tables of one [`IndexedScorer`].
///
/// In a stylometric corpus the attribute sets are binary projections of
/// the *same* feature space, so common features (letters, punctuation,
/// frequent function words) produce posting lists touching nearly every
/// auxiliary user. Probing those lists per anonymized user costs
/// `Θ(|V1|·|V2|·density)` — the skew wall the 100k sweep hits. The scorer
/// therefore splits attributes at construction: lists shorter than the
/// hot threshold stay on the probe path, while *hot* attributes are
/// transposed into per-user bitmask rows (for exact intersection counts
/// via popcount) and a per-user `(slot, weight)` CSR (for the exact
/// min-weight merge, paid only by pairs that survive pruning).
#[derive(Debug)]
struct HotAttrs {
    /// Attribute id → hot slot, `u32::MAX` for rare attributes.
    slot_of: Vec<u32>,
    /// Number of hot attributes (slots).
    n_hot: usize,
    /// `u64` words per bitmask row (`ceil(n_hot / 64)`).
    words: usize,
    /// Concatenated per-local-user bitmask rows (`n_local * words`).
    masks: Vec<u64>,
    /// Per local user: `Σ l_v` over its hot attributes.
    hot_wsums: Vec<u64>,
    /// Per-user hot CSR: row `lv` is `starts[lv]..starts[lv + 1]`.
    starts: Vec<usize>,
    /// Hot slot of each CSR entry, ascending within a row.
    slots: Vec<u32>,
    /// Weight `l_v` of each CSR entry, parallel to `slots`.
    weights: Vec<u32>,
}

impl HotAttrs {
    /// Classify attributes of `index`'s tail (`from..`) and transpose the
    /// hot posting lists into per-user rows.
    fn build(index: &AttributeIndex, from: usize) -> Self {
        let from32 = u32::try_from(from).expect("watermark overflows u32");
        let n_local = index.n_users() - from;
        let n_present = index.present_from(from).len();
        // A list is hot when it touches at least 1/8th of the present
        // population (and at least 16 users, so tiny corpora keep the
        // pure probe path the differential tests already cover).
        let threshold = (n_present / 8).max(16);
        let n_attrs = index.n_attrs();
        let mut slot_of = vec![u32::MAX; n_attrs];
        let mut hot_attrs: Vec<u32> = Vec::new();
        for (attr, slot) in slot_of.iter_mut().enumerate() {
            if index.posting(attr).suffix(from32).len() >= threshold {
                *slot = u32::try_from(hot_attrs.len()).expect("hot slot overflows u32");
                hot_attrs.push(attr as u32);
            }
        }
        let n_hot = hot_attrs.len();
        let words = n_hot.div_ceil(64);
        let mut masks = vec![0u64; n_local * words];
        let mut hot_wsums = vec![0u64; n_local];
        let mut row_len = vec![0usize; n_local];
        for &attr in &hot_attrs {
            for &user in index.posting(attr as usize).suffix(from32).users {
                row_len[user as usize - from] += 1;
            }
        }
        let mut starts = Vec::with_capacity(n_local + 1);
        let mut at = 0usize;
        starts.push(0);
        for &l in &row_len {
            at += l;
            starts.push(at);
        }
        let mut slots = vec![0u32; at];
        let mut weights = vec![0u32; at];
        let mut fill = starts.clone();
        for (slot, &attr) in hot_attrs.iter().enumerate() {
            let plist = index.posting(attr as usize).suffix(from32);
            for (&user, &weight) in plist.users.iter().zip(plist.weights) {
                let lv = user as usize - from;
                let pos = fill[lv];
                fill[lv] += 1;
                slots[pos] = slot as u32;
                weights[pos] = weight;
                masks[lv * words + slot / 64] |= 1u64 << (slot % 64);
                hot_wsums[lv] += u64::from(weight);
            }
        }
        Self { slot_of, n_hot, words, masks, hot_wsums, starts, slots, weights }
    }

    /// Hot slot of `attr`, or `None` when the attribute is rare (or
    /// beyond the indexed range).
    fn slot(&self, attr: usize) -> Option<usize> {
        match self.slot_of.get(attr) {
            Some(&s) if s != u32::MAX => Some(s as usize),
            _ => None,
        }
    }
}

/// Sparse scorer: drives one [`SimilarityEngine`] through an
/// [`AttributeIndex`] instead of the all-pairs sweep.
///
/// `from` anchors the engine's auxiliary id space inside the index: the
/// engine's local auxiliary user `v` is index user `from + v`. A one-shot
/// attack uses `from = 0` with an index over the whole auxiliary side; a
/// streaming session passes the pre-ingest watermark so only the freshly
/// appended posting suffixes are probed.
#[derive(Debug)]
pub struct IndexedScorer<'e, 'i> {
    sim: &'e SimilarityEngine<'e>,
    index: &'i AttributeIndex,
    /// The per-user tables, resolved out of their (possibly
    /// snapshot-borrowed) [`ArenaView`]s once at construction — the
    /// inner scoring loop touches them per pair and must not pay an
    /// arena dispatch each time.
    attr_counts: &'i [u32],
    weight_sums: &'i [u64],
    present_flags: &'i [u8],
    /// Hot-attribute bitmasks and per-user CSR (see [`HotAttrs`]).
    hot: HotAttrs,
    from: usize,
    prune: bool,
    /// Prescreen confidence margin in score units (see
    /// [`Self::with_margin`]); `0.0` = exact.
    margin: f64,
    /// `c1·s^d_max + c2·s^s_max`, evaluated with the same association as
    /// the score itself (negative weights contribute their maximum, 0).
    struct_bound: f64,
    /// u8-quantized structural mirror backing the margin band's per-pair
    /// score ceiling. Built only when `margin > 0`; the exact paths
    /// never touch it.
    quant: Option<QuantizedStructural>,
}

impl<'e, 'i> IndexedScorer<'e, 'i> {
    /// Create a scorer over `sim`'s auxiliary side, which must occupy the
    /// index ids `from..index.n_users()`.
    ///
    /// `prune` enables upper-bound pruning. Disable it when the caller
    /// needs exact [`ScoreBounds`] over *all* present pairs (Algorithm-2
    /// filtering); scoring stays accumulator-driven either way.
    ///
    /// # Panics
    /// Panics if the index tail does not match the engine's auxiliary
    /// population.
    #[must_use]
    pub fn new(
        sim: &'e SimilarityEngine<'e>,
        index: &'i AttributeIndex,
        from: usize,
        prune: bool,
    ) -> Self {
        assert_eq!(
            index.n_users() - from,
            sim.n_aux(),
            "index tail (from {from}) does not cover the engine's auxiliary side"
        );
        let w = sim.weights();
        let td = if w.c1 >= 0.0 { w.c1 * 3.0 } else { 0.0 };
        let ts = if w.c2 >= 0.0 { w.c2 * 2.0 } else { 0.0 };
        Self {
            sim,
            index,
            attr_counts: index.attr_counts.as_slice(),
            weight_sums: index.weight_sums.as_slice(),
            present_flags: index.present_flags.as_slice(),
            hot: HotAttrs::build(index, from),
            from,
            prune,
            margin: 0.0,
            struct_bound: td + ts,
            quant: None,
        }
    }

    /// Arm the approximate tier's margin prescreen: a two-stage skip
    /// test against the bar `floor + margin` (score units). Stage one is
    /// the free check — the global structural ceiling (`c1·3 + c2·2`, a
    /// constant) plus the pair's attribute term. A pair that clears it
    /// is re-tested with the structural part re-bounded by the per-pair
    /// quantized ceiling ([`QuantizedStructural::ceiling`] — exact
    /// degree ratios plus u8 integer-dot cosines), which tracks the true
    /// score closely instead of assuming every cosine is 1. Pairs that
    /// fail either test are skipped without exact scoring; survivors are
    /// scored exactly. Only candidates within `margin` (± quantization
    /// slack) of the evolving admission floor can be lost. Applied at
    /// every prune site, and only when pruning is enabled;
    /// `margin == 0.0` builds no quantized state and is bit-identical to
    /// the exact scorer.
    ///
    /// # Panics
    /// Panics if `margin` is negative or non-finite.
    #[must_use]
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!(margin.is_finite() && margin >= 0.0, "prescreen margin must be finite and >= 0");
        self.margin = margin;
        if margin > 0.0 && self.quant.is_none() {
            self.quant = Some(self.sim.quantized_structural());
        }
        self
    }

    /// Per-pair quantized structural ceiling (prescreen stage two).
    /// Only reachable with an armed margin, which built the tables.
    #[inline]
    fn band_ceiling(&self, u: usize, lv: usize) -> f64 {
        self.quant.as_ref().expect("armed margin builds quantized tables").ceiling(u, lv)
    }

    /// Fresh accumulators sized for this scorer's auxiliary range.
    #[must_use]
    pub fn scratch(&self) -> IndexScratch {
        IndexScratch::new(self.index.n_users() - self.from, self.hot.n_hot, self.hot.words)
    }

    /// Number of attributes on the hot (bitmask) path.
    #[must_use]
    pub fn n_hot_attrs(&self) -> usize {
        self.hot.n_hot
    }

    /// `true` if upper-bound pruning is enabled.
    #[must_use]
    pub fn prunes(&self) -> bool {
        self.prune
    }

    /// Score anonymized user `u` against every present auxiliary user of
    /// this scorer's range, feeding `top` (candidate ids in *index* id
    /// space) and `bounds` exactly like the dense sweep would — except
    /// that pruned pairs are skipped entirely.
    pub fn score_user(
        &self,
        u: usize,
        scratch: &mut IndexScratch,
        top: &mut BoundedTopK,
        bounds: &mut ScoreBounds,
    ) -> PairTally {
        let w = self.sim.weights();
        let anon_attrs = &self.sim.anon_uda().attributes[u];
        let u_len = anon_attrs.len() as u64;
        let u_wsum = anon_attrs.weight_sum();
        let hot = &self.hot;
        let words = hot.words;

        // Split u's attributes: hot ones fill the dense slot table and
        // bitmask, rare ones probe their posting-list suffix, accumulating
        // intersection counts and min-weight sums per touched pair.
        let from32 = u32::try_from(self.from).expect("watermark overflows u32");
        let mut u_hot_wsum = 0u64;
        for &(attr, x) in anon_attrs.as_weights() {
            if let Some(slot) = hot.slot(attr as usize) {
                scratch.u_hot[slot] = x;
                scratch.u_mask[slot / 64] |= 1u64 << (slot % 64);
                scratch.u_slots.push(slot as u32);
                u_hot_wsum += u64::from(x);
                continue;
            }
            let plist = self.index.posting(attr as usize).suffix(from32);
            for (&user, &weight) in plist.users.iter().zip(plist.weights) {
                let lv = user as usize - self.from;
                if scratch.inter[lv] == 0 {
                    scratch.touched.push(lv as u32);
                }
                scratch.inter[lv] += 1;
                scratch.min_sum[lv] += u64::from(x.min(weight));
            }
        }

        let mut tally = PairTally::default();
        // The pre-merge weighted-term bound is only an *upper* bound on
        // the score when its weight is non-negative.
        let c3_bounds_above = w.c3 >= 0.0;

        for &v32 in self.index.present_from(self.from) {
            let lv = v32 as usize - self.from;
            let v = v32 as usize;
            debug_assert!(
                self.present_flags[v] != 0,
                "absent users have no posts, hence no postings"
            );
            // Exact intersection: rare accumulator + hot popcount.
            let inter_hot: u32 = if words == 0 {
                0
            } else {
                let row = &hot.masks[lv * words..lv * words + words];
                scratch.u_mask.iter().zip(row).map(|(&a, &b)| (a & b).count_ones()).sum()
            };
            let inter = u64::from(scratch.inter[lv]) + u64::from(inter_hot);

            if inter == 0 {
                // Zero-shared pair: the attribute term is exactly 0 (both
                // Jaccard conventions give 0.0 on an empty intersection),
                // matching the dense merge bit for bit.
                let zero_term = w.c3 * 0.0;
                if self.prune {
                    if let Some(floor) = top.floor() {
                        if self.struct_bound + zero_term < floor {
                            tally.pruned += 1;
                            continue;
                        }
                        if self.margin > 0.0
                            && (self.struct_bound + zero_term < floor + self.margin
                                || self.band_ceiling(u, lv) + zero_term < floor + self.margin)
                        {
                            tally.skipped += 1;
                            continue;
                        }
                    }
                }
                let s = (w.c1 * self.sim.degree_similarity(u, lv)
                    + w.c2 * self.sim.distance_similarity(u, lv))
                    + zero_term;
                top.insert(v, s);
                bounds.observe(s);
                tally.scored += 1;
                tally.admitted += u64::from(self.margin > 0.0);
                continue;
            }

            let union = u_len + u64::from(self.attr_counts[v]) - inter;
            let rare_min = scratch.min_sum[lv];
            // The pair's quantized structural ceiling (prescreen stage
            // two) is computed at most once and reused by both the
            // pre-merge and post-merge checks.
            let mut ceil: Option<f64> = None;

            // Pre-merge prune: the Jaccard term is already exact, and the
            // hot merge can add at most `min(u hot mass, v hot mass)` to
            // the min-weight sum. Larger min-sum ⇒ larger ratio (monotone
            // f64 division with a shrinking denominator), so this bounds
            // the weighted term from above and the O(hot row) merge is
            // paid by surviving pairs only.
            if self.prune && c3_bounds_above {
                if let Some(floor) = top.floor() {
                    let min_ub = rare_min + u_hot_wsum.min(hot.hot_wsums[lv]);
                    let wunion_lb = u_wsum + self.weight_sums[v] - min_ub;
                    let s_attr_ub = inter as f64 / union as f64 + min_ub as f64 / wunion_lb as f64;
                    if self.struct_bound + w.c3 * s_attr_ub < floor {
                        tally.pruned += 1;
                        continue;
                    }
                    if self.margin > 0.0 {
                        if self.struct_bound + w.c3 * s_attr_ub < floor + self.margin {
                            tally.skipped += 1;
                            continue;
                        }
                        let c = *ceil.get_or_insert_with(|| self.band_ceiling(u, lv));
                        if c + w.c3 * s_attr_ub < floor + self.margin {
                            tally.skipped += 1;
                            continue;
                        }
                    }
                }
            }

            // Exact hot merge: O(|v's hot row|) against u's dense table.
            let mut min_sum = rare_min;
            for i in hot.starts[lv]..hot.starts[lv + 1] {
                let wu = scratch.u_hot[hot.slots[i] as usize];
                if wu != 0 {
                    min_sum += u64::from(wu.min(hot.weights[i]));
                }
            }
            let wunion = u_wsum + self.weight_sums[v] - min_sum;
            // Same integers, same divisions, same addition order as
            // `UserAttributes::jaccard + weighted_jaccard`.
            let s_attr = inter as f64 / union as f64 + min_sum as f64 / wunion as f64;
            let attr_term = w.c3 * s_attr;
            if self.prune {
                if let Some(floor) = top.floor() {
                    if self.struct_bound + attr_term < floor {
                        tally.pruned += 1;
                        continue;
                    }
                    if self.margin > 0.0 {
                        if self.struct_bound + attr_term < floor + self.margin {
                            tally.skipped += 1;
                            continue;
                        }
                        let c = *ceil.get_or_insert_with(|| self.band_ceiling(u, lv));
                        if c + attr_term < floor + self.margin {
                            tally.skipped += 1;
                            continue;
                        }
                    }
                }
            }
            let s = (w.c1 * self.sim.degree_similarity(u, lv)
                + w.c2 * self.sim.distance_similarity(u, lv))
                + attr_term;
            top.insert(v, s);
            bounds.observe(s);
            tally.scored += 1;
            tally.admitted += u64::from(self.margin > 0.0);
        }

        // Sparse reset: clear only the touched slots.
        for &lv32 in &scratch.touched {
            let lv = lv32 as usize;
            scratch.inter[lv] = 0;
            scratch.min_sum[lv] = 0;
        }
        scratch.touched.clear();
        for &slot in &scratch.u_slots {
            let slot = slot as usize;
            scratch.u_hot[slot] = 0;
            scratch.u_mask[slot / 64] = 0;
        }
        scratch.u_slots.clear();
        tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::SimilarityWeights;
    use dehealth_corpus::{Forum, Post};

    fn uda(posts: Vec<Post>, n_users: usize, n_threads: usize) -> UdaGraph {
        UdaGraph::build(&Forum::from_posts(n_users, n_threads, posts))
    }

    fn p(author: usize, thread: usize, text: &str) -> Post {
        Post { author, thread, text: text.into() }
    }

    fn texts() -> Vec<&'static str> {
        vec![
            "I realy hate this migrane pain!",
            "rest helps a lot, the doctor said so.",
            "20 mg twice a day & water",
            "she was SO tired yesterday?!",
            "ok",
            "my doctor prescribed rest and the pain went away after 3 days",
        ]
    }

    /// A pair of UDA graphs with absent users on the auxiliary side.
    fn sides() -> (UdaGraph, UdaGraph) {
        let anon_posts: Vec<Post> =
            texts().iter().enumerate().map(|(i, t)| p(i % 4, i % 3, t)).collect();
        let mut aux_posts: Vec<Post> =
            texts().iter().enumerate().map(|(i, t)| p(i % 5, i % 3, t)).collect();
        aux_posts.push(p(6, 2, "extra words entirely"));
        // Users 5 of 7 has no posts: absent.
        (uda(anon_posts, 4, 3), uda(aux_posts, 7, 3))
    }

    fn dense_topk(sim: &SimilarityEngine<'_>, u: usize, k: usize) -> (Vec<(usize, f64)>, usize) {
        let mut top = BoundedTopK::new(k);
        let mut n = 0;
        for (v, s) in sim.scores_for(u) {
            top.insert(v, s);
            n += 1;
        }
        (top.into_sorted_entries(), n)
    }

    #[test]
    fn index_registers_all_users_and_skips_absent_postings() {
        let (_, aux) = sides();
        let index = AttributeIndex::from_uda(&aux);
        assert_eq!(index.n_users(), 7);
        assert_eq!(index.present_from(0).len(), 6);
        assert!(!index.present_from(0).contains(&5));
        assert!(index.n_postings() > 0);
        // Posting lists are ascending by user id.
        for attr in 0..2048 {
            let plist = index.posting(attr);
            assert!(plist.users.windows(2).all(|w| w[0] < w[1]));
            assert!(plist.iter().all(|p| p.user != 5), "absent user in posting {attr}");
        }
    }

    #[test]
    fn v2_codec_roundtrips_across_backings_and_storages() {
        use dehealth_corpus::snapshot::{SectionTag, SnapshotReader, SnapshotWriter};
        use dehealth_mapped::ByteSource;
        const TAG: SectionTag = SectionTag(*b"AIDX");

        let (_, aux) = sides();
        let dynamic = AttributeIndex::from_uda(&aux); // Dynamic storage
        let mut w = SnapshotWriter::new();
        dynamic.encode_v2(w.section(TAG));
        let bytes = w.finish();

        // Owned decode (no backing).
        let r = SnapshotReader::parse(&bytes).unwrap();
        let mut s = r.section(TAG).unwrap();
        let owned = AttributeIndex::decode_v2(&mut s, None).unwrap();
        s.expect_end().unwrap();
        assert!(!owned.is_borrowed());

        // Zero-copy decode over an aligned backing.
        let backing = ByteSource::from_vec(bytes.clone());
        let r = SnapshotReader::parse(backing.bytes()).unwrap();
        let mut s = r.section(TAG).unwrap();
        let mapped = AttributeIndex::decode_v2(&mut s, Some(&backing)).unwrap();
        s.expect_end().unwrap();
        assert!(mapped.is_borrowed());
        let (resident, borrowed) = mapped.arena_bytes();
        assert_eq!(resident, 0, "a mapped index keeps nothing resident");
        assert!(borrowed > 0);

        // All three agree structurally and re-encode identically (CSR
        // storage encodes the same bytes the Dynamic storage wrote).
        for decoded in [&owned, &mapped] {
            assert_eq!(decoded.n_users(), dynamic.n_users());
            assert_eq!(decoded.n_postings(), dynamic.n_postings());
            assert_eq!(decoded.present_from(0), dynamic.present_from(0));
            for attr in 0..dynamic.n_attrs() {
                let (a, b) = (decoded.posting(attr), dynamic.posting(attr));
                assert_eq!(a.users, b.users);
                assert_eq!(a.weights, b.weights);
            }
            let mut w = SnapshotWriter::new();
            decoded.encode_v2(w.section(TAG));
            assert_eq!(w.finish(), bytes);
        }
    }

    #[test]
    fn push_user_promotes_mapped_storage_copy_on_write() {
        use dehealth_corpus::snapshot::{SectionTag, SnapshotReader, SnapshotWriter};
        use dehealth_mapped::ByteSource;
        const TAG: SectionTag = SectionTag(*b"AIDX");

        let (_, aux) = sides();
        let mut reference = AttributeIndex::from_uda(&aux);
        let mut w = SnapshotWriter::new();
        reference.encode_v2(w.section(TAG));
        let backing = ByteSource::from_vec(w.finish());
        let r = SnapshotReader::parse(backing.bytes()).unwrap();
        let mut mapped =
            AttributeIndex::decode_v2(&mut r.section(TAG).unwrap(), Some(&backing)).unwrap();
        assert!(mapped.is_borrowed());

        // Appending the same user to both must agree — and detach the
        // mapped index from its backing.
        let attrs = dehealth_stylometry::UserAttributes::from_weights(vec![(2, 5), (9, 1)]);
        reference.push_user(&attrs, true);
        mapped.push_user(&attrs, true);
        assert!(!mapped.is_borrowed());
        let mut wa = SnapshotWriter::new();
        reference.encode_v2(wa.section(TAG));
        let mut wb = SnapshotWriter::new();
        mapped.encode_v2(wb.section(TAG));
        assert_eq!(wa.finish(), wb.finish());
    }

    #[test]
    fn v2_decode_rejects_corrupt_structures() {
        use dehealth_corpus::snapshot::{SectionTag, SnapshotReader, SnapshotWriter};
        const TAG: SectionTag = SectionTag(*b"AIDX");
        let (_, aux) = sides();
        let index = AttributeIndex::from_uda(&aux);

        // Decode a tampered copy and expect a typed error (patch the
        // present-count to disagree with the flags).
        let mut w = SnapshotWriter::new();
        index.encode_v2(w.section(TAG));
        let bytes = w.finish();
        let parse = |bytes: &[u8]| -> Result<AttributeIndex, SnapshotError> {
            let r = SnapshotReader::parse_with(
                bytes,
                &dehealth_corpus::snapshot::ParseOptions::trusting(),
            )?;
            let mut s = r.section(TAG)?;
            AttributeIndex::decode_v2(&mut s, None)
        };
        assert!(parse(&bytes).is_ok());
        // n_present lives at payload offset 24 (fourth u64) = file 32+24.
        let mut bad = bytes.clone();
        bad[32 + 24..32 + 32].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            parse(&bad),
            Err(SnapshotError::Malformed { .. } | SnapshotError::Truncated { .. })
        ));
        // An absurd posting count must be caught before any allocation.
        let mut bad = bytes.clone();
        bad[32 + 16..32 + 24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            parse(&bad),
            Err(SnapshotError::Malformed { .. } | SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn indexed_matches_dense_bit_for_bit_without_pruning() {
        let (anon, aux) = sides();
        for weights in [
            SimilarityWeights::default(),
            SimilarityWeights { c1: 0.3, c2: 0.3, c3: 0.4 },
            SimilarityWeights { c1: 0.0, c2: 0.0, c3: 1.0 },
        ] {
            let sim = SimilarityEngine::new(&anon, &aux, weights, 3);
            let index = sim.attribute_index();
            let scorer = IndexedScorer::new(&sim, &index, 0, false);
            let mut scratch = scorer.scratch();
            for u in 0..sim.n_anon() {
                let mut top = BoundedTopK::new(4);
                let mut bounds = ScoreBounds::new();
                let tally = scorer.score_user(u, &mut scratch, &mut top, &mut bounds);
                let (dense, n_present) = dense_topk(&sim, u, 4);
                let sparse = top.into_sorted_entries();
                assert_eq!(tally.scored, n_present as u64);
                assert_eq!(tally.pruned, 0);
                assert_eq!(sparse.len(), dense.len());
                for (a, b) in sparse.iter().zip(&dense) {
                    assert_eq!(a.0, b.0, "candidate diverges for u={u}");
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "score bits diverge for u={u}");
                }
            }
        }
    }

    #[test]
    fn pruning_skips_pairs_but_keeps_the_same_candidates() {
        let (anon, aux) = sides();
        let sim = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 3);
        let index = sim.attribute_index();
        let pruned_scorer = IndexedScorer::new(&sim, &index, 0, true);
        assert!(pruned_scorer.prunes());
        let mut scratch = pruned_scorer.scratch();
        let mut total = PairTally::default();
        for u in 0..sim.n_anon() {
            let mut top = BoundedTopK::new(2);
            let mut bounds = ScoreBounds::new();
            let tally = pruned_scorer.score_user(u, &mut scratch, &mut top, &mut bounds);
            total += tally;
            let (dense, n_present) = dense_topk(&sim, u, 2);
            assert_eq!(tally.scored + tally.pruned, n_present as u64, "every pair accounted");
            let sparse = top.into_sorted_entries();
            for (a, b) in sparse.iter().zip(&dense) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
        assert!(total.scored > 0);
    }

    #[test]
    fn zero_k_heap_prunes_every_pair() {
        let (anon, aux) = sides();
        let sim = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 3);
        let index = sim.attribute_index();
        let scorer = IndexedScorer::new(&sim, &index, 0, true);
        let mut scratch = scorer.scratch();
        let mut top = BoundedTopK::new(0);
        let mut bounds = ScoreBounds::new();
        let tally = scorer.score_user(0, &mut scratch, &mut top, &mut bounds);
        assert_eq!(tally.scored, 0);
        assert!(tally.pruned > 0);
        assert!(bounds.is_empty());
    }

    #[test]
    fn watermark_scores_only_the_posting_suffix() {
        // Global index over 2 + aux users; the engine sees only the tail.
        let (anon, aux) = sides();
        let mut index = AttributeIndex::new();
        index.push_user(&dehealth_stylometry::UserAttributes::from_weights(vec![(1, 9)]), true);
        index.push_user(&dehealth_stylometry::UserAttributes::new(), false);
        let from = index.n_users();
        index.append_uda(&aux);
        let sim = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 3);
        let scorer = IndexedScorer::new(&sim, &index, from, false);
        let mut scratch = scorer.scratch();
        for u in 0..sim.n_anon() {
            let mut top = BoundedTopK::new(10);
            let mut bounds = ScoreBounds::new();
            scorer.score_user(u, &mut scratch, &mut top, &mut bounds);
            let entries = top.into_sorted_entries();
            // Candidate ids live in the global index space, offset by the
            // watermark, and never include pre-watermark users.
            assert!(entries.iter().all(|&(v, _)| v >= from));
            let (dense, _) = dense_topk(&sim, u, 10);
            let expect: Vec<(usize, f64)> = dense.iter().map(|&(v, s)| (v + from, s)).collect();
            assert_eq!(entries.len(), expect.len());
            for (a, b) in entries.iter().zip(&expect) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }

    #[test]
    fn scratch_resets_between_users() {
        let (anon, aux) = sides();
        let sim = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 3);
        let index = sim.attribute_index();
        let scorer = IndexedScorer::new(&sim, &index, 0, false);
        let mut shared = scorer.scratch();
        // Scoring u = 0 twice with the same scratch must give identical
        // results (a dirty scratch would double the accumulators).
        let run = |scratch: &mut IndexScratch| {
            let mut top = BoundedTopK::new(5);
            let mut bounds = ScoreBounds::new();
            scorer.score_user(0, scratch, &mut top, &mut bounds);
            top.into_sorted_entries()
        };
        let first = run(&mut shared);
        let second = run(&mut shared);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn mismatched_watermark_is_rejected() {
        let (anon, aux) = sides();
        let sim = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 3);
        let index = sim.attribute_index();
        let _ = IndexedScorer::new(&sim, &index, 1, false);
    }
}
