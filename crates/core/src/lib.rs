#![warn(missing_docs)]
//! # dehealth-core
//!
//! The De-Health attack itself — the primary contribution of the paper.
//!
//! De-Health de-anonymizes online health data in two phases:
//!
//! 1. **Top-K DA** ([`similarity`], [`index`], [`topk`], [`filter`]): build
//!    [`uda::UdaGraph`]s for the anonymized and auxiliary datasets, score
//!    every (anonymized, auxiliary) pair with the structural similarity
//!    `s_uv = c1·s^d + c2·s^s + c3·s^a`, select a Top-K candidate set per
//!    anonymized user (direct or graph-matching selection), and optionally
//!    filter it with the Algorithm-2 threshold vector.
//! 2. **Refined DA** ([`refined`]): train a benchmark classifier (KNN,
//!    SMO-SVM, RLSC or nearest-centroid from `dehealth-ml`) on the
//!    candidates' posts and map each anonymized user to one candidate or
//!    to `⊥`, with the open-world *false addition* and *mean-verification*
//!    schemes.
//!
//! [`attack::DeHealth`] wires the phases together;
//! [`attack::stylometry_baseline`] is the paper's comparison baseline
//! (refined DA without the Top-K phase); [`attack::Evaluation`] computes
//! the paper's metrics (Top-K success CDF, accuracy `Y_c/Y`, FP rate).

pub mod arena;
pub mod attack;
pub mod filter;
pub mod index;
pub mod quant;
pub mod refined;
pub mod similarity;
pub mod snapshot;
pub mod topk;
pub mod uda;

pub use arena::{ArenaCastError, ArenaView};
pub use attack::{stylometry_baseline, AttackConfig, AttackOutcome, DeHealth, Evaluation};
pub use filter::{FilterConfig, Filtered, ScoreBounds};
pub use index::{AttributeIndex, IndexScratch, IndexedScorer, PairTally, PostingsRef};
pub use quant::{QuantizedContext, QuantizedRows};
pub use refined::{
    refine_user, refine_user_shared, refine_user_shared_quantized, ClassifierKind, RefinedConfig,
    RefinedContext, RefinedScratch, Side, Verification,
};
pub use similarity::{SimilarityEngine, SimilarityWeights};
pub use topk::{BoundedTopK, Selection};
pub use uda::UdaGraph;
