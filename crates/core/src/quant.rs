//! u8 affine-quantized mirrors of the sparse [`RefinedContext`] arenas —
//! the storage layer of the approximate refined-DA tier.
//!
//! A [`QuantizedContext`] is fitted **once per auxiliary arena**: each
//! feature gets a global affine code
//! (`offset_j` = the feature's minimum over all posts, *including the
//! implicit zeros of posts that lack it*, `scale_j` spanning its range —
//! see [`dehealth_ml::quant`]), and every sparse entry of the exact arena
//! gets a `u8` code parallel to its `f64` value. Because feature values
//! are non-negative (asserted at context build) and the implicit-zero
//! folding pulls `offset_j` to `0.0` for any feature absent from at least
//! one post, an absent entry always codes to exactly 0 — so the sparse
//! structure (`sp_idx` / `sp_start`, shared with the exact arena) remains
//! lossless and only entry *values* are approximated.
//!
//! The approximate KNN path classifies with integer-accumulation cosine
//! over these codes (skipping the exact kernel's per-user min-max fit and
//! scaled-row materialization entirely) and falls back to the exact
//! kernel only inside the configured confidence margin. The anonymized
//! side is coded against the *auxiliary* parameters
//! ([`QuantizedContext::quantize_rows`]) so both sides live in one code
//! space; out-of-range anonymized values saturate at the arena bounds.
//!
//! Quantized arenas persist as the optional `QCTX` section of a v3
//! snapshot ([`Self::encode_v2`](QuantizedContext::encode_v2) /
//! [`Self::decode_v2`](QuantizedContext::decode_v2)), 8-byte-aligned and
//! zero-copy loadable like every other v2-style arena; a snapshot without
//! the section degrades to on-the-fly quantization at load/attack time.

use dehealth_corpus::snapshot::{SectionReader, SectionWrite, SnapshotError};
use dehealth_mapped::SharedBytes;
use dehealth_ml::quant::{affine_params, quantize};

use crate::arena::ArenaView;
use crate::index::take_view;
use crate::refined::RefinedContext;

/// The fitted quantization of one sparse [`RefinedContext`] (see the
/// [module docs](self)): per-feature affine parameters plus the `u8`
/// codes and integer-cosine norms of every materialized post row.
///
/// Storage-generic like the exact arenas: freshly fitted contexts own
/// their arenas, snapshot-decoded ones may borrow a mapping.
#[derive(Debug, Clone)]
pub struct QuantizedContext {
    dim: usize,
    n_posts: usize,
    /// Per-feature code-0 value (the feature's global minimum, with
    /// implicit zeros folded in).
    offsets: ArenaView<f64>,
    /// Per-feature code step (`range / 255`; `0.0` for constant features).
    scales: ArenaView<f64>,
    /// One `u8` code per sparse entry, parallel to the exact arena's
    /// `sp_val` (row structure lives in the exact context's
    /// `sp_idx`/`sp_start`).
    codes: ArenaView<u8>,
    /// Per-post Euclidean norm of the code row
    /// ([`dehealth_ml::quant::norm_codes`]).
    norms: ArenaView<f64>,
}

/// The anonymized side's rows coded against an auxiliary
/// [`QuantizedContext`]'s parameters
/// ([`QuantizedContext::quantize_rows`]): codes parallel to the anonymized
/// context's sparse values, plus per-post norms.
#[derive(Debug, Clone, Default)]
pub struct QuantizedRows {
    /// One `u8` code per sparse entry of the quantized context.
    pub codes: Vec<u8>,
    /// Per-post Euclidean norm of the code row.
    pub norms: Vec<f64>,
}

/// Quantize one sparse arena's entries against fitted per-feature
/// parameters, returning `(codes, per_post_norms)`.
fn code_rows(ctx: &RefinedContext, offsets: &[f64], scales: &[f64]) -> (Vec<u8>, Vec<f64>) {
    let s = ctx.sparse_slices();
    let n_posts = ctx.n_posts();
    let mut codes = Vec::with_capacity(s.val.len());
    let mut norms = Vec::with_capacity(n_posts);
    for pi in 0..n_posts {
        let (idx, val) = s.post(pi);
        let mut sum = 0u64;
        for (&j, &v) in idx.iter().zip(val) {
            let c = quantize(v, offsets[j as usize], scales[j as usize]);
            sum += u64::from(c) * u64::from(c);
            codes.push(c);
        }
        norms.push((sum as f64).sqrt());
    }
    (codes, norms)
}

impl QuantizedContext {
    /// Fit the quantization of a sparse context: one global min/max pass
    /// (folding the implicit zero of every post that lacks a feature,
    /// exactly like the exact kernel's per-user stats pass), then one
    /// coding pass. Returns `None` for a dense context — only the sparse
    /// KNN representation has a quantized mirror.
    #[must_use]
    pub fn from_context(ctx: &RefinedContext) -> Option<Self> {
        if !ctx.is_sparse() {
            return None;
        }
        let dim = ctx.dim();
        let n_posts = ctx.n_posts();
        let s = ctx.sparse_slices();
        let mut count = vec![0u64; dim];
        let mut lo = vec![0.0f64; dim];
        let mut hi = vec![0.0f64; dim];
        for (&j, &v) in s.idx.iter().zip(s.val) {
            let j = j as usize;
            if count[j] == 0 {
                lo[j] = v;
                hi[j] = v;
            } else {
                lo[j] = lo[j].min(v);
                hi[j] = hi[j].max(v);
            }
            count[j] += 1;
        }
        let mut offsets = vec![0.0f64; dim];
        let mut scales = vec![0.0f64; dim];
        for j in 0..dim {
            let (mn, mx) = if count[j] == 0 {
                (0.0, 0.0)
            } else if (count[j] as usize) < n_posts {
                // Some post lacks this feature: its implicit 0.0 belongs
                // to the value population (values are non-negative, so
                // this pins offset_j to 0.0 and absent entries code to 0).
                (lo[j].min(0.0), hi[j].max(0.0))
            } else {
                (lo[j], hi[j])
            };
            let (o, sc) = affine_params(mn, mx);
            offsets[j] = o;
            scales[j] = sc;
        }
        let (codes, norms) = code_rows(ctx, &offsets, &scales);
        Some(Self {
            dim,
            n_posts,
            offsets: offsets.into(),
            scales: scales.into(),
            codes: codes.into(),
            norms: norms.into(),
        })
    }

    /// Code another (sparse) context's rows against **this** context's
    /// per-feature parameters — how the anonymized side joins the
    /// auxiliary code space. Values outside the fitted range saturate.
    /// Returns `None` for a dense context or a dimension mismatch.
    #[must_use]
    pub fn quantize_rows(&self, ctx: &RefinedContext) -> Option<QuantizedRows> {
        if !ctx.is_sparse() || ctx.dim() != self.dim {
            return None;
        }
        let (codes, norms) = code_rows(ctx, self.offsets.as_slice(), self.scales.as_slice());
        Some(QuantizedRows { codes, norms })
    }

    /// Sample dimension (must match the exact context's).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of coded post rows.
    #[must_use]
    pub fn n_posts(&self) -> usize {
        self.n_posts
    }

    /// Per-feature code-0 values.
    #[must_use]
    pub fn offsets(&self) -> &[f64] {
        self.offsets.as_slice()
    }

    /// Per-feature code steps.
    #[must_use]
    pub fn scales(&self) -> &[f64] {
        self.scales.as_slice()
    }

    /// The entry codes, parallel to the exact arena's sparse values.
    #[must_use]
    pub fn codes(&self) -> &[u8] {
        self.codes.as_slice()
    }

    /// Per-post code-row norms.
    #[must_use]
    pub fn norms(&self) -> &[f64] {
        self.norms.as_slice()
    }

    /// `true` if this quantization is structurally consistent with `ctx`
    /// (same dimension, post count, and entry count) — the precondition
    /// of the approximate KNN kernel.
    #[must_use]
    pub fn matches_context(&self, ctx: &RefinedContext) -> bool {
        ctx.is_sparse()
            && self.dim == ctx.dim()
            && self.n_posts == ctx.n_posts()
            && self.codes.len() == ctx.sparse_slices().val.len()
    }

    /// `true` when any arena borrows a loaded snapshot's bytes.
    #[must_use]
    pub fn is_borrowed(&self) -> bool {
        self.offsets.is_borrowed()
            || self.scales.is_borrowed()
            || self.codes.is_borrowed()
            || self.norms.is_borrowed()
    }

    /// Serialize into a v3 snapshot section: four `u64` header words,
    /// then the parameter/code/norm arenas, each at an 8-aligned payload
    /// offset (the same layout discipline as every v2 section, so the
    /// arenas are zero-copy loadable).
    pub fn encode_v2<W: SectionWrite>(&self, buf: &mut W) {
        buf.put_u64(self.dim as u64);
        buf.put_u64(self.n_posts as u64);
        buf.put_u64(self.codes.len() as u64);
        buf.put_u64(0); // reserved
        buf.put_f64_arena(self.offsets.as_slice());
        buf.put_f64_arena(self.scales.as_slice());
        buf.put_u8_arena(self.codes.as_slice());
        buf.put_f64_arena(self.norms.as_slice());
    }

    /// Deserialize a section written by [`Self::encode_v2`]. With a
    /// `backing`, arenas become zero-copy views of the snapshot bytes.
    ///
    /// # Errors
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Malformed`] on
    /// malformed payloads; never panics.
    pub fn decode_v2(
        r: &mut SectionReader<'_>,
        backing: Option<&SharedBytes>,
    ) -> Result<Self, SnapshotError> {
        let limit = r.remaining();
        let dim = r.take_len(limit)?;
        if dim == 0 {
            return Err(SnapshotError::Malformed { context: "zero quantized dimension" });
        }
        let n_posts = r.take_len(limit)?;
        let n_entries = r.take_len(limit)?;
        if r.take_u64()? != 0 {
            return Err(SnapshotError::Malformed { context: "nonzero reserved quantized word" });
        }
        let offsets = take_view::<f64>(r, backing, dim, "quantized offsets arena")?;
        let scales = take_view::<f64>(r, backing, dim, "quantized scales arena")?;
        let codes = take_view::<u8>(r, backing, n_entries, "quantized codes arena")?;
        let norms = take_view::<f64>(r, backing, n_posts, "quantized norms arena")?;
        if scales.as_slice().iter().any(|&s| !s.is_finite() || s < 0.0)
            || offsets.as_slice().iter().any(|&o| !o.is_finite())
            || norms.as_slice().iter().any(|&n| !n.is_finite() || n < 0.0)
        {
            return Err(SnapshotError::Malformed { context: "invalid quantized parameters" });
        }
        Ok(Self { dim, n_posts, offsets, scales, codes, norms })
    }

    /// `(resident, borrowed)` arena bytes, like the exact context's
    /// accounting.
    #[must_use]
    pub fn arena_bytes(&self) -> (usize, usize) {
        let mut resident = 0;
        let mut total = 0;
        for (r, t) in [
            (self.offsets.resident_bytes(), self.offsets.byte_len()),
            (self.scales.resident_bytes(), self.scales.byte_len()),
            (self.codes.resident_bytes(), self.codes.byte_len()),
            (self.norms.resident_bytes(), self.norms.byte_len()),
        ] {
            resident += r;
            total += t;
        }
        (resident, total - resident)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refined::{ClassifierKind, RefinedContext, Side};
    use crate::uda::UdaGraph;
    use dehealth_corpus::snapshot::{SectionBuf, SectionReader, SectionTag};
    use dehealth_corpus::{Forum, ForumConfig};
    use dehealth_ml::quant::dequantize;
    use dehealth_stylometry::extract;

    fn sparse_ctx() -> RefinedContext {
        let forum = Forum::generate(&ForumConfig::tiny(), 77);
        let features: Vec<_> = forum.posts.iter().map(|p| extract(&p.text)).collect();
        let uda = UdaGraph::build_with_features(&forum, &features);
        RefinedContext::build(
            &Side { forum: &forum, uda: &uda, post_features: &features },
            ClassifierKind::default(),
        )
    }

    #[test]
    fn dense_context_has_no_quantized_mirror() {
        let forum = Forum::generate(&ForumConfig::tiny(), 77);
        let features: Vec<_> = forum.posts.iter().map(|p| extract(&p.text)).collect();
        let uda = UdaGraph::build_with_features(&forum, &features);
        let dense = RefinedContext::build(
            &Side { forum: &forum, uda: &uda, post_features: &features },
            ClassifierKind::Centroid,
        );
        assert!(QuantizedContext::from_context(&dense).is_none());
    }

    #[test]
    fn fit_is_structurally_consistent_and_bounded() {
        let ctx = sparse_ctx();
        let q = QuantizedContext::from_context(&ctx).unwrap();
        assert!(q.matches_context(&ctx));
        // Every entry's reconstruction stays within half a code step of
        // the exact value (the affine mapping's error bound).
        let s = ctx.sparse_slices();
        for pi in 0..ctx.n_posts() {
            let (idx, val) = s.post(pi);
            let range = s.start[pi] as usize..s.start[pi + 1] as usize;
            for ((&j, &v), &c) in idx.iter().zip(val).zip(&q.codes()[range]) {
                let j = j as usize;
                let back = dequantize(c, q.offsets()[j], q.scales()[j]);
                let step = q.scales()[j];
                assert!((back - v).abs() <= step / 2.0 + 1e-12, "feature {j}: {v} -> {back}");
            }
        }
    }

    #[test]
    fn implicit_zeros_code_to_zero() {
        // Any feature absent from at least one post must have offset 0,
        // so the sparse structure stays lossless under quantization.
        let ctx = sparse_ctx();
        let q = QuantizedContext::from_context(&ctx).unwrap();
        let s = ctx.sparse_slices();
        let n_posts = ctx.n_posts();
        let mut count = vec![0usize; ctx.dim()];
        for &j in s.idx {
            count[j as usize] += 1;
        }
        for (j, &seen) in count.iter().enumerate() {
            if seen < n_posts {
                assert_eq!(q.offsets()[j], 0.0, "feature {j} has implicit zeros");
            }
        }
    }

    #[test]
    fn section_round_trip_is_lossless() {
        let ctx = sparse_ctx();
        let q = QuantizedContext::from_context(&ctx).unwrap();
        let mut buf = SectionBuf::new();
        q.encode_v2(&mut buf);
        let bytes = buf.into_bytes();
        let mut r = SectionReader::standalone(&bytes, SectionTag(*b"QCTX"));
        let back = QuantizedContext::decode_v2(&mut r, None).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.dim(), q.dim());
        assert_eq!(back.n_posts(), q.n_posts());
        assert_eq!(back.offsets(), q.offsets());
        assert_eq!(back.scales(), q.scales());
        assert_eq!(back.codes(), q.codes());
        assert_eq!(back.norms(), q.norms());
        assert!(back.matches_context(&ctx));
    }

    #[test]
    fn anon_rows_join_the_aux_code_space() {
        let ctx = sparse_ctx();
        let q = QuantizedContext::from_context(&ctx).unwrap();
        // Self-quantization through quantize_rows agrees with the fit.
        let rows = q.quantize_rows(&ctx).unwrap();
        assert_eq!(rows.codes, q.codes());
        assert_eq!(rows.norms, q.norms());
    }
}
