//! Refined DA (Algorithm 1, lines 7-9): per-user classification inside the
//! Top-K candidate set, plus the open-world schemes of Section III-B
//! (false addition, mean-, distractorless- and sigma-verification).
//!
//! Two implementations produce bit-identical mappings:
//!
//! - [`refine_user`] — the per-user-from-scratch path: densify every
//!   auxiliary post of every candidate into a fresh [`Dataset`], clone it
//!   through the scaler, and train an owned classifier. Kept as the
//!   differential oracle (the same pattern as the engine's dense scoring
//!   mode).
//! - [`refine_user_shared`] — the fast path: every post's dense sample
//!   lives in a [`RefinedContext`] arena built **once per side**; per-user
//!   training assembles row-index lists into zero-copy
//!   [`DatasetView`]s, min-max scaling is fused into a single
//!   gather-scale pass over reusable [`RefinedScratch`] buffers, and KNN
//!   (the default classifier) runs a fully sparse kernel — stats,
//!   scaling, and cosine over nonzero entries only — without ever
//!   materializing a training set.
//!
//! Decoy sampling, majority-vote tie-breaking and the Section III-B
//! verification tests are shared helpers, so the two paths cannot drift
//! semantically; `tests/refined_parity.rs` pins the equivalence across
//! every classifier × verification combination.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dehealth_corpus::snapshot::{SectionBuf, SectionReader, SectionWrite, SnapshotError};
use dehealth_corpus::Forum;
use dehealth_mapped::SharedBytes;
use dehealth_ml::{
    knn_vote_quantized, knn_vote_scored, Classifier, Dataset, DatasetView, Knn, KnnMetric,
    MinMaxScaler, NearestCentroid, Rlsc, SmoSvm, SvmParams,
};
use dehealth_stylometry::{FeatureVector, M};

use crate::arena::ArenaView;
use crate::index::take_view;
use crate::quant::{QuantizedContext, QuantizedRows};
use crate::uda::UdaGraph;

/// Which benchmark classifier refined DA trains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClassifierKind {
    /// k-nearest neighbours on cosine closeness.
    Knn {
        /// Neighbourhood size.
        k: usize,
    },
    /// SMO-trained linear SVM (one-vs-rest).
    Smo,
    /// Regularized least-squares classification.
    Rlsc {
        /// Ridge parameter.
        lambda: f64,
    },
    /// Nearest-centroid.
    Centroid,
}

impl Default for ClassifierKind {
    fn default() -> Self {
        ClassifierKind::Knn { k: 3 }
    }
}

/// Open-world decision scheme applied after classification.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Verification {
    /// Closed-world: always accept the classifier's decision.
    #[default]
    None,
    /// Accept `u → v` only if `s_uv ≥ (1+r)·λ_u` where `λ_u` is the mean
    /// similarity between `u` and its *other* candidates (the paper's
    /// Section III-B scheme; excluding the winner keeps the test
    /// meaningful when the Top-K scores are tightly clustered).
    Mean {
        /// Margin parameter `r ≥ 0`.
        r: f64,
    },
    /// Add `n_false` random non-candidate users as decoy classes; reject
    /// if the classifier picks a decoy.
    FalseAddition {
        /// Number of decoy users.
        n_false: usize,
    },
    /// Distractorless verification (Noecker & Ryan, cited as \[45\]):
    /// accept `u → v` only if the cosine similarity of the users' mean
    /// stylometric profiles reaches `theta`, with no reference to the
    /// other candidates.
    Distractorless {
        /// Acceptance threshold on profile cosine, in `[0, 1]`.
        theta: f64,
    },
    /// Sigma verification (Stolerman et al., cited as \[32\]): accept
    /// `u → v` only if `u`'s profile is no farther from `v`'s centroid
    /// than `factor` standard deviations of `v`'s own per-post distances
    /// to that centroid — i.e. `u` must look like a typical post of `v`.
    Sigma {
        /// Allowed deviation in units of `v`'s per-post σ.
        factor: f64,
    },
}

/// Number of structural features appended to each stylometric post vector.
pub const N_STRUCT: usize = 4;

/// Refined-DA parameters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RefinedConfig {
    /// Classifier choice.
    pub classifier: ClassifierKind,
    /// Open-world verification scheme.
    pub verification: Verification,
    /// RNG seed (decoy sampling, SMO pair selection).
    pub seed: u64,
}

fn make_classifier(kind: ClassifierKind, seed: u64) -> Box<dyn Classifier> {
    match kind {
        ClassifierKind::Knn { k } => Box::new(Knn::new(k, KnnMetric::Cosine)),
        ClassifierKind::Smo => Box::new(SmoSvm::new(SvmParams { seed, ..SvmParams::default() })),
        ClassifierKind::Rlsc { lambda } => Box::new(Rlsc::new(lambda)),
        ClassifierKind::Centroid => Box::new(NearestCentroid::new()),
    }
}

/// Dense sample: the post's stylometric vector plus the author's structural
/// features from its UDA graph (degree, weighted degree, attribute count,
/// post count — log-scaled to tame magnitudes).
fn sample(post_features: &FeatureVector, uda: &UdaGraph, user: usize) -> Vec<f64> {
    let mut x = post_features.to_dense();
    x.reserve_exact(N_STRUCT);
    x.push((uda.graph.degree(user) as f64).ln_1p());
    x.push(uda.graph.weighted_degree(user).ln_1p());
    x.push((uda.attributes[user].len() as f64).ln_1p());
    x.push((uda.post_counts[user] as f64).ln_1p());
    x
}

/// All inputs refined DA needs about one side of the attack.
pub struct Side<'a> {
    /// The forum (for post texts / indices).
    pub forum: &'a Forum,
    /// Its UDA graph.
    pub uda: &'a UdaGraph,
    /// Per-post stylometric vectors, parallel to `forum.posts`.
    pub post_features: &'a [FeatureVector],
}

/// Materialized-once feature state of one side: every post's sample
/// (stylometric block + [`N_STRUCT`] structural features of its author),
/// row `pi` ↔ `forum.posts[pi]` — as sparse `(index, value)` entry lists
/// for the KNN hot loop, or as a contiguous dense arena for the other
/// classifiers (only the representation the configured classifier reads
/// is materialized).
///
/// Built once per attack (per side) and shared read-only across refined-DA
/// workers; [`refine_user_shared`] assembles per-user training sets as row
/// indices into it instead of re-densifying overlapping candidates' posts
/// for every anonymized user.
///
/// Storage-generic ([`ArenaView`]): a freshly built context owns its
/// arenas, a context decoded from a v2 snapshot ([`Self::decode_v2`])
/// borrows them straight out of the (typically memory-mapped) file, and
/// [`Self::append_rows`] promotes borrowed arenas to owned copy-on-write.
#[derive(Debug, Clone)]
pub struct RefinedContext {
    dim: usize,
    /// `true` when the sparse mirror is materialized (KNN), `false` when
    /// the dense arena is (all other classifiers).
    sparse: bool,
    data: ArenaView<f64>,
    /// Sparse rows: concatenated `(index, value)` entry lists (ascending
    /// index per row), row `pi` at `sp_start[pi]..sp_start[pi + 1]`. All
    /// values are non-negative (asserted at build) — the invariant that
    /// makes min-max scaling map a raw zero to exactly `0.0` and keeps
    /// the sparse cosine kernel bit-identical to the dense one.
    sp_idx: ArenaView<u32>,
    sp_val: ArenaView<f64>,
    sp_start: ArenaView<u64>,
}

/// The resolved sparse arenas of one [`RefinedContext`] — hoisted out of
/// the KNN hot loop so per-row access is plain slice indexing regardless
/// of the backing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SparseSlices<'a> {
    pub(crate) idx: &'a [u32],
    pub(crate) val: &'a [f64],
    pub(crate) start: &'a [u64],
}

impl<'a> SparseSlices<'a> {
    /// The sparse entries of post `pi`: `(indices, values)`, ascending.
    pub(crate) fn post(&self, pi: usize) -> (&'a [u32], &'a [f64]) {
        let range = self.start[pi] as usize..self.start[pi + 1] as usize;
        (&self.idx[range.clone()], &self.val[range])
    }
}

impl RefinedContext {
    /// Materialize every post of `side` — each post exactly once, through
    /// the same `sample` helper the per-user oracle calls per (user, candidate,
    /// post), so row values are bit-identical by construction. Only the
    /// representation `classifier` reads is built: the sparse entry lists
    /// for [`ClassifierKind::Knn`], the dense arena otherwise.
    ///
    /// # Panics
    /// Panics (on the sparse build) if any feature value is negative: the
    /// Table-I extractor emits frequencies/counts and the structural
    /// features are `ln(1+·)` of counts, all `≥ 0`, and the sparse
    /// scaling fast path relies on that (`min-max(0) = 0` exactly).
    #[must_use]
    pub fn build(side: &Side<'_>, classifier: ClassifierKind) -> Self {
        let sparse = matches!(classifier, ClassifierKind::Knn { .. });
        let mut ctx = Self {
            dim: M + N_STRUCT,
            sparse,
            data: ArenaView::default(),
            sp_idx: ArenaView::default(),
            sp_val: ArenaView::default(),
            sp_start: ArenaView::default(),
        };
        if sparse {
            ctx.sp_start.to_mut().push(0);
        }
        ctx.append_rows(side, 0);
        ctx
    }

    /// Materialize the rows of `side.forum.posts[from_post..]`, appending
    /// them to this context — the incremental-ingest path of a corpus
    /// that already holds rows for the first `from_post` posts of the
    /// same (merged) side. Snapshot-borrowed arenas are promoted to owned
    /// first (copy-on-write). Under the disjoint-cohort ingest convention
    /// the earlier rows' inputs are unchanged, so appending is
    /// bit-identical to rebuilding from scratch.
    ///
    /// # Panics
    /// Panics when `from_post` does not equal [`Self::n_posts`], and (on
    /// the sparse build) if any feature value is negative — see
    /// [`Self::build`].
    pub fn append_rows(&mut self, side: &Side<'_>, from_post: usize) {
        assert_eq!(from_post, self.n_posts(), "row append must start at the materialized count");
        let dim = self.dim;
        if self.sparse {
            // Promote once (no-ops on owned storage), then push plainly.
            let sp_idx = self.sp_idx.to_mut();
            let sp_val = self.sp_val.to_mut();
            let sp_start = self.sp_start.to_mut();
            for (post, features) in side.forum.posts.iter().zip(side.post_features).skip(from_post)
            {
                let row = sample(features, side.uda, post.author);
                for (j, &v) in row.iter().enumerate() {
                    assert!(v >= 0.0, "negative feature value {v} at index {j}");
                    // Structural features are kept explicitly even when
                    // zero: they are dense in practice, and explicit zeros
                    // fold into the per-feature min/max exactly like the
                    // dense scan.
                    if v != 0.0 || j >= M {
                        sp_idx.push(j as u32);
                        sp_val.push(v);
                    }
                }
                sp_start.push(sp_idx.len() as u64);
            }
        } else {
            let data = self.data.to_mut();
            data.reserve_exact((side.forum.posts.len() - from_post) * dim);
            for (post, features) in side.forum.posts.iter().zip(side.post_features).skip(from_post)
            {
                data.extend_from_slice(&sample(features, side.uda, post.author));
            }
        }
    }

    /// Sample dimension (`M + N_STRUCT`).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The dense sample of post `pi`.
    #[must_use]
    pub fn row(&self, pi: usize) -> &[f64] {
        &self.data.as_slice()[pi * self.dim..(pi + 1) * self.dim]
    }

    /// The whole arena (for [`DatasetView::gathered`]).
    #[must_use]
    pub fn arena(&self) -> &[f64] {
        self.data.as_slice()
    }

    /// The resolved sparse arenas, hoisted once per kernel invocation.
    pub(crate) fn sparse_slices(&self) -> SparseSlices<'_> {
        SparseSlices {
            idx: self.sp_idx.as_slice(),
            val: self.sp_val.as_slice(),
            start: self.sp_start.as_slice(),
        }
    }

    /// `true` when any arena of this context borrows a loaded snapshot's
    /// bytes instead of owning them.
    #[must_use]
    pub fn is_borrowed(&self) -> bool {
        self.data.is_borrowed()
            || self.sp_idx.is_borrowed()
            || self.sp_val.is_borrowed()
            || self.sp_start.is_borrowed()
    }

    /// `(resident, borrowed)` arena bytes: heap bytes this context keeps
    /// resident vs. bytes it reads straight out of a loaded snapshot.
    #[must_use]
    pub fn arena_bytes(&self) -> (usize, usize) {
        let mut resident = 0;
        let mut total = 0;
        for (r, t) in [
            (self.data.resident_bytes(), self.data.byte_len()),
            (self.sp_idx.resident_bytes(), self.sp_idx.byte_len()),
            (self.sp_val.resident_bytes(), self.sp_val.byte_len()),
            (self.sp_start.resident_bytes(), self.sp_start.byte_len()),
        ] {
            resident += r;
            total += t;
        }
        (resident, total - resident)
    }

    /// `true` when the sparse entry lists are materialized (the KNN
    /// representation), `false` when the dense arena is.
    #[must_use]
    pub fn is_sparse(&self) -> bool {
        self.sparse
    }

    /// `true` if this context holds the representation `classifier`
    /// reads — the precondition of [`refine_user_shared`].
    #[must_use]
    pub fn matches_classifier(&self, classifier: ClassifierKind) -> bool {
        self.sparse == matches!(classifier, ClassifierKind::Knn { .. })
    }

    /// Number of materialized post rows.
    #[must_use]
    pub fn n_posts(&self) -> usize {
        if self.sparse {
            self.sp_start.len().saturating_sub(1)
        } else {
            self.data.len().checked_div(self.dim).unwrap_or(0)
        }
    }

    /// Serialize into a v1 snapshot section: dimension, representation
    /// flag, then the arena the flag selects (interleaved, unaligned —
    /// see ARCHITECTURE.md). Floats are stored as raw IEEE-754 bits, so a
    /// reloaded context is bit-identical to the one built from scratch.
    /// Kept for compatibility fixtures; new snapshots use
    /// [`Self::encode_v2`].
    ///
    /// # Panics
    /// Panics if the context holds more than `u32::MAX` posts or sparse
    /// entries (beyond any supported corpus).
    pub fn encode(&self, buf: &mut SectionBuf) {
        buf.put_u32(u32::try_from(self.dim).expect("dimension overflows u32"));
        buf.put_u8(u8::from(self.sparse));
        if self.sparse {
            buf.put_u32(u32::try_from(self.n_posts()).expect("post count overflows u32"));
            buf.put_u32(u32::try_from(self.sp_idx.len()).expect("entry count overflows u32"));
            for (&i, &v) in self.sp_idx.as_slice().iter().zip(self.sp_val.as_slice()) {
                buf.put_u32(i);
                buf.put_f64(v);
            }
            for &s in self.sp_start.as_slice() {
                buf.put_u64(s);
            }
        } else {
            buf.put_u32(u32::try_from(self.n_posts()).expect("post count overflows u32"));
            for &v in self.data.as_slice() {
                buf.put_f64(v);
            }
        }
    }

    /// Deserialize a context written by [`Self::encode`] (the v1 payload
    /// schema), revalidating the arena invariants (ascending in-range
    /// indices per row, a monotone row offset table, non-negative
    /// values). Always copies — the v1 layout is interleaved and
    /// unaligned.
    ///
    /// # Errors
    /// [`SnapshotError::Truncated`] or [`SnapshotError::Malformed`] on
    /// malformed payloads; never panics.
    pub fn decode(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let dim = r.take_u32()? as usize;
        if dim == 0 {
            return Err(SnapshotError::Malformed { context: "zero context dimension" });
        }
        let sparse = match r.take_u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Malformed { context: "invalid representation flag" }),
        };
        let n_posts = r.take_u32()? as usize;
        if sparse {
            let n_entries = r.take_u32()? as usize;
            if n_entries > r.remaining() / 12 {
                return Err(SnapshotError::Malformed { context: "implausible entry count" });
            }
            let mut sp_idx = Vec::with_capacity(n_entries);
            let mut sp_val = Vec::with_capacity(n_entries);
            for _ in 0..n_entries {
                sp_idx.push(r.take_u32()?);
                sp_val.push(r.take_f64()?);
            }
            if n_posts > r.remaining() / 8 {
                return Err(SnapshotError::Malformed { context: "implausible post count" });
            }
            let mut sp_start = Vec::with_capacity(n_posts + 1);
            for _ in 0..=n_posts {
                sp_start.push(r.take_u64()?);
            }
            let ctx = Self {
                dim,
                sparse,
                data: ArenaView::default(),
                sp_idx: sp_idx.into(),
                sp_val: sp_val.into(),
                sp_start: sp_start.into(),
            };
            ctx.validate_sparse()?;
            Ok(ctx)
        } else {
            let n_values = n_posts
                .checked_mul(dim)
                .ok_or(SnapshotError::Malformed { context: "implausible post count" })?;
            if n_values > r.remaining() / 8 {
                return Err(SnapshotError::Malformed { context: "implausible post count" });
            }
            let mut data = Vec::with_capacity(n_values);
            for _ in 0..n_values {
                data.push(r.take_f64()?);
            }
            Ok(Self {
                dim,
                sparse,
                data: data.into(),
                sp_idx: ArenaView::default(),
                sp_val: ArenaView::default(),
                sp_start: ArenaView::default(),
            })
        }
    }

    /// Serialize into a v2 snapshot section: four `u64` header words,
    /// then the arenas the representation flag selects, each padded to an
    /// 8-byte payload offset (see ARCHITECTURE.md). The sparse mirror is
    /// stored struct-of-arrays (indices, values, row starts) instead of
    /// the v1 interleaving, which is what lets a zero-copy load cast the
    /// `f64` and `u64` arenas in place.
    pub fn encode_v2<W: SectionWrite>(&self, buf: &mut W) {
        buf.put_u64(self.dim as u64);
        buf.put_u64(u64::from(self.sparse));
        buf.put_u64(self.n_posts() as u64);
        if self.sparse {
            buf.put_u64(self.sp_idx.len() as u64);
            buf.put_u32_arena(self.sp_idx.as_slice());
            buf.put_f64_arena(self.sp_val.as_slice());
            buf.put_u64_arena(self.sp_start.as_slice());
        } else {
            buf.put_u64(self.data.len() as u64);
            buf.put_f64_arena(self.data.as_slice());
        }
    }

    /// Deserialize a context written by [`Self::encode_v2`]. With a
    /// `backing`, the arenas become zero-copy [`ArenaView`]s borrowing
    /// the snapshot's bytes; without one — or on targets that cannot
    /// cast little-endian bytes in place — they are copied out instead.
    /// Either way every invariant of [`Self::decode`] is re-validated.
    ///
    /// # Errors
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Malformed`] on
    /// malformed payloads, [`SnapshotError::Misaligned`] when an arena
    /// that the format guarantees aligned is not; never panics.
    pub fn decode_v2(
        r: &mut SectionReader<'_>,
        backing: Option<&SharedBytes>,
    ) -> Result<Self, SnapshotError> {
        let limit = r.remaining();
        let dim = r.take_len(limit)?;
        if dim == 0 {
            return Err(SnapshotError::Malformed { context: "zero context dimension" });
        }
        let sparse = match r.take_u64()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Malformed { context: "invalid representation flag" }),
        };
        let n_posts = r.take_len(limit)?;
        if sparse {
            let n_entries = r.take_len(limit)?;
            let sp_idx = take_view::<u32>(r, backing, n_entries, "context entry index arena")?;
            let sp_val = take_view::<f64>(r, backing, n_entries, "context entry value arena")?;
            let sp_start = take_view::<u64>(
                r,
                backing,
                n_posts
                    .checked_add(1)
                    .ok_or(SnapshotError::Malformed { context: "implausible post count" })?,
                "context row starts arena",
            )?;
            let ctx = Self { dim, sparse, data: ArenaView::default(), sp_idx, sp_val, sp_start };
            ctx.validate_sparse()?;
            Ok(ctx)
        } else {
            let n_values = r.take_len(limit)?;
            if n_values != n_posts.saturating_mul(dim) {
                return Err(SnapshotError::Malformed { context: "implausible post count" });
            }
            let data = take_view::<f64>(r, backing, n_values, "context dense arena")?;
            Ok(Self {
                dim,
                sparse,
                data,
                sp_idx: ArenaView::default(),
                sp_val: ArenaView::default(),
                sp_start: ArenaView::default(),
            })
        }
    }

    /// The sparse-arena invariants both decoders re-validate: a monotone
    /// row offset table covering the arenas, strictly ascending in-range
    /// indices per row, and finite non-negative values (the precondition
    /// of the sparse scaling fast path).
    fn validate_sparse(&self) -> Result<(), SnapshotError> {
        let s = self.sparse_slices();
        let n_entries = s.idx.len();
        if s.val.len() != n_entries {
            return Err(SnapshotError::Malformed { context: "sparse arenas disagree" });
        }
        if s.start.first() != Some(&0) || s.start.last() != Some(&(n_entries as u64)) {
            return Err(SnapshotError::Malformed { context: "row offsets do not cover arena" });
        }
        if s.start.windows(2).any(|w| w[0] > w[1]) {
            return Err(SnapshotError::Malformed { context: "row offsets not monotone" });
        }
        if s.idx.iter().any(|&i| i as usize >= self.dim) {
            return Err(SnapshotError::Malformed { context: "entry index out of range" });
        }
        if s.val.iter().any(|&v| !v.is_finite() || v < 0.0) {
            return Err(SnapshotError::Malformed { context: "negative feature value" });
        }
        // Per-row indices must be strictly ascending (the kernels merge
        // rows positionally).
        for w in s.start.windows(2) {
            let row = &s.idx[w[0] as usize..w[1] as usize];
            if row.windows(2).any(|p| p[0] >= p[1]) {
                return Err(SnapshotError::Malformed { context: "row indices not ascending" });
            }
        }
        Ok(())
    }
}

/// Reusable per-worker buffers for [`refine_user_shared`]: training-set
/// row indices and labels, the scaled training matrix (dense classifiers)
/// or scaled sparse rows + per-feature min-max stats (the sparse KNN hot
/// loop), and the scaled query. Amortizes every per-user allocation of
/// the hot loop.
#[derive(Debug, Clone, Default)]
pub struct RefinedScratch {
    class_users: Vec<usize>,
    rows: Vec<u32>,
    labels: Vec<usize>,
    scaled: Vec<f64>,
    x: Vec<f64>,
    votes: Vec<usize>,
    /// Epoch tag per feature: a feature's `feat_*` slots are valid only
    /// when its tag equals `epoch`, so per-user resets cost O(touched)
    /// instead of O(dim).
    epoch: u32,
    feat_epoch: Vec<u32>,
    feat_count: Vec<u32>,
    feat_min: Vec<f64>,
    feat_max: Vec<f64>,
    feat_range: Vec<f64>,
    touched: Vec<u32>,
    /// Scaled sparse training rows (concatenated; `s_start` bounds) and
    /// their Euclidean norms.
    s_idx: Vec<u32>,
    s_val: Vec<f64>,
    s_start: Vec<usize>,
    s_norm: Vec<f64>,
    /// The query's nonzero feature indices (for unscattering) and its
    /// dense scatter of scaled values (invariant: all zeros outside
    /// [`sparse_knn_votes`]'s per-post scatter/unscatter).
    q_idx: Vec<u32>,
    q_dense: Vec<f64>,
    /// Dense scatter of the query's `u8` codes for the quantized kernel
    /// (same all-zeros invariant as `q_dense`).
    q_codes: Vec<u8>,
}

impl RefinedScratch {
    /// Empty scratch; buffers grow to steady-state on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Min-max-scale one sparse value against finalized per-feature stats —
/// the same expression as `MinMaxScaler::scale_value`, so scaled values
/// are bit-identical to the dense path's.
fn scale_sparse(feat_min: &[f64], feat_range: &[f64], j: usize, v: f64) -> f64 {
    if feat_range[j] == 0.0 {
        0.0
    } else {
        ((v - feat_min[j]) / feat_range[j]).clamp(0.0, 1.0)
    }
}

/// Dot product of a scattered dense query (`q_dense[j]` = scaled query
/// value, 0.0 elsewhere) with one sparse row (ascending indices).
/// Accumulates over the row's entries in ascending index order — every
/// term of the dense `Σ_j a_j·b_j` this skips has a zero row value, i.e.
/// is an exact `+ 0.0` no-op on a non-negative accumulator — so the
/// result is bit-identical to the dense sum.
fn scatter_dot(q_dense: &[f64], bi: &[u32], bv: &[f64]) -> f64 {
    let mut dot = 0.0;
    for (&j, &v) in bi.iter().zip(bv) {
        dot += q_dense[j as usize] * v;
    }
    dot
}

/// The sparse KNN hot loop: per-feature min-max stats, scaled training
/// rows, and cosine closeness all computed over nonzero entries only —
/// `O(nnz)` per post instead of `O(M)`. Bit-identical to the dense oracle
/// because features are non-negative (asserted at context build): a raw
/// zero min-max-scales to exactly `0.0`, `f64::min`/`max` folds are
/// order-independent without NaNs, and every dense-sum term the sparse
/// kernels skip is an exact `+ 0.0`.
///
/// Fills `scratch.votes` (sized to the class count) with the per-post
/// majority votes. Expects `scratch.rows`/`labels` to hold the gathered
/// training set.
fn sparse_knn_votes(
    k: usize,
    anon_posts: &[usize],
    anon_ctx: &RefinedContext,
    aux_ctx: &RefinedContext,
    scratch: &mut RefinedScratch,
) {
    let dim = aux_ctx.dim();
    let n_train = scratch.rows.len();
    let scratch = &mut *scratch;
    // Resolve the (possibly snapshot-borrowed) arenas once; per-row access
    // below is plain slice indexing.
    let aux_rows = aux_ctx.sparse_slices();
    let anon_rows = anon_ctx.sparse_slices();
    if scratch.feat_epoch.len() < dim {
        scratch.feat_epoch.resize(dim, 0);
        scratch.feat_count.resize(dim, 0);
        scratch.feat_min.resize(dim, 0.0);
        scratch.feat_max.resize(dim, 0.0);
        scratch.feat_range.resize(dim, 0.0);
    }
    if scratch.epoch == u32::MAX {
        scratch.feat_epoch.fill(0);
        scratch.epoch = 0;
    }
    scratch.epoch += 1;
    let epoch = scratch.epoch;

    // Pass 1: per-feature count/min/max over the training rows' entries.
    scratch.touched.clear();
    for &pi in &scratch.rows {
        let (idx, val) = aux_rows.post(pi as usize);
        for (&j, &v) in idx.iter().zip(val) {
            let j = j as usize;
            if scratch.feat_epoch[j] != epoch {
                scratch.feat_epoch[j] = epoch;
                scratch.feat_count[j] = 1;
                scratch.feat_min[j] = v;
                scratch.feat_max[j] = v;
                scratch.touched.push(j as u32);
            } else {
                scratch.feat_count[j] += 1;
                scratch.feat_min[j] = scratch.feat_min[j].min(v);
                scratch.feat_max[j] = scratch.feat_max[j].max(v);
            }
        }
    }
    // A feature absent from some training row folds an implicit 0.0 into
    // its bounds, exactly like the dense min/max scan over full rows.
    for &j in &scratch.touched {
        let j = j as usize;
        let (lo, hi) = if (scratch.feat_count[j] as usize) < n_train {
            (scratch.feat_min[j].min(0.0), scratch.feat_max[j].max(0.0))
        } else {
            (scratch.feat_min[j], scratch.feat_max[j])
        };
        scratch.feat_min[j] = lo;
        scratch.feat_range[j] = if hi > lo { hi - lo } else { 0.0 };
    }

    // Pass 2: scaled sparse training rows and their norms.
    scratch.s_idx.clear();
    scratch.s_val.clear();
    scratch.s_start.clear();
    scratch.s_norm.clear();
    scratch.s_start.push(0);
    for &pi in &scratch.rows {
        let (idx, val) = aux_rows.post(pi as usize);
        let mut norm2 = 0.0;
        for (&j, &v) in idx.iter().zip(val) {
            let s = scale_sparse(&scratch.feat_min, &scratch.feat_range, j as usize, v);
            scratch.s_idx.push(j);
            scratch.s_val.push(s);
            norm2 += s * s;
        }
        scratch.s_start.push(scratch.s_idx.len());
        scratch.s_norm.push(norm2.sqrt());
    }

    // Pass 3: classify each anonymized post and vote. The scaled query is
    // scattered into a dense accumulator so each training row's closeness
    // is one gather over the row's entries (no merge branching), and
    // unscattered afterwards to keep the all-zeros invariant.
    scratch.q_dense.resize(dim, 0.0);
    for &pi in anon_posts {
        let (idx, val) = anon_rows.post(pi);
        scratch.q_idx.clear();
        let mut norm2 = 0.0;
        for (&j, &v) in idx.iter().zip(val) {
            // A feature no training row has is constant 0 there: range 0,
            // scaled 0 — same as the dense scaler's untouched column.
            let s = if scratch.feat_epoch[j as usize] == epoch {
                scale_sparse(&scratch.feat_min, &scratch.feat_range, j as usize, v)
            } else {
                0.0
            };
            scratch.q_idx.push(j);
            scratch.q_dense[j as usize] = s;
            norm2 += s * s;
        }
        let na = norm2.sqrt();
        let q_dense = &scratch.q_dense;
        let (s_idx, s_val) = (&scratch.s_idx, &scratch.s_val);
        let (s_start, s_norm) = (&scratch.s_start, &scratch.s_norm);
        let labels = &scratch.labels;
        let scores = (0..n_train).map(|i| {
            let row = s_start[i]..s_start[i + 1];
            let dot = scatter_dot(q_dense, &s_idx[row.clone()], &s_val[row]);
            let nb = s_norm[i];
            if na == 0.0 || nb == 0.0 {
                0.0
            } else {
                dot / (na * nb)
            }
        });
        let p = knn_vote_scored(scores, |i| labels[i], k);
        scratch.votes[p.label] += 1;
        for &j in &scratch.q_idx {
            scratch.q_dense[j as usize] = 0.0;
        }
    }
}

/// The quantized KNN loop: like [`sparse_knn_votes`] but over the `u8`
/// affine codes of a [`QuantizedContext`] — no per-user min-max fit, no
/// scaled-row materialization, and integer-accumulation cosine
/// ([`knn_vote_quantized`]). The per-user passes 1 and 2 of the exact
/// kernel disappear entirely; classification is one gather per training
/// row over precomputed codes and norms.
///
/// Approximate in two ways: entry values are coded to 8 bits, and rows
/// are compared in the *global* code space instead of the per-training-set
/// min-max scale. Selection and tie-break semantics are exactly the exact
/// kernel's.
fn quantized_knn_votes(
    k: usize,
    anon_posts: &[usize],
    anon_ctx: &RefinedContext,
    anon_q: &QuantizedRows,
    aux_ctx: &RefinedContext,
    aux_q: &QuantizedContext,
    scratch: &mut RefinedScratch,
) {
    let dim = aux_ctx.dim();
    let n_train = scratch.rows.len();
    let aux_rows = aux_ctx.sparse_slices();
    let anon_rows = anon_ctx.sparse_slices();
    let aux_codes = aux_q.codes();
    let aux_norms = aux_q.norms();
    scratch.q_codes.resize(dim, 0);
    for &pi in anon_posts {
        let (idx, _) = anon_rows.post(pi);
        let entry_range = anon_rows.start[pi] as usize..anon_rows.start[pi + 1] as usize;
        let codes = &anon_q.codes[entry_range];
        for (&j, &c) in idx.iter().zip(codes) {
            scratch.q_codes[j as usize] = c;
        }
        let rows = &scratch.rows;
        let labels = &scratch.labels;
        let p = knn_vote_quantized(
            k,
            n_train,
            &scratch.q_codes,
            anon_q.norms[pi],
            |i| {
                let ti = rows[i] as usize;
                let r = aux_rows.start[ti] as usize..aux_rows.start[ti + 1] as usize;
                (&aux_rows.idx[r.clone()], &aux_codes[r])
            },
            |i| aux_norms[rows[i] as usize],
            |i| labels[i],
        );
        scratch.votes[p.label] += 1;
        for &j in idx {
            scratch.q_codes[j as usize] = 0;
        }
    }
}

/// Draw the false-addition decoys for anonymized user `u`: a uniform
/// sample **without replacement** of `min(n_false, pool)` distinct
/// non-candidate auxiliary users (partial Fisher–Yates over the present
/// non-candidates), returned sorted by id. Both refined paths draw through
/// this helper, so their RNG streams agree.
fn false_addition_decoys(
    u: usize,
    candidates: &[usize],
    aux: &Side<'_>,
    n_false: usize,
    seed: u64,
) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed ^ (u as u64).wrapping_mul(0x9e3779b9));
    let mut pool: Vec<usize> =
        aux.uda.present_users().into_iter().filter(|v| !candidates.contains(v)).collect();
    let n = n_false.min(pool.len());
    for i in 0..n {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(n);
    pool.sort_unstable();
    pool
}

/// Majority-vote winner: the class with the most votes, ties broken toward
/// the *lowest* class index. Class order is candidate order, and callers
/// pass candidates sorted by decreasing structural similarity — so a tied
/// vote resolves toward the best-ranked candidate, not (as `max_by_key`'s
/// last-maximum would have it) the worst-ranked one.
fn vote_winner(votes: &[usize]) -> usize {
    let mut best = 0;
    for (i, &c) in votes.iter().enumerate() {
        if c > votes[best] {
            best = i;
        }
    }
    best
}

/// The Section III-B post-classification verification test for `u → v`.
fn verification_accepts(
    u: usize,
    v: usize,
    candidates: &[usize],
    anon: &Side<'_>,
    aux: &Side<'_>,
    similarity_row: &[f64],
    config: &RefinedConfig,
) -> bool {
    match config.verification {
        Verification::Mean { r } => {
            let others: Vec<f64> =
                candidates.iter().filter(|&&w| w != v).map(|&w| similarity_row[w]).collect();
            if !others.is_empty() {
                let lambda: f64 = others.iter().sum::<f64>() / others.len() as f64;
                if similarity_row[v] < (1.0 + r) * lambda {
                    return false;
                }
            }
            true
        }
        Verification::Distractorless { theta } => {
            anon.uda.profiles[u].cosine(&aux.uda.profiles[v]) >= theta
        }
        Verification::Sigma { factor } => sigma_accepts(u, v, anon, aux, factor),
        Verification::None | Verification::FalseAddition { .. } => true,
    }
}

/// De-anonymize one anonymized user within its candidate set — the
/// per-user-from-scratch differential oracle.
///
/// Returns `Some(aux_user)` or `None` (`u → ⊥`). `candidates` must be
/// sorted by decreasing structural similarity (tied majority votes resolve
/// toward the earliest entry); `similarity_row` is the full
/// structural-similarity row of `u` (used by mean-verification).
#[must_use]
pub fn refine_user(
    u: usize,
    candidates: &[usize],
    anon: &Side<'_>,
    aux: &Side<'_>,
    similarity_row: &[f64],
    config: &RefinedConfig,
) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    let anon_posts = anon.forum.user_posts(u);
    if anon_posts.is_empty() {
        return None;
    }
    // Decoys for the false-addition scheme.
    let mut class_users: Vec<usize> = candidates.to_vec();
    let n_real = class_users.len();
    if let Verification::FalseAddition { n_false } = config.verification {
        class_users.extend(false_addition_decoys(u, candidates, aux, n_false, config.seed));
    }

    // Training set: every auxiliary post of every class user.
    let mut train = Dataset::new(M + N_STRUCT);
    for (class, &v) in class_users.iter().enumerate() {
        for &pi in aux.forum.user_posts(v) {
            train.push(&sample(&aux.post_features[pi], aux.uda, v), class);
        }
    }
    if train.is_empty() {
        return None;
    }
    let scaler = MinMaxScaler::fit(&train);
    let mut scaled_train = train.clone();
    scaler.transform(&mut scaled_train);

    let mut clf = make_classifier(config.classifier, config.seed);
    clf.fit(&scaled_train);

    // Classify each anonymized post; majority vote across posts.
    let mut votes = vec![0usize; class_users.len()];
    for &pi in anon_posts {
        let mut x = sample(&anon.post_features[pi], anon.uda, u);
        for (j, v) in x.iter_mut().enumerate() {
            *v = scaler.scale_value(j, *v);
        }
        let p = clf.predict(&x);
        votes[p.label] += 1;
    }
    let winner = vote_winner(&votes);

    // False-addition rejection: decoy class won.
    if winner >= n_real {
        return None;
    }
    let v = class_users[winner];
    if !verification_accepts(u, v, candidates, anon, aux, similarity_row, config) {
        return None;
    }
    Some(v)
}

/// De-anonymize one anonymized user within its candidate set — the shared
/// fast path. Bit-identical to [`refine_user`] (pinned by
/// `tests/refined_parity.rs`), but reads every dense post sample from the
/// materialize-once [`RefinedContext`] arenas, assembles the per-user
/// training set as row indices, fuses min-max scaling into one
/// gather-scale pass over `scratch`, and lets KNN classify straight off
/// the borrowed view.
///
/// `anon_ctx` / `aux_ctx` must be built from the same sides passed here.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn refine_user_shared(
    u: usize,
    candidates: &[usize],
    anon: &Side<'_>,
    aux: &Side<'_>,
    anon_ctx: &RefinedContext,
    aux_ctx: &RefinedContext,
    similarity_row: &[f64],
    config: &RefinedConfig,
    scratch: &mut RefinedScratch,
) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    let anon_posts = anon.forum.user_posts(u);
    if anon_posts.is_empty() {
        return None;
    }
    let dim = aux_ctx.dim();
    debug_assert_eq!(dim, anon_ctx.dim(), "side contexts disagree on dimension");
    let need_sparse = matches!(config.classifier, ClassifierKind::Knn { .. });
    assert!(
        aux_ctx.sparse == need_sparse && anon_ctx.sparse == need_sparse,
        "RefinedContext built for a different classifier kind"
    );

    scratch.class_users.clear();
    scratch.class_users.extend_from_slice(candidates);
    let n_real = scratch.class_users.len();
    if let Verification::FalseAddition { n_false } = config.verification {
        let decoys = false_addition_decoys(u, candidates, aux, n_false, config.seed);
        scratch.class_users.extend(decoys);
    }

    // Training set: row indices into the arena, one label per row — no
    // feature floats move yet.
    scratch.rows.clear();
    scratch.labels.clear();
    for (class, &v) in scratch.class_users.iter().enumerate() {
        for &pi in aux.forum.user_posts(v) {
            scratch.rows.push(pi as u32);
            scratch.labels.push(class);
        }
    }
    if scratch.rows.is_empty() {
        return None;
    }

    scratch.votes.clear();
    scratch.votes.resize(scratch.class_users.len(), 0);
    if let ClassifierKind::Knn { k } = config.classifier {
        // KNN never materializes a training set at all: stats, scaling
        // and cosine run over the sparse arena entries.
        sparse_knn_votes(k, anon_posts, anon_ctx, aux_ctx, scratch);
    } else {
        // Dense classifiers: fit the scaler on the raw row view (same
        // visit order as the oracle's dataset build), gather+scale in one
        // fused pass, and train on the borrowed contiguous view.
        let raw = DatasetView::gathered(aux_ctx.arena(), dim, &scratch.rows, &scratch.labels);
        let scaler = MinMaxScaler::fit(&raw);
        scratch.scaled.resize(scratch.rows.len() * dim, 0.0);
        for (i, &pi) in scratch.rows.iter().enumerate() {
            scaler.scale_row_into(
                aux_ctx.row(pi as usize),
                &mut scratch.scaled[i * dim..(i + 1) * dim],
            );
        }
        let train = DatasetView::contiguous(&scratch.scaled, dim, &scratch.labels);
        let mut clf = make_classifier(config.classifier, config.seed);
        clf.fit(&train);

        scratch.x.resize(dim, 0.0);
        for &pi in anon_posts {
            scaler.scale_row_into(anon_ctx.row(pi), &mut scratch.x);
            let p = clf.predict(&scratch.x);
            scratch.votes[p.label] += 1;
        }
    }
    let winner = vote_winner(&scratch.votes);

    // False-addition rejection: decoy class won.
    if winner >= n_real {
        return None;
    }
    let v = scratch.class_users[winner];
    if !verification_accepts(u, v, candidates, anon, aux, similarity_row, config) {
        return None;
    }
    Some(v)
}

/// De-anonymize one anonymized user through the **approximate** KNN tier:
/// classify with the quantized integer-cosine kernel
/// (`quantized_knn_votes`), and fall back to the exact sparse kernel
/// only when the vote is inside the confidence margin — when the winning
/// class leads the runner-up by **at most `margin · n_posts` votes**, the
/// quantized decision is considered ambiguous and the user is rescored
/// exactly. Decoy sampling, vote tie-breaks, decoy rejection and the
/// verification tests are the exact path's (verification always runs at
/// full precision).
///
/// Returns `(mapping, rescored)`: the mapping decision, and whether the
/// margin band triggered an exact rescore. With `margin >= 1.0` every
/// user rescores, making the decision identical to
/// [`refine_user_shared`]'s.
///
/// `aux_q` must be fitted from `aux_ctx`
/// ([`QuantizedContext::matches_context`]) and `anon_q` must hold
/// `anon_ctx`'s rows coded against `aux_q`'s parameters
/// ([`QuantizedContext::quantize_rows`]).
///
/// # Panics
/// Panics if the classifier is not KNN, a context holds the wrong
/// representation, or the quantized mirrors are inconsistent with their
/// contexts.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn refine_user_shared_quantized(
    u: usize,
    candidates: &[usize],
    anon: &Side<'_>,
    aux: &Side<'_>,
    anon_ctx: &RefinedContext,
    anon_q: &QuantizedRows,
    aux_ctx: &RefinedContext,
    aux_q: &QuantizedContext,
    similarity_row: &[f64],
    config: &RefinedConfig,
    margin: f64,
    scratch: &mut RefinedScratch,
) -> (Option<usize>, bool) {
    let ClassifierKind::Knn { k } = config.classifier else {
        panic!("quantized refined path requires the KNN classifier");
    };
    assert!(
        aux_ctx.sparse && anon_ctx.sparse,
        "RefinedContext built for a different classifier kind"
    );
    assert!(aux_q.matches_context(aux_ctx), "quantized mirror inconsistent with aux context");
    assert_eq!(
        anon_q.codes.len(),
        anon_ctx.sparse_slices().val.len(),
        "quantized rows inconsistent with anon context"
    );
    if candidates.is_empty() {
        return (None, false);
    }
    let anon_posts = anon.forum.user_posts(u);
    if anon_posts.is_empty() {
        return (None, false);
    }

    scratch.class_users.clear();
    scratch.class_users.extend_from_slice(candidates);
    let n_real = scratch.class_users.len();
    if let Verification::FalseAddition { n_false } = config.verification {
        let decoys = false_addition_decoys(u, candidates, aux, n_false, config.seed);
        scratch.class_users.extend(decoys);
    }

    scratch.rows.clear();
    scratch.labels.clear();
    for (class, &v) in scratch.class_users.iter().enumerate() {
        for &pi in aux.forum.user_posts(v) {
            scratch.rows.push(pi as u32);
            scratch.labels.push(class);
        }
    }
    if scratch.rows.is_empty() {
        return (None, false);
    }

    scratch.votes.clear();
    scratch.votes.resize(scratch.class_users.len(), 0);
    quantized_knn_votes(k, anon_posts, anon_ctx, anon_q, aux_ctx, aux_q, scratch);

    // Margin band: a lead of at most `margin · n_posts` votes is too
    // close to trust the quantized kernel — rescore exactly.
    let (mut best, mut second) = (0usize, 0usize);
    for &c in &scratch.votes {
        if c > best {
            second = best;
            best = c;
        } else if c > second {
            second = c;
        }
    }
    let mut rescored = false;
    if ((best - second) as f64) <= margin * anon_posts.len() as f64 {
        rescored = true;
        scratch.votes.clear();
        scratch.votes.resize(scratch.class_users.len(), 0);
        sparse_knn_votes(k, anon_posts, anon_ctx, aux_ctx, scratch);
    }
    let winner = vote_winner(&scratch.votes);

    if winner >= n_real {
        return (None, rescored);
    }
    let v = scratch.class_users[winner];
    if !verification_accepts(u, v, candidates, anon, aux, similarity_row, config) {
        return (None, rescored);
    }
    (Some(v), rescored)
}

/// Sigma-verification test: is `u`'s mean profile within `factor` standard
/// deviations of `v`'s per-post distance distribution around `v`'s
/// centroid? Cosine distance (`1 − cos`) is used throughout. Only the
/// degenerate σ = 0 case (every post equidistant from the centroid, e.g. a
/// single-post user) falls back to a small 0.01 tolerance; users with a
/// real spread are tested against their true σ.
fn sigma_accepts(u: usize, v: usize, anon: &Side<'_>, aux: &Side<'_>, factor: f64) -> bool {
    let centroid = &aux.uda.profiles[v];
    let posts = aux.forum.user_posts(v);
    if posts.is_empty() {
        return false;
    }
    let dists: Vec<f64> =
        posts.iter().map(|&pi| 1.0 - aux.post_features[pi].cosine(centroid)).collect();
    let mean: f64 = dists.iter().sum::<f64>() / dists.len() as f64;
    let var: f64 = dists.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / dists.len() as f64;
    let sigma = var.sqrt();
    let sigma = if sigma == 0.0 { 0.01 } else { sigma };
    let d_u = 1.0 - anon.uda.profiles[u].cosine(centroid);
    d_u <= mean + factor * sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use dehealth_corpus::Post;
    use dehealth_stylometry::extract;

    /// Two aux users with very different styles; anon user 0 writes like
    /// aux user 1.
    fn fixture() -> (Forum, Forum) {
        let aux_posts = vec![
            Post { author: 0, thread: 0, text: "I LOVE CAPS!!! SO MUCH PAIN!!! HELP!!!".into() },
            Post { author: 0, thread: 1, text: "AWFUL DAY!!! MY BACK HURTS!!!".into() },
            Post { author: 0, thread: 0, text: "WHY ME??? THE WORST!!!".into() },
            Post {
                author: 1,
                thread: 0,
                text: "the doctor said that i should rest because the pain improves with sleep."
                    .into(),
            },
            Post {
                author: 1,
                thread: 1,
                text: "i think that the medicine helps although the nausea remains.".into(),
            },
            Post {
                author: 1,
                thread: 1,
                text: "after the visit i noticed that the swelling improves slowly.".into(),
            },
        ];
        let anon_posts = vec![
            Post {
                author: 0,
                thread: 0,
                text: "i wonder whether the treatment helps because the ache improves after rest."
                    .into(),
            },
            Post {
                author: 0,
                thread: 1,
                text: "the nurse said that i should drink water although the fever remains.".into(),
            },
        ];
        (Forum::from_posts(2, 2, aux_posts), Forum::from_posts(1, 2, anon_posts))
    }

    fn sides(
        aux_forum: &Forum,
        anon_forum: &Forum,
    ) -> (UdaGraph, UdaGraph, Vec<FeatureVector>, Vec<FeatureVector>) {
        let aux_uda = UdaGraph::build(aux_forum);
        let anon_uda = UdaGraph::build(anon_forum);
        let aux_feats: Vec<FeatureVector> =
            aux_forum.posts.iter().map(|p| extract(&p.text)).collect();
        let anon_feats: Vec<FeatureVector> =
            anon_forum.posts.iter().map(|p| extract(&p.text)).collect();
        (aux_uda, anon_uda, aux_feats, anon_feats)
    }

    /// Run both the oracle and the shared fast path; assert they agree and
    /// return the mapping.
    fn run_both(
        kind: ClassifierKind,
        verification: Verification,
        sim_row: &[f64],
    ) -> Option<usize> {
        let (aux_forum, anon_forum) = fixture();
        let (aux_uda, anon_uda, aux_feats, anon_feats) = sides(&aux_forum, &anon_forum);
        let aux = Side { forum: &aux_forum, uda: &aux_uda, post_features: &aux_feats };
        let anon = Side { forum: &anon_forum, uda: &anon_uda, post_features: &anon_feats };
        let config = RefinedConfig { classifier: kind, verification, seed: 5 };
        let oracle = refine_user(0, &[0, 1], &anon, &aux, sim_row, &config);
        let aux_ctx = RefinedContext::build(&aux, kind);
        let anon_ctx = RefinedContext::build(&anon, kind);
        let mut scratch = RefinedScratch::new();
        let fast = refine_user_shared(
            0,
            &[0, 1],
            &anon,
            &aux,
            &anon_ctx,
            &aux_ctx,
            sim_row,
            &config,
            &mut scratch,
        );
        assert_eq!(oracle, fast, "oracle vs shared path diverged ({kind:?}, {verification:?})");
        oracle
    }

    #[test]
    fn knn_picks_stylistic_match() {
        assert_eq!(
            run_both(ClassifierKind::Knn { k: 3 }, Verification::None, &[0.1, 0.9]),
            Some(1)
        );
    }

    #[test]
    fn smo_picks_stylistic_match() {
        assert_eq!(run_both(ClassifierKind::Smo, Verification::None, &[0.1, 0.9]), Some(1));
    }

    #[test]
    fn rlsc_picks_stylistic_match() {
        assert_eq!(
            run_both(ClassifierKind::Rlsc { lambda: 1.0 }, Verification::None, &[0.1, 0.9]),
            Some(1)
        );
    }

    #[test]
    fn centroid_picks_stylistic_match() {
        assert_eq!(run_both(ClassifierKind::Centroid, Verification::None, &[0.1, 0.9]), Some(1));
    }

    #[test]
    fn mean_verification_rejects_flat_rows() {
        // Candidate similarities nearly equal: s_uv < (1+r)·mean.
        let got =
            run_both(ClassifierKind::Knn { k: 3 }, Verification::Mean { r: 0.25 }, &[0.5, 0.52]);
        assert_eq!(got, None);
    }

    #[test]
    fn mean_verification_accepts_clear_winner() {
        let got =
            run_both(ClassifierKind::Knn { k: 3 }, Verification::Mean { r: 0.25 }, &[0.1, 0.9]);
        assert_eq!(got, Some(1));
    }

    #[test]
    fn distractorless_thresholds_on_profile_cosine() {
        // theta = 0 accepts everything the classifier picks; theta = 1
        // rejects everything short of identical profiles.
        let lax = run_both(
            ClassifierKind::Knn { k: 3 },
            Verification::Distractorless { theta: 0.0 },
            &[0.1, 0.9],
        );
        assert_eq!(lax, Some(1));
        let strict = run_both(
            ClassifierKind::Knn { k: 3 },
            Verification::Distractorless { theta: 0.9999 },
            &[0.1, 0.9],
        );
        assert_eq!(strict, None);
    }

    #[test]
    fn sigma_verification_accepts_typical_and_rejects_atypical() {
        // A generous factor accepts the stylistic match...
        let lax = run_both(
            ClassifierKind::Knn { k: 3 },
            Verification::Sigma { factor: 50.0 },
            &[0.1, 0.9],
        );
        assert_eq!(lax, Some(1));
        // ...an impossible factor rejects everything.
        let strict = run_both(
            ClassifierKind::Knn { k: 3 },
            Verification::Sigma { factor: -100.0 },
            &[0.1, 0.9],
        );
        assert_eq!(strict, None);
    }

    #[test]
    fn sigma_uses_true_spread_when_nonzero() {
        // Aux user 1 has three distinct posts, so its per-post distance
        // spread σ is non-zero; the acceptance boundary must be exactly
        // `mean + factor·σ` with the *true* σ — no 0.01 floor inflating
        // the tolerance of every user (the pre-fix behavior).
        let (aux_forum, anon_forum) = fixture();
        let (aux_uda, anon_uda, aux_feats, anon_feats) = sides(&aux_forum, &anon_forum);
        let aux = Side { forum: &aux_forum, uda: &aux_uda, post_features: &aux_feats };
        let anon = Side { forum: &anon_forum, uda: &anon_uda, post_features: &anon_feats };

        let centroid = &aux_uda.profiles[1];
        let dists: Vec<f64> = aux_forum
            .user_posts(1)
            .iter()
            .map(|&pi| 1.0 - aux_feats[pi].cosine(centroid))
            .collect();
        let mean = dists.iter().sum::<f64>() / dists.len() as f64;
        let var = dists.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / dists.len() as f64;
        let sigma = var.sqrt();
        assert!(sigma > 0.0, "fixture must exercise the non-degenerate branch");
        let d_u = 1.0 - anon_uda.profiles[0].cosine(centroid);

        // A factor placing the boundary just past d_u accepts; just short
        // of it rejects — with the true σ, not max(σ, 0.01).
        let boundary = (d_u - mean) / sigma;
        assert!(sigma_accepts(0, 1, &anon, &aux, boundary + 1e-6));
        assert!(!sigma_accepts(0, 1, &anon, &aux, boundary - 1e-6));
    }

    #[test]
    fn sigma_degenerate_single_post_gets_tolerance() {
        // A single-post aux user has σ = 0: the documented degenerate case
        // falls back to a 0.01 tolerance instead of an unpassable strict
        // mean test.
        let aux_posts = vec![Post {
            author: 0,
            thread: 0,
            text: "the doctor said that i should rest because the pain improves.".into(),
        }];
        let anon_posts = vec![Post {
            author: 0,
            thread: 0,
            text: "the doctor said that i should rest because the pain improves!".into(),
        }];
        let aux_forum = Forum::from_posts(1, 1, aux_posts);
        let anon_forum = Forum::from_posts(1, 1, anon_posts);
        let (aux_uda, anon_uda, aux_feats, anon_feats) = sides(&aux_forum, &anon_forum);
        let aux = Side { forum: &aux_forum, uda: &aux_uda, post_features: &aux_feats };
        let anon = Side { forum: &anon_forum, uda: &anon_uda, post_features: &anon_feats };

        // σ = 0 and mean = 0 (one post at its own centroid): acceptance is
        // `d_u ≤ factor · 0.01`.
        let d_u = 1.0 - anon_uda.profiles[0].cosine(&aux_uda.profiles[0]);
        assert!(d_u > 0.0, "profiles must differ a little");
        let boundary = d_u / 0.01;
        assert!(sigma_accepts(0, 0, &anon, &aux, boundary * 1.001));
        assert!(!sigma_accepts(0, 0, &anon, &aux, boundary * 0.999));
    }

    #[test]
    fn decoys_are_distinct_and_exactly_min_of_pool_and_request() {
        // 8 present aux users, 2 candidates → pool of 6.
        let mut posts = Vec::new();
        for a in 0..8usize {
            posts.push(Post { author: a, thread: 0, text: format!("hello from user {a}") });
        }
        let aux_forum = Forum::from_posts(8, 1, posts);
        let aux_uda = UdaGraph::build(&aux_forum);
        let aux_feats: Vec<FeatureVector> =
            aux_forum.posts.iter().map(|p| extract(&p.text)).collect();
        let aux = Side { forum: &aux_forum, uda: &aux_uda, post_features: &aux_feats };
        let candidates = [2usize, 5];

        for (n_false, expect) in [(0usize, 0usize), (1, 1), (4, 4), (6, 6), (100, 6)] {
            let decoys = false_addition_decoys(0, &candidates, &aux, n_false, 33);
            assert_eq!(decoys.len(), expect, "n_false = {n_false}");
            // Distinct, sorted, disjoint from the candidates.
            assert!(decoys.windows(2).all(|w| w[0] < w[1]), "{decoys:?}");
            assert!(decoys.iter().all(|d| !candidates.contains(d)));
        }
        // The draw is deterministic per user, and each user's stream is
        // well-formed on its own.
        let a = false_addition_decoys(0, &candidates, &aux, 3, 33);
        let b = false_addition_decoys(1, &candidates, &aux, 3, 33);
        let c = false_addition_decoys(0, &candidates, &aux, 3, 33);
        assert_eq!(a, c, "decoy draw must be deterministic");
        assert_eq!(b.len(), 3);
        assert!(b.iter().all(|d| !candidates.contains(d)));
    }

    #[test]
    fn tied_vote_goes_to_best_ranked_candidate() {
        // One anonymized post in each of the two aux users' styles → a
        // 1-1 majority-vote tie. The winner must be the *first* (i.e.
        // best-ranked) candidate, in either candidate order.
        let (aux_forum, _) = fixture();
        let anon_posts = vec![
            Post { author: 0, thread: 0, text: "TERRIBLE PAIN!!! THE WORST DAY!!!".into() },
            Post {
                author: 0,
                thread: 1,
                text: "i think that the medicine helps because the pain improves with rest.".into(),
            },
        ];
        let anon_forum = Forum::from_posts(1, 2, anon_posts);
        let (aux_uda, anon_uda, aux_feats, anon_feats) = sides(&aux_forum, &anon_forum);
        let aux = Side { forum: &aux_forum, uda: &aux_uda, post_features: &aux_feats };
        let anon = Side { forum: &anon_forum, uda: &anon_uda, post_features: &anon_feats };
        let config = RefinedConfig {
            classifier: ClassifierKind::Knn { k: 1 },
            verification: Verification::None,
            seed: 5,
        };
        // Sanity: with a single candidate each post classifies to it, so
        // with both candidates the vote really is 1-1 (k = 1 KNN assigns
        // each post to its stylistic twin).
        let first = refine_user(0, &[0, 1], &anon, &aux, &[0.9, 0.1], &config);
        let second = refine_user(0, &[1, 0], &anon, &aux, &[0.1, 0.9], &config);
        assert_eq!(first, Some(0), "tie must resolve to the best-ranked candidate");
        assert_eq!(second, Some(1), "tie must resolve to the best-ranked candidate");
    }

    #[test]
    fn vote_winner_prefers_earliest_on_ties() {
        assert_eq!(vote_winner(&[2, 2, 1]), 0);
        assert_eq!(vote_winner(&[1, 3, 3]), 1);
        assert_eq!(vote_winner(&[0, 0, 0]), 0);
        assert_eq!(vote_winner(&[1, 2, 3]), 2);
    }

    #[test]
    fn empty_candidates_reject() {
        let (aux_forum, anon_forum) = fixture();
        let (aux_uda, anon_uda, aux_feats, anon_feats) = sides(&aux_forum, &anon_forum);
        let aux = Side { forum: &aux_forum, uda: &aux_uda, post_features: &aux_feats };
        let anon = Side { forum: &anon_forum, uda: &anon_uda, post_features: &anon_feats };
        let config = RefinedConfig::default();
        assert_eq!(refine_user(0, &[], &anon, &aux, &[0.0, 0.0], &config), None);
        let aux_ctx = RefinedContext::build(&aux, config.classifier);
        let anon_ctx = RefinedContext::build(&anon, config.classifier);
        let mut scratch = RefinedScratch::new();
        assert_eq!(
            refine_user_shared(
                0,
                &[],
                &anon,
                &aux,
                &anon_ctx,
                &aux_ctx,
                &[0.0, 0.0],
                &config,
                &mut scratch
            ),
            None
        );
    }

    #[test]
    fn context_rows_match_oracle_samples() {
        let (aux_forum, anon_forum) = fixture();
        let (aux_uda, _, aux_feats, _) = sides(&aux_forum, &anon_forum);
        let aux = Side { forum: &aux_forum, uda: &aux_uda, post_features: &aux_feats };
        let ctx = RefinedContext::build(&aux, ClassifierKind::Centroid);
        assert_eq!(ctx.dim(), M + N_STRUCT);
        for (pi, post) in aux_forum.posts.iter().enumerate() {
            let oracle = sample(&aux_feats[pi], &aux_uda, post.author);
            let row = ctx.row(pi);
            assert_eq!(row.len(), oracle.len());
            for (a, b) in row.iter().zip(&oracle) {
                assert_eq!(a.to_bits(), b.to_bits(), "post {pi}");
            }
        }
    }

    #[test]
    fn scratch_reuse_across_users_is_clean() {
        // Run the shared path twice with the same scratch; stale buffer
        // contents from the first user must not leak into the second.
        let (aux_forum, anon_forum) = fixture();
        let (aux_uda, anon_uda, aux_feats, anon_feats) = sides(&aux_forum, &anon_forum);
        let aux = Side { forum: &aux_forum, uda: &aux_uda, post_features: &aux_feats };
        let anon = Side { forum: &anon_forum, uda: &anon_uda, post_features: &anon_feats };
        let config = RefinedConfig::default();
        let aux_ctx = RefinedContext::build(&aux, config.classifier);
        let anon_ctx = RefinedContext::build(&anon, config.classifier);
        let mut scratch = RefinedScratch::new();
        let first = refine_user_shared(
            0,
            &[0, 1],
            &anon,
            &aux,
            &anon_ctx,
            &aux_ctx,
            &[0.1, 0.9],
            &config,
            &mut scratch,
        );
        let second = refine_user_shared(
            0,
            &[1],
            &anon,
            &aux,
            &anon_ctx,
            &aux_ctx,
            &[0.1, 0.9],
            &config,
            &mut scratch,
        );
        assert_eq!(first, Some(1));
        assert_eq!(second, Some(1));
    }
}
