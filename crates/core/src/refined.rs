//! Refined DA (Algorithm 1, lines 7-9): per-user classification inside the
//! Top-K candidate set, plus the two open-world schemes of Section III-B
//! (false addition and mean-verification).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dehealth_corpus::Forum;
use dehealth_ml::{
    Classifier, Dataset, Knn, KnnMetric, MinMaxScaler, NearestCentroid, Rlsc, SmoSvm, SvmParams,
};
use dehealth_stylometry::{FeatureVector, M};

use crate::uda::UdaGraph;

/// Which benchmark classifier refined DA trains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClassifierKind {
    /// k-nearest neighbours on cosine closeness.
    Knn {
        /// Neighbourhood size.
        k: usize,
    },
    /// SMO-trained linear SVM (one-vs-rest).
    Smo,
    /// Regularized least-squares classification.
    Rlsc {
        /// Ridge parameter.
        lambda: f64,
    },
    /// Nearest-centroid.
    Centroid,
}

impl Default for ClassifierKind {
    fn default() -> Self {
        ClassifierKind::Knn { k: 3 }
    }
}

/// Open-world decision scheme applied after classification.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Verification {
    /// Closed-world: always accept the classifier's decision.
    #[default]
    None,
    /// Accept `u → v` only if `s_uv ≥ (1+r)·λ_u` where `λ_u` is the mean
    /// similarity between `u` and its *other* candidates (the paper's
    /// Section III-B scheme; excluding the winner keeps the test
    /// meaningful when the Top-K scores are tightly clustered).
    Mean {
        /// Margin parameter `r ≥ 0`.
        r: f64,
    },
    /// Add `n_false` random non-candidate users as decoy classes; reject
    /// if the classifier picks a decoy.
    FalseAddition {
        /// Number of decoy users.
        n_false: usize,
    },
    /// Distractorless verification (Noecker & Ryan, cited as [45]):
    /// accept `u → v` only if the cosine similarity of the users' mean
    /// stylometric profiles reaches `theta`, with no reference to the
    /// other candidates.
    Distractorless {
        /// Acceptance threshold on profile cosine, in `[0, 1]`.
        theta: f64,
    },
    /// Sigma verification (Stolerman et al., cited as [32]): accept
    /// `u → v` only if `u`'s profile is no farther from `v`'s centroid
    /// than `factor` standard deviations of `v`'s own per-post distances
    /// to that centroid — i.e. `u` must look like a typical post of `v`.
    Sigma {
        /// Allowed deviation in units of `v`'s per-post σ.
        factor: f64,
    },
}

/// Number of structural features appended to each stylometric post vector.
pub const N_STRUCT: usize = 4;

/// Refined-DA parameters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RefinedConfig {
    /// Classifier choice.
    pub classifier: ClassifierKind,
    /// Open-world verification scheme.
    pub verification: Verification,
    /// RNG seed (decoy sampling, SMO pair selection).
    pub seed: u64,
}

fn make_classifier(kind: ClassifierKind, seed: u64) -> Box<dyn Classifier> {
    match kind {
        ClassifierKind::Knn { k } => Box::new(Knn::new(k, KnnMetric::Cosine)),
        ClassifierKind::Smo => Box::new(SmoSvm::new(SvmParams { seed, ..SvmParams::default() })),
        ClassifierKind::Rlsc { lambda } => Box::new(Rlsc::new(lambda)),
        ClassifierKind::Centroid => Box::new(NearestCentroid::new()),
    }
}

/// Dense sample: the post's stylometric vector plus the author's structural
/// features from its UDA graph (degree, weighted degree, attribute count,
/// post count — log-scaled to tame magnitudes).
fn sample(post_features: &FeatureVector, uda: &UdaGraph, user: usize) -> Vec<f64> {
    let mut x = post_features.to_dense();
    x.reserve_exact(N_STRUCT);
    x.push((uda.graph.degree(user) as f64).ln_1p());
    x.push(uda.graph.weighted_degree(user).ln_1p());
    x.push((uda.attributes[user].len() as f64).ln_1p());
    x.push((uda.post_counts[user] as f64).ln_1p());
    x
}

/// All inputs refined DA needs about one side of the attack.
pub struct Side<'a> {
    /// The forum (for post texts / indices).
    pub forum: &'a Forum,
    /// Its UDA graph.
    pub uda: &'a UdaGraph,
    /// Per-post stylometric vectors, parallel to `forum.posts`.
    pub post_features: &'a [FeatureVector],
}

/// De-anonymize one anonymized user within its candidate set.
///
/// Returns `Some(aux_user)` or `None` (`u → ⊥`). `similarity_row` is the
/// full structural-similarity row of `u` (used by mean-verification).
#[must_use]
pub fn refine_user(
    u: usize,
    candidates: &[usize],
    anon: &Side<'_>,
    aux: &Side<'_>,
    similarity_row: &[f64],
    config: &RefinedConfig,
) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    let anon_posts = anon.forum.user_posts(u);
    if anon_posts.is_empty() {
        return None;
    }
    // Decoys for the false-addition scheme.
    let mut class_users: Vec<usize> = candidates.to_vec();
    let n_real = class_users.len();
    if let Verification::FalseAddition { n_false } = config.verification {
        let mut rng = StdRng::seed_from_u64(config.seed ^ (u as u64).wrapping_mul(0x9e3779b9));
        let pool: Vec<usize> =
            aux.uda.present_users().into_iter().filter(|v| !candidates.contains(v)).collect();
        if !pool.is_empty() {
            let mut decoys: Vec<usize> =
                (0..n_false).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            decoys.sort_unstable();
            decoys.dedup();
            class_users.extend(decoys);
        }
    }

    // Training set: every auxiliary post of every class user.
    let mut train = Dataset::new(M + N_STRUCT);
    for (class, &v) in class_users.iter().enumerate() {
        for &pi in aux.forum.user_posts(v) {
            train.push(&sample(&aux.post_features[pi], aux.uda, v), class);
        }
    }
    if train.is_empty() {
        return None;
    }
    let scaler = MinMaxScaler::fit(&train);
    let mut scaled_train = train.clone();
    scaler.transform(&mut scaled_train);

    let mut clf = make_classifier(config.classifier, config.seed);
    clf.fit(&scaled_train);

    // Classify each anonymized post; majority vote across posts.
    let mut votes = vec![0usize; class_users.len()];
    for &pi in anon_posts {
        let mut x = sample(&anon.post_features[pi], anon.uda, u);
        for (j, v) in x.iter_mut().enumerate() {
            *v = scaler.scale_value(j, *v);
        }
        let p = clf.predict(&x);
        votes[p.label] += 1;
    }
    let (winner, _) =
        votes.iter().enumerate().max_by_key(|&(_, &c)| c).expect("at least one class");

    // False-addition rejection: decoy class won.
    if winner >= n_real {
        return None;
    }
    let v = class_users[winner];

    // Post-classification verification (Section III-B).
    match config.verification {
        Verification::Mean { r } => {
            let others: Vec<f64> =
                candidates.iter().filter(|&&w| w != v).map(|&w| similarity_row[w]).collect();
            if !others.is_empty() {
                let lambda: f64 = others.iter().sum::<f64>() / others.len() as f64;
                if similarity_row[v] < (1.0 + r) * lambda {
                    return None;
                }
            }
        }
        Verification::Distractorless { theta } => {
            let cos = anon.uda.profiles[u].cosine(&aux.uda.profiles[v]);
            if cos < theta {
                return None;
            }
        }
        Verification::Sigma { factor } => {
            if !sigma_accepts(u, v, anon, aux, factor) {
                return None;
            }
        }
        Verification::None | Verification::FalseAddition { .. } => {}
    }
    Some(v)
}

/// Sigma-verification test: is `u`'s mean profile within `factor` standard
/// deviations of `v`'s per-post distance distribution around `v`'s
/// centroid? Cosine distance (`1 − cos`) is used throughout. Users with a
/// single post have σ = 0 and degenerate to a strict mean test with a
/// small tolerance.
fn sigma_accepts(u: usize, v: usize, anon: &Side<'_>, aux: &Side<'_>, factor: f64) -> bool {
    let centroid = &aux.uda.profiles[v];
    let posts = aux.forum.user_posts(v);
    if posts.is_empty() {
        return false;
    }
    let dists: Vec<f64> =
        posts.iter().map(|&pi| 1.0 - aux.post_features[pi].cosine(centroid)).collect();
    let mean: f64 = dists.iter().sum::<f64>() / dists.len() as f64;
    let var: f64 = dists.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / dists.len() as f64;
    let sigma = var.sqrt();
    let d_u = 1.0 - anon.uda.profiles[u].cosine(centroid);
    d_u <= mean + factor * sigma.max(0.01)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dehealth_corpus::Post;
    use dehealth_stylometry::extract;

    /// Two aux users with very different styles; anon user 0 writes like
    /// aux user 1.
    fn fixture() -> (Forum, Forum) {
        let aux_posts = vec![
            Post { author: 0, thread: 0, text: "I LOVE CAPS!!! SO MUCH PAIN!!! HELP!!!".into() },
            Post { author: 0, thread: 1, text: "AWFUL DAY!!! MY BACK HURTS!!!".into() },
            Post { author: 0, thread: 0, text: "WHY ME??? THE WORST!!!".into() },
            Post {
                author: 1,
                thread: 0,
                text: "the doctor said that i should rest because the pain improves with sleep."
                    .into(),
            },
            Post {
                author: 1,
                thread: 1,
                text: "i think that the medicine helps although the nausea remains.".into(),
            },
            Post {
                author: 1,
                thread: 1,
                text: "after the visit i noticed that the swelling improves slowly.".into(),
            },
        ];
        let anon_posts = vec![
            Post {
                author: 0,
                thread: 0,
                text: "i wonder whether the treatment helps because the ache improves after rest."
                    .into(),
            },
            Post {
                author: 0,
                thread: 1,
                text: "the nurse said that i should drink water although the fever remains.".into(),
            },
        ];
        (Forum::from_posts(2, 2, aux_posts), Forum::from_posts(1, 2, anon_posts))
    }

    fn sides(
        aux_forum: &Forum,
        anon_forum: &Forum,
    ) -> (UdaGraph, UdaGraph, Vec<FeatureVector>, Vec<FeatureVector>) {
        let aux_uda = UdaGraph::build(aux_forum);
        let anon_uda = UdaGraph::build(anon_forum);
        let aux_feats: Vec<FeatureVector> =
            aux_forum.posts.iter().map(|p| extract(&p.text)).collect();
        let anon_feats: Vec<FeatureVector> =
            anon_forum.posts.iter().map(|p| extract(&p.text)).collect();
        (aux_uda, anon_uda, aux_feats, anon_feats)
    }

    fn run(kind: ClassifierKind, verification: Verification, sim_row: &[f64]) -> Option<usize> {
        let (aux_forum, anon_forum) = fixture();
        let (aux_uda, anon_uda, aux_feats, anon_feats) = sides(&aux_forum, &anon_forum);
        let aux = Side { forum: &aux_forum, uda: &aux_uda, post_features: &aux_feats };
        let anon = Side { forum: &anon_forum, uda: &anon_uda, post_features: &anon_feats };
        let config = RefinedConfig { classifier: kind, verification, seed: 5 };
        refine_user(0, &[0, 1], &anon, &aux, sim_row, &config)
    }

    #[test]
    fn knn_picks_stylistic_match() {
        assert_eq!(run(ClassifierKind::Knn { k: 3 }, Verification::None, &[0.1, 0.9]), Some(1));
    }

    #[test]
    fn smo_picks_stylistic_match() {
        assert_eq!(run(ClassifierKind::Smo, Verification::None, &[0.1, 0.9]), Some(1));
    }

    #[test]
    fn rlsc_picks_stylistic_match() {
        assert_eq!(
            run(ClassifierKind::Rlsc { lambda: 1.0 }, Verification::None, &[0.1, 0.9]),
            Some(1)
        );
    }

    #[test]
    fn centroid_picks_stylistic_match() {
        assert_eq!(run(ClassifierKind::Centroid, Verification::None, &[0.1, 0.9]), Some(1));
    }

    #[test]
    fn mean_verification_rejects_flat_rows() {
        // Candidate similarities nearly equal: s_uv < (1+r)·mean.
        let got = run(ClassifierKind::Knn { k: 3 }, Verification::Mean { r: 0.25 }, &[0.5, 0.52]);
        assert_eq!(got, None);
    }

    #[test]
    fn mean_verification_accepts_clear_winner() {
        let got = run(ClassifierKind::Knn { k: 3 }, Verification::Mean { r: 0.25 }, &[0.1, 0.9]);
        assert_eq!(got, Some(1));
    }

    #[test]
    fn distractorless_thresholds_on_profile_cosine() {
        // theta = 0 accepts everything the classifier picks; theta = 1
        // rejects everything short of identical profiles.
        let lax = run(
            ClassifierKind::Knn { k: 3 },
            Verification::Distractorless { theta: 0.0 },
            &[0.1, 0.9],
        );
        assert_eq!(lax, Some(1));
        let strict = run(
            ClassifierKind::Knn { k: 3 },
            Verification::Distractorless { theta: 0.9999 },
            &[0.1, 0.9],
        );
        assert_eq!(strict, None);
    }

    #[test]
    fn sigma_verification_accepts_typical_and_rejects_atypical() {
        // A generous factor accepts the stylistic match...
        let lax =
            run(ClassifierKind::Knn { k: 3 }, Verification::Sigma { factor: 50.0 }, &[0.1, 0.9]);
        assert_eq!(lax, Some(1));
        // ...an impossible factor rejects everything.
        let strict =
            run(ClassifierKind::Knn { k: 3 }, Verification::Sigma { factor: -100.0 }, &[0.1, 0.9]);
        assert_eq!(strict, None);
    }

    #[test]
    fn empty_candidates_reject() {
        let (aux_forum, anon_forum) = fixture();
        let (aux_uda, anon_uda, aux_feats, anon_feats) = sides(&aux_forum, &anon_forum);
        let aux = Side { forum: &aux_forum, uda: &aux_uda, post_features: &aux_feats };
        let anon = Side { forum: &anon_forum, uda: &anon_uda, post_features: &anon_feats };
        let config = RefinedConfig::default();
        assert_eq!(refine_user(0, &[], &anon, &aux, &[0.0, 0.0], &config), None);
    }
}
