//! Structural similarity `s_uv = c1·s^d_uv + c2·s^s_uv + c3·s^a_uv`
//! (Section III-B).
//!
//! - `s^d` (degree similarity): `min(d_u,d_v)/max(d_u,d_v) +
//!   min(wd_u,wd_v)/max(wd_u,wd_v) + cos(D_u, D_v)` with NCS vectors
//!   zero-padded to a common length;
//! - `s^s` (distance similarity): `cos(H_u(S1), H_v(S2)) +
//!   cos(WH_u(S1), WH_v(S2))` over landmark closeness vectors;
//! - `s^a` (attribute similarity): Jaccard plus weighted Jaccard of the
//!   user attribute sets.

use crate::uda::UdaGraph;

/// The `c1, c2, c3` weights of the combined similarity. The paper's
/// default is `(0.05, 0.05, 0.9)`: degree and distance carry little signal
/// in sparse disconnected health-forum graphs, so attributes dominate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityWeights {
    /// Weight of the degree similarity `s^d`.
    pub c1: f64,
    /// Weight of the distance similarity `s^s`.
    pub c2: f64,
    /// Weight of the attribute similarity `s^a`.
    pub c3: f64,
}

impl Default for SimilarityWeights {
    fn default() -> Self {
        Self { c1: 0.05, c2: 0.05, c3: 0.9 }
    }
}

/// Leading NCS components coded exactly in [`QuantizedStructural`];
/// everything beyond is folded into a tail norm and bounded via
/// Cauchy–Schwarz. NCS vectors are sorted decreasing, so the prefix
/// carries the mass that matters.
const NCS_PREFIX: usize = 32;

/// Additive slack applied to a quantized cosine before it is used as a
/// score ceiling, covering u8 rounding (≤ `0.5/255` per component,
/// amplified through the norm ratio).
const QUANT_COS_SLACK: f64 = 0.02;

/// Ratio `min/max` with the convention that two zeros are perfectly
/// similar.
fn ratio(a: f64, b: f64) -> f64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    if hi == 0.0 {
        1.0
    } else {
        lo / hi
    }
}

/// Cosine of two equal-or-different length vectors, zero-padding the
/// shorter one (the paper: "we pad the short vector with zeros").
///
/// Clamped to at most 1.0: rounding can push `dot / (na·nb)` a few ulps
/// past 1 for near-parallel vectors, and the indexed scorer's pruning
/// bound ([`crate::index`]) relies on `s^d ≤ 3` / `s^s ≤ 2` holding
/// *exactly* in `f64` arithmetic.
#[must_use]
pub fn padded_cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na * nb)).min(1.0)
    }
}

/// Pairwise similarity engine between an anonymized and an auxiliary UDA
/// graph.
#[derive(Debug)]
pub struct SimilarityEngine<'a> {
    anon: &'a UdaGraph,
    aux: &'a UdaGraph,
    weights: SimilarityWeights,
    anon_ncs: Vec<Vec<f64>>,
    aux_ncs: Vec<Vec<f64>>,
    anon_hops: Vec<Vec<f64>>,
    anon_whops: Vec<Vec<f64>>,
    aux_hops: Vec<Vec<f64>>,
    aux_whops: Vec<Vec<f64>>,
}

impl<'a> SimilarityEngine<'a> {
    /// Prepare the engine: select `n_landmarks` landmarks on each side and
    /// precompute NCS and landmark-closeness vectors.
    #[must_use]
    pub fn new(
        anon: &'a UdaGraph,
        aux: &'a UdaGraph,
        weights: SimilarityWeights,
        n_landmarks: usize,
    ) -> Self {
        let anon_lms = anon.landmarks(n_landmarks);
        let aux_lms = aux.landmarks(n_landmarks);
        let (anon_hops, anon_whops) = anon.landmark_closeness(&anon_lms);
        let (aux_hops, aux_whops) = aux.landmark_closeness(&aux_lms);
        let anon_ncs = (0..anon.n_users()).map(|u| anon.graph.ncs_vector(u)).collect();
        let aux_ncs = (0..aux.n_users()).map(|u| aux.graph.ncs_vector(u)).collect();
        Self { anon, aux, weights, anon_ncs, aux_ncs, anon_hops, anon_whops, aux_hops, aux_whops }
    }

    /// Degree similarity `s^d_uv ∈ [0, 3]`.
    #[must_use]
    pub fn degree_similarity(&self, u: usize, v: usize) -> f64 {
        let d = ratio(self.anon.graph.degree(u) as f64, self.aux.graph.degree(v) as f64);
        let wd = ratio(self.anon.graph.weighted_degree(u), self.aux.graph.weighted_degree(v));
        d + wd + padded_cosine(&self.anon_ncs[u], &self.aux_ncs[v])
    }

    /// Distance similarity `s^s_uv ∈ [0, 2]`.
    #[must_use]
    pub fn distance_similarity(&self, u: usize, v: usize) -> f64 {
        padded_cosine(&self.anon_hops[u], &self.aux_hops[v])
            + padded_cosine(&self.anon_whops[u], &self.aux_whops[v])
    }

    /// Attribute similarity `s^a_uv ∈ [0, 2]`.
    #[must_use]
    pub fn attribute_similarity(&self, u: usize, v: usize) -> f64 {
        let a = &self.anon.attributes[u];
        let b = &self.aux.attributes[v];
        a.jaccard(b) + a.weighted_jaccard(b)
    }

    /// Combined structural similarity `s_uv`.
    #[must_use]
    pub fn similarity(&self, u: usize, v: usize) -> f64 {
        let SimilarityWeights { c1, c2, c3 } = self.weights;
        c1 * self.degree_similarity(u, v)
            + c2 * self.distance_similarity(u, v)
            + c3 * self.attribute_similarity(u, v)
    }

    /// Number of anonymized users.
    #[must_use]
    pub fn n_anon(&self) -> usize {
        self.anon.n_users()
    }

    /// Number of auxiliary users.
    #[must_use]
    pub fn n_aux(&self) -> usize {
        self.aux.n_users()
    }

    /// The similarity weights.
    #[must_use]
    pub fn weights(&self) -> SimilarityWeights {
        self.weights
    }

    /// The anonymized-side UDA graph.
    #[must_use]
    pub fn anon_uda(&self) -> &UdaGraph {
        self.anon
    }

    /// The auxiliary-side UDA graph.
    #[must_use]
    pub fn aux_uda(&self) -> &UdaGraph {
        self.aux
    }

    /// Build an [`crate::index::AttributeIndex`] over this engine's
    /// auxiliary side — the entry point of the sparse scoring path.
    #[must_use]
    pub fn attribute_index(&self) -> crate::index::AttributeIndex {
        crate::index::AttributeIndex::from_uda(self.aux)
    }

    /// Build the u8-quantized mirror of this engine's structural state
    /// (degrees + NCS/closeness vectors) that powers the approximate
    /// tier's per-pair score ceiling ([`QuantizedStructural`]). Only the
    /// margin prescreen reads it; the exact scoring paths never do.
    #[must_use]
    pub fn quantized_structural(&self) -> QuantizedStructural {
        let hops_dim = [&self.anon_hops, &self.aux_hops, &self.anon_whops, &self.aux_whops]
            .iter()
            .map(|rows| rows.first().map_or(0, Vec::len))
            .max()
            .unwrap_or(0);
        let degrees = |uda: &UdaGraph| -> (Vec<f64>, Vec<f64>) {
            (0..uda.n_users())
                .map(|u| (uda.graph.degree(u) as f64, uda.graph.weighted_degree(u)))
                .unzip()
        };
        let (anon_deg, anon_wdeg) = degrees(self.anon);
        let (aux_deg, aux_wdeg) = degrees(self.aux);
        QuantizedStructural {
            c1: self.weights.c1,
            c2: self.weights.c2,
            anon_deg,
            anon_wdeg,
            aux_deg,
            aux_wdeg,
            anon_ncs: QuantizedFamily::from_rows(&self.anon_ncs, NCS_PREFIX),
            aux_ncs: QuantizedFamily::from_rows(&self.aux_ncs, NCS_PREFIX),
            anon_hops: QuantizedFamily::from_rows(&self.anon_hops, hops_dim),
            aux_hops: QuantizedFamily::from_rows(&self.aux_hops, hops_dim),
            anon_whops: QuantizedFamily::from_rows(&self.anon_whops, hops_dim),
            aux_whops: QuantizedFamily::from_rows(&self.aux_whops, hops_dim),
        }
    }

    /// Scores of anonymized user `u` against every *present* auxiliary
    /// user, as a `(aux_user, score)` stream. Absent auxiliary users (no
    /// posts) are skipped entirely; every yielded score is finite.
    ///
    /// This is the blockwise-scoring primitive: consumers that only need
    /// the best few candidates (bounded Top-K heaps, streaming engines)
    /// can drain it without ever materializing a dense row.
    pub fn scores_for(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        (0..self.aux.n_users())
            .filter(|&v| self.aux.post_counts[v] > 0)
            .map(move |v| (v, self.similarity(u, v)))
    }

    /// Blockwise scoring: the score streams of a contiguous range of
    /// anonymized users. Blocks are the unit of work sharded across
    /// worker threads by `dehealth-engine`.
    pub fn score_block(
        &self,
        anon_range: std::ops::Range<usize>,
    ) -> impl Iterator<Item = (usize, impl Iterator<Item = (usize, f64)> + '_)> + '_ {
        anon_range.map(move |u| (u, self.scores_for(u)))
    }

    /// One dense row of [`Self::matrix`]: the `scores_for` stream of `u`
    /// materialized over the full auxiliary id space. The streaming API
    /// *skips* absent auxiliary users; a dense row has to put something in
    /// their slots, and that placeholder is `-inf` — an explicit mask every
    /// downstream consumer (`BoundedTopK::insert`, `ScoreBounds::observe`,
    /// `rank_of`, `matching_selection`) already treats as "absent". Kept
    /// private so skipping stays the one public absence contract.
    fn row(&self, u: usize) -> Vec<f64> {
        let mut row = vec![f64::NEG_INFINITY; self.aux.n_users()];
        for (v, s) in self.scores_for(u) {
            row[v] = s;
        }
        row
    }

    /// Full similarity matrix: `matrix[u][v]` for every anonymized `u` and
    /// auxiliary `v`, with `-inf` masking absent auxiliary users. Rows are
    /// computed on all available cores (scoped `std::thread`, no extra
    /// dependencies): the matrix is the attack's `O(n1·n2·nnz)` hot spot
    /// and survives as the *dense oracle* the sparse indexed path
    /// ([`crate::index::IndexedScorer`]) is differential-tested against.
    #[must_use]
    pub fn matrix(&self) -> Vec<Vec<f64>> {
        let n1 = self.anon.n_users();
        let n_threads = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(n1.max(1));
        if n_threads <= 1 || n1 < 64 {
            return (0..n1).map(|u| self.row(u)).collect();
        }
        let chunk = n1.div_ceil(n_threads);
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n1);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_threads)
                .map(|t| {
                    let start = t * chunk;
                    let end = ((t + 1) * chunk).min(n1);
                    scope.spawn(move || (start..end).map(|u| self.row(u)).collect::<Vec<_>>())
                })
                .collect();
            for h in handles {
                rows.extend(h.join().expect("similarity worker panicked"));
            }
        });
        rows
    }
}

/// One family of fixed-stride quantized vectors: u8 codes (each vector
/// scaled against its own maximum — cosine is invariant to per-vector
/// scale, so the scales cancel in every cross-side dot), the full-vector
/// Euclidean norm in code units, and the norm of the components beyond
/// the stored prefix (used to bound the truncated part of a dot product
/// via Cauchy–Schwarz). Assumes non-negative inputs (edge weights and
/// closeness values); negative components clamp to code 0.
#[derive(Debug, Clone, Default)]
struct QuantizedFamily {
    dim: usize,
    codes: Vec<u8>,
    norms: Vec<f64>,
    tails: Vec<f64>,
}

impl QuantizedFamily {
    fn from_rows(rows: &[Vec<f64>], dim: usize) -> Self {
        let mut codes = vec![0u8; rows.len() * dim];
        let mut norms = vec![0.0; rows.len()];
        let mut tails = vec![0.0; rows.len()];
        for (i, row) in rows.iter().enumerate() {
            let max = row.iter().copied().fold(0.0_f64, f64::max);
            if max <= 0.0 {
                continue;
            }
            let scale = max / 255.0;
            let (mut norm2, mut tail2) = (0.0, 0.0);
            for (j, &v) in row.iter().enumerate() {
                let c = (v / scale).round().clamp(0.0, 255.0);
                if j < dim {
                    codes[i * dim + j] = c as u8;
                } else {
                    tail2 += c * c;
                }
                norm2 += c * c;
            }
            norms[i] = norm2.sqrt();
            tails[i] = tail2.sqrt();
        }
        Self { dim, codes, norms, tails }
    }

    /// Approximate ceiling on `padded_cosine` of the original vectors
    /// `self[i]` and `other[j]`: integer dot over the code prefixes, the
    /// truncated tails bounded by the product of their norms, plus
    /// [`QUANT_COS_SLACK`] for rounding. Zero-norm vectors answer 0.0
    /// exactly like [`padded_cosine`].
    fn cos_ceiling(&self, i: usize, other: &Self, j: usize) -> f64 {
        let (na, nb) = (self.norms[i], other.norms[j]);
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        debug_assert_eq!(self.dim, other.dim, "families quantized at different strides");
        let a = &self.codes[i * self.dim..(i + 1) * self.dim];
        let b = &other.codes[j * other.dim..(j + 1) * other.dim];
        let dot: u64 = a.iter().zip(b).map(|(&x, &y)| u64::from(x) * u64::from(y)).sum();
        let cos = (dot as f64 + self.tails[i] * other.tails[j]) / (na * nb);
        (cos + QUANT_COS_SLACK).min(1.0)
    }
}

/// u8-quantized mirror of a [`SimilarityEngine`]'s structural state —
/// per-user degrees plus quantized NCS and landmark-closeness vectors —
/// built once per scoring pass by
/// [`SimilarityEngine::quantized_structural`].
///
/// Its one product is [`Self::ceiling`]: a cheap per-pair *approximate*
/// upper bound on the structural part `c1·s^d + c2·s^s` of the combined
/// score. The degree/weighted-degree ratios are exact; the three cosines
/// are integer dots over u8 codes padded with a small additive slack. The
/// ceiling is not a strict bound — quantization can underestimate a
/// cosine by more than the slack in pathological cases — which is
/// exactly why only the approximate tier's margin band consults it; the
/// recall meter (`repro recall`) measures the resulting loss.
#[derive(Debug, Clone)]
pub struct QuantizedStructural {
    c1: f64,
    c2: f64,
    anon_deg: Vec<f64>,
    anon_wdeg: Vec<f64>,
    aux_deg: Vec<f64>,
    aux_wdeg: Vec<f64>,
    anon_ncs: QuantizedFamily,
    aux_ncs: QuantizedFamily,
    anon_hops: QuantizedFamily,
    aux_hops: QuantizedFamily,
    anon_whops: QuantizedFamily,
    aux_whops: QuantizedFamily,
}

impl QuantizedStructural {
    /// Approximate per-pair ceiling on `c1·s^d_uv + c2·s^s_uv` for
    /// anonymized user `u` against auxiliary user `v` (indexed in the
    /// source engine's id space). Negative weights contribute 0, matching
    /// the global bound convention of the indexed scorer.
    #[must_use]
    pub fn ceiling(&self, u: usize, v: usize) -> f64 {
        let d = ratio(self.anon_deg[u], self.aux_deg[v])
            + ratio(self.anon_wdeg[u], self.aux_wdeg[v])
            + self.anon_ncs.cos_ceiling(u, &self.aux_ncs, v);
        let s = self.anon_hops.cos_ceiling(u, &self.aux_hops, v)
            + self.anon_whops.cos_ceiling(u, &self.aux_whops, v);
        let td = if self.c1 >= 0.0 { self.c1 * d } else { 0.0 };
        let ts = if self.c2 >= 0.0 { self.c2 * s } else { 0.0 };
        td + ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dehealth_corpus::{Forum, Post};

    fn uda(posts: Vec<Post>, n_users: usize, n_threads: usize) -> UdaGraph {
        UdaGraph::build(&Forum::from_posts(n_users, n_threads, posts))
    }

    fn p(author: usize, thread: usize, text: &str) -> Post {
        Post { author, thread, text: text.into() }
    }

    #[test]
    fn ratio_conventions() {
        assert_eq!(ratio(0.0, 0.0), 1.0);
        assert_eq!(ratio(0.0, 5.0), 0.0);
        assert!((ratio(2.0, 4.0) - 0.5).abs() < 1e-12);
        assert!((ratio(4.0, 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn padded_cosine_handles_unequal_lengths() {
        assert!((padded_cosine(&[1.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert_eq!(padded_cosine(&[], &[1.0]), 0.0);
        assert_eq!(padded_cosine(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn padded_cosine_never_exceeds_one() {
        // Near-parallel vectors whose quotient could round past 1.0: the
        // clamp keeps the pruning bound's `s^d ≤ 3` invariant exact.
        let a: Vec<f64> = (1..40).map(|i| 1.0 / f64::from(i)).collect();
        assert!(padded_cosine(&a, &a) <= 1.0);
        let b: Vec<f64> = a.iter().map(|x| x * 3.000000000000001).collect();
        assert!(padded_cosine(&a, &b) <= 1.0);
    }

    #[test]
    fn padded_cosine_edge_cases() {
        // Both empty.
        assert_eq!(padded_cosine(&[], &[]), 0.0);
        // Disjoint supports (dot = 0) with non-zero norms.
        assert_eq!(padded_cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        // Identical vectors.
        assert!((padded_cosine(&[0.3, 0.4], &[0.3, 0.4]) - 1.0).abs() < 1e-12);
        // Parallel vectors of different scale.
        assert!((padded_cosine(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_users_maximize_similarity() {
        // Same text, same thread structure on both sides.
        let anon = uda(
            vec![p(0, 0, "I realy hate this migrane pain!"), p(1, 0, "rest helps a lot")],
            2,
            1,
        );
        let aux = uda(
            vec![p(0, 0, "I realy hate this migrane pain!"), p(1, 0, "rest helps a lot")],
            2,
            1,
        );
        let eng = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 2);
        // Self-similarity should beat cross-similarity.
        assert!(eng.similarity(0, 0) > eng.similarity(0, 1));
        assert!(eng.similarity(1, 1) > eng.similarity(1, 0));
        // Attribute similarity of identical users is the max (2.0).
        assert!((eng.attribute_similarity(0, 0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn matrix_masks_absent_aux_users() {
        let anon = uda(vec![p(0, 0, "hello there")], 1, 1);
        // Aux user 1 has no posts.
        let aux = uda(vec![p(0, 0, "hello there")], 2, 1);
        let eng = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 1);
        let m = eng.matrix();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].len(), 2);
        assert!(m[0][1].is_infinite() && m[0][1] < 0.0);
        assert!(m[0][0].is_finite());
    }

    #[test]
    fn weights_scale_components() {
        let anon = uda(vec![p(0, 0, "the same text here"), p(1, 0, "other words")], 2, 1);
        let aux = uda(vec![p(0, 0, "the same text here"), p(1, 0, "other words")], 2, 1);
        let only_attr =
            SimilarityEngine::new(&anon, &aux, SimilarityWeights { c1: 0.0, c2: 0.0, c3: 1.0 }, 1);
        let s = only_attr.similarity(0, 0);
        assert!((s - only_attr.attribute_similarity(0, 0)).abs() < 1e-12);
    }

    #[test]
    fn parallel_matrix_matches_serial_rows() {
        // 80 users on each side to cross the parallel threshold.
        let mk = |salt: usize| -> UdaGraph {
            let posts = (0..80)
                .map(|u| {
                    p(
                        u,
                        u % 7,
                        if (u + salt).is_multiple_of(2) {
                            "short one."
                        } else {
                            "a much longer post with more words!"
                        },
                    )
                })
                .collect();
            uda(posts, 80, 7)
        };
        let anon = mk(0);
        let aux = mk(1);
        let eng = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 5);
        let m = eng.matrix();
        for u in (0..80).step_by(17) {
            assert_eq!(m[u], eng.row(u), "row {u} differs");
        }
    }

    #[test]
    fn scores_for_matches_row_on_present_users() {
        let anon = uda(vec![p(0, 0, "hello there"), p(1, 0, "more text!")], 2, 1);
        // Aux user 1 has no posts.
        let aux = uda(vec![p(0, 0, "hello there"), p(2, 0, "other words")], 3, 1);
        let eng = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 1);
        assert_eq!(eng.n_anon(), 2);
        assert_eq!(eng.n_aux(), 3);
        for u in 0..2 {
            let row = eng.row(u);
            let streamed: Vec<(usize, f64)> = eng.scores_for(u).collect();
            assert_eq!(streamed.iter().map(|&(v, _)| v).collect::<Vec<_>>(), vec![0, 2]);
            for (v, s) in streamed {
                assert_eq!(row[v].to_bits(), s.to_bits(), "u={u} v={v}");
            }
            assert!(row[1].is_infinite() && row[1] < 0.0);
        }
    }

    #[test]
    fn score_block_covers_the_range() {
        let anon = uda(vec![p(0, 0, "a b c"), p(1, 0, "d e f"), p(2, 1, "g h")], 3, 2);
        let aux = uda(vec![p(0, 0, "a b c"), p(1, 1, "x y")], 2, 2);
        let eng = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 1);
        let block: Vec<(usize, Vec<(usize, f64)>)> =
            eng.score_block(1..3).map(|(u, scores)| (u, scores.collect())).collect();
        assert_eq!(block.len(), 2);
        assert_eq!(block[0].0, 1);
        assert_eq!(block[1].0, 2);
        for (u, scores) in block {
            let row = eng.row(u);
            for (v, s) in scores {
                assert_eq!(row[v].to_bits(), s.to_bits());
            }
        }
    }

    #[test]
    fn engine_is_sync_and_send() {
        fn assert_sync_send<T: Sync + Send>() {}
        // The sharded engine moves `&SimilarityEngine` across scoped
        // threads; regressing these bounds would break it.
        assert_sync_send::<SimilarityEngine<'_>>();
        assert_sync_send::<crate::refined::Side<'_>>();
    }

    #[test]
    fn similarity_is_finite_and_bounded() {
        let anon = uda(vec![p(0, 0, "a b c !!!"), p(1, 1, "1 2 3 $$$")], 2, 2);
        let aux = uda(vec![p(0, 0, "x y z"), p(1, 1, "q r s")], 2, 2);
        let eng = SimilarityEngine::new(&anon, &aux, SimilarityWeights::default(), 2);
        for u in 0..2 {
            for v in 0..2 {
                let s = eng.similarity(u, v);
                assert!(s.is_finite());
                // Max possible: 0.05*3 + 0.05*2 + 0.9*2 = 2.05.
                assert!((0.0..=2.05 + 1e-9).contains(&s));
            }
        }
    }
}
