//! Snapshot codecs for the attack's per-post feature vectors.
//!
//! The container format (magic/version header, checksummed sections,
//! little-endian primitives) lives in [`dehealth_corpus::snapshot`]; the
//! derived attack structures serialize themselves
//! ([`AttributeIndex::encode`](crate::index::AttributeIndex::encode),
//! [`RefinedContext::encode`](crate::refined::RefinedContext::encode)).
//! This module adds the one codec that belongs to neither: the per-post
//! [`FeatureVector`] lists that every derived structure is computed from.
//! Persisting them is what lets a reload skip stylometric feature
//! extraction — by far the most expensive part of preparing a corpus.

use dehealth_corpus::snapshot::{SectionReader, SectionWrite, SnapshotError};
use dehealth_stylometry::FeatureVector;

/// Encode per-post feature vectors: a count, then each vector as its
/// non-zero `(index u32, value f64-bits)` entry list.
///
/// # Panics
/// Panics if there are more than `u32::MAX` vectors or entries per vector
/// (beyond any supported corpus).
pub fn encode_features<W: SectionWrite>(features: &[FeatureVector], buf: &mut W) {
    buf.put_u32(u32::try_from(features.len()).expect("feature count overflows u32"));
    for v in features {
        buf.put_u32(u32::try_from(v.nnz()).expect("entry count overflows u32"));
        for (i, x) in v.iter_nonzero() {
            buf.put_u32(u32::try_from(i).expect("feature index overflows u32"));
            buf.put_f64(x);
        }
    }
}

/// Decode feature vectors written by [`encode_features`], revalidating
/// the sparse-vector invariants (strictly ascending in-range indices,
/// non-zero finite values) through
/// [`FeatureVector::try_from_sorted_entries`].
///
/// # Errors
/// [`SnapshotError::Truncated`] or [`SnapshotError::Malformed`] on
/// malformed payloads; never panics.
pub fn decode_features(r: &mut SectionReader<'_>) -> Result<Vec<FeatureVector>, SnapshotError> {
    let n = r.take_u32()? as usize;
    if n > r.remaining() / 4 {
        return Err(SnapshotError::Malformed { context: "implausible feature-vector count" });
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let nnz = r.take_u32()? as usize;
        if nnz > r.remaining() / 12 {
            return Err(SnapshotError::Malformed { context: "implausible entry count" });
        }
        let mut entries = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let i = r.take_u32()?;
            let v = r.take_f64()?;
            entries.push((i, v));
        }
        out.push(
            FeatureVector::try_from_sorted_entries(entries)
                .map_err(|_| SnapshotError::Malformed { context: "invalid feature vector" })?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dehealth_corpus::snapshot::{SectionTag, SnapshotReader, SnapshotWriter};
    use dehealth_stylometry::extract;

    const TAG: SectionTag = SectionTag(*b"TEST");

    fn roundtrip(features: &[FeatureVector]) -> Result<Vec<FeatureVector>, SnapshotError> {
        let mut w = SnapshotWriter::new();
        encode_features(features, w.section(TAG));
        let bytes = w.finish();
        let reader = SnapshotReader::parse(&bytes)?;
        let mut s = reader.section(TAG)?;
        let out = decode_features(&mut s)?;
        s.expect_end()?;
        Ok(out)
    }

    #[test]
    fn extracted_features_roundtrip_bit_exact() {
        let features: Vec<FeatureVector> = [
            "I realy hate this migrane pain!",
            "rest helps a lot, the doctor said so.",
            "",
            "20 mg twice a day & water",
        ]
        .iter()
        .map(|t| extract(t))
        .collect();
        let back = roundtrip(&features).unwrap();
        assert_eq!(back.len(), features.len());
        for (a, b) in back.iter().zip(&features) {
            assert_eq!(a.nnz(), b.nnz());
            for ((i, x), (j, y)) in a.iter_nonzero().zip(b.iter_nonzero()) {
                assert_eq!(i, j);
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn corrupt_entries_are_rejected_not_panicked() {
        // Hand-craft a payload with a descending index pair.
        let mut w = SnapshotWriter::new();
        let s = w.section(TAG);
        s.put_u32(1); // one vector
        s.put_u32(2); // two entries
        s.put_u32(5);
        s.put_f64(1.0);
        s.put_u32(3); // descending
        s.put_f64(1.0);
        let bytes = w.finish();
        let reader = SnapshotReader::parse(&bytes).unwrap();
        let mut s = reader.section(TAG).unwrap();
        assert!(matches!(
            decode_features(&mut s),
            Err(SnapshotError::Malformed { context: "invalid feature vector" })
        ));
    }
}
