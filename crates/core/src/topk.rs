//! Top-K candidate selection (Algorithm 1, lines 2-5).
//!
//! Two strategies from the paper:
//!
//! - **Direct selection**: the K auxiliary users with the largest
//!   similarity scores for each anonymized user.
//! - **Graph-matching selection**: repeatedly compute a maximum-weight
//!   matching on the complete bipartite graph `G(V1, V2)` and append each
//!   anonymized user's matched partner to its candidate set (Steps 1-4).
//!   One matching round yields globally consistent assignments, so rare
//!   users are not crowded out by popular candidates.

use dehealth_graph::max_weight_matching;

/// Candidate-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selection {
    /// Per-user Top-K scores.
    #[default]
    Direct,
    /// Repeated maximum-weight bipartite matching.
    GraphMatching,
}

/// For each anonymized user, the auxiliary candidate ids sorted by
/// decreasing similarity.
pub type CandidateSets = Vec<Vec<usize>>;

/// Direct selection: per row of `matrix`, the `k` columns with the largest
/// finite scores (descending).
#[must_use]
pub fn direct_selection(matrix: &[Vec<f64>], k: usize) -> CandidateSets {
    matrix
        .iter()
        .map(|row| {
            let mut idx: Vec<usize> = (0..row.len()).filter(|&v| row[v].is_finite()).collect();
            idx.sort_unstable_by(|&a, &b| {
                row[b].partial_cmp(&row[a]).expect("finite scores").then(a.cmp(&b))
            });
            idx.truncate(k);
            idx
        })
        .collect()
}

/// Graph-matching selection: `k` rounds of maximum-weight bipartite
/// matching, removing matched edges between rounds.
///
/// Requires `n1 <= n2` (each round must match every anonymized user).
/// Masked (`-inf`) entries are lifted to a large negative finite penalty so
/// the Hungarian solver can run; such pairs are only matched if a user has
/// no viable candidates left, and are then filtered from the result.
#[must_use]
pub fn matching_selection(matrix: &[Vec<f64>], k: usize) -> CandidateSets {
    let n1 = matrix.len();
    if n1 == 0 {
        return Vec::new();
    }
    let n2 = matrix[0].len();
    assert!(n1 <= n2, "graph matching needs |V1| <= |V2|");
    const PENALTY: f64 = -1e9;
    let mut work: Vec<Vec<f64>> = matrix
        .iter()
        .map(|row| row.iter().map(|&v| if v.is_finite() { v } else { PENALTY }).collect())
        .collect();
    let mut out: CandidateSets = vec![Vec::new(); n1];
    let rounds = k.min(n2);
    for _ in 0..rounds {
        let assign = max_weight_matching(&work);
        for (u, &v) in assign.iter().enumerate() {
            if work[u][v] > PENALTY / 2.0 {
                out[u].push(v);
            }
            // Remove the matched edge for the next round.
            work[u][v] = PENALTY;
        }
    }
    // Keep each user's candidates sorted by decreasing original similarity.
    for (u, cands) in out.iter_mut().enumerate() {
        cands.sort_unstable_by(|&a, &b| {
            matrix[u][b].partial_cmp(&matrix[u][a]).expect("finite").then(a.cmp(&b))
        });
    }
    out
}

/// Rank (0-based) of `target` in the decreasing-similarity ordering of row
/// `u`, i.e. the smallest K for which Top-K selection would contain it,
/// minus one. `None` if the target is masked.
#[must_use]
pub fn rank_of(matrix: &[Vec<f64>], u: usize, target: usize) -> Option<usize> {
    let row = &matrix[u];
    let score = row[target];
    if !score.is_finite() {
        return None;
    }
    // Count strictly better columns plus equal-score columns with smaller
    // index (matching direct_selection's deterministic tie-break).
    let better = row
        .iter()
        .enumerate()
        .filter(|&(v, &s)| {
            s.is_finite() && (s > score || (s == score && v < target))
        })
        .count();
    Some(better)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NEG: f64 = f64::NEG_INFINITY;

    #[test]
    fn direct_selection_orders_by_score() {
        let m = vec![vec![0.1, 0.9, 0.5], vec![0.7, 0.2, 0.3]];
        let c = direct_selection(&m, 2);
        assert_eq!(c[0], vec![1, 2]);
        assert_eq!(c[1], vec![0, 2]);
    }

    #[test]
    fn direct_selection_skips_masked() {
        let m = vec![vec![0.1, NEG, 0.5]];
        let c = direct_selection(&m, 3);
        assert_eq!(c[0], vec![2, 0]);
    }

    #[test]
    fn direct_selection_k_larger_than_cols() {
        let m = vec![vec![0.1, 0.2]];
        assert_eq!(direct_selection(&m, 10)[0].len(), 2);
    }

    #[test]
    fn matching_selection_resolves_contention() {
        // Both anonymized users prefer column 0, but matching forces
        // distinct assignments in round one.
        let m = vec![vec![1.0, 0.8], vec![0.9, 0.1]];
        let c = matching_selection(&m, 1);
        // Optimal total: u0->1 (0.8) + u1->0 (0.9) = 1.7 beats 1.0+0.1.
        assert_eq!(c[0], vec![1]);
        assert_eq!(c[1], vec![0]);
    }

    #[test]
    fn matching_selection_k2_covers_both() {
        let m = vec![vec![1.0, 0.8], vec![0.9, 0.1]];
        let c = matching_selection(&m, 2);
        assert_eq!(c[0], vec![0, 1]);
        assert_eq!(c[1], vec![0, 1]);
    }

    #[test]
    fn matching_selection_filters_masked_pairs() {
        let m = vec![vec![0.5, NEG]];
        let c = matching_selection(&m, 2);
        assert_eq!(c[0], vec![0]);
    }

    #[test]
    fn rank_of_matches_direct_selection() {
        let m = vec![vec![0.1, 0.9, 0.5, NEG]];
        assert_eq!(rank_of(&m, 0, 1), Some(0));
        assert_eq!(rank_of(&m, 0, 2), Some(1));
        assert_eq!(rank_of(&m, 0, 0), Some(2));
        assert_eq!(rank_of(&m, 0, 3), None);
        // Consistency: target at rank r is in every Top-K with K > r.
        let c = direct_selection(&m, 2);
        assert!(c[0].contains(&2));
        assert_eq!(rank_of(&m, 0, 2).unwrap(), 1);
    }

    #[test]
    fn empty_matrix() {
        assert!(matching_selection(&[], 3).is_empty());
        assert!(direct_selection(&[], 3).is_empty());
    }
}
