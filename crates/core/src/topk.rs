//! Top-K candidate selection (Algorithm 1, lines 2-5).
//!
//! Two strategies from the paper:
//!
//! - **Direct selection**: the K auxiliary users with the largest
//!   similarity scores for each anonymized user.
//! - **Graph-matching selection**: repeatedly compute a maximum-weight
//!   matching on the complete bipartite graph `G(V1, V2)` and append each
//!   anonymized user's matched partner to its candidate set (Steps 1-4).
//!   One matching round yields globally consistent assignments, so rare
//!   users are not crowded out by popular candidates.

use std::collections::BinaryHeap;

use dehealth_graph::max_weight_matching;

/// Candidate-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selection {
    /// Per-user Top-K scores.
    #[default]
    Direct,
    /// Repeated maximum-weight bipartite matching.
    GraphMatching,
}

/// For each anonymized user, the auxiliary candidate ids sorted by
/// decreasing similarity.
pub type CandidateSets = Vec<Vec<usize>>;

/// One `(candidate, score)` entry of a [`BoundedTopK`] heap.
///
/// The ordering makes the *worst* entry the heap maximum (so it is the
/// eviction victim): an entry is worse when its score is lower, with ties
/// broken toward larger candidate ids — exactly the deterministic
/// `(score desc, id asc)` order of [`direct_selection`].
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    score: f64,
    candidate: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Greater = worse: lower score first, then larger id.
        other.score.total_cmp(&self.score).then_with(|| self.candidate.cmp(&other.candidate))
    }
}

/// A bounded Top-K selector over a stream of `(candidate, score)` pairs.
///
/// Keeps the `k` best entries seen so far in `O(k)` memory and `O(log k)`
/// per insertion; the final ordering is identical to sorting the full
/// stream by `(score desc, candidate asc)` and truncating to `k`. This is
/// what lets the sharded engine run the Top-K DA phase without ever
/// materializing the dense `|V1| × |V2|` similarity matrix.
///
/// ```
/// use dehealth_core::topk::BoundedTopK;
///
/// let mut top = BoundedTopK::new(2);
/// for (candidate, score) in [(4, 0.1), (7, 0.9), (2, 0.5), (9, 0.5)] {
///     top.insert(candidate, score);
/// }
/// // Best two, ties broken toward the smaller id.
/// assert_eq!(top.into_sorted_entries(), vec![(7, 0.9), (2, 0.5)]);
/// ```
#[derive(Debug, Clone)]
pub struct BoundedTopK {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

impl BoundedTopK {
    /// An empty selector keeping the best `k` entries.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// The bound `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entries currently kept (`<= k`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if nothing has been kept yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The selection floor: the score of the entry that would be evicted
    /// by the next better insertion.
    ///
    /// - `None` while the heap still has room (`len < k`): everything with
    ///   a finite score gets in, so there is no floor yet.
    /// - `Some(score)` once the heap is full: a candidate whose score is
    ///   *strictly* below the floor can never be kept. (A candidate whose
    ///   score *equals* the floor may still enter on the id tie-break, so
    ///   upper-bound pruning must compare with `<`, never `<=`.)
    /// - `Some(+inf)` when `k == 0`: nothing can ever be kept.
    ///
    /// This is what lets an indexed scorer skip pairs whose score upper
    /// bound cannot beat the running Top-K selection — see
    /// [`crate::index::IndexedScorer`].
    #[must_use]
    pub fn floor(&self) -> Option<f64> {
        if self.k == 0 {
            Some(f64::INFINITY)
        } else if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|e| e.score)
        }
    }

    /// Offer one `(candidate, score)` pair. Non-finite scores are ignored
    /// (they mark absent users).
    pub fn insert(&mut self, candidate: usize, score: f64) {
        if self.k == 0 || !score.is_finite() {
            return;
        }
        let entry = HeapEntry { score, candidate };
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if let Some(worst) = self.heap.peek() {
            if entry < *worst {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// The kept candidates sorted best-first (`score desc, id asc`).
    #[must_use]
    pub fn into_sorted_candidates(self) -> Vec<usize> {
        self.into_sorted_entries().into_iter().map(|(candidate, _)| candidate).collect()
    }

    /// The kept `(candidate, score)` pairs sorted best-first.
    #[must_use]
    pub fn into_sorted_entries(self) -> Vec<(usize, f64)> {
        self.heap.into_sorted_vec().into_iter().map(|e| (e.candidate, e.score)).collect()
    }
}

/// Direct selection: per row of `matrix`, the `k` columns with the largest
/// finite scores (descending). Runs in `O(|row| log k)` per row via
/// [`BoundedTopK`] — the same selector the sharded engine streams scores
/// through, so serial and parallel candidate sets agree by construction.
#[must_use]
pub fn direct_selection(matrix: &[Vec<f64>], k: usize) -> CandidateSets {
    matrix
        .iter()
        .map(|row| {
            let mut top = BoundedTopK::new(k);
            for (v, &s) in row.iter().enumerate() {
                top.insert(v, s);
            }
            top.into_sorted_candidates()
        })
        .collect()
}

/// Graph-matching selection: `k` rounds of maximum-weight bipartite
/// matching, removing matched edges between rounds.
///
/// Requires `n1 <= n2` (each round must match every anonymized user).
/// Masked (`-inf`) entries are lifted to a large negative finite penalty so
/// the Hungarian solver can run; such pairs are only matched if a user has
/// no viable candidates left, and are then filtered from the result.
#[must_use]
pub fn matching_selection(matrix: &[Vec<f64>], k: usize) -> CandidateSets {
    let n1 = matrix.len();
    if n1 == 0 {
        return Vec::new();
    }
    let n2 = matrix[0].len();
    assert!(n1 <= n2, "graph matching needs |V1| <= |V2|");
    const PENALTY: f64 = -1e9;
    let mut work: Vec<Vec<f64>> = matrix
        .iter()
        .map(|row| row.iter().map(|&v| if v.is_finite() { v } else { PENALTY }).collect())
        .collect();
    let mut out: CandidateSets = vec![Vec::new(); n1];
    let rounds = k.min(n2);
    for _ in 0..rounds {
        let assign = max_weight_matching(&work);
        for (u, &v) in assign.iter().enumerate() {
            if work[u][v] > PENALTY / 2.0 {
                out[u].push(v);
            }
            // Remove the matched edge for the next round.
            work[u][v] = PENALTY;
        }
    }
    // Keep each user's candidates sorted by decreasing original similarity.
    for (u, cands) in out.iter_mut().enumerate() {
        cands.sort_unstable_by(|&a, &b| {
            matrix[u][b].partial_cmp(&matrix[u][a]).expect("finite").then(a.cmp(&b))
        });
    }
    out
}

/// Rank (0-based) of `target` in the decreasing-similarity ordering of row
/// `u`, i.e. the smallest K for which Top-K selection would contain it,
/// minus one. `None` if the target is masked.
#[must_use]
pub fn rank_of(matrix: &[Vec<f64>], u: usize, target: usize) -> Option<usize> {
    let row = &matrix[u];
    let score = row[target];
    if !score.is_finite() {
        return None;
    }
    // Count strictly better columns plus equal-score columns with smaller
    // index (matching direct_selection's deterministic tie-break).
    let better = row
        .iter()
        .enumerate()
        .filter(|&(v, &s)| s.is_finite() && (s > score || (s == score && v < target)))
        .count();
    Some(better)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NEG: f64 = f64::NEG_INFINITY;

    #[test]
    fn direct_selection_orders_by_score() {
        let m = vec![vec![0.1, 0.9, 0.5], vec![0.7, 0.2, 0.3]];
        let c = direct_selection(&m, 2);
        assert_eq!(c[0], vec![1, 2]);
        assert_eq!(c[1], vec![0, 2]);
    }

    #[test]
    fn direct_selection_skips_masked() {
        let m = vec![vec![0.1, NEG, 0.5]];
        let c = direct_selection(&m, 3);
        assert_eq!(c[0], vec![2, 0]);
    }

    #[test]
    fn direct_selection_k_larger_than_cols() {
        let m = vec![vec![0.1, 0.2]];
        assert_eq!(direct_selection(&m, 10)[0].len(), 2);
    }

    #[test]
    fn matching_selection_resolves_contention() {
        // Both anonymized users prefer column 0, but matching forces
        // distinct assignments in round one.
        let m = vec![vec![1.0, 0.8], vec![0.9, 0.1]];
        let c = matching_selection(&m, 1);
        // Optimal total: u0->1 (0.8) + u1->0 (0.9) = 1.7 beats 1.0+0.1.
        assert_eq!(c[0], vec![1]);
        assert_eq!(c[1], vec![0]);
    }

    #[test]
    fn matching_selection_k2_covers_both() {
        let m = vec![vec![1.0, 0.8], vec![0.9, 0.1]];
        let c = matching_selection(&m, 2);
        assert_eq!(c[0], vec![0, 1]);
        assert_eq!(c[1], vec![0, 1]);
    }

    #[test]
    fn matching_selection_filters_masked_pairs() {
        let m = vec![vec![0.5, NEG]];
        let c = matching_selection(&m, 2);
        assert_eq!(c[0], vec![0]);
    }

    #[test]
    fn rank_of_matches_direct_selection() {
        let m = vec![vec![0.1, 0.9, 0.5, NEG]];
        assert_eq!(rank_of(&m, 0, 1), Some(0));
        assert_eq!(rank_of(&m, 0, 2), Some(1));
        assert_eq!(rank_of(&m, 0, 0), Some(2));
        assert_eq!(rank_of(&m, 0, 3), None);
        // Consistency: target at rank r is in every Top-K with K > r.
        let c = direct_selection(&m, 2);
        assert!(c[0].contains(&2));
        assert_eq!(rank_of(&m, 0, 2).unwrap(), 1);
    }

    #[test]
    fn empty_matrix() {
        assert!(matching_selection(&[], 3).is_empty());
        assert!(direct_selection(&[], 3).is_empty());
    }

    #[test]
    fn bounded_topk_matches_full_sort() {
        // Includes duplicates (tie-break on index) and a masked score.
        let scores = [0.4, 0.9, 0.4, NEG, 0.1, 0.9, 0.7, 0.4];
        for k in 0..=scores.len() + 1 {
            let mut top = BoundedTopK::new(k);
            for (v, &s) in scores.iter().enumerate() {
                top.insert(v, s);
            }
            let mut expect: Vec<usize> =
                (0..scores.len()).filter(|&v| scores[v].is_finite()).collect();
            expect.sort_unstable_by(|&a, &b| {
                scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b))
            });
            expect.truncate(k);
            assert_eq!(top.into_sorted_candidates(), expect, "k = {k}");
        }
    }

    #[test]
    fn bounded_topk_entries_keep_scores() {
        let mut top = BoundedTopK::new(2);
        top.insert(7, 0.5);
        top.insert(3, 0.9);
        top.insert(5, 0.1);
        assert_eq!(top.len(), 2);
        assert!(!top.is_empty());
        assert_eq!(top.k(), 2);
        assert_eq!(top.into_sorted_entries(), vec![(3, 0.9), (7, 0.5)]);
    }

    #[test]
    fn bounded_topk_zero_k_keeps_nothing() {
        let mut top = BoundedTopK::new(0);
        top.insert(0, 1.0);
        assert!(top.is_empty());
        assert!(top.into_sorted_candidates().is_empty());
    }

    #[test]
    fn bounded_topk_ties_break_toward_smaller_ids() {
        // Five equal-score candidates at a k = 3 boundary: the kept set
        // must be the three smallest ids, in every insertion order. This
        // is what makes shard order unable to reorder equal-score
        // candidates — the engine's cross-thread determinism rests on it.
        let ids = [4usize, 1, 3, 0, 2];
        let orders: Vec<Vec<usize>> = vec![
            ids.to_vec(),
            ids.iter().rev().copied().collect(),
            vec![0, 1, 2, 3, 4],
            vec![2, 0, 4, 1, 3],
        ];
        for order in orders {
            let mut top = BoundedTopK::new(3);
            for &v in &order {
                top.insert(v, 0.5);
            }
            assert_eq!(top.into_sorted_candidates(), vec![0, 1, 2], "order {order:?}");
        }
    }

    #[test]
    fn floor_appears_once_full_and_tracks_worst() {
        let mut top = BoundedTopK::new(2);
        assert_eq!(top.floor(), None);
        top.insert(0, 0.9);
        assert_eq!(top.floor(), None, "not full yet");
        top.insert(1, 0.4);
        assert_eq!(top.floor(), Some(0.4));
        // A better insertion evicts the floor entry and raises the floor.
        top.insert(2, 0.7);
        assert_eq!(top.floor(), Some(0.7));
        // A worse insertion leaves it untouched.
        top.insert(3, 0.1);
        assert_eq!(top.floor(), Some(0.7));
    }

    #[test]
    fn floor_of_zero_k_rejects_everything() {
        let top = BoundedTopK::new(0);
        assert_eq!(top.floor(), Some(f64::INFINITY));
    }

    #[test]
    fn floor_is_monotone_under_insertions() {
        // The pruning argument needs the floor to never decrease: a pair
        // pruned against today's floor must also lose against every later
        // floor.
        let scores = [0.3, 0.9, 0.1, 0.5, 0.7, 0.2, 0.8];
        let mut top = BoundedTopK::new(3);
        let mut last = f64::NEG_INFINITY;
        for (v, &s) in scores.iter().enumerate() {
            top.insert(v, s);
            if let Some(f) = top.floor() {
                assert!(f >= last, "floor regressed: {f} < {last}");
                last = f;
            }
        }
        assert_eq!(last, 0.7);
    }

    #[test]
    fn bounded_topk_insertion_order_is_irrelevant() {
        // The incremental engine pushes chunks in arrival order; the kept
        // set must only depend on the multiset of scored pairs.
        let pairs = [(0, 0.3), (1, 0.8), (2, 0.8), (3, 0.2), (4, 0.95)];
        let mut forward = BoundedTopK::new(3);
        let mut backward = BoundedTopK::new(3);
        for &(v, s) in &pairs {
            forward.insert(v, s);
        }
        for &(v, s) in pairs.iter().rev() {
            backward.insert(v, s);
        }
        assert_eq!(forward.into_sorted_candidates(), backward.into_sorted_candidates());
    }
}
