//! The User-Data-Attribute (UDA) graph of Section II-B.
//!
//! A [`UdaGraph`] bundles, for one forum (auxiliary or anonymized):
//!
//! - the *correlation graph*: users are nodes, an edge `e_ij` with weight
//!   `w_ij` counts threads users `i` and `j` both posted in;
//! - the per-user *attributes* `A(u)` / `WA(u)`: binary projections of the
//!   Table-I stylometric features with post-count weights `l_u(A_i)`;
//! - the per-user mean stylometric profile (used by refined DA);
//! - landmark distance features `H_u(S)` and `WH_u(S)`.

use dehealth_corpus::Forum;
use dehealth_graph::{bfs_hops, dijkstra_weighted, Graph, GraphBuilder};
use dehealth_stylometry::{extract, FeatureVector, UserAttributes, UserProfile};

/// Extract the Table-I features of every post, in parallel (scoped
/// `std::thread`; posts are independent and extraction dominates the
/// attack's preprocessing time).
#[must_use]
pub fn extract_post_features(forum: &Forum) -> Vec<FeatureVector> {
    let n = forum.posts.len();
    let n_threads =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(n.max(1));
    if n_threads <= 1 || n < 64 {
        return forum.posts.iter().map(|p| extract(&p.text)).collect();
    }
    let chunk = n.div_ceil(n_threads);
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|t| {
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(n);
                let posts = &forum.posts[start..end];
                scope.spawn(move || posts.iter().map(|p| extract(&p.text)).collect::<Vec<_>>())
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("feature extraction worker panicked"));
        }
    });
    out
}

/// The UDA graph of one forum.
#[derive(Debug, Clone)]
pub struct UdaGraph {
    /// Correlation graph over the forum's users.
    pub graph: Graph,
    /// Per-user binary attributes with weights (`A(u)`, `WA(u)`).
    pub attributes: Vec<UserAttributes>,
    /// Per-user mean stylometric vector.
    pub profiles: Vec<FeatureVector>,
    /// Per-user post count (0 = user absent from this dataset).
    pub post_counts: Vec<usize>,
}

impl UdaGraph {
    /// Build the UDA graph of `forum`: extract the Table-I features of
    /// every post, project attributes, and connect co-thread users.
    #[must_use]
    pub fn build(forum: &Forum) -> Self {
        Self::build_with_features(forum, &extract_post_features(forum))
    }

    /// Build the UDA graph from pre-extracted per-post features (parallel
    /// extraction via [`extract_post_features`]; `features` must be
    /// parallel to `forum.posts`).
    ///
    /// # Panics
    /// Panics if `features.len() != forum.posts.len()`.
    #[must_use]
    pub fn build_with_features(forum: &Forum, features: &[FeatureVector]) -> Self {
        assert_eq!(features.len(), forum.posts.len(), "features/posts mismatch");
        let n = forum.n_users;
        let mut attributes = vec![UserAttributes::new(); n];
        let mut profiles_acc: Vec<UserProfile> = vec![UserProfile::new(); n];

        // Thread membership for the correlation graph.
        let mut thread_members: Vec<Vec<u32>> = vec![Vec::new(); forum.n_threads];
        for (post, v) in forum.posts.iter().zip(features) {
            attributes[post.author].add_post(v);
            profiles_acc[post.author].add_post(v);
            let members = &mut thread_members[post.thread];
            if !members.contains(&(post.author as u32)) {
                members.push(post.author as u32);
            }
        }

        let mut builder = GraphBuilder::new(n);
        for members in &thread_members {
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    builder.add_edge(a as usize, b as usize, 1.0);
                }
            }
        }

        Self {
            graph: builder.build(),
            attributes,
            profiles: profiles_acc.iter().map(UserProfile::mean).collect(),
            post_counts: (0..n).map(|u| forum.post_count(u)).collect(),
        }
    }

    /// Number of users (including absent ones).
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.post_counts.len()
    }

    /// Users that actually have posts in this dataset.
    #[must_use]
    pub fn present_users(&self) -> Vec<usize> {
        (0..self.n_users()).filter(|&u| self.post_counts[u] > 0).collect()
    }

    /// Landmark users: the `k` present users with the largest degrees,
    /// sorted by decreasing degree (Section III-B).
    #[must_use]
    pub fn landmarks(&self, k: usize) -> Vec<usize> {
        let mut ids = self.present_users();
        ids.sort_unstable_by(|&a, &b| {
            self.graph.degree(b).cmp(&self.graph.degree(a)).then(a.cmp(&b))
        });
        ids.truncate(k);
        ids
    }

    /// Landmark *closeness* features: for each user, `1/(1+h)` per landmark
    /// (hop distances) and `1/(1+wh)` (weighted distances), with 0 for
    /// unreachable pairs.
    ///
    /// The paper takes cosines of raw distance vectors; the correlation
    /// graphs here are heavily disconnected (Appendix B), so raw distances
    /// are mostly infinite. The monotone `1/(1+d)` transform keeps the
    /// cosine well-defined while preserving the ordering information.
    #[must_use]
    pub fn landmark_closeness(&self, landmarks: &[usize]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let n = self.n_users();
        let mut hops = vec![vec![0.0; landmarks.len()]; n];
        let mut weighted = vec![vec![0.0; landmarks.len()]; n];
        for (k, &lm) in landmarks.iter().enumerate() {
            let h = bfs_hops(&self.graph, lm);
            let w = dijkstra_weighted(&self.graph, lm);
            for u in 0..n {
                if h[u] != u32::MAX {
                    hops[u][k] = 1.0 / (1.0 + f64::from(h[u]));
                }
                if w[u].is_finite() {
                    weighted[u][k] = 1.0 / (1.0 + w[u]);
                }
            }
        }
        (hops, weighted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dehealth_corpus::{Forum, Post};

    fn forum_with_threads() -> Forum {
        // Users 0,1 share thread 0; users 1,2 share thread 1; user 3 alone.
        let posts = vec![
            Post { author: 0, thread: 0, text: "I have a headache.".into() },
            Post { author: 1, thread: 0, text: "me too, realy bad!".into() },
            Post { author: 1, thread: 1, text: "my doctor said rest".into() },
            Post { author: 2, thread: 1, text: "The doctor helped me with 20 mg".into() },
            Post { author: 3, thread: 2, text: "alone in here".into() },
        ];
        Forum::from_posts(4, 3, posts)
    }

    #[test]
    fn correlation_edges_from_cothreads() {
        let uda = UdaGraph::build(&forum_with_threads());
        assert_eq!(uda.graph.edge_weight(0, 1), Some(1.0));
        assert_eq!(uda.graph.edge_weight(1, 2), Some(1.0));
        assert_eq!(uda.graph.edge_weight(0, 2), None);
        assert_eq!(uda.graph.degree(3), 0);
    }

    #[test]
    fn repeated_cothreads_increase_weight() {
        let posts = vec![
            Post { author: 0, thread: 0, text: "a b".into() },
            Post { author: 1, thread: 0, text: "c d".into() },
            Post { author: 0, thread: 1, text: "e f".into() },
            Post { author: 1, thread: 1, text: "g h".into() },
        ];
        let uda = UdaGraph::build(&Forum::from_posts(2, 2, posts));
        assert_eq!(uda.graph.edge_weight(0, 1), Some(2.0));
    }

    #[test]
    fn multiple_posts_same_thread_count_once() {
        let posts = vec![
            Post { author: 0, thread: 0, text: "a".into() },
            Post { author: 0, thread: 0, text: "b".into() },
            Post { author: 1, thread: 0, text: "c".into() },
        ];
        let uda = UdaGraph::build(&Forum::from_posts(2, 1, posts));
        assert_eq!(uda.graph.edge_weight(0, 1), Some(1.0));
    }

    #[test]
    fn attributes_reflect_posts() {
        let uda = UdaGraph::build(&forum_with_threads());
        // User 1 used the misspelling "realy".
        assert!(!uda.attributes[1].is_empty());
        assert_eq!(uda.post_counts, vec![1, 2, 1, 1]);
        assert!(uda.profiles[0].nnz() > 0);
    }

    #[test]
    fn landmarks_prefer_high_degree() {
        let uda = UdaGraph::build(&forum_with_threads());
        let lms = uda.landmarks(2);
        assert_eq!(lms[0], 1); // degree 2
        assert_eq!(lms.len(), 2);
    }

    #[test]
    fn landmark_closeness_values() {
        let uda = UdaGraph::build(&forum_with_threads());
        let (hops, _) = uda.landmark_closeness(&[1]);
        assert!((hops[1][0] - 1.0).abs() < 1e-12); // self: 1/(1+0)
        assert!((hops[0][0] - 0.5).abs() < 1e-12); // one hop
        assert_eq!(hops[3][0], 0.0); // unreachable
    }

    #[test]
    fn present_users_excludes_postless() {
        let posts = vec![Post { author: 2, thread: 0, text: "x".into() }];
        let uda = UdaGraph::build(&Forum::from_posts(4, 1, posts));
        assert_eq!(uda.present_users(), vec![2]);
    }
}
