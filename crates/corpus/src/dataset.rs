//! The simulated forum: users, threads, posts, and paper-calibrated
//! presets.
//!
//! Substitute for the paper's crawled WebMD (89,393 users, 506K posts,
//! mean 127.59 words/post, 87.3% of users < 5 posts) and HealthBoards
//! (388,398 users, 4.7M posts, mean 147.24 words/post, 75.4% of users < 5
//! posts) corpora. Post counts follow a truncated discrete power law,
//! thread participation follows a recency-biased preferential process, and
//! post text is persona-generated — reproducing the marginals the paper
//! publishes (Figs. 1, 2, 7, 8) with controllable scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::generate_post;
use crate::persona::Persona;
use crate::vocab;

/// One post: author, thread, and generated text.
#[derive(Debug, Clone)]
pub struct Post {
    /// Author user id (`0..n_users`).
    pub author: usize,
    /// Thread id (`0..n_threads`).
    pub thread: usize,
    /// Post text.
    pub text: String,
}

/// Simulator parameters.
#[derive(Debug, Clone)]
pub struct ForumConfig {
    /// Number of registered users.
    pub n_users: usize,
    /// Number of boards (HealthBoards has "more than 200 message boards").
    pub n_boards: usize,
    /// Fraction of users in the low-activity component (1-4 posts); the
    /// paper reports 87.3% of WebMD and 75.4% of HealthBoards users with
    /// < 5 posts.
    pub low_posts_p: f64,
    /// Power-law exponent of the high-activity tail (5..=max posts).
    pub posts_alpha: f64,
    /// Cap on posts per user (Fig. 1's x-axis extends to 500).
    pub max_posts: usize,
    /// Forum-wide mean post length in words.
    pub mean_post_words: f64,
    /// Probability a post starts a new thread instead of joining one.
    pub new_thread_p: f64,
    /// How many recent threads per board are candidates for joining.
    pub thread_window: usize,
    /// Persona distinctiveness in `[0, 1]`.
    pub style_strength: f64,
    /// When set, every user gets exactly this many posts instead of a
    /// power-law draw (the refined-DA evaluations use 50 users with 20 or
    /// 40 posts each).
    pub fixed_posts: Option<usize>,
}

impl ForumConfig {
    /// WebMD-calibrated marginals at a chosen scale.
    #[must_use]
    pub fn webmd_like(n_users: usize) -> Self {
        Self {
            n_users,
            n_boards: 60,
            low_posts_p: 0.873,
            posts_alpha: 1.75,
            max_posts: 500,
            mean_post_words: 127.59,
            new_thread_p: 0.35,
            thread_window: 8,
            style_strength: 0.9,
            fixed_posts: None,
        }
    }

    /// HealthBoards-calibrated marginals at a chosen scale: more boards,
    /// more posts per user (mean 12.06 vs 5.66), longer posts.
    #[must_use]
    pub fn healthboards_like(n_users: usize) -> Self {
        Self {
            n_users,
            n_boards: 200,
            low_posts_p: 0.754,
            posts_alpha: 1.67,
            max_posts: 800,
            mean_post_words: 147.24,
            new_thread_p: 0.3,
            thread_window: 10,
            style_strength: 0.9,
            fixed_posts: None,
        }
    }

    /// A 60-user forum for doctests and fast unit tests.
    #[must_use]
    pub fn tiny() -> Self {
        let mut c = Self::webmd_like(60);
        c.mean_post_words = 60.0;
        c
    }
}

/// A simulated health forum.
#[derive(Debug, Clone)]
pub struct Forum {
    /// Number of users.
    pub n_users: usize,
    /// Number of threads.
    pub n_threads: usize,
    /// All posts in generation order.
    pub posts: Vec<Post>,
    /// Board of each thread.
    pub thread_board: Vec<usize>,
    /// Topic word of each thread.
    pub thread_topic: Vec<&'static str>,
    post_index: Vec<Vec<usize>>,
}

/// Phase-1 output: everything about a post except its text.
struct PostPlan {
    author: usize,
    thread: usize,
    /// Seed of the private RNG that renders this post's text. Drawn from
    /// the sequential structure stream, so the text of post `i` depends
    /// only on `(seed, i)` — never on which worker thread renders it.
    text_seed: u64,
}

impl Forum {
    /// Generate a forum from `config` with a fixed `seed`.
    ///
    /// Text rendering is spread over the available cores; the output is
    /// byte-identical regardless of thread count (see
    /// [`Forum::generate_with_threads`]).
    ///
    /// # Panics
    /// Panics if `config.n_users == 0` or `config.n_boards == 0`.
    #[must_use]
    pub fn generate(config: &ForumConfig, seed: u64) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::generate_with_threads(config, seed, threads)
    }

    /// Generate a forum using up to `n_threads` worker threads for post
    /// text.
    ///
    /// Generation is two-phase: phase 1 runs the *structure* process
    /// (personas, post budgets, board preferences, the global event
    /// shuffle, and the sequential thread process) on one seeded RNG and
    /// assigns each post a private text seed; phase 2 renders each post's
    /// text from its own `StdRng` seeded with that value. Because no text
    /// draw touches the shared stream, the corpus is byte-identical for
    /// any `n_threads`.
    ///
    /// # Panics
    /// Panics if `config.n_users == 0` or `config.n_boards == 0`.
    #[must_use]
    pub fn generate_with_threads(config: &ForumConfig, seed: u64, n_threads: usize) -> Self {
        assert!(config.n_users > 0, "need at least one user");
        assert!(config.n_boards > 0, "need at least one board");
        let mut rng = StdRng::seed_from_u64(seed);

        // 1. Personas and per-user post budgets.
        let personas: Vec<Persona> = (0..config.n_users)
            .map(|_| Persona::sample(&mut rng, config.mean_post_words, config.style_strength))
            .collect();
        let budgets: Vec<usize> = (0..config.n_users)
            .map(|_| match config.fixed_posts {
                Some(k) => k.max(1),
                None => sample_post_count(
                    &mut rng,
                    config.low_posts_p,
                    config.posts_alpha,
                    config.max_posts,
                ),
            })
            .collect();

        // 2. Per-user preferred boards (1-3).
        let prefs: Vec<Vec<usize>> = (0..config.n_users)
            .map(|_| {
                let k = rng.gen_range(1..=3usize);
                (0..k).map(|_| rng.gen_range(0..config.n_boards)).collect()
            })
            .collect();

        // 3. Global posting order: a shuffled multiset of user events.
        let mut events: Vec<usize> =
            budgets.iter().enumerate().flat_map(|(u, &b)| std::iter::repeat_n(u, b)).collect();
        shuffle(&mut rng, &mut events);

        // 4. Sequential thread process: per board keep a sliding window of
        //    recent threads; posting either opens a thread or joins one.
        let mut thread_board: Vec<usize> = Vec::new();
        let mut thread_topic: Vec<&'static str> = Vec::new();
        let mut recent: Vec<Vec<usize>> = vec![Vec::new(); config.n_boards];
        let mut plans: Vec<PostPlan> = Vec::with_capacity(events.len());
        for &user in &events {
            let board = prefs[user][rng.gen_range(0..prefs[user].len())];
            let window = &recent[board];
            let thread = if window.is_empty() || rng.gen::<f64>() < config.new_thread_p {
                let t = thread_board.len();
                thread_board.push(board);
                let bank = vocab::NOUN_BANKS[rng.gen_range(0..vocab::NOUN_BANKS.len())];
                thread_topic.push(bank[rng.gen_range(0..bank.len())]);
                recent[board].push(t);
                if recent[board].len() > config.thread_window {
                    recent[board].remove(0);
                }
                t
            } else {
                // Recency-biased choice: newest threads twice as likely.
                let k = window.len();
                let pick = if rng.gen::<f64>() < 0.5 {
                    rng.gen_range(k.saturating_sub(3)..k)
                } else {
                    rng.gen_range(0..k)
                };
                window[pick]
            };
            plans.push(PostPlan { author: user, thread, text_seed: rng.gen::<u64>() });
        }

        // 5. Render post text. Each post has its own RNG, so chunks can be
        //    rendered on any number of threads without changing a byte.
        let posts = render_posts(&plans, &personas, &thread_topic, n_threads);

        let mut post_index = vec![Vec::new(); config.n_users];
        for (i, p) in posts.iter().enumerate() {
            post_index[p.author].push(i);
        }
        Self {
            n_users: config.n_users,
            n_threads: thread_board.len(),
            posts,
            thread_board,
            thread_topic,
            post_index,
        }
    }

    /// Build a forum directly from posts (used by dataset splits).
    #[must_use]
    pub fn from_posts(n_users: usize, n_threads: usize, posts: Vec<Post>) -> Self {
        let mut post_index = vec![Vec::new(); n_users];
        for (i, p) in posts.iter().enumerate() {
            assert!(p.author < n_users && p.thread < n_threads, "post references out of range");
            post_index[p.author].push(i);
        }
        Self {
            n_users,
            n_threads,
            posts,
            thread_board: Vec::new(),
            thread_topic: Vec::new(),
            post_index,
        }
    }

    /// Indices into [`Forum::posts`] of user `u`'s posts.
    #[must_use]
    pub fn user_posts(&self, u: usize) -> &[usize] {
        &self.post_index[u]
    }

    /// Number of posts of user `u`.
    #[must_use]
    pub fn post_count(&self, u: usize) -> usize {
        self.post_index[u].len()
    }

    /// CDF of users by post count (Fig. 1): fraction of users with at most
    /// `k` posts, for each distinct `k`.
    #[must_use]
    pub fn posts_per_user_cdf(&self) -> Vec<(usize, f64)> {
        let mut counts: Vec<usize> = (0..self.n_users).map(|u| self.post_count(u)).collect();
        counts.sort_unstable();
        let n = counts.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let k = counts[i];
            let mut j = i;
            while j < n && counts[j] == k {
                j += 1;
            }
            out.push((k, j as f64 / n as f64));
            i = j;
        }
        out
    }

    /// Histogram of post lengths in words (Fig. 2): `(bucket_words,
    /// fraction_of_posts)` with bucket width `bucket`.
    #[must_use]
    pub fn post_length_histogram(&self, bucket: usize) -> Vec<(usize, f64)> {
        assert!(bucket > 0, "bucket width must be positive");
        let mut hist: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
        for p in &self.posts {
            let words = p.text.split_whitespace().count();
            *hist.entry(words / bucket * bucket).or_insert(0) += 1;
        }
        let total = self.posts.len().max(1) as f64;
        hist.into_iter().map(|(k, c)| (k, c as f64 / total)).collect()
    }

    /// Mean post length in words.
    #[must_use]
    pub fn mean_post_words(&self) -> f64 {
        if self.posts.is_empty() {
            return 0.0;
        }
        let total: usize = self.posts.iter().map(|p| p.text.split_whitespace().count()).sum();
        total as f64 / self.posts.len() as f64
    }

    /// Fraction of users with fewer than `k` posts (the paper reports 87.3%
    /// for k=5 on WebMD and 75.4% on HealthBoards).
    #[must_use]
    pub fn fraction_users_below(&self, k: usize) -> f64 {
        let below = (0..self.n_users).filter(|&u| self.post_count(u) < k).count();
        below as f64 / self.n_users as f64
    }
}

/// Render post text for every plan, splitting the work across up to
/// `n_threads` scoped threads. Each post is rendered from its own
/// `StdRng::seed_from_u64(plan.text_seed)`, so the result is independent
/// of the chunking.
fn render_posts(
    plans: &[PostPlan],
    personas: &[Persona],
    thread_topic: &[&'static str],
    n_threads: usize,
) -> Vec<Post> {
    let render = |plan: &PostPlan| -> Post {
        let mut rng = StdRng::seed_from_u64(plan.text_seed);
        let text = generate_post(&mut rng, &personas[plan.author], thread_topic[plan.thread]);
        Post { author: plan.author, thread: plan.thread, text }
    };
    let n_threads = n_threads.clamp(1, plans.len().max(1));
    if n_threads == 1 {
        return plans.iter().map(render).collect();
    }
    let chunk = plans.len().div_ceil(n_threads);
    let mut parts: Vec<Vec<Post>> = Vec::with_capacity(n_threads);
    std::thread::scope(|s| {
        let render = &render;
        let handles: Vec<_> = plans
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(render).collect::<Vec<Post>>()))
            .collect();
        for h in handles {
            parts.push(h.join().expect("post rendering panicked"));
        }
    });
    parts.concat()
}

/// Posts-per-user sampler: a two-component mixture matching the paper's
/// joint marginals (fraction of < 5-post users *and* the overall mean).
/// With probability `low_p` the user is low-activity (1-4 posts, pmf ∝
/// k^-1.5); otherwise the count comes from a truncated power-law tail on
/// `5..=max` with exponent `alpha`.
fn sample_post_count(rng: &mut StdRng, low_p: f64, alpha: f64, max: usize) -> usize {
    if rng.gen::<f64>() < low_p {
        // pmf ∝ k^-1.5 on {1, 2, 3, 4}.
        const W: [f64; 4] = [1.0, 0.353_553, 0.192_450, 0.125];
        let total: f64 = W.iter().sum();
        let mut r = rng.gen::<f64>() * total;
        for (i, w) in W.iter().enumerate() {
            r -= w;
            if r <= 0.0 {
                return i + 1;
            }
        }
        4
    } else {
        sample_power_law_range(rng, alpha, 5.0, max.max(5) as f64)
    }
}

/// Truncated power law on `[lo, hi]`: `P(x) ∝ x^-alpha`, via inverse-CDF
/// sampling on the continuous relaxation.
fn sample_power_law_range(rng: &mut StdRng, alpha: f64, lo: f64, hi: f64) -> usize {
    debug_assert!(alpha > 1.0, "alpha must exceed 1");
    let u: f64 = rng.gen::<f64>().max(1e-12);
    let one_m_a = 1.0 - alpha;
    let x = (lo.powf(one_m_a) + u * (hi.powf(one_m_a) - lo.powf(one_m_a))).powf(1.0 / one_m_a);
    (x as usize).clamp(lo as usize, hi as usize)
}

/// Fisher-Yates shuffle with the crate's RNG (keeps `rand` usage seedable).
fn shuffle<T>(rng: &mut StdRng, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_forum() -> Forum {
        Forum::generate(&ForumConfig::tiny(), 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Forum::generate(&ForumConfig::tiny(), 1);
        let b = Forum::generate(&ForumConfig::tiny(), 1);
        assert_eq!(a.posts.len(), b.posts.len());
        assert_eq!(a.posts[0].text, b.posts[0].text);
        let c = Forum::generate(&ForumConfig::tiny(), 2);
        assert!(a.posts.len() != c.posts.len() || a.posts[0].text != c.posts[0].text);
    }

    #[test]
    fn generation_is_thread_count_invariant() {
        let cfg = ForumConfig::tiny();
        let base = Forum::generate_with_threads(&cfg, 9, 1);
        for threads in [2, 3, 8] {
            let alt = Forum::generate_with_threads(&cfg, 9, threads);
            assert_eq!(base.n_threads, alt.n_threads);
            assert_eq!(base.posts.len(), alt.posts.len());
            for (a, b) in base.posts.iter().zip(&alt.posts) {
                assert_eq!(a.author, b.author);
                assert_eq!(a.thread, b.thread);
                assert_eq!(a.text, b.text);
            }
        }
    }

    #[test]
    fn every_user_has_at_least_one_post() {
        let f = small_forum();
        assert!((0..f.n_users).all(|u| f.post_count(u) >= 1));
    }

    #[test]
    fn post_index_consistent() {
        let f = small_forum();
        for u in 0..f.n_users {
            for &i in f.user_posts(u) {
                assert_eq!(f.posts[i].author, u);
            }
        }
        let total: usize = (0..f.n_users).map(|u| f.post_count(u)).sum();
        assert_eq!(total, f.posts.len());
    }

    #[test]
    fn threads_are_referenced_consistently() {
        let f = small_forum();
        assert!(f.posts.iter().all(|p| p.thread < f.n_threads));
        assert_eq!(f.thread_board.len(), f.n_threads);
        assert_eq!(f.thread_topic.len(), f.n_threads);
    }

    #[test]
    fn posts_per_user_is_heavy_tailed() {
        let f = Forum::generate(&ForumConfig::webmd_like(2000), 7);
        // The paper reports 87.3% of WebMD users with < 5 posts; the
        // simulator should land in a broad band around that.
        let frac = f.fraction_users_below(5);
        assert!(frac > 0.7 && frac < 0.95, "fraction below 5 = {frac}");
        // And somebody should have many posts.
        let max = (0..f.n_users).map(|u| f.post_count(u)).max().unwrap();
        assert!(max >= 20, "max posts = {max}");
    }

    #[test]
    fn healthboards_has_more_posts_per_user_than_webmd() {
        let w = Forum::generate(&ForumConfig::webmd_like(1500), 3);
        let h = Forum::generate(&ForumConfig::healthboards_like(1500), 3);
        let mean = |f: &Forum| f.posts.len() as f64 / f.n_users as f64;
        assert!(mean(&h) > mean(&w));
    }

    #[test]
    fn mean_post_length_near_target() {
        let f = Forum::generate(&ForumConfig::webmd_like(300), 11);
        let m = f.mean_post_words();
        assert!(m > 60.0 && m < 260.0, "mean post words = {m}");
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let f = small_forum();
        let cdf = f.posts_per_user_cdf();
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_fractions_sum_to_one() {
        let f = small_forum();
        let h = f.post_length_histogram(25);
        let sum: f64 = h.iter().map(|&(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn post_count_sampler_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let k = sample_post_count(&mut rng, 0.873, 1.75, 500);
            assert!((1..=500).contains(&k));
        }
    }

    #[test]
    fn post_count_marginals_match_paper() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 50_000;
        let xs: Vec<usize> =
            (0..n).map(|_| sample_post_count(&mut rng, 0.873, 1.75, 500)).collect();
        let mean = xs.iter().sum::<usize>() as f64 / n as f64;
        let below5 = xs.iter().filter(|&&k| k < 5).count() as f64 / n as f64;
        // Paper: WebMD mean 5.66 posts/user, 87.3% below 5 posts.
        assert!((mean - 5.66).abs() < 1.0, "mean = {mean}");
        assert!((below5 - 0.873).abs() < 0.02, "below5 = {below5}");
    }

    #[test]
    fn from_posts_roundtrip() {
        let f = small_forum();
        let g = Forum::from_posts(f.n_users, f.n_threads, f.posts.clone());
        assert_eq!(g.posts.len(), f.posts.len());
        assert_eq!(g.post_count(0), f.post_count(0));
    }
}
