//! Post-text generation from personas.
//!
//! Posts are built from simple clause templates filled with persona-biased
//! word choices. The goal is not fluent English but a faithful *feature
//! footprint*: consistent per-user function-word profiles, punctuation and
//! case habits, misspellings, digit usage, sentence/post lengths — the
//! exact channels Table I measures.

use rand::rngs::StdRng;
use rand::Rng;

use crate::persona::Persona;
use crate::vocab;

fn capitalize(w: &str) -> String {
    let mut cs = w.chars();
    match cs.next() {
        Some(f) => f.to_uppercase().collect::<String>() + cs.as_str(),
        None => String::new(),
    }
}

fn pick<'a>(rng: &mut StdRng, bank: &[&'a str]) -> &'a str {
    bank[rng.gen_range(0..bank.len())]
}

/// Emit one word, applying the persona's case habit.
fn styled_word(rng: &mut StdRng, p: &Persona, w: &str) -> String {
    if rng.gen::<f64>() < p.allcaps_p {
        w.to_uppercase()
    } else {
        w.to_string()
    }
}

/// Generate one clause's words into `out`.
fn clause(rng: &mut StdRng, p: &Persona, topic: &str, out: &mut Vec<String>) {
    // subject
    let subj = ["i", "my doctor", "it", "the pain", "this", "my husband", "she", "he"];
    let w = pick(rng, &subj);
    out.push(styled_word(rng, p, w));
    // adverb?
    if rng.gen::<f64>() < 0.4 {
        let w = pick(rng, vocab::ADVERBS);
        out.push(styled_word(rng, p, w));
    }
    // verb
    let w = pick(rng, vocab::VERBS);
    out.push(styled_word(rng, p, w));
    // function word from the persona profile
    out.push(p.pick_function_word(rng).to_string());
    // adjective?
    if rng.gen::<f64>() < 0.5 {
        let w = pick(rng, vocab::ADJECTIVES);
        out.push(styled_word(rng, p, w));
    }
    // object noun: the thread topic sometimes, else persona noun
    let noun = if rng.gen::<f64>() < 0.3 { topic } else { p.pick_noun(rng) };
    out.push(styled_word(rng, p, noun));
    // trailing prepositional phrase?
    if rng.gen::<f64>() < 0.45 {
        out.push(p.pick_function_word(rng).to_string());
        let w = p.pick_noun(rng);
        out.push(styled_word(rng, p, w));
    }
    // digits (dosage / lab value / count)
    if rng.gen::<f64>() < p.digit_p {
        let n = rng.gen_range(1..500u32);
        if let Some(c) = p.special_char {
            if rng.gen::<f64>() < 0.5 {
                out.push(format!("{c}{n}"));
                return;
            }
        }
        out.push(n.to_string());
    }
    // habitual misspelling
    if !p.misspellings.is_empty() && rng.gen::<f64>() < p.misspell_p {
        out.push(p.misspellings[rng.gen_range(0..p.misspellings.len())].to_string());
    }
}

/// Generate one sentence (words + final punctuation).
fn sentence(rng: &mut StdRng, p: &Persona, topic: &str) -> String {
    let mut words: Vec<String> = Vec::new();
    let target = (p.sentence_len * (0.6 + rng.gen::<f64>() * 0.8)).max(3.0) as usize;
    clause(rng, p, topic, &mut words);
    while words.len() < target {
        if rng.gen::<f64>() < p.comma_p {
            if let Some(last) = words.last_mut() {
                last.push(',');
            }
        } else {
            words.push(p.pick_function_word(rng).to_string());
        }
        clause(rng, p, topic, &mut words);
    }
    // Sentence case.
    if rng.gen::<f64>() >= p.lowercase_start_p {
        words[0] = capitalize(&words[0]);
    }
    let end = if rng.gen::<f64>() < p.exclaim_p {
        "!"
    } else if rng.gen::<f64>() < p.question_p {
        "?"
    } else {
        "."
    };
    words.join(" ") + end
}

/// Per-post "mood": real users drift post to post (tired, rushed, upset),
/// so each post perturbs the persona's surface habits. This is what makes
/// single-post attribution genuinely hard while leaving the per-user
/// aggregate (all posts pooled) stable — the regime Section V-A2's
/// insufficient-training-data analysis describes.
fn mood(rng: &mut StdRng, p: &Persona) -> Persona {
    let mut m = p.clone();
    let jig = |rng: &mut StdRng, v: f64, lo: f64, hi: f64| -> f64 {
        (v * (0.4 + rng.gen::<f64>() * 1.4) + (rng.gen::<f64>() - 0.5) * 0.06).clamp(lo, hi)
    };
    m.exclaim_p = jig(rng, m.exclaim_p, 0.0, 0.6);
    m.question_p = jig(rng, m.question_p, 0.0, 0.6);
    m.comma_p = jig(rng, m.comma_p, 0.0, 1.0);
    m.allcaps_p = jig(rng, m.allcaps_p, 0.0, 0.25);
    m.lowercase_start_p = jig(rng, m.lowercase_start_p, 0.0, 0.95);
    m.digit_p = jig(rng, m.digit_p, 0.0, 0.5);
    m.misspell_p = jig(rng, m.misspell_p, 0.0, 0.7);
    m.sentence_len = (m.sentence_len * (0.7 + rng.gen::<f64>() * 0.6)).clamp(4.0, 26.0);
    m
}

/// Generate one post by `persona` in a thread about `topic`, aiming at the
/// persona's post length (words).
#[must_use]
pub fn generate_post(rng: &mut StdRng, persona: &Persona, topic: &str) -> String {
    let persona = &mood(rng, persona);
    // Log-normal-ish length: multiply persona mean by exp(noise).
    let noise: f64 = rng.gen::<f64>() * 2.0 - 1.0;
    let target_words = (persona.post_len * (2.0f64).powf(noise)).max(6.0) as usize;
    let mut out = String::new();
    let mut n_words = 0usize;
    if rng.gen::<f64>() < persona.opener_p {
        let opener = pick(rng, vocab::OPENERS);
        out.push_str(&capitalize(opener));
        out.push_str(", ");
        n_words += opener.split(' ').count();
    }
    let mut sentences_in_para = 0usize;
    while n_words < target_words {
        let s = sentence(rng, persona, topic);
        n_words += s.split(' ').count();
        out.push_str(&s);
        sentences_in_para += 1;
        // Paragraph break every ~5 sentences.
        if sentences_in_para >= 5 && rng.gen::<f64>() < 0.4 {
            out.push_str("\n\n");
            sentences_in_para = 0;
        } else {
            out.push(' ');
        }
    }
    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn persona(seed: u64) -> Persona {
        Persona::sample(&mut StdRng::seed_from_u64(seed), 120.0, 1.0)
    }

    #[test]
    fn post_generation_is_deterministic() {
        let p = persona(7);
        let a = generate_post(&mut StdRng::seed_from_u64(1), &p, "migraine");
        let b = generate_post(&mut StdRng::seed_from_u64(1), &p, "migraine");
        assert_eq!(a, b);
    }

    #[test]
    fn posts_are_non_empty_and_end_with_punct() {
        let p = persona(8);
        for seed in 0..20 {
            let post = generate_post(&mut StdRng::seed_from_u64(seed), &p, "diabetes");
            assert!(!post.is_empty());
            let last = post.chars().last().unwrap();
            assert!(matches!(last, '.' | '!' | '?'), "post ends with {last:?}");
        }
    }

    #[test]
    fn length_tracks_persona_mean() {
        let mut short = persona(9);
        short.post_len = 20.0;
        let mut long = persona(9);
        long.post_len = 300.0;
        let avg = |p: &Persona| -> f64 {
            let total: usize = (0..30)
                .map(|s| {
                    generate_post(&mut StdRng::seed_from_u64(s), p, "asthma")
                        .split_whitespace()
                        .count()
                })
                .sum();
            total as f64 / 30.0
        };
        assert!(avg(&long) > 3.0 * avg(&short));
    }

    #[test]
    fn topic_word_appears() {
        let p = persona(10);
        let joined: String = (0..10)
            .map(|s| generate_post(&mut StdRng::seed_from_u64(s), &p, "zoster"))
            .collect::<Vec<_>>()
            .join(" ");
        assert!(joined.contains("zoster"));
    }

    #[test]
    fn different_personas_produce_different_text() {
        let a = generate_post(&mut StdRng::seed_from_u64(3), &persona(1), "rash");
        let b = generate_post(&mut StdRng::seed_from_u64(3), &persona(2), "rash");
        assert_ne!(a, b);
    }
}
