#![warn(missing_docs)]
//! # dehealth-corpus
//!
//! Synthetic health-forum generator — the substitute for the paper's
//! crawled WebMD / HealthBoards corpora (private crawl data that cannot be
//! redistributed; see DESIGN.md §2 for the substitution argument).
//!
//! The simulator produces exactly the two signal channels the De-Health
//! attack consumes:
//!
//! 1. **Structure** — who posts in which thread. A recency-biased
//!    preferential thread process over per-user preferred boards yields the
//!    sparse, weakly connected correlation graphs the paper reports
//!    (Appendix B).
//! 2. **Style** — per-user stylometric [`persona::Persona`]s drive the
//!    [`generator`], so the Table-I features carry a real per-user signal
//!    whose strength is configurable.
//!
//! [`dataset::ForumConfig::webmd_like`] and
//! [`dataset::ForumConfig::healthboards_like`] reproduce the published
//! marginals (posts/user CDF, post length, posts-per-user means) at any
//! scale; [`split`] builds the closed-world and open-world DA instances of
//! Section V.

pub mod dataset;
pub mod generator;
pub mod persona;
pub mod snapshot;
pub mod split;
pub mod vocab;

pub use dataset::{Forum, ForumConfig, Post};
pub use persona::Persona;
pub use snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
pub use split::{closed_world_split, open_world_split, Oracle, Split, SplitConfig};
