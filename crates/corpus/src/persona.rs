//! Per-user stylometric personas.
//!
//! A persona is the hidden "writing style" of one simulated user: a bundle
//! of lexical, syntactic and idiosyncratic habits sampled once per user
//! from population hyper-priors. The post generator consults only the
//! persona (plus a topic), so two posts by the same user share style while
//! posts by different users differ — which is precisely the signal the
//! paper's stylometric features detect.
//!
//! `style_strength ∈ [0, 1]` scales persona variance: at `0` every user
//! writes identically (no stylometric signal, only graph structure); at
//! `1` personas are maximally idiosyncratic.

use rand::rngs::StdRng;
use rand::Rng;

use dehealth_text::lexicon::{FUNCTION_WORDS, MISSPELLINGS};

use crate::vocab;

/// The writing-style parameters of one simulated user.
#[derive(Debug, Clone)]
pub struct Persona {
    /// Preferred function words (indices into `FUNCTION_WORDS`) with
    /// weights; the generator samples connective words from this profile.
    pub function_prefs: Vec<(usize, f64)>,
    /// Habitual "pet" content words the user over-uses.
    pub pet_words: Vec<&'static str>,
    /// Habitual misspellings (entries of `MISSPELLINGS`, emitted verbatim).
    pub misspellings: Vec<&'static str>,
    /// Per-bank preference weights over `vocab::NOUN_BANKS`.
    pub bank_prefs: Vec<f64>,
    /// Probability a sentence ends with `!`.
    pub exclaim_p: f64,
    /// Probability a sentence ends with `?`.
    pub question_p: f64,
    /// Probability of inserting a comma between clauses.
    pub comma_p: f64,
    /// Probability a word is emitted in ALL CAPS for emphasis.
    pub allcaps_p: f64,
    /// Probability a sentence starts lowercase (sloppy typing habit).
    pub lowercase_start_p: f64,
    /// Probability of inserting a number token in a clause.
    pub digit_p: f64,
    /// Probability of emitting one of the user's habitual misspellings in
    /// a sentence.
    pub misspell_p: f64,
    /// Mean words per sentence.
    pub sentence_len: f64,
    /// Mean words per post (per-user offset around the forum mean).
    pub post_len: f64,
    /// Favourite special character (index into the registry's 21-character
    /// set), used in dosage/price asides, or `None`.
    pub special_char: Option<char>,
    /// Probability of opening a post with a greeting from
    /// [`vocab::OPENERS`].
    pub opener_p: f64,
}

const SPECIALS: &[char] = &['$', '%', '/', '*', '+', '~', '#', '&'];

fn jitter(rng: &mut StdRng, base: f64, spread: f64, strength: f64) -> f64 {
    base + (rng.gen::<f64>() * 2.0 - 1.0) * spread * strength
}

impl Persona {
    /// Sample a persona from the population hyper-priors.
    ///
    /// `mean_post_words` is the forum-wide target post length;
    /// `style_strength` scales persona variance.
    #[must_use]
    pub fn sample(rng: &mut StdRng, mean_post_words: f64, style_strength: f64) -> Self {
        let s = style_strength.clamp(0.0, 1.0);
        // Function-word profile: 25 distinct indices with random weights.
        // The indices are drawn from a pool whose size scales with the
        // style strength: at s = 0 every user shares the same 30 common
        // words (no subset-selection signal), at s = 1 the whole lexicon
        // is available and the chosen subset itself identifies the user.
        let pool = 30 + (((FUNCTION_WORDS.len() - 30) as f64) * s) as usize;
        let mut function_prefs = Vec::with_capacity(25);
        let mut used = std::collections::HashSet::new();
        while function_prefs.len() < 25 {
            let i = rng.gen_range(0..pool);
            if used.insert(i) {
                function_prefs.push((i, 0.2 + rng.gen::<f64>() * s));
            }
        }
        // Pet words: likewise drawn from a strength-scaled prefix of each
        // bank so weak styles over-use the same common nouns.
        let n_pets = 3 + (rng.gen::<f64>() * 8.0 * s) as usize;
        let pet_words = (0..n_pets)
            .map(|_| {
                let bank = vocab::NOUN_BANKS[rng.gen_range(0..vocab::NOUN_BANKS.len())];
                let limit = ((bank.len() as f64) * (0.2 + 0.8 * s)).ceil() as usize;
                bank[rng.gen_range(0..limit.max(1))]
            })
            .collect();
        let n_miss = (rng.gen::<f64>() * 5.0 * s) as usize;
        let misspellings =
            (0..n_miss).map(|_| MISSPELLINGS[rng.gen_range(0..MISSPELLINGS.len())].0).collect();
        let bank_prefs = (0..vocab::NOUN_BANKS.len()).map(|_| 0.3 + rng.gen::<f64>() * s).collect();
        Self {
            function_prefs,
            pet_words,
            misspellings,
            bank_prefs,
            exclaim_p: jitter(rng, 0.08, 0.08, s).clamp(0.0, 0.5),
            question_p: jitter(rng, 0.10, 0.08, s).clamp(0.0, 0.5),
            comma_p: jitter(rng, 0.35, 0.3, s).clamp(0.0, 1.0),
            allcaps_p: jitter(rng, 0.01, 0.03, s).clamp(0.0, 0.2),
            lowercase_start_p: jitter(rng, 0.15, 0.3, s).clamp(0.0, 0.9),
            digit_p: jitter(rng, 0.06, 0.06, s).clamp(0.0, 0.4),
            misspell_p: jitter(rng, 0.08, 0.1, s).clamp(0.0, 0.6),
            sentence_len: jitter(rng, 12.0, 6.0, s).clamp(5.0, 24.0),
            post_len: (mean_post_words * (0.5 + rng.gen::<f64>() * 1.2 * s.max(0.2))).max(10.0),
            special_char: if rng.gen::<f64>() < 0.4 + 0.4 * s {
                Some(SPECIALS[rng.gen_range(0..SPECIALS.len())])
            } else {
                None
            },
            opener_p: jitter(rng, 0.3, 0.25, s).clamp(0.0, 0.9),
        }
    }

    /// Sample a preferred function word.
    #[must_use]
    pub fn pick_function_word(&self, rng: &mut StdRng) -> &'static str {
        let total: f64 = self.function_prefs.iter().map(|&(_, w)| w).sum();
        let mut x = rng.gen::<f64>() * total;
        for &(i, w) in &self.function_prefs {
            x -= w;
            if x <= 0.0 {
                return FUNCTION_WORDS[i];
            }
        }
        FUNCTION_WORDS[self.function_prefs.last().expect("non-empty prefs").0]
    }

    /// Sample a content noun according to bank preferences, occasionally a
    /// pet word.
    #[must_use]
    pub fn pick_noun(&self, rng: &mut StdRng) -> &'static str {
        if !self.pet_words.is_empty() && rng.gen::<f64>() < 0.25 {
            return self.pet_words[rng.gen_range(0..self.pet_words.len())];
        }
        let total: f64 = self.bank_prefs.iter().sum();
        let mut x = rng.gen::<f64>() * total;
        for (bank, &w) in vocab::NOUN_BANKS.iter().zip(&self.bank_prefs) {
            x -= w;
            if x <= 0.0 {
                return bank[rng.gen_range(0..bank.len())];
            }
        }
        vocab::EVERYDAY[rng.gen_range(0..vocab::EVERYDAY.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = Persona::sample(&mut rng(1), 120.0, 1.0);
        let b = Persona::sample(&mut rng(1), 120.0, 1.0);
        assert_eq!(a.sentence_len, b.sentence_len);
        assert_eq!(a.pet_words, b.pet_words);
        assert_eq!(a.misspellings, b.misspellings);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Persona::sample(&mut rng(1), 120.0, 1.0);
        let b = Persona::sample(&mut rng(2), 120.0, 1.0);
        assert!(a.pet_words != b.pet_words || a.sentence_len != b.sentence_len);
    }

    #[test]
    fn probabilities_in_range() {
        for seed in 0..50 {
            let p = Persona::sample(&mut rng(seed), 120.0, 1.0);
            for v in [
                p.exclaim_p,
                p.question_p,
                p.comma_p,
                p.allcaps_p,
                p.lowercase_start_p,
                p.digit_p,
                p.misspell_p,
                p.opener_p,
            ] {
                assert!((0.0..=1.0).contains(&v));
            }
            assert!(p.sentence_len >= 5.0 && p.sentence_len <= 24.0);
            assert!(p.post_len >= 10.0);
        }
    }

    #[test]
    fn zero_strength_minimizes_idiosyncrasy() {
        let p = Persona::sample(&mut rng(3), 120.0, 0.0);
        assert!(p.misspellings.is_empty());
        // Probabilities collapse to population means.
        assert!((p.exclaim_p - 0.08).abs() < 1e-9);
        assert!((p.sentence_len - 12.0).abs() < 1e-9);
    }

    #[test]
    fn word_pickers_return_valid_words() {
        let p = Persona::sample(&mut rng(4), 120.0, 1.0);
        let mut r = rng(5);
        for _ in 0..100 {
            assert!(!p.pick_function_word(&mut r).is_empty());
            assert!(!p.pick_noun(&mut r).is_empty());
        }
    }
}
