//! The versioned binary snapshot container (`.snap` files).
//!
//! A snapshot persists a fully prepared auxiliary corpus — posts,
//! per-post features, and the derived attack structures — so a serving
//! process reloads in milliseconds instead of re-extracting stylometric
//! features from every post. The container is hand-rolled (the build
//! environment has no crates.io access, hence no serde): little-endian
//! throughout, sectioned, and checksummed.
//!
//! ## File layout (byte-by-byte)
//!
//! Both container versions share the 16-byte header:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     8  magic  b"DEHSNAP\n"
//!      8     2  format version, u16 LE (1 or 2)
//!     10     2  v1: reserved (must be 0) · v2: section alignment (must be 8)
//!     12     4  section count, u32 LE
//!     16     …  sections, back to back
//! ```
//!
//! A **version-1** section (the copying-decode legacy format):
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!     +0     4  section tag (4 ASCII bytes, e.g. b"FORM")
//!     +4     8  payload length `n`, u64 LE
//!    +12     n  payload
//!  +12+n     8  FNV-1a 64-bit checksum of the payload, u64 LE
//! ```
//!
//! A **version-2** section carries an in-header alignment guarantee:
//! every payload starts at a file offset that is a multiple of 8, so
//! 8-byte-aligned offsets *inside* a payload are 8-byte-aligned in the
//! file (and — because loaders back snapshots with page-aligned mappings
//! or `dehealth-mapped`'s `AlignedBytes`-style buffers — in memory,
//! which is what lets `u64`/`f64` arenas cast in place instead of being
//! copied out element by element):
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!     +0     4  section tag (4 ASCII bytes)
//!     +4     4  padding (must be 0)
//!     +8     8  payload length `n`, u64 LE
//!    +16     n  payload                       (+16 ≡ 0 mod 8 in the file)
//!  +16+n     p  zero padding, p = (8 − n mod 8) mod 8
//! +16+n+p    8  FNV-1a 64-bit checksum of the payload, u64 LE
//! ```
//!
//! Payloads are themselves little-endian primitive streams written by
//! [`SectionBuf`] and read back by [`SectionReader`]: `u8`, `u32`, `u64`,
//! `f64` (IEEE-754 bit pattern, exact round-trip), length-prefixed
//! byte strings (`u32` length + bytes), and — in v2 payload schemas —
//! 8-byte-aligned scalar arrays ([`SectionBuf::align8`] /
//! [`SectionReader::align8`], zero padding validated on read). Higher
//! layers define the payload schema per tag — this crate ships the
//! [`Forum`] codec ([`encode_forum`] / [`decode_forum`]); `dehealth-core`
//! adds codecs for the derived structures (feature vectors, the attribute
//! index, the refined-DA arenas), and `dehealth-service` assembles them
//! into whole corpus snapshots. ARCHITECTURE.md documents the full
//! section set of both versions.
//!
//! ## Robustness contract
//!
//! Decoding never panics on malformed input: truncation, a bad magic,
//! an unsupported version, a checksum mismatch, nonzero padding, a
//! misaligned arena, or an inconsistent payload all surface as a typed
//! [`SnapshotError`] (`tests/snapshot_roundtrip.rs` pins this).
//! Round-trips are bit-exact: floats are stored as raw IEEE-754 bits, so
//! re-encoding a decoded snapshot reproduces the original bytes.
//!
//! Checksum verification can be skipped per parse
//! ([`ParseOptions::trusting`]) — the zero-copy load path does this so
//! reload cost is not dominated by an FNV sweep over arenas it never
//! copies; every structural invariant is still re-validated by the
//! decoders themselves.

use std::fmt;
use std::path::Path;

use crate::dataset::{Forum, Post};

/// First eight bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"DEHSNAP\n";

/// The legacy container format: unaligned sections, copying decode only.
pub const V1: u16 = 1;

/// The aligned container format: sections padded to 8 bytes so scalar
/// arenas can be cast in place (zero-copy loading).
pub const V2: u16 = 2;

/// The [`V2`] byte layout plus *optional* sections — readers that
/// understand a v3 section set read it exactly like v2; files whose
/// optional sections are absent are byte-compatible with v2 files.
pub const V3: u16 = 3;

/// Current (default) container format version.
pub const VERSION: u16 = V2;

/// The v2 alignment guarantee: every section payload starts at a file
/// offset that is a multiple of this.
pub const ALIGN: usize = 8;

/// A four-byte section identifier (ASCII by convention, e.g. `b"FORM"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SectionTag(pub [u8; 4]);

impl fmt::Display for SectionTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.0 {
            if b.is_ascii_graphic() {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        Ok(())
    }
}

/// Decode failure. Every malformed input maps to one of these variants —
/// snapshot loading never panics.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The header's version is not [`VERSION`].
    UnsupportedVersion(u16),
    /// The byte stream ended before the declared structure did.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A section's stored checksum does not match its payload.
    ChecksumMismatch {
        /// The corrupted section.
        tag: SectionTag,
    },
    /// A required section is absent.
    MissingSection(SectionTag),
    /// A payload decoded but violates a schema invariant.
    Malformed {
        /// Which invariant failed.
        context: &'static str,
    },
    /// An arena that the v2 format guarantees to be 8-byte aligned is not
    /// aligned in memory — the zero-copy cast was refused rather than
    /// performed unaligned.
    Misaligned {
        /// Which arena failed the alignment check.
        context: &'static str,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {V1}, {V2} or {V3})")
            }
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::ChecksumMismatch { tag } => {
                write!(f, "checksum mismatch in section {tag}")
            }
            SnapshotError::MissingSection(tag) => write!(f, "missing section {tag}"),
            SnapshotError::Malformed { context } => write!(f, "malformed snapshot: {context}"),
            SnapshotError::Misaligned { context } => {
                write!(f, "misaligned snapshot arena: {context}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash — the per-section checksum.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The destination of one section's payload, abstracted over *where* the
/// bytes go: an in-memory [`SectionBuf`] (the materializing path) or a
/// file-backed [`SectionStream`] (the streaming path, which never holds
/// the payload in memory). Section codecs written against this trait —
/// [`encode_forum`] and the `encode_v2` methods in `dehealth-core` — emit
/// the identical byte sequence through either implementation, which is
/// what makes `save_streaming` bit-identical to `save`
/// (pinned by `streamed_snapshot_is_bit_identical`).
///
/// Only [`Self::put_raw`] and [`Self::len`] are required; every higher
/// primitive is a provided method defined in terms of them, so the two
/// sinks cannot drift apart encoding-wise.
pub trait SectionWrite {
    /// Append raw bytes to the payload.
    fn put_raw(&mut self, bytes: &[u8]);

    /// Payload length so far — the alignment cursor for [`Self::align8`].
    fn len(&self) -> usize;

    /// `true` if nothing has been written.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_raw(&[v]);
    }

    /// Append a `u32`, little-endian.
    fn put_u32(&mut self, v: u32) {
        self.put_raw(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    fn put_u64(&mut self, v: u64) {
        self.put_raw(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64`.
    ///
    /// # Panics
    /// Panics if `v` exceeds `u64::MAX` (impossible on supported targets).
    fn put_len(&mut self, v: usize) {
        self.put_u64(u64::try_from(v).expect("length overflows u64"));
    }

    /// Append an `f64` as its raw IEEE-754 bit pattern (exact round-trip,
    /// including `-0.0` and NaN payloads).
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed byte string (`u32` length + bytes).
    ///
    /// # Panics
    /// Panics if `s` is longer than `u32::MAX` bytes.
    fn put_bytes(&mut self, s: &[u8]) {
        self.put_u32(u32::try_from(s.len()).expect("byte string longer than u32::MAX"));
        self.put_raw(s);
    }

    /// Pad with zero bytes until the payload offset is a multiple of
    /// [`ALIGN`] — the v2 idiom before emitting a scalar arena.
    fn align8(&mut self) {
        while !self.len().is_multiple_of(ALIGN) {
            self.put_u8(0);
        }
    }

    /// Append a `u8` arena: [`Self::align8`], then the bytes verbatim.
    /// (The alignment is for layout uniformity with the scalar arenas —
    /// a byte arena casts at any offset.)
    fn put_u8_arena(&mut self, values: &[u8]) {
        self.align8();
        self.put_raw(values);
    }

    /// Append a `u32` arena: [`Self::align8`], then each value
    /// little-endian, back to back.
    fn put_u32_arena(&mut self, values: &[u32]) {
        self.align8();
        for &v in values {
            self.put_u32(v);
        }
    }

    /// Append a `u64` arena: [`Self::align8`], then each value
    /// little-endian, back to back.
    fn put_u64_arena(&mut self, values: &[u64]) {
        self.align8();
        for &v in values {
            self.put_u64(v);
        }
    }

    /// Append an `f64` arena: [`Self::align8`], then each value as its
    /// raw IEEE-754 bit pattern, back to back.
    fn put_f64_arena(&mut self, values: &[f64]) {
        self.align8();
        for &v in values {
            self.put_f64(v);
        }
    }
}

impl SectionWrite for SectionBuf {
    fn put_raw(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    fn len(&self) -> usize {
        self.bytes.len()
    }
}

/// A growable little-endian payload buffer for one section.
#[derive(Debug, Default)]
pub struct SectionBuf {
    bytes: Vec<u8>,
}

impl SectionBuf {
    /// Empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64`.
    ///
    /// # Panics
    /// Panics if `v` exceeds `u64::MAX` (impossible on supported targets).
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(u64::try_from(v).expect("length overflows u64"));
    }

    /// Append an `f64` as its raw IEEE-754 bit pattern (exact round-trip,
    /// including `-0.0` and NaN payloads).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed byte string (`u32` length + bytes).
    ///
    /// # Panics
    /// Panics if `s` is longer than `u32::MAX` bytes.
    pub fn put_bytes(&mut self, s: &[u8]) {
        self.put_u32(u32::try_from(s.len()).expect("byte string longer than u32::MAX"));
        self.bytes.extend_from_slice(s);
    }

    /// Pad with zero bytes until the payload offset is a multiple of
    /// [`ALIGN`] — the v2 idiom before emitting a scalar arena, mirrored
    /// by [`SectionReader::align8`] on the way back in. Because v2
    /// payloads start 8-aligned in the file, this makes the arena's file
    /// offset (and hence, under an aligned backing, its address) 8-byte
    /// aligned.
    pub fn align8(&mut self) {
        while !self.bytes.len().is_multiple_of(ALIGN) {
            self.bytes.push(0);
        }
    }

    /// Append a `u32` arena: [`Self::align8`], then each value
    /// little-endian, back to back.
    pub fn put_u32_arena(&mut self, values: &[u32]) {
        self.align8();
        for &v in values {
            self.put_u32(v);
        }
    }

    /// Append a `u64` arena: [`Self::align8`], then each value
    /// little-endian, back to back.
    pub fn put_u64_arena(&mut self, values: &[u64]) {
        self.align8();
        for &v in values {
            self.put_u64(v);
        }
    }

    /// Append an `f64` arena: [`Self::align8`], then each value as its
    /// raw IEEE-754 bit pattern, back to back.
    pub fn put_f64_arena(&mut self, values: &[f64]) {
        self.align8();
        for &v in values {
            self.put_f64(v);
        }
    }

    /// Payload length so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Take the encoded payload out of the buffer — for embedding the
    /// codec's byte layout somewhere other than a snapshot container
    /// (the service's binary wire frames reuse [`encode_forum`] this
    /// way, with their own framing and checksum around it).
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Serializes one snapshot: header plus a sequence of checksummed
/// sections.
///
/// ```
/// use dehealth_corpus::snapshot::{SectionTag, SnapshotReader, SnapshotWriter};
///
/// let mut w = SnapshotWriter::new();
/// let s = w.section(SectionTag(*b"DEMO"));
/// s.put_u32(7);
/// let bytes = w.finish();
/// let r = SnapshotReader::parse(&bytes).unwrap();
/// let mut s = r.section(SectionTag(*b"DEMO")).unwrap();
/// assert_eq!(s.take_u32().unwrap(), 7);
/// ```
#[derive(Debug)]
pub struct SnapshotWriter {
    version: u16,
    sections: Vec<(SectionTag, SectionBuf)>,
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        Self { version: VERSION, sections: Vec::new() }
    }
}

impl SnapshotWriter {
    /// Writer with no sections yet, emitting the current ([`V2`],
    /// aligned) container format.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer emitting a specific container version — [`V1`] for
    /// compatibility fixtures, [`V3`] when optional sections ride along,
    /// [`V2`] otherwise.
    ///
    /// # Panics
    /// Panics on an unknown version.
    #[must_use]
    pub fn with_version(version: u16) -> Self {
        assert!(
            version == V1 || version == V2 || version == V3,
            "unknown snapshot version {version}"
        );
        Self { version, sections: Vec::new() }
    }

    /// The container version this writer emits.
    #[must_use]
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Start (or continue) the section `tag`, returning its payload
    /// buffer. Sections are written to the file in first-`section`-call
    /// order.
    pub fn section(&mut self, tag: SectionTag) -> &mut SectionBuf {
        if let Some(i) = self.sections.iter().position(|(t, _)| *t == tag) {
            return &mut self.sections[i].1;
        }
        self.sections.push((tag, SectionBuf::new()));
        &mut self.sections.last_mut().expect("just pushed").1
    }

    /// Assemble the final byte stream (header, then each section with its
    /// length prefix, alignment padding for [`V2`], and trailing
    /// checksum).
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        let per_section_overhead = if self.version == V1 { 20 } else { 24 + ALIGN };
        let payload: usize =
            self.sections.iter().map(|(_, b)| b.bytes.len() + per_section_overhead).sum();
        let mut out = Vec::with_capacity(16 + payload);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        // v1: reserved. v2: the in-header alignment guarantee.
        let align_field = if self.version == V1 { 0u16 } else { ALIGN as u16 };
        out.extend_from_slice(&align_field.to_le_bytes());
        out.extend_from_slice(
            &u32::try_from(self.sections.len()).expect("too many sections").to_le_bytes(),
        );
        for (tag, buf) in &self.sections {
            out.extend_from_slice(&tag.0);
            if self.version != V1 {
                out.extend_from_slice(&[0u8; 4]); // header padding
            }
            out.extend_from_slice(&(buf.bytes.len() as u64).to_le_bytes());
            debug_assert!(self.version == V1 || out.len() % ALIGN == 0, "payload misaligned");
            out.extend_from_slice(&buf.bytes);
            if self.version != V1 {
                while out.len() % ALIGN != 0 {
                    out.push(0); // payload padding
                }
            }
            out.extend_from_slice(&fnv1a(&buf.bytes).to_le_bytes());
        }
        out
    }

    /// [`Self::finish`] and write the bytes to `path` atomically (temp
    /// sibling + `rename`), so a reader — or a live mapping — of an
    /// existing file at `path` never observes a truncated or partially
    /// written snapshot.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_to(self, path: &Path) -> Result<(), SnapshotError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.finish())?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }
}

/// Streams a [`V2`] snapshot straight to a file, one section at a time,
/// without ever materializing a section payload in memory.
///
/// [`SnapshotWriter`] buffers every payload and assembles the final byte
/// stream in one allocation — fine at toy scale, but at 100k auxiliary
/// users the forum + feature sections alone are hundreds of megabytes,
/// and the materializing path briefly holds *two* copies (the buffers and
/// the assembled stream) on top of the corpus itself. This writer instead
/// appends each section's bytes to the file as the codec produces them,
/// computing the FNV-1a checksum incrementally and seeking back to patch
/// the section's length field once the payload size is known (and the
/// header's section count at [`Self::finish`]).
///
/// The output is bit-identical to [`SnapshotWriter::finish`] for the same
/// sections in the same order — both sinks share the [`SectionWrite`]
/// encoding primitives. Like [`SnapshotWriter::write_to`], the bytes land
/// in a temporary sibling first and are `rename`d over the target on
/// [`Self::finish`], so a reader or live mapping of an existing snapshot
/// never observes a partial write; an abandoned (dropped) streamer
/// removes its temporary file.
#[derive(Debug)]
pub struct SnapshotStreamer {
    out: std::io::BufWriter<std::fs::File>,
    tmp: std::path::PathBuf,
    path: std::path::PathBuf,
    /// Total bytes written so far (tracked, not queried — seeking a
    /// `BufWriter` flushes it, so the hot path never asks the file).
    offset: u64,
    n_sections: u32,
    committed: bool,
}

impl SnapshotStreamer {
    /// Open the temporary sibling of `path` and write the container
    /// header (with a zero section count, patched by [`Self::finish`]).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn create(path: &Path) -> Result<Self, SnapshotError> {
        use std::io::Write;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        let file = std::fs::File::create(&tmp)?;
        let mut out = std::io::BufWriter::new(file);
        let header = || -> std::io::Result<()> {
            out.write_all(&MAGIC)?;
            out.write_all(&VERSION.to_le_bytes())?;
            out.write_all(&(ALIGN as u16).to_le_bytes())?;
            out.write_all(&0u32.to_le_bytes()) // section count placeholder
        }();
        if let Err(e) = header {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(Self { out, tmp, path: path.to_path_buf(), offset: 16, n_sections: 0, committed: false })
    }

    /// Write one section: the 16-byte v2 section header, then whatever
    /// payload `fill` emits into the provided [`SectionStream`], then the
    /// alignment padding and checksum. Unlike [`SnapshotWriter::section`],
    /// sections are final once written — a tag cannot be continued later.
    ///
    /// # Errors
    /// Propagates filesystem errors (including any deferred from inside
    /// `fill` — see [`SectionStream`]).
    pub fn section<F>(&mut self, tag: SectionTag, fill: F) -> Result<(), SnapshotError>
    where
        F: FnOnce(&mut SectionStream<'_>),
    {
        use std::io::{Seek, SeekFrom, Write};
        debug_assert!(self.offset.is_multiple_of(ALIGN as u64), "section header misaligned");
        let len_at = self.offset + 8;
        self.out.write_all(&tag.0)?;
        self.out.write_all(&[0u8; 4])?; // header padding
        self.out.write_all(&0u64.to_le_bytes())?; // length placeholder
        let mut stream = SectionStream { out: &mut self.out, len: 0, hash: FNV_OFFSET, err: None };
        fill(&mut stream);
        let (len, hash, err) = (stream.len, stream.hash, stream.err.take());
        if let Some(e) = err {
            return Err(e.into());
        }
        let pad = len.wrapping_neg() % ALIGN;
        self.out.write_all(&[0u8; ALIGN][..pad])?;
        self.out.write_all(&hash.to_le_bytes())?;
        let end = len_at + 8 + (len + pad) as u64 + 8;
        self.out.seek(SeekFrom::Start(len_at))?;
        self.out.write_all(&(len as u64).to_le_bytes())?;
        self.out.seek(SeekFrom::Start(end))?;
        self.offset = end;
        self.n_sections += 1;
        Ok(())
    }

    /// Patch the header's section count, flush, and atomically `rename`
    /// the temporary file over the target path.
    ///
    /// # Errors
    /// Propagates filesystem errors (the temporary file is removed on
    /// failure).
    pub fn finish(mut self) -> Result<(), SnapshotError> {
        use std::io::{Seek, SeekFrom, Write};
        let commit = |s: &mut Self| -> std::io::Result<()> {
            s.out.seek(SeekFrom::Start(12))?;
            s.out.write_all(&s.n_sections.to_le_bytes())?;
            s.out.flush()
        };
        commit(&mut self)?; // on Err: Drop removes the temp file
        std::fs::rename(&self.tmp, &self.path)?;
        self.committed = true;
        Ok(())
    }
}

impl Drop for SnapshotStreamer {
    fn drop(&mut self) {
        if !self.committed {
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// The [`SectionWrite`] sink handed to [`SnapshotStreamer::section`]'s
/// closure: appends straight to the snapshot file while folding every
/// byte into the running FNV-1a checksum.
///
/// [`SectionWrite`] methods are infallible by design (codecs stay free of
/// error plumbing), so an I/O failure mid-payload is *deferred*: the
/// first error is stored, subsequent writes become no-ops, and
/// [`SnapshotStreamer::section`] surfaces the error after the closure
/// returns.
#[derive(Debug)]
pub struct SectionStream<'a> {
    out: &'a mut std::io::BufWriter<std::fs::File>,
    len: usize,
    hash: u64,
    err: Option<std::io::Error>,
}

impl SectionWrite for SectionStream<'_> {
    fn put_raw(&mut self, bytes: &[u8]) {
        use std::io::Write;
        if self.err.is_some() {
            return;
        }
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        match self.out.write_all(bytes) {
            Ok(()) => self.len += bytes.len(),
            Err(e) => self.err = Some(e),
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Parse-time knobs for [`SnapshotReader::parse_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseOptions {
    /// Verify every section's FNV-1a checksum (the default). The
    /// zero-copy load path turns this off: an FNV sweep over arenas it
    /// never copies would re-linearize a load whose whole point is to
    /// not touch them, and every structural invariant is still
    /// re-validated by the section decoders.
    pub verify_checksums: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        Self { verify_checksums: true }
    }
}

impl ParseOptions {
    /// Options that skip checksum verification (structure is still fully
    /// validated).
    #[must_use]
    pub fn trusting() -> Self {
        Self { verify_checksums: false }
    }
}

/// A parsed snapshot: header validated, every section located, padding
/// validated, and (by default) checksum-verified up front.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    version: u16,
    sections: Vec<(SectionTag, &'a [u8])>,
}

impl<'a> SnapshotReader<'a> {
    /// Validate the header and index every section of `bytes`, verifying
    /// all checksums.
    ///
    /// # Errors
    /// [`SnapshotError::BadMagic`], [`SnapshotError::UnsupportedVersion`],
    /// [`SnapshotError::Truncated`], [`SnapshotError::Malformed`] (bad
    /// padding) or [`SnapshotError::ChecksumMismatch`] on malformed
    /// input; never panics.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        Self::parse_with(bytes, &ParseOptions::default())
    }

    /// [`Self::parse`] with explicit [`ParseOptions`].
    ///
    /// # Errors
    /// Like [`Self::parse`] (checksum mismatches only surface when
    /// `options.verify_checksums` is set).
    pub fn parse_with(bytes: &'a [u8], options: &ParseOptions) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            // A short file cannot contain the magic either way.
            return Err(if bytes.len() < MAGIC.len() && MAGIC.starts_with(bytes) {
                SnapshotError::Truncated { context: "header magic" }
            } else {
                SnapshotError::BadMagic
            });
        }
        if bytes.len() < 16 {
            return Err(SnapshotError::Truncated { context: "header" });
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != V1 && version != V2 && version != V3 {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let align_field = u16::from_le_bytes([bytes[10], bytes[11]]);
        let expected_align = if version == V1 { 0 } else { ALIGN as u16 };
        if align_field != expected_align {
            return Err(SnapshotError::Malformed { context: "unsupported section alignment" });
        }
        let header_len = if version == V1 { 12 } else { 16 };
        let n_sections = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
        let mut sections = Vec::with_capacity(n_sections.min(64));
        let mut at = 16usize;
        for _ in 0..n_sections {
            if bytes.len() < at + header_len {
                return Err(SnapshotError::Truncated { context: "section header" });
            }
            let tag = SectionTag([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
            if version != V1 && bytes[at + 4..at + 8] != [0u8; 4] {
                return Err(SnapshotError::Malformed { context: "nonzero section header padding" });
            }
            let len_at = at + header_len - 8;
            let len_bytes: [u8; 8] =
                bytes[len_at..len_at + 8].try_into().expect("slice is 8 bytes long");
            let len = u64::from_le_bytes(len_bytes);
            let Ok(len) = usize::try_from(len) else {
                return Err(SnapshotError::Truncated { context: "section payload" });
            };
            at += header_len;
            // Checked arithmetic throughout: a corrupt length near
            // usize::MAX must fail the bounds test, not wrap it into a
            // panic.
            let payload_end = at
                .checked_add(len)
                .ok_or(SnapshotError::Truncated { context: "section payload" })?;
            let pad = if version == V1 { 0 } else { len.wrapping_neg() % ALIGN };
            let padded_end = payload_end
                .checked_add(pad)
                .ok_or(SnapshotError::Truncated { context: "section payload" })?;
            let end = padded_end
                .checked_add(8)
                .ok_or(SnapshotError::Truncated { context: "section payload" })?;
            if bytes.len() < end {
                return Err(SnapshotError::Truncated { context: "section payload" });
            }
            debug_assert!(version == V1 || at.is_multiple_of(ALIGN), "v2 payload misaligned");
            let payload = &bytes[at..payload_end];
            if bytes[payload_end..padded_end].iter().any(|&b| b != 0) {
                return Err(SnapshotError::Malformed { context: "nonzero section padding" });
            }
            if options.verify_checksums {
                let check_bytes: [u8; 8] =
                    bytes[padded_end..end].try_into().expect("slice is 8 bytes long");
                if fnv1a(payload) != u64::from_le_bytes(check_bytes) {
                    return Err(SnapshotError::ChecksumMismatch { tag });
                }
            }
            sections.push((tag, payload));
            at = end;
        }
        Ok(Self { version, sections })
    }

    /// The container version of the parsed stream ([`V1`], [`V2`] or
    /// [`V3`]).
    #[must_use]
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Tags present, in file order.
    #[must_use]
    pub fn tags(&self) -> Vec<SectionTag> {
        self.sections.iter().map(|&(t, _)| t).collect()
    }

    /// Open the payload of section `tag` for reading.
    ///
    /// # Errors
    /// [`SnapshotError::MissingSection`] if the section is absent.
    pub fn section(&self, tag: SectionTag) -> Result<SectionReader<'a>, SnapshotError> {
        self.sections
            .iter()
            .find(|&&(t, _)| t == tag)
            .map(|&(_, payload)| SectionReader { bytes: payload, at: 0, tag })
            .ok_or(SnapshotError::MissingSection(tag))
    }
}

/// Cursor over one section's payload, mirroring [`SectionBuf`]'s
/// primitives. Every `take_*` checks bounds and returns
/// [`SnapshotError::Truncated`] instead of panicking.
#[derive(Debug)]
pub struct SectionReader<'a> {
    bytes: &'a [u8],
    at: usize,
    tag: SectionTag,
}

impl<'a> SectionReader<'a> {
    /// Open a cursor over a raw payload that did **not** come out of a
    /// snapshot container — the inverse of [`SectionBuf::into_bytes`].
    /// The caller owns integrity (the container's per-section checksum
    /// does not apply); `tag` only labels error messages.
    #[must_use]
    pub fn standalone(bytes: &'a [u8], tag: SectionTag) -> Self {
        Self { bytes, at: 0, tag }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.bytes.len() - self.at < n {
            return Err(SnapshotError::Truncated { context });
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Read one byte.
    ///
    /// # Errors
    /// [`SnapshotError::Truncated`] at end of payload.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u32`.
    ///
    /// # Errors
    /// [`SnapshotError::Truncated`] at end of payload.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        let b: [u8; 4] = self.take(4, "u32")?.try_into().expect("slice is 4 bytes long");
        Ok(u32::from_le_bytes(b))
    }

    /// Read a little-endian `u64`.
    ///
    /// # Errors
    /// [`SnapshotError::Truncated`] at end of payload.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        let b: [u8; 8] = self.take(8, "u64")?.try_into().expect("slice is 8 bytes long");
        Ok(u64::from_le_bytes(b))
    }

    /// Read a length written by [`SectionBuf::put_len`], bounded by
    /// `limit` (a consistency cap derived from the remaining payload, so
    /// a corrupted length cannot trigger an absurd allocation).
    ///
    /// # Errors
    /// [`SnapshotError::Truncated`] at end of payload;
    /// [`SnapshotError::Malformed`] when the length exceeds `limit`.
    pub fn take_len(&mut self, limit: usize) -> Result<usize, SnapshotError> {
        let v = self.take_u64()?;
        match usize::try_from(v) {
            Ok(v) if v <= limit => Ok(v),
            _ => Err(SnapshotError::Malformed { context: "implausible length" }),
        }
    }

    /// Read an `f64` stored as its IEEE-754 bit pattern.
    ///
    /// # Errors
    /// [`SnapshotError::Truncated`] at end of payload.
    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Read a length-prefixed byte string.
    ///
    /// # Errors
    /// [`SnapshotError::Truncated`] at end of payload.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.take_u32()? as usize;
        self.take(n, "byte string")
    }

    /// Skip the zero padding [`SectionBuf::align8`] wrote, validating it.
    /// Afterwards the cursor's payload offset is a multiple of [`ALIGN`]
    /// — and, in a v2 container under an 8-byte-aligned backing, so is
    /// the absolute address of whatever follows.
    ///
    /// # Errors
    /// [`SnapshotError::Truncated`] at end of payload;
    /// [`SnapshotError::Malformed`] when a padding byte is nonzero (a
    /// corrupt or misframed arena).
    pub fn align8(&mut self) -> Result<(), SnapshotError> {
        let pad = self.at.wrapping_neg() % ALIGN;
        if pad != 0 {
            let bytes = self.take(pad, "alignment padding")?;
            if bytes.iter().any(|&b| b != 0) {
                return Err(SnapshotError::Malformed { context: "nonzero alignment padding" });
            }
        }
        Ok(())
    }

    /// [`Self::align8`], then take a raw `n`-byte arena. The returned
    /// slice starts at an [`ALIGN`]-multiple payload offset; whether that
    /// makes its *address* castable depends on the backing's base
    /// alignment, which the caller's cast re-checks.
    ///
    /// # Errors
    /// Like [`Self::align8`], plus [`SnapshotError::Truncated`] when
    /// fewer than `n` bytes remain.
    pub fn take_arena(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.align8()?;
        self.take(n, "aligned arena")
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// Assert the payload was consumed exactly.
    ///
    /// # Errors
    /// [`SnapshotError::Malformed`] when trailing bytes remain — a schema
    /// mismatch even if everything read so far decoded cleanly.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Malformed { context: "trailing bytes in section" })
        }
    }

    /// The section this cursor reads.
    #[must_use]
    pub fn tag(&self) -> SectionTag {
        self.tag
    }
}

/// Encode a [`Forum`] into `buf`: user/thread counts, then each post as
/// `(author u32, thread u32, text bytes)`.
///
/// Only the attack-relevant state is persisted — posts and their
/// author/thread structure. The generation-time metadata (`thread_board`,
/// `thread_topic`) is simulator provenance and is dropped, exactly as
/// [`Forum::from_posts`] drops it for split-built forums.
///
/// # Panics
/// Panics if the forum has more than `u32::MAX` users, threads or posts
/// (far beyond any supported corpus).
pub fn encode_forum<W: SectionWrite>(forum: &Forum, buf: &mut W) {
    buf.put_u32(u32::try_from(forum.n_users).expect("user count overflows u32"));
    buf.put_u32(u32::try_from(forum.n_threads).expect("thread count overflows u32"));
    buf.put_u32(u32::try_from(forum.posts.len()).expect("post count overflows u32"));
    for post in &forum.posts {
        buf.put_u32(u32::try_from(post.author).expect("author id overflows u32"));
        buf.put_u32(u32::try_from(post.thread).expect("thread id overflows u32"));
        buf.put_bytes(post.text.as_bytes());
    }
}

/// Decode a [`Forum`] written by [`encode_forum`], rebuilding the
/// per-user post index via [`Forum::from_posts`].
///
/// # Errors
/// [`SnapshotError::Truncated`] or [`SnapshotError::Malformed`] on
/// malformed payloads (out-of-range author/thread ids, invalid UTF-8).
pub fn decode_forum(r: &mut SectionReader<'_>) -> Result<Forum, SnapshotError> {
    let n_users = r.take_u32()? as usize;
    let n_threads = r.take_u32()? as usize;
    let n_posts = r.take_u32()? as usize;
    if n_posts > r.remaining() / 12 {
        // Each post needs ≥ 12 bytes (two ids + text length prefix).
        return Err(SnapshotError::Malformed { context: "implausible post count" });
    }
    let mut posts = Vec::with_capacity(n_posts);
    for _ in 0..n_posts {
        let author = r.take_u32()? as usize;
        let thread = r.take_u32()? as usize;
        if author >= n_users || thread >= n_threads {
            return Err(SnapshotError::Malformed { context: "post references out of range" });
        }
        let text = std::str::from_utf8(r.take_bytes()?)
            .map_err(|_| SnapshotError::Malformed { context: "post text is not UTF-8" })?
            .to_string();
        posts.push(Post { author, thread, text });
    }
    Ok(Forum::from_posts(n_users, n_threads, posts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ForumConfig;

    #[test]
    fn primitive_roundtrip() {
        let mut w = SnapshotWriter::new();
        let s = w.section(SectionTag(*b"TEST"));
        s.put_u8(7);
        s.put_u32(123_456);
        s.put_u64(u64::MAX - 3);
        s.put_f64(-0.0);
        s.put_f64(std::f64::consts::PI);
        s.put_bytes(b"hello \xf0\x9f\x8c\x8d");
        let bytes = w.finish();
        let r = SnapshotReader::parse(&bytes).unwrap();
        let mut s = r.section(SectionTag(*b"TEST")).unwrap();
        assert_eq!(s.take_u8().unwrap(), 7);
        assert_eq!(s.take_u32().unwrap(), 123_456);
        assert_eq!(s.take_u64().unwrap(), u64::MAX - 3);
        assert_eq!(s.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(s.take_f64().unwrap().to_bits(), std::f64::consts::PI.to_bits());
        assert_eq!(s.take_bytes().unwrap(), b"hello \xf0\x9f\x8c\x8d");
        s.expect_end().unwrap();
    }

    #[test]
    fn bad_magic_detected() {
        let mut w = SnapshotWriter::new();
        w.section(SectionTag(*b"AAAA")).put_u8(1);
        let mut bytes = w.finish();
        bytes[0] = b'X';
        assert!(matches!(SnapshotReader::parse(&bytes), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn wrong_version_detected() {
        let mut w = SnapshotWriter::new();
        w.section(SectionTag(*b"AAAA")).put_u8(1);
        let mut bytes = w.finish();
        bytes[8] = 99;
        assert!(matches!(
            SnapshotReader::parse(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let mut w = SnapshotWriter::new();
        let s = w.section(SectionTag(*b"AAAA"));
        s.put_u64(42);
        s.put_bytes(b"payload");
        let bytes = w.finish();
        for n in 0..bytes.len() {
            let err = SnapshotReader::parse(&bytes[..n]);
            assert!(
                matches!(
                    err,
                    Err(SnapshotError::Truncated { .. })
                        | Err(SnapshotError::BadMagic)
                        | Err(SnapshotError::ChecksumMismatch { .. })
                ),
                "prefix of {n} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn near_max_section_length_is_truncation_not_panic() {
        // A crafted section length close to u64::MAX must fail the bounds
        // check via checked arithmetic instead of wrapping into a
        // slice-index panic (release) or overflow panic (debug). The v2
        // section length lives at file offset 24..32 (after the 16-byte
        // file header, 4-byte tag and 4-byte header padding).
        let mut w = SnapshotWriter::new();
        w.section(SectionTag(*b"AAAA")).put_bytes(b"payload");
        let mut bytes = w.finish();
        for evil in [u64::MAX, u64::MAX - 16, u64::MAX - 28, u64::MAX - 32] {
            bytes[24..32].copy_from_slice(&evil.to_le_bytes());
            assert!(matches!(
                SnapshotReader::parse(&bytes),
                Err(SnapshotError::Truncated { context: "section payload" })
            ));
        }
    }

    #[test]
    fn checksum_mismatch_detected() {
        let mut w = SnapshotWriter::new();
        w.section(SectionTag(*b"AAAA")).put_bytes(b"some payload");
        let mut bytes = w.finish();
        // Flip one payload byte (past the 16-byte header + 16-byte v2
        // section header).
        bytes[34] ^= 0xff;
        match SnapshotReader::parse(&bytes) {
            Err(SnapshotError::ChecksumMismatch { tag }) => assert_eq!(tag.0, *b"AAAA"),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        // The trusting parse (zero-copy path) skips the checksum sweep;
        // structural validation still happens in the decoders.
        let r = SnapshotReader::parse_with(&bytes, &ParseOptions::trusting()).unwrap();
        assert_eq!(r.version(), V2);
        assert!(r.section(SectionTag(*b"AAAA")).is_ok());
    }

    #[test]
    fn v2_sections_are_eight_byte_aligned_in_the_file() {
        // Sweep deliberately awkward payload lengths; every payload must
        // start at a file offset that is a multiple of 8, with validated
        // zero padding in between.
        let mut w = SnapshotWriter::new();
        for (i, len) in [1usize, 7, 8, 13, 24].iter().enumerate() {
            let tag = SectionTag([b'S', b'0' + i as u8, b' ', b' ']);
            for b in 0..*len {
                w.section(tag).put_u8(b as u8);
            }
        }
        let bytes = w.finish();
        let r = SnapshotReader::parse(&bytes).unwrap();
        assert_eq!(r.version(), V2);
        for (i, len) in [1usize, 7, 8, 13, 24].iter().enumerate() {
            let tag = SectionTag([b'S', b'0' + i as u8, b' ', b' ']);
            let mut s = r.section(tag).unwrap();
            assert_eq!(s.remaining(), *len);
            // Payload offset within the file is 8-aligned (pure pointer
            // arithmetic against the parse input).
            let payload = s.take(*len, "payload").unwrap();
            let offset = payload.as_ptr() as usize - bytes.as_ptr() as usize;
            assert_eq!(offset % ALIGN, 0, "section {i} payload at offset {offset}");
        }
    }

    #[test]
    fn nonzero_section_padding_is_rejected() {
        let mut w = SnapshotWriter::new();
        w.section(SectionTag(*b"AAAA")).put_u8(1); // 1-byte payload, 7 pad bytes
        let mut bytes = w.finish();
        bytes[33] = 0xee; // first padding byte (payload is at 32..33)
        assert!(matches!(
            SnapshotReader::parse(&bytes),
            Err(SnapshotError::Malformed { context: "nonzero section padding" })
        ));
        // Nonzero *header* padding is equally rejected.
        let mut w = SnapshotWriter::new();
        w.section(SectionTag(*b"AAAA")).put_u8(1);
        let mut bytes = w.finish();
        bytes[21] = 0x01; // section header padding at 20..24
        assert!(matches!(
            SnapshotReader::parse(&bytes),
            Err(SnapshotError::Malformed { context: "nonzero section header padding" })
        ));
    }

    #[test]
    fn v1_container_roundtrips_and_reports_its_version() {
        let mut w = SnapshotWriter::with_version(V1);
        assert_eq!(w.version(), V1);
        let s = w.section(SectionTag(*b"TEST"));
        s.put_u32(7);
        s.put_bytes(b"legacy");
        let bytes = w.finish();
        assert_eq!(u16::from_le_bytes([bytes[8], bytes[9]]), V1);
        let r = SnapshotReader::parse(&bytes).unwrap();
        assert_eq!(r.version(), V1);
        let mut s = r.section(SectionTag(*b"TEST")).unwrap();
        assert_eq!(s.take_u32().unwrap(), 7);
        assert_eq!(s.take_bytes().unwrap(), b"legacy");
        s.expect_end().unwrap();
    }

    #[test]
    #[should_panic(expected = "unknown snapshot version")]
    fn unknown_writer_version_is_rejected() {
        let _ = SnapshotWriter::with_version(4);
    }

    #[test]
    fn arena_helpers_roundtrip_with_validated_padding() {
        let mut w = SnapshotWriter::new();
        let s = w.section(SectionTag(*b"ARNA"));
        s.put_u8(1); // misalign the cursor on purpose
        s.put_u32_arena(&[1, 2, 3]);
        s.put_u8(9); // misalign again
        s.put_u64_arena(&[u64::MAX, 0]);
        s.put_f64_arena(&[-0.0, std::f64::consts::E]);
        let bytes = w.finish();
        let r = SnapshotReader::parse(&bytes).unwrap();
        let mut s = r.section(SectionTag(*b"ARNA")).unwrap();
        assert_eq!(s.take_u8().unwrap(), 1);
        let arena = s.take_arena(12).unwrap();
        assert_eq!(arena, [1u32, 2, 3].iter().flat_map(|v| v.to_le_bytes()).collect::<Vec<_>>());
        assert_eq!(s.take_u8().unwrap(), 9);
        s.align8().unwrap();
        assert_eq!(s.take_u64().unwrap(), u64::MAX);
        assert_eq!(s.take_u64().unwrap(), 0);
        assert_eq!(s.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(s.take_f64().unwrap(), std::f64::consts::E);
        s.expect_end().unwrap();
    }

    #[test]
    fn nonzero_alignment_padding_inside_a_payload_is_rejected() {
        let mut w = SnapshotWriter::new();
        let s = w.section(SectionTag(*b"ARNA"));
        s.put_u8(1);
        s.put_u64_arena(&[42]);
        let mut bytes = w.finish();
        // Payload layout: byte, 7 pad bytes, u64. Corrupt a pad byte and
        // fix the checksum so the padding check itself must fire.
        bytes[32 + 3] = 0x77;
        let payload_len = 16usize;
        let sum = fnv1a(&bytes[32..32 + payload_len]);
        let at = 32 + payload_len; // already 8-aligned: no section padding
        bytes[at..at + 8].copy_from_slice(&sum.to_le_bytes());
        let r = SnapshotReader::parse(&bytes).unwrap();
        let mut s = r.section(SectionTag(*b"ARNA")).unwrap();
        assert_eq!(s.take_u8().unwrap(), 1);
        assert!(matches!(
            s.align8(),
            Err(SnapshotError::Malformed { context: "nonzero alignment padding" })
        ));
    }

    #[test]
    fn missing_section_detected() {
        let mut w = SnapshotWriter::new();
        w.section(SectionTag(*b"AAAA")).put_u8(1);
        let bytes = w.finish();
        let r = SnapshotReader::parse(&bytes).unwrap();
        assert!(matches!(
            r.section(SectionTag(*b"BBBB")),
            Err(SnapshotError::MissingSection(t)) if t.0 == *b"BBBB"
        ));
    }

    #[test]
    fn sections_keep_file_order_and_identity() {
        let mut w = SnapshotWriter::new();
        w.section(SectionTag(*b"ONE ")).put_u8(1);
        w.section(SectionTag(*b"TWO ")).put_u8(2);
        w.section(SectionTag(*b"ONE ")).put_u8(3); // continue first section
        let bytes = w.finish();
        let r = SnapshotReader::parse(&bytes).unwrap();
        assert_eq!(r.tags(), vec![SectionTag(*b"ONE "), SectionTag(*b"TWO ")]);
        let mut one = r.section(SectionTag(*b"ONE ")).unwrap();
        assert_eq!(one.tag(), SectionTag(*b"ONE "));
        assert_eq!((one.take_u8().unwrap(), one.take_u8().unwrap()), (1, 3));
    }

    #[test]
    fn forum_roundtrip_is_bit_exact() {
        let forum = Forum::generate(&ForumConfig::tiny(), 11);
        let mut w = SnapshotWriter::new();
        encode_forum(&forum, w.section(SectionTag(*b"FORM")));
        let bytes = w.finish();
        let r = SnapshotReader::parse(&bytes).unwrap();
        let mut s = r.section(SectionTag(*b"FORM")).unwrap();
        let back = decode_forum(&mut s).unwrap();
        s.expect_end().unwrap();
        assert_eq!(back.n_users, forum.n_users);
        assert_eq!(back.n_threads, forum.n_threads);
        assert_eq!(back.posts.len(), forum.posts.len());
        for (a, b) in back.posts.iter().zip(&forum.posts) {
            assert_eq!((a.author, a.thread, &a.text), (b.author, b.thread, &b.text));
        }
        // Re-encoding the decoded forum reproduces the same bytes.
        let mut w2 = SnapshotWriter::new();
        encode_forum(&back, w2.section(SectionTag(*b"FORM")));
        assert_eq!(w2.finish(), bytes);
    }

    #[test]
    fn streamed_snapshot_is_bit_identical() {
        // Awkward payload lengths on purpose: the streamer's padding,
        // incremental checksum and seek-back length patch must all agree
        // with the materializing writer byte for byte.
        let payloads: &[(SectionTag, usize)] = &[
            (SectionTag(*b"ONE "), 1),
            (SectionTag(*b"TWO "), 13),
            (SectionTag(*b"THRE"), 0),
            (SectionTag(*b"FOUR"), 24),
        ];
        let fill = |w: &mut dyn FnMut(&[u8]), len: usize| {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 + 5) as u8).collect();
            w(&bytes);
        };
        let mut reference = SnapshotWriter::new();
        for &(tag, len) in payloads {
            let s = reference.section(tag);
            fill(&mut |b| SectionWrite::put_raw(s, b), len);
            s.put_u32_arena(&[7, 8, 9]);
            s.put_bytes(b"tail");
        }
        let reference = reference.finish();

        let path = std::env::temp_dir().join("dehealth-streamer-parity-test.snap");
        let mut streamer = SnapshotStreamer::create(&path).unwrap();
        for &(tag, len) in payloads {
            streamer
                .section(tag, |s| {
                    fill(&mut |b| s.put_raw(b), len);
                    s.put_u32_arena(&[7, 8, 9]);
                    s.put_bytes(b"tail");
                })
                .unwrap();
        }
        streamer.finish().unwrap();
        let streamed = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(streamed, reference);
        // And the streamed file parses with full checksum verification.
        let r = SnapshotReader::parse(&streamed).unwrap();
        assert_eq!(r.tags().len(), payloads.len());
    }

    #[test]
    fn abandoned_streamer_removes_its_temp_file() {
        let path = std::env::temp_dir().join("dehealth-streamer-abandon-test.snap");
        let tmp = {
            let mut streamer = SnapshotStreamer::create(&path).unwrap();
            streamer.section(SectionTag(*b"AAAA"), |s| s.put_u8(1)).unwrap();
            std::path::PathBuf::from(format!("{}.tmp.{}", path.display(), std::process::id()))
            // streamer dropped here without finish()
        };
        assert!(!tmp.exists(), "temp file left behind");
        assert!(!path.exists(), "target written without finish");
    }

    #[test]
    fn forum_decode_rejects_out_of_range_references() {
        let forum =
            Forum::from_posts(2, 1, vec![Post { author: 1, thread: 0, text: "hi there".into() }]);
        let mut w = SnapshotWriter::new();
        encode_forum(&forum, w.section(SectionTag(*b"FORM")));
        let mut bytes = w.finish();
        // Patch the stored user count down to 1 so the author id 1 is out
        // of range (n_users is the first u32 of the payload at offset 32).
        bytes[32..36].copy_from_slice(&1u32.to_le_bytes());
        // Fix the checksum so the schema check, not the checksum, fires.
        let payload_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
        let sum = fnv1a(&bytes[32..32 + payload_len]);
        let at = 32 + payload_len + payload_len.wrapping_neg() % ALIGN;
        bytes[at..at + 8].copy_from_slice(&sum.to_le_bytes());
        let r = SnapshotReader::parse(&bytes).unwrap();
        let mut s = r.section(SectionTag(*b"FORM")).unwrap();
        assert!(matches!(
            decode_forum(&mut s),
            Err(SnapshotError::Malformed { context: "post references out of range" })
        ));
    }
}
