//! Dataset splits: the evaluation's closed-world and open-world
//! constructions (Section V).
//!
//! *Closed world*: each user's posts are split into an auxiliary fraction
//! and an anonymized remainder ("randomly taking 50%, 70%, and 90% of each
//! user's data as auxiliary data and the rest as anonymized data ... by
//! replacing each username with some random ID").
//!
//! *Open world*: the users are partitioned so that both sides have the
//! same number of users and a chosen overlap ratio, per the paper's
//! footnote 10 equations `x + 2y = n`, `x/(x+y) = ratio`.
//!
//! The anonymized half re-labels its users with a random permutation; the
//! hidden [`Oracle`] retains the ground-truth mapping for scoring only.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Forum, Post};

/// Closed-world split parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitConfig {
    /// Fraction of each user's posts placed in the auxiliary data.
    pub aux_fraction: f64,
}

impl SplitConfig {
    /// Split with the given auxiliary fraction.
    ///
    /// # Panics
    /// Panics unless `0 < aux_fraction < 1`.
    #[must_use]
    pub fn fraction(aux_fraction: f64) -> Self {
        assert!(aux_fraction > 0.0 && aux_fraction < 1.0, "aux_fraction must be in (0, 1)");
        Self { aux_fraction }
    }
}

/// Ground-truth mapping from anonymized user ids to auxiliary user ids.
/// `None` means the anonymized user has no true mapping in the auxiliary
/// data (possible only in open-world splits).
#[derive(Debug, Clone)]
pub struct Oracle {
    map: Vec<Option<usize>>,
}

impl Oracle {
    /// True auxiliary id of anonymized user `anon`, if any.
    #[must_use]
    pub fn true_mapping(&self, anon: usize) -> Option<usize> {
        self.map[anon]
    }

    /// Number of anonymized users.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if there are no anonymized users.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of anonymized users that do have a true mapping.
    #[must_use]
    pub fn n_overlapping(&self) -> usize {
        self.map.iter().filter(|m| m.is_some()).count()
    }
}

/// A prepared de-anonymization instance.
#[derive(Debug, Clone)]
pub struct Split {
    /// The auxiliary (known, training) forum; user ids are the original
    /// forum ids.
    pub auxiliary: Forum,
    /// The anonymized (target) forum; user ids are randomized.
    pub anonymized: Forum,
    /// Hidden ground truth for scoring.
    pub oracle: Oracle,
}

fn shuffle<T>(rng: &mut StdRng, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

/// Assemble the anonymized forum from `(original_user, post)` pairs,
/// shuffling user identities.
fn anonymize(
    rng: &mut StdRng,
    n_threads: usize,
    posts_by_user: Vec<(usize, Vec<Post>)>,
) -> (Forum, Oracle) {
    let mut order: Vec<usize> = (0..posts_by_user.len()).collect();
    shuffle(rng, &mut order);
    let mut map = vec![None; posts_by_user.len()];
    let mut posts = Vec::new();
    for (anon_id, &slot) in order.iter().enumerate() {
        let (original, ref user_posts) = posts_by_user[slot];
        map[anon_id] = Some(original);
        for p in user_posts {
            posts.push(Post { author: anon_id, thread: p.thread, text: p.text.clone() });
        }
    }
    (Forum::from_posts(posts_by_user.len(), n_threads, posts), Oracle { map })
}

/// Closed-world split: every anonymized user has a true mapping in the
/// auxiliary data (`V1 ⊆ V2`).
///
/// Users receive `ceil(aux_fraction · count)` auxiliary posts; users whose
/// remainder is zero simply do not appear on the anonymized side.
#[must_use]
pub fn closed_world_split(forum: &Forum, config: &SplitConfig, seed: u64) -> Split {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aux_posts: Vec<Post> = Vec::new();
    let mut anon_users: Vec<(usize, Vec<Post>)> = Vec::new();
    for u in 0..forum.n_users {
        let mut idx: Vec<usize> = forum.user_posts(u).to_vec();
        shuffle(&mut rng, &mut idx);
        let n_aux = ((config.aux_fraction * idx.len() as f64).ceil() as usize).clamp(1, idx.len());
        for &i in &idx[..n_aux] {
            let p = &forum.posts[i];
            aux_posts.push(Post { author: u, thread: p.thread, text: p.text.clone() });
        }
        if n_aux < idx.len() {
            let rest = idx[n_aux..].iter().map(|&i| forum.posts[i].clone()).collect::<Vec<_>>();
            anon_users.push((u, rest));
        }
    }
    let auxiliary = Forum::from_posts(forum.n_users, forum.n_threads, aux_posts);
    let (anonymized, oracle) = anonymize(&mut rng, forum.n_threads, anon_users);
    Split { auxiliary, anonymized, oracle }
}

/// Open-world split with the given overlap ratio (`x/(x+y)` per footnote
/// 10). Both sides get `x + y` users: `x` overlapping (posts split in
/// half) plus `y` exclusive to each side.
///
/// # Panics
/// Panics unless `0 < overlap_ratio <= 1`.
#[must_use]
pub fn open_world_split(forum: &Forum, overlap_ratio: f64, seed: u64) -> Split {
    assert!(overlap_ratio > 0.0 && overlap_ratio <= 1.0, "overlap_ratio must be in (0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = forum.n_users;
    // x + 2y = n and x/(x+y) = r  =>  x = r·n/(2-r).
    let x = ((overlap_ratio * n as f64) / (2.0 - overlap_ratio)).round() as usize;
    let x = x.clamp(1, n);
    let y = (n - x) / 2;

    let mut users: Vec<usize> = (0..n).collect();
    shuffle(&mut rng, &mut users);
    // Overlapping users must appear on *both* sides, which needs at least
    // two posts (one per side). Prefer multi-post users for the overlap
    // set — the stable sort keeps the shuffled order within each class —
    // so the realized overlap ratio tracks the requested one instead of
    // decaying when single-post users fall off the anonymized side.
    users.sort_by_key(|&u| usize::from(forum.user_posts(u).len() < 2));
    let overlapping = &users[..x];
    let aux_only = &users[x..x + y];
    let anon_only = &users[x + y..x + 2 * y];

    let mut aux_posts: Vec<Post> = Vec::new();
    let mut anon_users: Vec<(usize, Vec<Post>)> = Vec::new();
    for &u in overlapping {
        let mut idx: Vec<usize> = forum.user_posts(u).to_vec();
        shuffle(&mut rng, &mut idx);
        let n_aux = idx.len().div_ceil(2);
        for &i in &idx[..n_aux] {
            let p = &forum.posts[i];
            aux_posts.push(Post { author: u, thread: p.thread, text: p.text.clone() });
        }
        if n_aux < idx.len() {
            let rest: Vec<Post> = idx[n_aux..].iter().map(|&i| forum.posts[i].clone()).collect();
            anon_users.push((u, rest));
        }
    }
    for &u in aux_only {
        for &i in forum.user_posts(u) {
            let p = &forum.posts[i];
            aux_posts.push(Post { author: u, thread: p.thread, text: p.text.clone() });
        }
    }
    let auxiliary = Forum::from_posts(forum.n_users, forum.n_threads, aux_posts);

    // Non-overlapping anonymized users get `None` oracle entries: mark
    // them with a sentinel before anonymization and fix up after.
    let n_overlap_anon = anon_users.len();
    for &u in anon_only {
        let posts: Vec<Post> =
            forum.user_posts(u).iter().map(|&i| forum.posts[i].clone()).collect();
        anon_users.push((u, posts));
    }
    let mut order: Vec<usize> = (0..anon_users.len()).collect();
    shuffle(&mut rng, &mut order);
    let mut map = vec![None; anon_users.len()];
    let mut posts = Vec::new();
    for (anon_id, &slot) in order.iter().enumerate() {
        let (original, ref user_posts) = anon_users[slot];
        // Only overlapping users (the first `n_overlap_anon` slots) have a
        // true mapping in the auxiliary data.
        if slot < n_overlap_anon {
            map[anon_id] = Some(original);
        }
        for p in user_posts {
            posts.push(Post { author: anon_id, thread: p.thread, text: p.text.clone() });
        }
    }
    let anonymized = Forum::from_posts(anon_users.len(), forum.n_threads, posts);
    Split { auxiliary, anonymized, oracle: Oracle { map } }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ForumConfig;

    fn forum() -> Forum {
        Forum::generate(&ForumConfig::tiny(), 42)
    }

    #[test]
    fn closed_world_every_anon_user_has_mapping() {
        let s = closed_world_split(&forum(), &SplitConfig::fraction(0.5), 1);
        assert_eq!(s.oracle.n_overlapping(), s.oracle.len());
        assert!(!s.oracle.is_empty());
    }

    #[test]
    fn closed_world_posts_partitioned() {
        let f = forum();
        let s = closed_world_split(&f, &SplitConfig::fraction(0.5), 1);
        assert_eq!(s.auxiliary.posts.len() + s.anonymized.posts.len(), f.posts.len());
        // No shared text between the halves (all posts distinct enough).
        for anon in 0..s.anonymized.n_users {
            let aux = s.oracle.true_mapping(anon).unwrap();
            // The anonymized user's posts belonged to `aux` originally:
            // check thread consistency (threads the original user posted
            // in).
            let orig_threads: std::collections::HashSet<usize> =
                f.user_posts(aux).iter().map(|&i| f.posts[i].thread).collect();
            for &i in s.anonymized.user_posts(anon) {
                assert!(orig_threads.contains(&s.anonymized.posts[i].thread));
            }
        }
    }

    #[test]
    fn higher_aux_fraction_shrinks_anonymized_side() {
        let f = forum();
        let lo = closed_world_split(&f, &SplitConfig::fraction(0.5), 1);
        let hi = closed_world_split(&f, &SplitConfig::fraction(0.9), 1);
        assert!(hi.anonymized.posts.len() < lo.anonymized.posts.len());
    }

    #[test]
    fn anonymized_ids_are_shuffled() {
        let s = closed_world_split(&forum(), &SplitConfig::fraction(0.5), 3);
        // With dozens of users the identity permutation is implausible.
        let identity = (0..s.anonymized.n_users).all(|a| s.oracle.true_mapping(a) == Some(a));
        assert!(!identity);
    }

    #[test]
    fn open_world_overlap_ratio_respected() {
        let f = Forum::generate(&ForumConfig::webmd_like(300), 9);
        for &r in &[0.5, 0.7, 0.9] {
            let s = open_world_split(&f, r, 4);
            let n_anon = s.anonymized.n_users;
            let overlap = s.oracle.n_overlapping();
            let got = overlap as f64 / n_anon as f64;
            // Single-post overlapping users can fall out of the anon side,
            // so allow a modest band.
            assert!((got - r).abs() < 0.2, "ratio {r}: got {got}");
            assert!(overlap < n_anon || r == 1.0);
        }
    }

    #[test]
    fn open_world_nonoverlap_users_absent_from_aux() {
        let f = forum();
        let s = open_world_split(&f, 0.5, 8);
        for anon in 0..s.anonymized.n_users {
            if s.oracle.true_mapping(anon).is_none() {
                // Their original posts must not be in the auxiliary side:
                // check by text equality.
                for &i in s.anonymized.user_posts(anon) {
                    let text = &s.anonymized.posts[i].text;
                    assert!(s.auxiliary.posts.iter().all(|p| &p.text != text));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "aux_fraction")]
    fn bad_fraction_panics() {
        let _ = SplitConfig::fraction(1.0);
    }
}
