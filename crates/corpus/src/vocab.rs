//! Health-domain vocabulary banks used by the post generator.
//!
//! The banks are deliberately health-forum flavored (symptoms, conditions,
//! medications, treatments) plus everyday filler so that generated posts
//! exercise the same lexical feature space as WebMD/HealthBoards posts.

/// Symptom nouns.
pub const SYMPTOMS: &[&str] = &[
    "pain",
    "ache",
    "headache",
    "fatigue",
    "nausea",
    "fever",
    "rash",
    "cough",
    "dizziness",
    "swelling",
    "cramp",
    "itch",
    "numbness",
    "tingling",
    "insomnia",
    "anxiety",
    "stress",
    "weakness",
    "stiffness",
    "bloating",
    "heartburn",
    "chills",
    "sweats",
    "tremor",
    "soreness",
    "burning",
    "pressure",
    "spasm",
    "congestion",
    "blister",
];

/// Condition / disease nouns.
pub const CONDITIONS: &[&str] = &[
    "diabetes",
    "arthritis",
    "asthma",
    "migraine",
    "hepatitis",
    "anemia",
    "depression",
    "hypertension",
    "eczema",
    "fibromyalgia",
    "pneumonia",
    "bronchitis",
    "allergy",
    "infection",
    "ulcer",
    "reflux",
    "sciatica",
    "shingles",
    "lupus",
    "thyroid",
    "cholesterol",
    "osteoporosis",
    "gastritis",
    "vertigo",
    "neuropathy",
    "tendonitis",
];

/// Medication / treatment nouns.
pub const TREATMENTS: &[&str] = &[
    "ibuprofen",
    "acetaminophen",
    "antibiotic",
    "steroid",
    "insulin",
    "metformin",
    "prednisone",
    "surgery",
    "therapy",
    "injection",
    "vaccine",
    "supplement",
    "vitamin",
    "antihistamine",
    "inhaler",
    "cream",
    "ointment",
    "tablet",
    "dose",
    "prescription",
    "physio",
    "acupuncture",
    "massage",
    "diet",
    "exercise",
    "rest",
];

/// Body-part nouns.
pub const BODY_PARTS: &[&str] = &[
    "head", "neck", "back", "shoulder", "arm", "elbow", "wrist", "hand", "chest", "stomach", "hip",
    "knee", "ankle", "foot", "throat", "ear", "eye", "skin", "liver", "kidney", "heart", "lung",
    "nerve", "muscle", "joint", "spine",
];

/// People / context nouns.
pub const PEOPLE: &[&str] = &[
    "doctor",
    "nurse",
    "specialist",
    "surgeon",
    "pharmacist",
    "husband",
    "wife",
    "mother",
    "father",
    "son",
    "daughter",
    "friend",
    "neighbor",
    "boss",
    "patient",
    "therapist",
];

/// Everyday nouns for filler clauses.
pub const EVERYDAY: &[&str] = &[
    "week",
    "month",
    "year",
    "morning",
    "night",
    "appointment",
    "test",
    "result",
    "blood",
    "scan",
    "visit",
    "hospital",
    "clinic",
    "pharmacy",
    "insurance",
    "work",
    "home",
    "sleep",
    "food",
    "water",
    "coffee",
    "walk",
    "question",
    "advice",
    "experience",
    "story",
    "post",
    "board",
    "forum",
    "update",
    "symptom",
    "problem",
    "issue",
    "side",
    "effect",
];

/// Verbs (base form).
pub const VERBS: &[&str] = &[
    "feel",
    "hurt",
    "ache",
    "take",
    "try",
    "start",
    "stop",
    "notice",
    "get",
    "have",
    "see",
    "visit",
    "call",
    "ask",
    "tell",
    "help",
    "worry",
    "hope",
    "wonder",
    "know",
    "think",
    "read",
    "hear",
    "sleep",
    "eat",
    "drink",
    "rest",
    "improve",
    "worsen",
    "spread",
    "prescribe",
    "recommend",
    "suggest",
    "check",
    "test",
    "wait",
    "suffer",
    "manage",
];

/// Adjectives.
pub const ADJECTIVES: &[&str] = &[
    "severe",
    "mild",
    "chronic",
    "sharp",
    "dull",
    "constant",
    "occasional",
    "sudden",
    "strange",
    "weird",
    "awful",
    "terrible",
    "horrible",
    "scary",
    "painful",
    "swollen",
    "tired",
    "exhausted",
    "dizzy",
    "nauseous",
    "worried",
    "anxious",
    "grateful",
    "hopeful",
    "better",
    "worse",
    "normal",
    "high",
    "low",
    "new",
    "old",
    "same",
    "different",
    "rare",
];

/// Adverbs.
pub const ADVERBS: &[&str] = &[
    "really",
    "very",
    "constantly",
    "occasionally",
    "suddenly",
    "slowly",
    "quickly",
    "recently",
    "lately",
    "finally",
    "honestly",
    "seriously",
    "definitely",
    "probably",
    "maybe",
    "usually",
    "sometimes",
    "always",
    "never",
    "barely",
    "completely",
    "slightly",
];

/// Post openers (first-sentence lead-ins).
pub const OPENERS: &[&str] = &[
    "hi everyone",
    "hello all",
    "hey",
    "so",
    "ok so",
    "well",
    "update",
    "quick question",
    "long time lurker here",
    "new here",
    "thanks in advance",
    "sorry for the long post",
];

/// All content-noun banks, for convenience.
pub const NOUN_BANKS: &[&[&str]] =
    &[SYMPTOMS, CONDITIONS, TREATMENTS, BODY_PARTS, PEOPLE, EVERYDAY];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_non_empty_and_lowercase() {
        for bank in NOUN_BANKS.iter().chain([&VERBS, &ADJECTIVES, &ADVERBS]) {
            assert!(!bank.is_empty());
            for w in bank.iter() {
                assert!(w.chars().all(|c| c.is_ascii_lowercase() || c == ' '), "bad word {w}");
            }
        }
    }

    #[test]
    fn banks_have_no_duplicates_within() {
        for bank in NOUN_BANKS {
            let mut v: Vec<&&str> = bank.iter().collect();
            v.sort();
            v.dedup();
            assert_eq!(v.len(), bank.len());
        }
    }
}
