//! Generator determinism at scale: the same seed must yield a
//! byte-identical corpus regardless of worker-thread count, at corpus
//! sizes where the two-phase parallel generator actually parallelizes
//! (the in-module unit test covers the tiny config; this one pins the
//! 1k and 10k tiers the scale sweep is built on).
//!
//! Identity is compared through the snapshot codec — the forum is
//! encoded with [`encode_forum`] and the byte streams digested with
//! FNV-1a — so the pin covers exactly what a snapshot would persist and
//! what `BENCH_scale.json` records as `corpus_digest`.

use dehealth_corpus::snapshot::{encode_forum, fnv1a, SectionBuf};
use dehealth_corpus::{Forum, ForumConfig};

fn digest(forum: &Forum) -> u64 {
    let mut buf = SectionBuf::new();
    encode_forum(forum, &mut buf);
    fnv1a(&buf.into_bytes())
}

fn assert_tier_invariant(users: usize, seed: u64, thread_counts: &[usize]) {
    let config = ForumConfig::webmd_like(users);
    let base = Forum::generate_with_threads(&config, seed, 1);
    let base_digest = digest(&base);
    for &threads in thread_counts {
        let alt = Forum::generate_with_threads(&config, seed, threads);
        assert_eq!(
            digest(&alt),
            base_digest,
            "{users}-user corpus differs between 1 and {threads} generator threads"
        );
    }
    // Different seed ⇒ different bytes — the digest is not degenerate.
    assert_ne!(
        digest(&Forum::generate_with_threads(&config, seed + 1, 1)),
        base_digest,
        "{users}-user digest ignores the seed"
    );
}

#[test]
fn one_thousand_user_corpus_is_thread_count_invariant() {
    assert_tier_invariant(1000, 42, &[2, 3, 7]);
}

// One counterpart generation only — debug-mode 10k generations are
// seconds each, and the 1k tier already sweeps several thread counts.
#[test]
fn ten_thousand_user_corpus_is_thread_count_invariant() {
    assert_tier_invariant(10_000, 42, &[3]);
}
