//! # criterion (workspace shim)
//!
//! A dependency-free stand-in for the subset of the `criterion` API the
//! workspace's micro-benchmarks use: [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. The build
//! environment has no crates.io access, so `cargo bench` runs against this
//! shim; it reports median wall-clock time per iteration on stdout without
//! statistical analysis, plots, or comparison baselines.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; the
/// shim always re-runs the setup closure per measured iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    #[default]
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Collects timing samples for one benchmark target.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self { samples: Vec::with_capacity(sample_size), sample_size }
    }

    /// Measure `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many calls fit in ~5ms?
        let mut calls_per_sample = 1u32;
        loop {
            let t0 = Instant::now();
            for _ in 0..calls_per_sample {
                std::hint::black_box(routine());
            }
            if t0.elapsed() > Duration::from_millis(5) || calls_per_sample >= 1 << 20 {
                break;
            }
            calls_per_sample *= 2;
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..calls_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed() / calls_per_sample);
        }
    }

    /// Measure `routine` on fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timing samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark target and print its median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        let median = bencher.median();
        println!("bench {name:<40} median {median:>12.3?}  ({} samples)", self.sample_size);
        self
    }
}

/// Re-exported so call sites can keep `criterion::black_box` idioms.
pub use std::hint::black_box;

/// Declare a benchmark group (shim: expands to a function running every
/// target against the configured [`Criterion`]).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("shim/self_test", |b| b.iter(|| 1 + 1));
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group! {
        name = shim_group;
        config = Criterion::default().sample_size(3);
        targets = quick,
    }

    #[test]
    fn group_runs() {
        shim_group();
    }

    #[test]
    fn median_of_empty_is_zero() {
        assert_eq!(Bencher::new(1).median(), Duration::ZERO);
    }
}
