//! The sharded execution engine: blockwise Top-K DA, parallel Refined DA,
//! incremental auxiliary ingestion, and attacks against pre-built
//! (snapshot-loaded) auxiliary corpora.

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};

use dehealth_core::attack::AttackConfig;
use dehealth_core::filter::{filter_user, threshold_vector, Filtered, ScoreBounds};
use dehealth_core::index::{AttributeIndex, IndexedScorer, PairTally};
use dehealth_core::quant::{QuantizedContext, QuantizedRows};
use dehealth_core::refined::{
    refine_user, refine_user_shared, refine_user_shared_quantized, ClassifierKind, RefinedConfig,
    RefinedContext, RefinedScratch, Side,
};
use dehealth_core::similarity::SimilarityEngine;
use dehealth_core::topk::{BoundedTopK, CandidateSets, Selection};
use dehealth_core::uda::{extract_post_features, UdaGraph};
use dehealth_corpus::{Forum, Post};
use dehealth_stylometry::FeatureVector;

use crate::pool::run_blocks;
use crate::report::{timed, EngineReport};

/// How the Top-K stage scores `(anonymized, auxiliary)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringMode {
    /// Inverted-index sparse scoring ([`IndexedScorer`]): probe posting
    /// lists of the anonymized user's attributes, compute the attribute
    /// term from intersection accumulators, and prune pairs whose upper
    /// bound cannot beat the Top-K floor (pruning auto-disables when
    /// Algorithm-2 filtering needs exact global score bounds). Produces
    /// candidate sets and mappings bit-identical to [`ScoringMode::Dense`].
    #[default]
    Indexed,
    /// The all-pairs sweep of `SimilarityEngine::scores_for` — the test
    /// oracle the indexed path is differential-tested against
    /// (`tests/index_parity.rs`).
    Dense,
}

/// How the Refined-DA stage materializes classifier features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefinedMode {
    /// Materialize-once fast path ([`RefinedContext`]): every post's dense
    /// sample lives in a per-side arena built once in
    /// [`EngineSession::finish`] and shared read-only across workers;
    /// per-user training assembles row-index views and fuses scaling into
    /// one gather pass over per-worker scratch. Produces mappings
    /// bit-identical to [`RefinedMode::PerUser`].
    #[default]
    Shared,
    /// The per-user-from-scratch `refine_user` loop — the differential
    /// oracle the shared path is tested against
    /// (`tests/refined_parity.rs`), mirroring [`ScoringMode::Dense`].
    PerUser,
}

/// Whether the engine must reproduce the serial attack bit-for-bit or may
/// trade a bounded slice of recall for speed.
///
/// Unlike [`ScoringMode`] and [`RefinedMode`] — execution strategies whose
/// outcomes are pinned identical — this dial *can* change outcomes when
/// set to [`ExactnessMode::Approx`]. It is therefore opt-in, and the
/// default keeps every existing parity and golden suite byte-exact.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ExactnessMode {
    /// Bit-exact execution (the default): every surviving pair is scored
    /// with the full f64 kernels, identical to the serial `DeHealth::run`.
    #[default]
    Exact,
    /// The approximate fast tier. Two mechanisms engage, both governed by
    /// the same `margin` dial:
    ///
    /// - **Top-K margin prescreen** ([`IndexedScorer::with_margin`]):
    ///   pairs whose upper bound clears the running Top-K floor by less
    ///   than `margin` (in score units) are skipped without exact
    ///   scoring — first against the cheap global structural ceiling,
    ///   then against a per-pair u8-quantized one that tracks the true
    ///   score closely. Only active when pruning is (no Algorithm-2
    ///   filtering).
    /// - **Quantized refined kernels**
    ///   ([`refine_user_shared_quantized`]): KNN votes run over u8
    ///   affine-quantized feature arenas with integer accumulation; users
    ///   whose winning vote share beats the runner-up by less than
    ///   `margin` are rescored with the exact f64 kernel. Only applies to
    ///   the KNN classifier under [`RefinedMode::Shared`]; every other
    ///   classifier — and all verification schemes — stay exact.
    ///
    /// `Approx { margin: 0.0 }` is bit-identical to [`ExactnessMode::Exact`].
    Approx {
        /// The confidence margin: score units for the Top-K prescreen,
        /// vote-share units for the refined rescore band. Must be finite
        /// and `>= 0`.
        margin: f64,
    },
}

impl ExactnessMode {
    /// The active margin (`0.0` under [`ExactnessMode::Exact`]).
    #[must_use]
    pub fn margin(self) -> f64 {
        match self {
            Self::Exact => 0.0,
            Self::Approx { margin } => margin,
        }
    }

    /// True for [`ExactnessMode::Approx`].
    #[must_use]
    pub fn is_approx(self) -> bool {
        matches!(self, Self::Approx { .. })
    }
}

/// Execution-engine configuration: the attack parameters plus the
/// parallel-execution knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// The attack configuration (weights, K, classifier, verification…).
    /// `selection` must be [`Selection::Direct`]; graph-matching selection
    /// is a global optimization over the dense similarity matrix, which
    /// the engine never materializes — use `DeHealth::run` for it.
    pub attack: AttackConfig,
    /// Worker threads for the Top-K and Refined stages; `0` means
    /// [`std::thread::available_parallelism`].
    pub n_threads: usize,
    /// Anonymized users per work block (the unit of work stealing).
    pub block_size: usize,
    /// Pair-scoring path for the Top-K stage.
    pub scoring: ScoringMode,
    /// Feature-materialization path for the Refined-DA stage.
    pub refined: RefinedMode,
    /// Global cap on the Top-K candidates carried into filtering and the
    /// Refined-DA stage; `None` (the default) keeps every candidate.
    ///
    /// At large auxiliary scale the refined fan-out costs
    /// `O(Σ_u |candidates(u)| · posts)` — this budget bounds it with an
    /// explicit **recall contract** instead of silently: every anonymized
    /// user keeps its best-scoring candidate (Top-K recall@1 is never
    /// affected), and the remaining budget keeps the globally
    /// best-scoring entries, ties broken by `(user, candidate)` id for
    /// determinism. Trimmed entries are reported as `skipped` on the
    /// `budget` stage. Unlike the other engine knobs this one *does*
    /// change outcomes when it binds — it is a resource/recall dial, not
    /// an execution strategy.
    pub candidate_budget: Option<usize>,
    /// Exactness dial: bit-exact (the default) or the approximate fast
    /// tier with its confidence margin.
    pub exactness: ExactnessMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            attack: AttackConfig::default(),
            n_threads: 0,
            block_size: 64,
            scoring: ScoringMode::default(),
            refined: RefinedMode::default(),
            candidate_budget: None,
            exactness: ExactnessMode::default(),
        }
    }
}

impl EngineConfig {
    /// The resolved worker-thread count (`n_threads`, or the machine's
    /// available parallelism when 0).
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.n_threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.n_threads
        }
    }
}

/// The parallel De-Health execution engine.
///
/// Produces mappings bit-identical to the serial `DeHealth::run` (with
/// [`Selection::Direct`]) while keeping only `O(|V1| · K)` candidate state
/// instead of the dense `|V1| × |V2|` similarity matrix.
#[derive(Debug, Clone)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Create the engine.
    ///
    /// # Panics
    /// Panics if `config.attack.selection` is not [`Selection::Direct`]:
    /// graph-matching selection requires the dense similarity matrix.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        assert!(
            config.attack.selection == Selection::Direct,
            "dehealth-engine supports Selection::Direct only; graph-matching \
             selection needs the dense similarity matrix — use DeHealth::run"
        );
        let margin = config.exactness.margin();
        assert!(
            margin.is_finite() && margin >= 0.0,
            "approximate-tier margin must be finite and >= 0"
        );
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// One-shot attack: equivalent to a session ingesting `auxiliary` in a
    /// single chunk and finishing.
    #[must_use]
    pub fn run(&self, auxiliary: &Forum, anonymized: &Forum) -> EngineOutcome {
        let mut session = self.session(anonymized);
        session.add_auxiliary_users(auxiliary);
        session.finish()
    }

    /// Attack `anonymized` against a **pre-built** auxiliary corpus —
    /// the serving path behind `dehealth-service`'s long-lived daemon,
    /// where the auxiliary side is a standing asset (typically reloaded
    /// from a snapshot) and only the anonymized batch changes per call.
    ///
    /// Skips every piece of auxiliary preparation the one-shot
    /// [`Engine::run`] would redo: feature extraction and the UDA graph
    /// always, the [`AttributeIndex`] and the refined-DA
    /// [`RefinedContext`] when `aux` carries them (the context is used
    /// only if it matches the configured classifier's representation —
    /// sparse for KNN, dense otherwise — and is rebuilt from the
    /// prepared features otherwise, still without touching post text).
    /// Candidate sets and mappings are bit-identical to [`Engine::run`]
    /// on the same forums, and therefore to the serial `DeHealth::run`
    /// (`tests/service_parity.rs`).
    ///
    /// # Panics
    /// Panics if `aux` is internally inconsistent (feature/post count
    /// mismatch, or an index not covering exactly the corpus's users) —
    /// `PreparedAuxiliary` producers validate this at build/load time.
    #[must_use]
    pub fn run_prepared(&self, aux: &PreparedAuxiliary<'_>, anonymized: &Forum) -> EngineOutcome {
        assert_eq!(
            aux.features.len(),
            aux.forum.posts.len(),
            "prepared auxiliary features/posts mismatch"
        );
        if let Some(index) = aux.index {
            assert_eq!(
                index.n_users(),
                aux.forum.n_users,
                "prepared index does not cover the auxiliary corpus's users"
            );
        }
        let cfg = &self.config.attack;
        let mut report = EngineReport::new(self.config.effective_threads(), self.config.block_size);
        let ((anon_feats, anon_uda), secs) = timed(|| {
            let feats = extract_post_features(anonymized);
            let uda = UdaGraph::build_with_features(anonymized, &feats);
            (feats, uda)
        });
        report.record("prepare", "posts", anonymized.posts.len() as u64, secs);

        let sim = SimilarityEngine::new(&anon_uda, aux.uda, cfg.weights, cfg.n_landmarks);
        let built_index = match (self.config.scoring, aux.index) {
            (ScoringMode::Indexed, None) => Some(AttributeIndex::from_uda(aux.uda)),
            _ => None,
        };
        let index = match self.config.scoring {
            ScoringMode::Indexed => aux.index.or(built_index.as_ref()),
            ScoringMode::Dense => None,
        };
        let mut heaps = vec![BoundedTopK::new(cfg.top_k); anonymized.n_users];
        let mut bounds = ScoreBounds::new();
        topk_pass(&self.config, &sim, index, 0, &mut heaps, &mut bounds, &mut report);

        let anon_side = Side { forum: anonymized, uda: &anon_uda, post_features: &anon_feats };
        let aux_side = Side { forum: aux.forum, uda: aux.uda, post_features: aux.features };
        complete_attack(
            &self.config,
            &anon_side,
            &aux_side,
            heaps,
            bounds,
            aux.context,
            aux.quantized,
            report,
        )
    }

    /// Attack several independent anonymized batches against one
    /// **pre-built** auxiliary corpus in a single fused pass — the
    /// server-side batching path behind `dehealth-service`'s coalescing
    /// window.
    ///
    /// Each request carries its own [`AttackConfig`] (per-request
    /// `top_k`, `n_landmarks`, `seed`, filtering…), and each element of
    /// the returned vector is **bit-identical** to what
    /// [`Engine::run_prepared`] would produce for that request alone
    /// with the same attack config (pinned by `batch_matches_solo_runs`
    /// and, over the wire, `tests/service_parity.rs`): per-request
    /// numeric state (similarity engine, heaps, score bounds, refined
    /// classifiers) is kept fully separate, only *scheduling* and
    /// *shared auxiliary artifacts* are fused. What the batch amortizes
    /// across requests:
    ///
    /// - the [`AttributeIndex`] build when `aux` does not carry one
    ///   (built once, probed by every request);
    /// - the auxiliary [`RefinedContext`] rebuild when `aux`'s is
    ///   missing or does not match a request's classifier (built once
    ///   per distinct classifier kind, shared read-only);
    /// - worker-pool scheduling: the Top-K and Refined stages run as
    ///   *one* `run_blocks` pass each over the concatenated
    ///   per-(request, user) work items, so small requests fill the
    ///   pool together instead of each paying their own fan-out.
    ///
    /// Per-request [`EngineReport`]s carry exact per-request item
    /// counts; the wall-clock seconds of the fused `topk`/`refined`
    /// stages are batch-wide (the pass is shared, so per-request time
    /// is not separable) and therefore appear in every report.
    ///
    /// # Panics
    /// Panics if `aux` is internally inconsistent (as
    /// [`Engine::run_prepared`]) or if any request's
    /// `attack.selection` is not [`Selection::Direct`].
    #[must_use]
    pub fn run_prepared_batch(
        &self,
        aux: &PreparedAuxiliary<'_>,
        requests: &[BatchRequest<'_>],
    ) -> Vec<EngineOutcome> {
        assert_eq!(
            aux.features.len(),
            aux.forum.posts.len(),
            "prepared auxiliary features/posts mismatch"
        );
        if let Some(index) = aux.index {
            assert_eq!(
                index.n_users(),
                aux.forum.n_users,
                "prepared index does not cover the auxiliary corpus's users"
            );
        }
        for request in requests {
            assert!(
                request.attack.selection == Selection::Direct,
                "dehealth-engine supports Selection::Direct only"
            );
        }
        if requests.is_empty() {
            return Vec::new();
        }
        let n_req = requests.len();
        let threads = self.config.effective_threads();
        let mut reports: Vec<EngineReport> =
            (0..n_req).map(|_| EngineReport::new(threads, self.config.block_size)).collect();

        // Per-request anonymized-side preparation (independent numeric
        // state; nothing here is shared).
        let mut anon_prepared: Vec<(Vec<FeatureVector>, UdaGraph)> = Vec::with_capacity(n_req);
        for (request, report) in requests.iter().zip(&mut reports) {
            let ((feats, uda), secs) = timed(|| {
                let feats = extract_post_features(request.anonymized);
                let uda = UdaGraph::build_with_features(request.anonymized, &feats);
                (feats, uda)
            });
            report.record("prepare", "posts", request.anonymized.posts.len() as u64, secs);
            anon_prepared.push((feats, uda));
        }

        // Shared auxiliary artifacts: one index build serves the batch.
        let built_index = match (self.config.scoring, aux.index) {
            (ScoringMode::Indexed, None) => Some(AttributeIndex::from_uda(aux.uda)),
            _ => None,
        };
        let index = match self.config.scoring {
            ScoringMode::Indexed => aux.index.or(built_index.as_ref()),
            ScoringMode::Dense => None,
        };

        let sims: Vec<SimilarityEngine<'_>> = requests
            .iter()
            .zip(&anon_prepared)
            .map(|(request, (_, anon_uda))| {
                SimilarityEngine::new(
                    anon_uda,
                    aux.uda,
                    request.attack.weights,
                    request.attack.n_landmarks,
                )
            })
            .collect();
        let scorers: Vec<Option<IndexedScorer<'_, '_>>> = requests
            .iter()
            .zip(&sims)
            .map(|(request, sim)| {
                // Pruning per request, exactly as the solo path: off
                // whenever that request's filtering needs exact bounds.
                // The prescreen margin rides on pruning, as in `topk_pass`.
                index.map(|index| {
                    let prune = request.attack.filtering.is_none();
                    let margin = if prune { self.config.exactness.margin() } else { 0.0 };
                    IndexedScorer::new(sim, index, 0, prune).with_margin(margin)
                })
            })
            .collect();

        // Fused Top-K: one work-stealing pass over every
        // (request, anon user) item. Workers keep per-request bounds
        // and tallies so nothing numeric crosses request boundaries.
        struct TopkSlot {
            req: usize,
            u: usize,
            heap: BoundedTopK,
        }
        let mut slots: Vec<TopkSlot> = requests
            .iter()
            .enumerate()
            .flat_map(|(req, request)| {
                (0..request.anonymized.n_users).map(move |u| TopkSlot {
                    req,
                    u,
                    heap: BoundedTopK::new(request.attack.top_k),
                })
            })
            .collect();
        let mut bounds: Vec<ScoreBounds> = (0..n_req).map(|_| ScoreBounds::new()).collect();
        let mut tallies: Vec<PairTally> = vec![PairTally::default(); n_req];
        let ((), topk_secs) = timed(|| {
            let states = run_blocks(
                &mut slots,
                self.config.block_size,
                threads,
                || {
                    (
                        (0..n_req).map(|_| ScoreBounds::new()).collect::<Vec<_>>(),
                        vec![PairTally::default(); n_req],
                        (0..n_req).map(|_| None).collect::<Vec<_>>(),
                    )
                },
                |_, block, (local_bounds, local_tallies, scratches)| {
                    for slot in block.iter_mut() {
                        let r = slot.req;
                        if let Some(scorer) = &scorers[r] {
                            let scratch = scratches[r].get_or_insert_with(|| scorer.scratch());
                            local_tallies[r] += scorer.score_user(
                                slot.u,
                                scratch,
                                &mut slot.heap,
                                &mut local_bounds[r],
                            );
                        } else {
                            for (v, s) in sims[r].scores_for(slot.u) {
                                slot.heap.insert(v, s);
                                local_bounds[r].observe(s);
                                local_tallies[r].scored += 1;
                            }
                        }
                    }
                },
            );
            for (local_bounds, local_tallies, _) in states {
                for (merged, local) in bounds.iter_mut().zip(local_bounds) {
                    merged.merge(local);
                }
                for (merged, local) in tallies.iter_mut().zip(local_tallies) {
                    *merged += local;
                }
            }
        });
        for (report, tally) in reports.iter_mut().zip(&tallies) {
            report.record("topk", "pairs", tally.scored, 0.0);
            report.record_skipped("topk", "pairs", tally.pruned);
            report.record_prescreen(tally.admitted, tally.skipped);
            // Batch-wide stage wall-clock (the fused pass is shared).
            report.record("topk", "pairs", 0, topk_secs);
        }

        // Per-request candidate extraction + Algorithm-2 filtering
        // (cheap, serial), exactly as the solo `complete_attack`.
        let mut per_req_scores: Vec<Vec<Vec<(usize, f64)>>> =
            requests.iter().map(|r| vec![Vec::new(); r.anonymized.n_users]).collect();
        for slot in slots {
            per_req_scores[slot.req][slot.u] = slot.heap.into_sorted_entries();
        }
        // The candidate budget applies per request, exactly as each
        // request's solo run would enforce it.
        for (scores, report) in per_req_scores.iter_mut().zip(&mut reports) {
            apply_candidate_budget(self.config.candidate_budget, scores, report);
        }
        let mut per_req_candidates: Vec<CandidateSets> = per_req_scores
            .iter()
            .map(|scores| {
                scores.iter().map(|entries| entries.iter().map(|&(v, _)| v).collect()).collect()
            })
            .collect();
        for (r, request) in requests.iter().enumerate() {
            if let Some(filter_cfg) = &request.attack.filtering {
                let ((), secs) = timed(|| {
                    let thresholds = threshold_vector(bounds[r], filter_cfg);
                    let mut scores: HashMap<usize, f64> = HashMap::new();
                    for (cands, entries) in per_req_candidates[r].iter_mut().zip(&per_req_scores[r])
                    {
                        scores.clear();
                        scores.extend(entries.iter().copied());
                        let score_of =
                            |v: usize| scores.get(&v).copied().unwrap_or(f64::NEG_INFINITY);
                        match filter_user(score_of, cands, &thresholds) {
                            Filtered::Kept(kept) => *cands = kept,
                            Filtered::Rejected => cands.clear(),
                        }
                    }
                });
                reports[r].record("filter", "users", request.anonymized.n_users as u64, secs);
            }
        }

        // Fused Refined DA. Auxiliary contexts are the shared artifact:
        // one build per distinct classifier kind serves every request
        // that needs a rebuild (`matches_classifier` decides, exactly
        // as the solo path — parity holds because a rebuilt context is
        // bit-identical to a matching pre-built one).
        let aux_side = Side { forum: aux.forum, uda: aux.uda, post_features: aux.features };
        let anon_sides: Vec<Side<'_>> = requests
            .iter()
            .zip(&anon_prepared)
            .map(|(request, (feats, uda))| Side {
                forum: request.anonymized,
                uda,
                post_features: feats,
            })
            .collect();
        let n_aux = aux.forum.n_users;
        let mut mappings: Vec<Vec<Option<usize>>> =
            requests.iter().map(|r| vec![None; r.anonymized.n_users]).collect();
        let mut rescored_per_req = vec![0u64; n_req];
        let ((), refined_secs) = timed(|| {
            /// Which auxiliary context a request's refined stage reads.
            #[derive(Clone, Copy)]
            enum AuxCtx {
                /// `aux.context` matches this request's classifier.
                Prepared,
                /// Index into the batch-shared rebuild cache.
                Rebuilt(usize),
            }
            let mut rebuilt: Vec<RefinedContext> = Vec::new();
            let contexts: Vec<Option<(RefinedContext, AuxCtx)>> = match self.config.refined {
                RefinedMode::Shared => requests
                    .iter()
                    .zip(&anon_sides)
                    .map(|(request, anon_side)| {
                        let classifier = request.attack.classifier;
                        let aux_ctx = match aux.context {
                            Some(ctx) if ctx.matches_classifier(classifier) => AuxCtx::Prepared,
                            _ => AuxCtx::Rebuilt(
                                rebuilt
                                    .iter()
                                    .position(|ctx| ctx.matches_classifier(classifier))
                                    .unwrap_or_else(|| {
                                        rebuilt.push(RefinedContext::build(&aux_side, classifier));
                                        rebuilt.len() - 1
                                    }),
                            ),
                        };
                        Some((RefinedContext::build(anon_side, classifier), aux_ctx))
                    })
                    .collect(),
                RefinedMode::PerUser => (0..n_req).map(|_| None).collect(),
            };
            // Approximate tier: quantized mirrors of the auxiliary
            // contexts (one per distinct context an approx KNN request
            // reads — shared exactly like the rebuild cache above), plus
            // each such request's anonymized code rows in that mirror's
            // code space.
            // As in the solo path, a zero margin keeps the exact kernel
            // (empty rescore band ⇒ quantized votes would decide alone).
            let approx = self.config.exactness.margin() > 0.0;
            let margin = self.config.exactness.margin();
            let mut prepared_q: Option<QuantizedContext> = None;
            let mut rebuilt_q: Vec<Option<QuantizedContext>> =
                (0..rebuilt.len()).map(|_| None).collect();
            let anon_q: Vec<Option<QuantizedRows>> = requests
                .iter()
                .enumerate()
                .map(|(r, request)| {
                    let (anon_ctx, aux_ref) = contexts[r].as_ref()?;
                    if !approx || !matches!(request.attack.classifier, ClassifierKind::Knn { .. }) {
                        return None;
                    }
                    let aux_q: &QuantizedContext = match aux_ref {
                        AuxCtx::Prepared => {
                            let ctx = aux.context.expect("Prepared implies aux.context");
                            match aux.quantized {
                                Some(q) if q.matches_context(ctx) => q,
                                _ => prepared_q.get_or_insert_with(|| {
                                    QuantizedContext::from_context(ctx)
                                        .expect("KNN contexts are sparse and therefore quantizable")
                                }),
                            }
                        }
                        AuxCtx::Rebuilt(i) => rebuilt_q[*i].get_or_insert_with(|| {
                            QuantizedContext::from_context(&rebuilt[*i])
                                .expect("KNN contexts are sparse and therefore quantizable")
                        }),
                    };
                    Some(
                        aux_q
                            .quantize_rows(anon_ctx)
                            .expect("KNN contexts are sparse and therefore quantizable"),
                    )
                })
                .collect();
            let refined_cfgs: Vec<RefinedConfig> = requests
                .iter()
                .map(|request| RefinedConfig {
                    classifier: request.attack.classifier,
                    verification: request.attack.verification,
                    seed: request.attack.seed,
                })
                .collect();

            struct RefinedSlot {
                req: usize,
                u: usize,
                out: Option<usize>,
            }
            let mut refined_slots: Vec<RefinedSlot> = requests
                .iter()
                .enumerate()
                .flat_map(|(req, request)| {
                    (0..request.anonymized.n_users).map(move |u| RefinedSlot { req, u, out: None })
                })
                .collect();
            let states = run_blocks(
                &mut refined_slots,
                self.config.block_size,
                threads,
                || (vec![f64::NEG_INFINITY; n_aux], RefinedScratch::new(), vec![0u64; n_req]),
                |_, block, (scratch_row, scratch, rescored)| {
                    for slot in block.iter_mut() {
                        let (r, u) = (slot.req, slot.u);
                        for &(v, s) in &per_req_scores[r][u] {
                            scratch_row[v] = s;
                        }
                        slot.out = match &contexts[r] {
                            Some((anon_ctx, aux_ref)) => {
                                let aux_ctx: &RefinedContext = match aux_ref {
                                    AuxCtx::Prepared => {
                                        aux.context.expect("Prepared implies aux.context")
                                    }
                                    AuxCtx::Rebuilt(i) => &rebuilt[*i],
                                };
                                if let Some(anon_rows) = &anon_q[r] {
                                    let aux_q: &QuantizedContext = match aux_ref {
                                        AuxCtx::Prepared => match aux.quantized {
                                            Some(q) if q.matches_context(aux_ctx) => q,
                                            _ => prepared_q
                                                .as_ref()
                                                .expect("cached while quantizing anon rows"),
                                        },
                                        AuxCtx::Rebuilt(i) => rebuilt_q[*i]
                                            .as_ref()
                                            .expect("cached while quantizing anon rows"),
                                    };
                                    let (out, re) = refine_user_shared_quantized(
                                        u,
                                        &per_req_candidates[r][u],
                                        &anon_sides[r],
                                        &aux_side,
                                        anon_ctx,
                                        anon_rows,
                                        aux_ctx,
                                        aux_q,
                                        scratch_row,
                                        &refined_cfgs[r],
                                        margin,
                                        scratch,
                                    );
                                    rescored[r] += u64::from(re);
                                    out
                                } else {
                                    refine_user_shared(
                                        u,
                                        &per_req_candidates[r][u],
                                        &anon_sides[r],
                                        &aux_side,
                                        anon_ctx,
                                        aux_ctx,
                                        scratch_row,
                                        &refined_cfgs[r],
                                        scratch,
                                    )
                                }
                            }
                            None => refine_user(
                                u,
                                &per_req_candidates[r][u],
                                &anon_sides[r],
                                &aux_side,
                                scratch_row,
                                &refined_cfgs[r],
                            ),
                        };
                        for &(v, _) in &per_req_scores[r][u] {
                            scratch_row[v] = f64::NEG_INFINITY;
                        }
                    }
                },
            );
            for (_, _, rescored) in states {
                for (total, n) in rescored_per_req.iter_mut().zip(rescored) {
                    *total += n;
                }
            }
            for slot in refined_slots {
                mappings[slot.req][slot.u] = slot.out;
            }
        });
        for (r, request) in requests.iter().enumerate() {
            reports[r].record("refined", "users", request.anonymized.n_users as u64, refined_secs);
            reports[r].record_rescored(rescored_per_req[r]);
        }

        let mut outcomes = Vec::with_capacity(n_req);
        for (((candidates, candidate_scores), mapping), report) in
            per_req_candidates.into_iter().zip(per_req_scores).zip(mappings).zip(reports)
        {
            outcomes.push(EngineOutcome { candidates, candidate_scores, mapping, report });
        }
        outcomes
    }

    /// Start an incremental session against `anonymized`: auxiliary data
    /// can then be ingested chunk by chunk with
    /// [`EngineSession::add_auxiliary_users`].
    #[must_use]
    pub fn session<'a>(&self, anonymized: &'a Forum) -> EngineSession<'a> {
        let mut report = EngineReport::new(self.config.effective_threads(), self.config.block_size);
        let ((anon_feats, anon_uda), secs) = timed(|| {
            let feats = extract_post_features(anonymized);
            let uda = UdaGraph::build_with_features(anonymized, &feats);
            (feats, uda)
        });
        report.record("prepare", "posts", anonymized.posts.len() as u64, secs);
        let heaps = vec![BoundedTopK::new(self.config.attack.top_k); anonymized.n_users];
        let index = match self.config.scoring {
            ScoringMode::Indexed => Some(AttributeIndex::new()),
            ScoringMode::Dense => None,
        };
        EngineSession {
            config: self.config.clone(),
            anon_forum: anonymized,
            anon_feats,
            anon_uda,
            aux_posts: Vec::new(),
            aux_feats: Vec::new(),
            aux_users: 0,
            aux_threads: 0,
            heaps,
            index,
            bounds: ScoreBounds::new(),
            report,
        }
    }
}

/// An in-progress attack accumulating auxiliary data.
///
/// Each ingested chunk brings *new* auxiliary users (chunk-local ids are
/// offset into a global id space; chunk threads are disjoint from earlier
/// chunks — the streaming-auxiliary-data scenario). Only the
/// `|V1| × |chunk|` pair block is scored per ingest; previously scored
/// pairs are never revisited, their surviving scores live in the per-user
/// bounded Top-K heaps.
///
/// Structural caveat: each chunk's degree/distance similarities are
/// computed against the chunk's own correlation graph and landmarks, so
/// with non-zero `c1`/`c2` weights a multi-chunk session approximates a
/// batch run (exact for attribute-only weights `c1 = c2 = 0`, and exact
/// for any weights when the session has a single chunk).
#[derive(Debug)]
pub struct EngineSession<'a> {
    config: EngineConfig,
    anon_forum: &'a Forum,
    anon_feats: Vec<FeatureVector>,
    anon_uda: UdaGraph,
    /// Accumulated auxiliary posts, authors/threads in global id space.
    aux_posts: Vec<Post>,
    /// Per-post features, parallel to `aux_posts` (extraction is a pure
    /// per-post function, so chunk-time features are reused at finish).
    aux_feats: Vec<FeatureVector>,
    aux_users: usize,
    aux_threads: usize,
    heaps: Vec<BoundedTopK>,
    /// Session-global inverted index over all ingested auxiliary users
    /// (`Some` iff [`ScoringMode::Indexed`]); each ingest appends the
    /// chunk's postings and probes only the new suffix.
    index: Option<AttributeIndex>,
    bounds: ScoreBounds,
    report: EngineReport,
}

impl EngineSession<'_> {
    /// Number of auxiliary users ingested so far.
    #[must_use]
    pub fn n_auxiliary_users(&self) -> usize {
        self.aux_users
    }

    /// The execution report so far.
    #[must_use]
    pub fn report(&self) -> &EngineReport {
        &self.report
    }

    /// Ingest a chunk of new auxiliary users and update every anonymized
    /// user's candidate heap with the `|V1| × |chunk|` pair block, sharded
    /// across the worker pool. Chunk-local user/thread ids are offset by
    /// the totals ingested so far.
    ///
    /// With [`ScoringMode::Indexed`] the chunk's postings are appended to
    /// the session's inverted index first, and workers probe only the new
    /// posting suffixes; pairs whose upper bound cannot beat a user's
    /// running Top-K floor are pruned (counted as `skipped` on the `topk`
    /// stage) unless Algorithm-2 filtering requires exact score bounds.
    pub fn add_auxiliary_users(&mut self, chunk: &Forum) {
        let user_offset = self.aux_users;
        let thread_offset = self.aux_threads;

        let (chunk_feats, prep_secs) = timed(|| extract_post_features(chunk));
        let chunk_uda = UdaGraph::build_with_features(chunk, &chunk_feats);
        self.report.record("prepare", "posts", chunk.posts.len() as u64, prep_secs);

        let cfg = &self.config.attack;
        let sim = SimilarityEngine::new(&self.anon_uda, &chunk_uda, cfg.weights, cfg.n_landmarks);

        if let Some(index) = &mut self.index {
            index.append_uda(&chunk_uda);
        }
        topk_pass(
            &self.config,
            &sim,
            self.index.as_ref(),
            user_offset,
            &mut self.heaps,
            &mut self.bounds,
            &mut self.report,
        );

        for post in &chunk.posts {
            self.aux_posts.push(Post {
                author: post.author + user_offset,
                thread: post.thread + thread_offset,
                text: post.text.clone(),
            });
        }
        self.aux_feats.extend(chunk_feats);
        self.aux_users += chunk.n_users;
        self.aux_threads += chunk.n_threads;
    }

    /// Run candidate filtering (if configured) and the parallel Refined-DA
    /// stage over the accumulated candidates, producing the final outcome.
    #[must_use]
    pub fn finish(self) -> EngineOutcome {
        let EngineSession {
            config,
            anon_forum,
            anon_feats,
            anon_uda,
            aux_posts,
            aux_feats,
            aux_users,
            aux_threads,
            heaps,
            index: _,
            bounds,
            mut report,
        } = self;

        // Materialize the merged auxiliary side for classifier training.
        let ((aux_forum, aux_uda), prep_secs) = timed(|| {
            let forum = Forum::from_posts(aux_users, aux_threads, aux_posts);
            let uda = UdaGraph::build_with_features(&forum, &aux_feats);
            (forum, uda)
        });
        report.record("prepare", "posts", 0, prep_secs);

        let anon_side = Side { forum: anon_forum, uda: &anon_uda, post_features: &anon_feats };
        let aux_side = Side { forum: &aux_forum, uda: &aux_uda, post_features: &aux_feats };
        complete_attack(&config, &anon_side, &aux_side, heaps, bounds, None, None, report)
    }
}

/// One request of an [`Engine::run_prepared_batch`] call: an anonymized
/// batch plus the attack configuration to run it under. The engine-level
/// knobs (threads, block size, scoring/refined modes) come from the
/// [`EngineConfig`] of the engine executing the batch — results are
/// invariant to all of them (`tests/engine_parity.rs`), so sharing them
/// across a batch loses nothing.
#[derive(Debug, Clone)]
pub struct BatchRequest<'a> {
    /// Attack parameters for this request (`selection` must be
    /// [`Selection::Direct`]).
    pub attack: AttackConfig,
    /// The anonymized forum to attack.
    pub anonymized: &'a Forum,
}

/// A fully prepared auxiliary corpus for [`Engine::run_prepared`]: the
/// forum with its per-post features and UDA graph, plus (optionally) the
/// derived scoring index and refined-DA feature context. This is the
/// borrowed view a long-lived service hands the engine for every incoming
/// anonymized batch — built once (or reloaded from a snapshot) instead of
/// re-extracted per attack.
///
/// The index and context are storage-generic: their arenas are
/// [`ArenaView`](dehealth_core::arena::ArenaView)s, so the *same* types
/// cover a freshly built corpus (owned `Vec` storage) and a zero-copy
/// snapshot load whose arenas borrow a memory-mapped file. The engine's
/// scoring and refined stages read them through slices either way, and
/// `tests/service_parity.rs` pins that a wire attack on a mapped corpus
/// is bit-identical to the owned-load and serial references.
#[derive(Debug, Clone, Copy)]
pub struct PreparedAuxiliary<'a> {
    /// The auxiliary forum.
    pub forum: &'a Forum,
    /// Per-post stylometric features, parallel to `forum.posts`.
    pub features: &'a [FeatureVector],
    /// The forum's UDA graph.
    pub uda: &'a UdaGraph,
    /// Pre-built attribute index covering exactly `forum`'s users (built
    /// on the fly when `None` and [`ScoringMode::Indexed`] is configured).
    /// May be owned or snapshot-borrowed.
    pub index: Option<&'a AttributeIndex>,
    /// Pre-built refined-DA context of the auxiliary side (rebuilt from
    /// `features` when `None`, or when its representation does not match
    /// the configured classifier). May be owned or snapshot-borrowed.
    pub context: Option<&'a RefinedContext>,
    /// Pre-built quantized mirror of `context` for the approximate tier
    /// (quantized on the fly when `None` and [`ExactnessMode::Approx`]
    /// needs it, or when it does not match the context actually used).
    /// Ignored entirely in exact mode. May be owned or snapshot-borrowed.
    pub quantized: Option<&'a QuantizedContext>,
}

/// One Top-K scoring pass of `sim`'s full anonymized population against
/// its auxiliary side, sharded over the worker pool — the shared core of
/// [`EngineSession::add_auxiliary_users`] (where `from` is the session's
/// pre-ingest watermark) and [`Engine::run_prepared`] (where `from` is
/// 0). With an `index` the pass probes posting suffixes and prunes
/// against each heap's floor; pruning stays off whenever Algorithm-2
/// filtering needs exact global [`ScoreBounds`].
fn topk_pass(
    config: &EngineConfig,
    sim: &SimilarityEngine<'_>,
    index: Option<&AttributeIndex>,
    from: usize,
    heaps: &mut [BoundedTopK],
    bounds: &mut ScoreBounds,
    report: &mut EngineReport,
) {
    // Pruning would hide the global score minimum from `bounds`, which
    // Algorithm-2 filtering thresholds against — so it is only enabled
    // when no filtering is configured.
    let prune = config.attack.filtering.is_none();
    // The margin prescreen piggybacks on pruning (it compares the same
    // upper bound against the same floor), so it is inert without it.
    let margin = if prune { config.exactness.margin() } else { 0.0 };
    let scorer = index.map(|index| IndexedScorer::new(sim, index, from, prune).with_margin(margin));
    let ((), topk_secs) = timed(|| {
        let states = run_blocks(
            heaps,
            config.block_size,
            config.effective_threads(),
            || {
                (
                    ScoreBounds::new(),
                    PairTally::default(),
                    scorer.as_ref().map(IndexedScorer::scratch),
                )
            },
            |offset, block, (local_bounds, tally, scratch)| {
                for (i, heap) in block.iter_mut().enumerate() {
                    let u = offset + i;
                    if let (Some(scorer), Some(scratch)) = (&scorer, scratch.as_mut()) {
                        *tally += scorer.score_user(u, scratch, heap, local_bounds);
                    } else {
                        for (v, s) in sim.scores_for(u) {
                            heap.insert(from + v, s);
                            local_bounds.observe(s);
                            tally.scored += 1;
                        }
                    }
                }
            },
        );
        let mut total = PairTally::default();
        for (local_bounds, local_tally, _) in states {
            bounds.merge(local_bounds);
            total += local_tally;
        }
        report.record("topk", "pairs", total.scored, 0.0);
        report.record_skipped("topk", "pairs", total.pruned);
        report.record_prescreen(total.admitted, total.skipped);
    });
    // Attribute the stage wall-clock once (items were counted above).
    report.record("topk", "pairs", 0, topk_secs);
}

/// Enforce [`EngineConfig::candidate_budget`] over per-user candidate
/// score lists (sorted by decreasing score, as
/// [`BoundedTopK::into_sorted_entries`] returns them).
///
/// Contract: each user's best-scoring entry is reserved unconditionally;
/// the remaining budget keeps the globally best-scoring tail entries
/// (score descending, ties by ascending `(user, candidate)`), preserving
/// each surviving list's order. No-op when the budget is absent or not
/// exceeded. The number of trimmed entries is recorded as `skipped` on
/// the `budget` stage.
fn apply_candidate_budget(
    budget: Option<usize>,
    candidate_scores: &mut [Vec<(usize, f64)>],
    report: &mut EngineReport,
) {
    let Some(budget) = budget else { return };
    let total: usize = candidate_scores.iter().map(Vec::len).sum();
    if total <= budget {
        return;
    }
    let reserved = candidate_scores.iter().filter(|e| !e.is_empty()).count();
    let spare = budget.saturating_sub(reserved);
    let mut tail: Vec<(f64, usize, usize)> = Vec::with_capacity(total - reserved);
    for (u, entries) in candidate_scores.iter().enumerate() {
        for &(v, s) in entries.iter().skip(1) {
            tail.push((s, u, v));
        }
    }
    tail.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let keep: HashSet<(usize, usize)> = tail.iter().take(spare).map(|&(_, u, v)| (u, v)).collect();
    let mut trimmed = 0u64;
    for (u, entries) in candidate_scores.iter_mut().enumerate() {
        let before = entries.len();
        let mut rank = 0usize;
        entries.retain(|&(v, _)| {
            let keep_it = rank == 0 || keep.contains(&(u, v));
            rank += 1;
            keep_it
        });
        trimmed += (before - entries.len()) as u64;
    }
    report.record_skipped("budget", "candidates", trimmed);
}

/// The post-scoring pipeline shared by [`EngineSession::finish`] and
/// [`Engine::run_prepared`]: extract candidate sets from the heaps, run
/// Algorithm-2 filtering (if configured), and fan the Refined-DA stage
/// out over the worker pool.
///
/// `aux_context` short-circuits the auxiliary-side context build of
/// [`RefinedMode::Shared`] when a matching pre-built context is at hand
/// (the snapshot-serving path); a context for the wrong classifier
/// representation is ignored and rebuilt from `aux_side`'s features.
/// `aux_quantized` does the same for the approximate tier's quantized
/// mirror — used only under [`ExactnessMode::Approx`] with the KNN
/// classifier, and quantized on the fly from the auxiliary context when
/// absent or mismatched.
#[allow(clippy::too_many_arguments)]
fn complete_attack(
    config: &EngineConfig,
    anon_side: &Side<'_>,
    aux_side: &Side<'_>,
    heaps: Vec<BoundedTopK>,
    bounds: ScoreBounds,
    aux_context: Option<&RefinedContext>,
    aux_quantized: Option<&QuantizedContext>,
    mut report: EngineReport,
) -> EngineOutcome {
    let cfg = &config.attack;
    let n_anon = anon_side.forum.n_users;
    let n_aux = aux_side.forum.n_users;

    // Candidate sets (and their scores, for verification/filtering).
    let mut candidate_scores: Vec<Vec<(usize, f64)>> =
        heaps.into_iter().map(BoundedTopK::into_sorted_entries).collect();
    apply_candidate_budget(config.candidate_budget, &mut candidate_scores, &mut report);
    let candidate_scores = candidate_scores;
    let mut candidates: CandidateSets =
        candidate_scores.iter().map(|entries| entries.iter().map(|&(v, _)| v).collect()).collect();

    if let Some(filter_cfg) = &cfg.filtering {
        let ((), secs) = timed(|| {
            let thresholds = threshold_vector(bounds, filter_cfg);
            // `filter_user` probes each candidate once per threshold
            // level; a per-user score map keeps that O(1) instead of a
            // linear `find` over the entry list (O(K²·levels) total).
            let mut scores: HashMap<usize, f64> = HashMap::new();
            for (cands, entries) in candidates.iter_mut().zip(&candidate_scores) {
                scores.clear();
                scores.extend(entries.iter().copied());
                let score_of = |v: usize| scores.get(&v).copied().unwrap_or(f64::NEG_INFINITY);
                match filter_user(score_of, cands, &thresholds) {
                    Filtered::Kept(kept) => *cands = kept,
                    Filtered::Rejected => cands.clear(),
                }
            }
        });
        report.record("filter", "users", n_anon as u64, secs);
    }

    // Refined DA, fanned out per anonymized user. Each worker carries a
    // scratch similarity row (dense in the aux id space, but transient
    // and per-worker) holding only the user's candidate scores — the
    // verification schemes read nothing else. With [`RefinedMode::Shared`]
    // the per-side feature arenas are materialized once here and shared
    // read-only across workers, whose [`RefinedScratch`] buffers amortize
    // all per-user allocations; [`RefinedMode::PerUser`] runs the
    // from-scratch oracle instead. The context build is billed to the
    // refined stage — it is part of what the fast path trades the
    // per-user densification for (and what a pre-built `aux_context`
    // saves).
    let refined_cfg = RefinedConfig {
        classifier: cfg.classifier,
        verification: cfg.verification,
        seed: cfg.seed,
    };
    let mut mapping: Vec<Option<usize>> = vec![None; n_anon];
    let mut rescored_total = 0u64;
    let ((), refined_secs) = timed(|| {
        let contexts: Option<(RefinedContext, Cow<'_, RefinedContext>)> = match config.refined {
            RefinedMode::Shared => {
                let aux_ctx = match aux_context {
                    Some(ctx) if ctx.matches_classifier(cfg.classifier) => Cow::Borrowed(ctx),
                    _ => Cow::Owned(RefinedContext::build(aux_side, cfg.classifier)),
                };
                Some((RefinedContext::build(anon_side, cfg.classifier), aux_ctx))
            }
            RefinedMode::PerUser => None,
        };
        // The approximate tier's quantized mirror: only for KNN under the
        // shared path; every other classifier stays exact under Approx.
        // Gated on the margin, not `is_approx()`: at `margin == 0.0` the
        // rescore band is empty, so quantized votes would decide outright
        // — engaging the mirror there would break the contract that a
        // zero margin is bit-identical to `Exact`.
        let quantized: Option<(QuantizedRows, Cow<'_, QuantizedContext>)> = match &contexts {
            Some((anon_ctx, aux_ctx))
                if config.exactness.margin() > 0.0
                    && matches!(cfg.classifier, ClassifierKind::Knn { .. }) =>
            {
                let aux_q = match aux_quantized {
                    Some(q) if q.matches_context(aux_ctx) => Cow::Borrowed(q),
                    _ => Cow::Owned(
                        QuantizedContext::from_context(aux_ctx)
                            .expect("KNN contexts are sparse and therefore quantizable"),
                    ),
                };
                let anon_q = aux_q
                    .quantize_rows(anon_ctx)
                    .expect("KNN contexts are sparse and therefore quantizable");
                Some((anon_q, aux_q))
            }
            _ => None,
        };
        let margin = config.exactness.margin();
        let states = run_blocks(
            &mut mapping,
            config.block_size,
            config.effective_threads(),
            || (vec![f64::NEG_INFINITY; n_aux], RefinedScratch::new(), 0u64),
            |offset, block, (scratch_row, scratch, rescored)| {
                for (i, slot) in block.iter_mut().enumerate() {
                    let u = offset + i;
                    for &(v, s) in &candidate_scores[u] {
                        scratch_row[v] = s;
                    }
                    *slot = match (&contexts, &quantized) {
                        (Some((anon_ctx, aux_ctx)), Some((anon_q, aux_q))) => {
                            let (out, re) = refine_user_shared_quantized(
                                u,
                                &candidates[u],
                                anon_side,
                                aux_side,
                                anon_ctx,
                                anon_q,
                                aux_ctx,
                                aux_q,
                                scratch_row,
                                &refined_cfg,
                                margin,
                                scratch,
                            );
                            *rescored += u64::from(re);
                            out
                        }
                        (Some((anon_ctx, aux_ctx)), None) => refine_user_shared(
                            u,
                            &candidates[u],
                            anon_side,
                            aux_side,
                            anon_ctx,
                            aux_ctx,
                            scratch_row,
                            &refined_cfg,
                            scratch,
                        ),
                        (None, _) => refine_user(
                            u,
                            &candidates[u],
                            anon_side,
                            aux_side,
                            scratch_row,
                            &refined_cfg,
                        ),
                    };
                    for &(v, _) in &candidate_scores[u] {
                        scratch_row[v] = f64::NEG_INFINITY;
                    }
                }
            },
        );
        for (_, _, rescored) in states {
            rescored_total += rescored;
        }
    });
    report.record("refined", "users", n_anon as u64, refined_secs);
    report.record_rescored(rescored_total);

    EngineOutcome { candidates, candidate_scores, mapping, report }
}

/// Everything the engine produced for one attack.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// Final candidate set per anonymized user (post-filtering; empty =
    /// rejected in the Top-K phase) — sorted by decreasing similarity.
    pub candidates: CandidateSets,
    /// The Top-K `(aux_user, score)` entries per anonymized user, sorted
    /// best-first, *before* filtering. This is the engine's sparse
    /// replacement for the serial attack's dense similarity matrix.
    pub candidate_scores: Vec<Vec<(usize, f64)>>,
    /// Refined-DA decision per anonymized user (`None` = `u → ⊥`).
    pub mapping: Vec<Option<usize>>,
    /// Per-stage wall-clock/throughput counters.
    pub report: EngineReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dehealth_core::{AttackConfig, DeHealth};
    use dehealth_corpus::{closed_world_split, ForumConfig, SplitConfig};

    fn tiny_split() -> dehealth_corpus::Split {
        let forum = Forum::generate(&ForumConfig::tiny(), 42);
        closed_world_split(&forum, &SplitConfig::fraction(0.5), 7)
    }

    fn attack_cfg() -> AttackConfig {
        AttackConfig { top_k: 5, n_landmarks: 10, ..AttackConfig::default() }
    }

    #[test]
    fn engine_matches_serial_attack() {
        // Both scoring modes (indexed is the default, dense the oracle)
        // must be bit-identical to the serial attack.
        let split = tiny_split();
        let serial = DeHealth::new(attack_cfg()).run(&split.auxiliary, &split.anonymized);
        for scoring in [ScoringMode::Indexed, ScoringMode::Dense] {
            let engine = Engine::new(EngineConfig {
                attack: attack_cfg(),
                n_threads: 3,
                block_size: 8,
                scoring,
                ..EngineConfig::default()
            });
            let out = engine.run(&split.auxiliary, &split.anonymized);
            assert_eq!(out.candidates, serial.candidates, "{scoring:?}");
            assert_eq!(out.mapping, serial.mapping, "{scoring:?}");
            // Candidate scores are bit-identical to the matrix entries.
            for (u, entries) in out.candidate_scores.iter().enumerate() {
                for &(v, s) in entries {
                    assert_eq!(s.to_bits(), serial.similarity[u][v].to_bits());
                }
            }
        }
    }

    #[test]
    fn candidate_budget_honors_the_recall_contract() {
        let split = tiny_split();
        let base = Engine::new(EngineConfig {
            attack: attack_cfg(),
            n_threads: 2,
            block_size: 8,
            ..EngineConfig::default()
        })
        .run(&split.auxiliary, &split.anonymized);
        let total: usize = base.candidate_scores.iter().map(Vec::len).sum();
        assert!(total > 8, "need enough candidates to trim");

        // A budget larger than the workload is a no-op.
        let loose = Engine::new(EngineConfig {
            attack: attack_cfg(),
            n_threads: 2,
            block_size: 8,
            candidate_budget: Some(total),
            ..EngineConfig::default()
        })
        .run(&split.auxiliary, &split.anonymized);
        assert_eq!(loose.candidates, base.candidates);
        assert_eq!(loose.mapping, base.mapping);
        assert!(loose.report.stage("budget").is_none());

        // A binding budget trims to exactly the contract: per-user best
        // entries always survive, the spare budget keeps the globally
        // best-scoring tail entries.
        let budget = total / 2;
        let tight = Engine::new(EngineConfig {
            attack: attack_cfg(),
            n_threads: 2,
            block_size: 8,
            candidate_budget: Some(budget),
            ..EngineConfig::default()
        })
        .run(&split.auxiliary, &split.anonymized);
        let kept: usize = tight.candidate_scores.iter().map(Vec::len).sum();
        let reserved = base.candidate_scores.iter().filter(|e| !e.is_empty()).count();
        assert_eq!(kept, budget.max(reserved));
        assert_eq!(tight.report.stage("budget").unwrap().skipped, (total - kept) as u64);

        // Expected survivors, recomputed independently from the
        // unbudgeted run.
        let mut tail: Vec<(f64, usize, usize)> = Vec::new();
        for (u, entries) in base.candidate_scores.iter().enumerate() {
            for &(v, s) in entries.iter().skip(1) {
                tail.push((s, u, v));
            }
        }
        tail.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let keep: HashSet<(usize, usize)> =
            tail.iter().take(budget - reserved).map(|&(_, u, v)| (u, v)).collect();
        for (u, (base_e, tight_e)) in
            base.candidate_scores.iter().zip(&tight.candidate_scores).enumerate()
        {
            let expect: Vec<(usize, f64)> = base_e
                .iter()
                .enumerate()
                .filter(|&(rank, &(v, _))| rank == 0 || keep.contains(&(u, v)))
                .map(|(_, &e)| e)
                .collect();
            assert_eq!(&expect, tight_e, "user {u} survivors diverge from the contract");
            // Recall@1 is untouched: the top candidate survives.
            if !base_e.is_empty() {
                assert_eq!(base_e[0].0, tight_e[0].0);
            }
        }
    }

    #[test]
    fn report_covers_all_stages() {
        let split = tiny_split();
        let engine = Engine::new(EngineConfig {
            attack: attack_cfg(),
            n_threads: 2,
            block_size: 4,
            ..EngineConfig::default()
        });
        let out = engine.run(&split.auxiliary, &split.anonymized);
        let pairs = out.report.stage("topk").expect("topk stage ran");
        let present = split.auxiliary.n_users
            - (0..split.auxiliary.n_users)
                .filter(|&u| split.auxiliary.user_posts(u).is_empty())
                .count();
        // Scored + pruned covers the full pair workload.
        assert_eq!(pairs.items + pairs.skipped, (split.anonymized.n_users * present) as u64);
        assert!(out.report.stage("prepare").is_some());
        assert!(out.report.stage("refined").is_some());
        assert_eq!(out.report.n_threads, 2);
    }

    #[test]
    fn dense_mode_scores_every_pair() {
        let split = tiny_split();
        let engine = Engine::new(EngineConfig {
            attack: attack_cfg(),
            n_threads: 2,
            block_size: 4,
            scoring: ScoringMode::Dense,
            ..EngineConfig::default()
        });
        let out = engine.run(&split.auxiliary, &split.anonymized);
        let pairs = out.report.stage("topk").expect("topk stage ran");
        let present = split.auxiliary.n_users
            - (0..split.auxiliary.n_users)
                .filter(|&u| split.auxiliary.user_posts(u).is_empty())
                .count();
        assert_eq!(pairs.items, (split.anonymized.n_users * present) as u64);
        assert_eq!(pairs.skipped, 0);
    }

    #[test]
    fn incremental_ingest_matches_batch_for_attribute_weights() {
        use dehealth_core::SimilarityWeights;
        // Chunked ingestion treats chunks as thread-disjoint user cohorts,
        // so the reference is a batch run on the concatenation of the
        // chunks (the session's merged view). Attribute similarity depends
        // only on the pair itself, so with attribute-only weights the
        // incremental result must equal that batch run exactly.
        let forum = Forum::generate(&ForumConfig::tiny(), 9);
        let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 3);
        let attack = AttackConfig {
            weights: SimilarityWeights { c1: 0.0, c2: 0.0, c3: 1.0 },
            top_k: 4,
            n_landmarks: 5,
            ..AttackConfig::default()
        };
        let n = split.auxiliary.n_users;
        let cut = n / 2;
        let chunk_of = |lo: usize, hi: usize| {
            let posts: Vec<Post> = split
                .auxiliary
                .posts
                .iter()
                .filter(|p| (lo..hi).contains(&p.author))
                .map(|p| Post { author: p.author - lo, thread: p.thread, text: p.text.clone() })
                .collect();
            Forum::from_posts(hi - lo, split.auxiliary.n_threads, posts)
        };
        let chunks = [chunk_of(0, cut), chunk_of(cut, n)];
        // The merged view the session builds: users and threads offset by
        // the totals of the preceding chunks.
        let mut merged_posts = Vec::new();
        let (mut user_off, mut thread_off) = (0, 0);
        for chunk in &chunks {
            for p in &chunk.posts {
                merged_posts.push(Post {
                    author: p.author + user_off,
                    thread: p.thread + thread_off,
                    text: p.text.clone(),
                });
            }
            user_off += chunk.n_users;
            thread_off += chunk.n_threads;
        }
        let merged = Forum::from_posts(user_off, thread_off, merged_posts);

        let serial = DeHealth::new(attack.clone()).run(&merged, &split.anonymized);
        let engine = Engine::new(EngineConfig {
            attack,
            n_threads: 2,
            block_size: 16,
            ..EngineConfig::default()
        });
        let batch = engine.run(&merged, &split.anonymized);

        let mut session = engine.session(&split.anonymized);
        session.add_auxiliary_users(&chunks[0]);
        assert_eq!(session.n_auxiliary_users(), cut);
        session.add_auxiliary_users(&chunks[1]);
        let incremental = session.finish();

        assert_eq!(incremental.candidates, batch.candidates);
        assert_eq!(incremental.mapping, batch.mapping);
        assert_eq!(incremental.candidates, serial.candidates);
        assert_eq!(incremental.mapping, serial.mapping);
    }

    #[test]
    fn shared_refined_matches_per_user_oracle() {
        use dehealth_core::refined::Verification;
        let split = tiny_split();
        for verification in
            [Verification::None, Verification::Mean { r: 0.1 }, Verification::Sigma { factor: 2.0 }]
        {
            let attack = AttackConfig { verification, ..attack_cfg() };
            let mut outcomes = Vec::new();
            for refined in [RefinedMode::Shared, RefinedMode::PerUser] {
                let engine = Engine::new(EngineConfig {
                    attack: attack.clone(),
                    n_threads: 2,
                    block_size: 8,
                    refined,
                    ..EngineConfig::default()
                });
                outcomes.push(engine.run(&split.auxiliary, &split.anonymized));
            }
            assert_eq!(outcomes[0].mapping, outcomes[1].mapping, "{verification:?}");
            assert_eq!(outcomes[0].candidates, outcomes[1].candidates, "{verification:?}");
        }
    }

    #[test]
    fn filtering_with_many_candidates_matches_serial() {
        use dehealth_core::FilterConfig;
        // A Top-K large enough to keep every present auxiliary user as a
        // candidate exercises the precomputed score map across wide entry
        // lists and all threshold levels.
        let split = tiny_split();
        let attack = AttackConfig {
            top_k: split.auxiliary.n_users,
            filtering: Some(FilterConfig { epsilon: 0.05, levels: 12 }),
            n_landmarks: 10,
            ..AttackConfig::default()
        };
        let serial = DeHealth::new(attack.clone()).run(&split.auxiliary, &split.anonymized);
        let engine = Engine::new(EngineConfig {
            attack,
            n_threads: 3,
            block_size: 4,
            ..EngineConfig::default()
        });
        let out = engine.run(&split.auxiliary, &split.anonymized);
        assert_eq!(out.candidates, serial.candidates);
        assert_eq!(out.mapping, serial.mapping);
        // The entry lists the score map is built from really were wide.
        assert!(out.candidate_scores.iter().any(|e| e.len() > 10));
    }

    #[test]
    fn run_prepared_matches_run() {
        // The serving path — prepared auxiliary corpus, optional
        // pre-built index/context — must reproduce the one-shot engine
        // run bit for bit in every preparation combination, including a
        // context built for the wrong classifier representation (which
        // must be rebuilt, not misused).
        let split = tiny_split();
        let engine = Engine::new(EngineConfig {
            attack: attack_cfg(),
            n_threads: 2,
            block_size: 8,
            ..EngineConfig::default()
        });
        let baseline = engine.run(&split.auxiliary, &split.anonymized);

        let feats = extract_post_features(&split.auxiliary);
        let uda = UdaGraph::build_with_features(&split.auxiliary, &feats);
        let side = Side { forum: &split.auxiliary, uda: &uda, post_features: &feats };
        let index = AttributeIndex::from_uda(&uda);
        let matching_ctx = RefinedContext::build(&side, attack_cfg().classifier);
        let mismatched_ctx =
            RefinedContext::build(&side, dehealth_core::refined::ClassifierKind::Centroid);
        assert!(!mismatched_ctx.matches_classifier(attack_cfg().classifier));
        for (ix, ctx) in [
            (None, None),
            (Some(&index), Some(&matching_ctx)),
            (Some(&index), Some(&mismatched_ctx)),
            (None, Some(&matching_ctx)),
        ] {
            let prepared = PreparedAuxiliary {
                forum: &split.auxiliary,
                features: &feats,
                uda: &uda,
                index: ix,
                context: ctx,
                quantized: None,
            };
            let out = engine.run_prepared(&prepared, &split.anonymized);
            assert_eq!(out.candidates, baseline.candidates);
            assert_eq!(out.mapping, baseline.mapping);
            for (a, b) in out.candidate_scores.iter().zip(&baseline.candidate_scores) {
                assert_eq!(a.len(), b.len());
                for (&(v, s), &(w, t)) in a.iter().zip(b) {
                    assert_eq!(v, w);
                    assert_eq!(s.to_bits(), t.to_bits());
                }
            }
        }
    }

    #[test]
    fn run_prepared_honors_filtering_and_dense_mode() {
        use dehealth_core::FilterConfig;
        let split = tiny_split();
        let attack = AttackConfig { filtering: Some(FilterConfig::default()), ..attack_cfg() };
        let feats = extract_post_features(&split.auxiliary);
        let uda = UdaGraph::build_with_features(&split.auxiliary, &feats);
        let index = AttributeIndex::from_uda(&uda);
        let prepared = PreparedAuxiliary {
            forum: &split.auxiliary,
            features: &feats,
            uda: &uda,
            index: Some(&index),
            context: None,
            quantized: None,
        };
        for scoring in [ScoringMode::Indexed, ScoringMode::Dense] {
            let engine = Engine::new(EngineConfig {
                attack: attack.clone(),
                n_threads: 2,
                block_size: 8,
                scoring,
                ..EngineConfig::default()
            });
            let baseline = engine.run(&split.auxiliary, &split.anonymized);
            let out = engine.run_prepared(&prepared, &split.anonymized);
            assert_eq!(out.candidates, baseline.candidates, "{scoring:?}");
            assert_eq!(out.mapping, baseline.mapping, "{scoring:?}");
            // Filtering needs exact global bounds: nothing may be pruned.
            assert_eq!(out.report.stage("topk").unwrap().skipped, 0, "{scoring:?}");
        }
    }

    #[test]
    fn batch_matches_solo_runs() {
        use dehealth_core::FilterConfig;
        // The fused batch pass must be bit-identical, request by
        // request, to solo `run_prepared` calls with the same attack
        // config — across thread counts, mixed per-request
        // top_k/seed/n_landmarks overrides, a filtering request in the
        // middle of the batch, and every index/context preparation.
        let split = tiny_split();
        let second = {
            // A second, structurally different anonymized batch.
            let forum = Forum::generate(&ForumConfig::tiny(), 99);
            closed_world_split(&forum, &SplitConfig::fraction(0.6), 13).anonymized
        };
        let attacks = [
            attack_cfg(),
            AttackConfig { top_k: 3, seed: 1234, ..attack_cfg() },
            AttackConfig { n_landmarks: 6, ..attack_cfg() },
            AttackConfig { filtering: Some(FilterConfig::default()), ..attack_cfg() },
        ];
        let anon_of = |i: usize| if i.is_multiple_of(2) { &split.anonymized } else { &second };

        let feats = extract_post_features(&split.auxiliary);
        let uda = UdaGraph::build_with_features(&split.auxiliary, &feats);
        let index = AttributeIndex::from_uda(&uda);
        let side = Side { forum: &split.auxiliary, uda: &uda, post_features: &feats };
        let ctx = RefinedContext::build(&side, attack_cfg().classifier);
        for (ix, context) in [(None, None), (Some(&index), Some(&ctx))] {
            let prepared = PreparedAuxiliary {
                forum: &split.auxiliary,
                features: &feats,
                uda: &uda,
                index: ix,
                context,
                quantized: None,
            };
            for n_threads in [1, 2, 8] {
                let engine = Engine::new(EngineConfig {
                    attack: attack_cfg(),
                    n_threads,
                    block_size: 8,
                    ..EngineConfig::default()
                });
                let requests: Vec<BatchRequest<'_>> = attacks
                    .iter()
                    .enumerate()
                    .map(|(i, attack)| BatchRequest {
                        attack: attack.clone(),
                        anonymized: anon_of(i),
                    })
                    .collect();
                let batch = engine.run_prepared_batch(&prepared, &requests);
                assert_eq!(batch.len(), requests.len());
                for (i, (out, attack)) in batch.iter().zip(&attacks).enumerate() {
                    let solo_engine = Engine::new(EngineConfig {
                        attack: attack.clone(),
                        n_threads,
                        block_size: 8,
                        ..EngineConfig::default()
                    });
                    let solo = solo_engine.run_prepared(&prepared, anon_of(i));
                    assert_eq!(out.candidates, solo.candidates, "request {i}, {n_threads} thr");
                    assert_eq!(out.mapping, solo.mapping, "request {i}, {n_threads} thr");
                    for (a, b) in out.candidate_scores.iter().zip(&solo.candidate_scores) {
                        assert_eq!(a.len(), b.len());
                        for (&(v, s), &(w, t)) in a.iter().zip(b) {
                            assert_eq!(v, w);
                            assert_eq!(s.to_bits(), t.to_bits(), "request {i}");
                        }
                    }
                    // Exact per-request item accounting survives fusion.
                    let topk = out.report.stage("topk").unwrap();
                    let solo_topk = solo.report.stage("topk").unwrap();
                    assert_eq!(topk.items, solo_topk.items, "request {i}");
                    assert_eq!(topk.skipped, solo_topk.skipped, "request {i}");
                }
            }
        }
    }

    #[test]
    fn empty_batch_returns_no_outcomes() {
        let split = tiny_split();
        let feats = extract_post_features(&split.auxiliary);
        let uda = UdaGraph::build_with_features(&split.auxiliary, &feats);
        let prepared = PreparedAuxiliary {
            forum: &split.auxiliary,
            features: &feats,
            uda: &uda,
            index: None,
            context: None,
            quantized: None,
        };
        let engine = Engine::new(EngineConfig::default());
        assert!(engine.run_prepared_batch(&prepared, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "does not cover the auxiliary corpus")]
    fn run_prepared_rejects_mismatched_index() {
        // A stale index covering a different user population must fail
        // loudly at entry, not corrupt candidate ids downstream.
        let split = tiny_split();
        let feats = extract_post_features(&split.auxiliary);
        let uda = UdaGraph::build_with_features(&split.auxiliary, &feats);
        let mut stale = AttributeIndex::from_uda(&uda);
        stale.push_user(&dehealth_stylometry::UserAttributes::new(), false);
        let prepared = PreparedAuxiliary {
            forum: &split.auxiliary,
            features: &feats,
            uda: &uda,
            index: Some(&stale),
            context: None,
            quantized: None,
        };
        let engine = Engine::new(EngineConfig::default());
        let _ = engine.run_prepared(&prepared, &split.anonymized);
    }

    #[test]
    #[should_panic(expected = "Selection::Direct")]
    fn graph_matching_is_rejected() {
        let _ = Engine::new(EngineConfig {
            attack: AttackConfig { selection: Selection::GraphMatching, ..AttackConfig::default() },
            ..EngineConfig::default()
        });
    }

    #[test]
    fn filtering_matches_serial() {
        use dehealth_core::FilterConfig;
        let split = tiny_split();
        let attack = AttackConfig { filtering: Some(FilterConfig::default()), ..attack_cfg() };
        let serial = DeHealth::new(attack.clone()).run(&split.auxiliary, &split.anonymized);
        for scoring in [ScoringMode::Indexed, ScoringMode::Dense] {
            let engine = Engine::new(EngineConfig {
                attack: attack.clone(),
                n_threads: 2,
                block_size: 8,
                scoring,
                ..EngineConfig::default()
            });
            let out = engine.run(&split.auxiliary, &split.anonymized);
            assert_eq!(out.candidates, serial.candidates, "{scoring:?}");
            assert_eq!(out.mapping, serial.mapping, "{scoring:?}");
            // Filtering needs exact global score bounds, so the indexed
            // path must have pruned nothing.
            assert_eq!(out.report.stage("topk").unwrap().skipped, 0, "{scoring:?}");
        }
    }
}
