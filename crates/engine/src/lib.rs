#![warn(missing_docs)]
//! # dehealth-engine
//!
//! The parallel, sharded execution engine for the De-Health attack.
//!
//! The serial [`DeHealth::run`](dehealth_core::DeHealth::run) materializes
//! the dense `|V1| × |V2|` similarity matrix and refines candidates one
//! user at a time — fine for reproducing the paper's figures, a dead end
//! for production-scale populations. This crate wraps `dehealth-core`
//! with an execution layer that:
//!
//! - **shards the Top-K DA phase**: anonymized users are partitioned into
//!   blocks, workers steal blocks from a shared queue, and each user keeps
//!   only a [`BoundedTopK`](dehealth_core::topk::BoundedTopK) heap of its
//!   `K` best candidates — `O(|V1| · K)` state instead of `O(|V1| · |V2|)`;
//! - **scores pairs through an inverted index** by default
//!   ([`ScoringMode::Indexed`]): workers probe the posting lists of each
//!   anonymized user's attributes
//!   ([`AttributeIndex`](dehealth_core::index::AttributeIndex)), compute
//!   the dominant attribute term exactly from intersection accumulators,
//!   and prune pairs whose score upper bound cannot beat the user's
//!   running Top-K floor — the dense all-pairs sweep stays available as
//!   the differential-test oracle ([`ScoringMode::Dense`]);
//! - **fans out the Refined-DA phase**: per-user classifier training and
//!   verification run on the same worker pool, with dynamic block stealing
//!   absorbing the highly variable per-user cost;
//! - **ingests auxiliary data incrementally**:
//!   [`EngineSession::add_auxiliary_users`] scores only the
//!   `|V1| × |chunk|` block of new pairs and merges it into the existing
//!   heaps — previously scored pairs are never recomputed (the streaming
//!   auxiliary-data scenario);
//! - **accounts for every stage**: an [`EngineReport`] with per-stage
//!   wall-clock and throughput counters, feeding the scaling benchmark in
//!   `dehealth-bench`.
//!
//! With [`Selection::Direct`](dehealth_core::topk::Selection) the engine's
//! candidate sets and final mapping are **bit-identical** to the serial
//! attack at any thread count (`tests/engine_parity.rs` in the facade
//! crate asserts this for 1, 2 and 8 workers).
//!
//! ## Architecture
//!
//! ```text
//!                        anonymized forum            auxiliary chunks
//!                              │                       │  │  │
//!                              ▼                       ▼  ▼  ▼
//!                      ┌──────────────┐  per chunk ┌──────────────┐
//!  prepare             │ anon UDA +   │◄───────────│ chunk UDA +  │
//!  (parallel extract)  │ post features│            │ post features│
//!                      └──────┬───────┘            └──────┬───────┘
//!                             └──────────┬────────────────┘
//!                                        ▼
//!                      ┌─────────────────────────────────┐
//!  topk                │ IndexedScorer (default) or the  │
//!  (sharded, no dense  │ dense scores_for sweep (oracle) │
//!   matrix)            │ ┌───────┐ ┌───────┐   ┌───────┐ │
//!                      │ │block 0│ │block 1│ … │block B│ │ ← work stealing
//!                      │ └───┬───┘ └───┬───┘   └───┬───┘ │
//!                      └─────┼─────────┼───────────┼─────┘
//!                            ▼         ▼           ▼
//!                      per-user BoundedTopK heaps (K entries each)
//!                            │  + merged ScoreBounds (for Algorithm 2)
//!  filter (optional)         ▼
//!                      threshold_vector + filter_user per user
//!                            │
//!  refined                   ▼
//!  (fan-out, same pool) refine_user(u) per user: train classifier on
//!                       candidates' posts, verify, map u → v or u → ⊥
//!                            │
//!                            ▼
//!                      EngineOutcome { candidates, mapping, report }
//! ```

pub mod engine;
pub mod pool;
pub mod report;

pub use engine::{
    BatchRequest, Engine, EngineConfig, EngineOutcome, EngineSession, ExactnessMode,
    PreparedAuxiliary, RefinedMode, ScoringMode,
};
pub use report::{EngineReport, PrescreenTally, StageStats};
