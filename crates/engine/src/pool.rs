//! The scoped worker pool behind both parallel stages.
//!
//! The engine shards work over *blocks*: contiguous slices of a per-user
//! output vector (Top-K heaps in the similarity stage, mapping slots in
//! the refined stage). Workers steal blocks from a shared job list until
//! it drains, which load-balances the refined stage's highly variable
//! per-user cost (classifier training time depends on candidate post
//! counts) without any per-item synchronization.
//!
//! Everything runs on `std::thread::scope` — the workspace stays
//! dependency-free, and borrowing the (`Sync`) similarity engine and
//! attack sides straight into the workers needs no `Arc` plumbing.

use std::sync::Mutex;

/// Process `items` in contiguous blocks of `block_size`, stealing blocks
/// across `n_threads` scoped workers.
///
/// Each worker owns a private state `S` created by `init` (score bounds,
/// pair counters, scratch buffers); `work` receives the block's offset
/// into `items`, the block itself, and that state. The per-worker states
/// are returned for order-independent merging — the caller must not rely
/// on their order. Panics in `work` propagate.
pub fn run_blocks<T, S, G, F>(
    items: &mut [T],
    block_size: usize,
    n_threads: usize,
    init: G,
    work: F,
) -> Vec<S>
where
    T: Send,
    S: Send,
    G: Fn() -> S + Sync,
    F: Fn(usize, &mut [T], &mut S) + Sync,
{
    let block_size = block_size.max(1);
    let n_threads = n_threads.max(1);
    if n_threads == 1 || items.len() <= block_size {
        let mut state = init();
        for (b, block) in items.chunks_mut(block_size).enumerate() {
            work(b * block_size, block, &mut state);
        }
        return vec![state];
    }

    let jobs: Mutex<Vec<(usize, &mut [T])>> = Mutex::new(
        items
            .chunks_mut(block_size)
            .enumerate()
            .map(|(b, block)| (b * block_size, block))
            .collect(),
    );
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    loop {
                        let job = jobs.lock().expect("job list poisoned").pop();
                        match job {
                            Some((offset, block)) => work(offset, block, &mut state),
                            None => break,
                        }
                    }
                    state
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("engine worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_items_visited_exactly_once() {
        for &(n, bs, threads) in
            &[(0usize, 4usize, 3usize), (1, 4, 3), (100, 7, 4), (64, 64, 8), (10, 1, 2)]
        {
            let mut items = vec![0u32; n];
            run_blocks(
                &mut items,
                bs,
                threads,
                || (),
                |offset, block, ()| {
                    for (i, x) in block.iter_mut().enumerate() {
                        assert_eq!(*x, 0);
                        // Record the item's global index to verify offsets.
                        *x = u32::try_from(offset + i).unwrap() + 1;
                    }
                },
            );
            let got: Vec<u32> = items;
            let expect: Vec<u32> = (1..=u32::try_from(n).unwrap()).collect();
            assert_eq!(got, expect, "n={n} bs={bs} threads={threads}");
        }
    }

    #[test]
    fn worker_states_merge_to_global_sum() {
        let mut items: Vec<u64> = (0..1000).collect();
        let states = run_blocks(
            &mut items,
            16,
            8,
            || 0u64,
            |_, block, sum| {
                *sum += block.iter().sum::<u64>();
            },
        );
        let total: u64 = states.into_iter().sum();
        assert_eq!(total, 1000 * 999 / 2);
    }

    #[test]
    fn single_thread_path_matches_parallel() {
        let mut a: Vec<u64> = (0..200).collect();
        let mut b = a.clone();
        let sa: u64 = run_blocks(&mut a, 9, 1, || 0u64, |_, bl, s| *s += bl.iter().sum::<u64>())
            .into_iter()
            .sum();
        let sb: u64 = run_blocks(&mut b, 9, 5, || 0u64, |_, bl, s| *s += bl.iter().sum::<u64>())
            .into_iter()
            .sum();
        assert_eq!(sa, sb);
    }
}
