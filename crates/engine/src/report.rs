//! Per-stage wall-clock and throughput accounting.
//!
//! Every engine run produces an [`EngineReport`]: one [`StageStats`] entry
//! per pipeline stage (repeated stages — e.g. the Top-K stage across
//! several incremental ingests — accumulate into one entry). The scaling
//! benchmark in `dehealth-bench` serializes these counters to
//! `BENCH_scaling.json` so the performance trajectory is tracked across
//! PRs.

use std::time::Instant;

/// Wall-clock and volume counters for one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name (`"prepare"`, `"topk"`, `"filter"`, `"refined"`).
    pub stage: &'static str,
    /// What `items` counts (`"posts"`, `"pairs"`, `"users"`).
    pub unit: &'static str,
    /// Accumulated wall-clock seconds.
    pub seconds: f64,
    /// Accumulated processed item count.
    pub items: u64,
    /// Items the stage *considered* but skipped without processing —
    /// e.g. pairs pruned by the indexed scorer's upper bound before their
    /// degree/distance terms were ever computed. `items + skipped` is the
    /// stage's full workload.
    pub skipped: u64,
}

impl StageStats {
    /// Items per second (0 when no time was observed).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.seconds > 0.0 {
            self.items as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Counters for the approximate tier's margin-prescreen and rescore
/// decisions. All three stay zero under `ExactnessMode::Exact`, which the
/// wire serializers rely on to keep exact-mode responses byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrescreenTally {
    /// Top-K pairs fully scored while a prescreen margin was active.
    pub admitted: u64,
    /// Top-K pairs dropped by the margin prescreen without exact scoring;
    /// each one's true score was below `floor + margin`.
    pub skipped: u64,
    /// Refined-stage users whose quantized vote landed inside the margin
    /// band and were rescored with the exact f64 kernel.
    pub rescored: u64,
}

impl PrescreenTally {
    /// True when every counter is zero — i.e. the run was exact, or the
    /// approximate tier never made a decision.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.admitted == 0 && self.skipped == 0 && self.rescored == 0
    }
}

/// The engine's execution report: configuration echoes plus per-stage
/// counters, in pipeline order of first appearance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineReport {
    /// Resolved worker-thread count.
    pub n_threads: usize,
    /// Anonymized users per work block.
    pub block_size: usize,
    /// Stage counters.
    pub stages: Vec<StageStats>,
    /// Approximate-tier decision counters (all zero in exact mode).
    pub prescreen: PrescreenTally,
}

impl EngineReport {
    pub(crate) fn new(n_threads: usize, block_size: usize) -> Self {
        Self { n_threads, block_size, stages: Vec::new(), prescreen: PrescreenTally::default() }
    }

    /// Accumulate margin-prescreen decisions from the Top-K stage.
    pub(crate) fn record_prescreen(&mut self, admitted: u64, skipped: u64) {
        self.prescreen.admitted += admitted;
        self.prescreen.skipped += skipped;
    }

    /// Accumulate refined-stage exact rescores of margin-band users.
    pub(crate) fn record_rescored(&mut self, rescored: u64) {
        self.prescreen.rescored += rescored;
    }

    /// Accumulate `items` processed in `seconds` into `stage`.
    pub(crate) fn record(
        &mut self,
        stage: &'static str,
        unit: &'static str,
        items: u64,
        seconds: f64,
    ) {
        if let Some(s) = self.stages.iter_mut().find(|s| s.stage == stage) {
            s.items += items;
            s.seconds += seconds;
        } else {
            self.stages.push(StageStats { stage, unit, seconds, items, skipped: 0 });
        }
    }

    /// Accumulate `skipped` items (considered but pruned) into `stage`.
    pub(crate) fn record_skipped(&mut self, stage: &'static str, unit: &'static str, skipped: u64) {
        if let Some(s) = self.stages.iter_mut().find(|s| s.stage == stage) {
            s.skipped += skipped;
        } else {
            self.stages.push(StageStats { stage, unit, seconds: 0.0, items: 0, skipped });
        }
    }

    /// Counters of one stage, if it ran.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Total wall-clock seconds across stages.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.seconds).sum()
    }

    /// Feed this report into a metric registry: one
    /// `engine_stage_seconds{stage=…}` histogram sample plus
    /// `engine_stage_items_total` / `engine_stage_skipped_total` counter
    /// increments per stage. The daemon calls this after every served
    /// attack, turning one-shot reports into per-stage latency
    /// distributions across requests.
    pub fn record_into(&self, registry: &dehealth_telemetry::Registry) {
        for s in &self.stages {
            let labels = [("stage", s.stage)];
            registry.histogram_with("engine_stage_seconds", &labels).record_secs(s.seconds);
            registry.counter_with("engine_stage_items_total", &labels).add(s.items);
            registry.counter_with("engine_stage_skipped_total", &labels).add(s.skipped);
        }
        let p = self.prescreen;
        for (outcome, n) in
            [("admitted", p.admitted), ("skipped", p.skipped), ("rescored", p.rescored)]
        {
            registry.counter_with("engine_prescreen_total", &[("outcome", outcome)]).add(n);
        }
    }
}

impl std::fmt::Display for EngineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "engine report ({} threads, block size {}):", self.n_threads, self.block_size)?;
        for s in &self.stages {
            write!(
                f,
                "  {:<8} {:>10.3}s  {:>12} {:<6} {:>14.0} {}/s",
                s.stage,
                s.seconds,
                s.items,
                s.unit,
                s.throughput(),
                s.unit
            )?;
            if s.skipped > 0 {
                write!(f, "  ({} {} pruned)", s.skipped, s.unit)?;
            }
            writeln!(f)?;
        }
        if !self.prescreen.is_empty() {
            let p = self.prescreen;
            writeln!(
                f,
                "  prescreen  {} admitted, {} skipped, {} rescored",
                p.admitted, p.skipped, p.rescored
            )?;
        }
        write!(f, "  total    {:>10.3}s", self.total_seconds())
    }
}

/// Measure the wall-clock of `f`.
pub(crate) fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_stage() {
        let mut r = EngineReport::new(4, 64);
        r.record("topk", "pairs", 100, 0.5);
        r.record("topk", "pairs", 50, 0.25);
        r.record("refined", "users", 10, 1.0);
        assert_eq!(r.stages.len(), 2);
        let topk = r.stage("topk").unwrap();
        assert_eq!(topk.items, 150);
        assert!((topk.seconds - 0.75).abs() < 1e-12);
        assert!((topk.throughput() - 200.0).abs() < 1e-9);
        assert!((r.total_seconds() - 1.75).abs() < 1e-12);
        assert!(r.stage("missing").is_none());
    }

    #[test]
    fn zero_time_throughput_is_zero() {
        let s = StageStats { stage: "x", unit: "pairs", seconds: 0.0, items: 5, skipped: 0 };
        assert_eq!(s.throughput(), 0.0);
    }

    #[test]
    fn skipped_accumulates_and_shows_in_display() {
        let mut r = EngineReport::new(1, 8);
        r.record("topk", "pairs", 10, 0.1);
        r.record_skipped("topk", "pairs", 7);
        r.record_skipped("topk", "pairs", 3);
        let topk = r.stage("topk").unwrap();
        assert_eq!(topk.items, 10);
        assert_eq!(topk.skipped, 10);
        assert!(format!("{r}").contains("10 pairs pruned"));
        // A skipped-only record creates the stage too.
        r.record_skipped("other", "users", 2);
        assert_eq!(r.stage("other").unwrap().skipped, 2);
    }

    #[test]
    fn display_mentions_stages() {
        let mut r = EngineReport::new(2, 32);
        r.record("topk", "pairs", 10, 0.1);
        let text = format!("{r}");
        assert!(text.contains("2 threads"));
        assert!(text.contains("topk"));
    }

    #[test]
    fn record_into_feeds_a_registry() {
        let mut r = EngineReport::new(2, 32);
        r.record("topk", "pairs", 100, 0.5);
        r.record_skipped("topk", "pairs", 7);
        r.record("refined", "users", 10, 0.1);
        let registry = dehealth_telemetry::Registry::new();
        r.record_into(&registry);
        r.record_into(&registry); // accumulates across runs
        let topk = registry.histogram_with("engine_stage_seconds", &[("stage", "topk")]);
        assert_eq!(topk.count(), 2);
        assert!((topk.sum_seconds() - 1.0).abs() < 1e-9);
        let items = registry.counter_with("engine_stage_items_total", &[("stage", "topk")]);
        assert_eq!(items.get(), 200);
        let skipped = registry.counter_with("engine_stage_skipped_total", &[("stage", "topk")]);
        assert_eq!(skipped.get(), 14);
        assert_eq!(
            registry.histogram_with("engine_stage_seconds", &[("stage", "refined")]).count(),
            2
        );
    }

    #[test]
    fn prescreen_counters_accumulate_and_export() {
        let mut r = EngineReport::new(1, 8);
        assert!(r.prescreen.is_empty());
        assert!(!format!("{r}").contains("prescreen"));
        r.record_prescreen(5, 3);
        r.record_prescreen(1, 0);
        r.record_rescored(2);
        assert_eq!(r.prescreen, PrescreenTally { admitted: 6, skipped: 3, rescored: 2 });
        assert!(format!("{r}").contains("6 admitted, 3 skipped, 2 rescored"));
        let registry = dehealth_telemetry::Registry::new();
        r.record_into(&registry);
        for (outcome, want) in [("admitted", 6), ("skipped", 3), ("rescored", 2)] {
            let c = registry.counter_with("engine_prescreen_total", &[("outcome", outcome)]);
            assert_eq!(c.get(), want);
        }
    }

    #[test]
    fn timed_measures_and_returns() {
        let (v, secs) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
