//! Connected components, communities, and degree distributions.
//!
//! Appendix B of the paper reports (Fig. 7) the degree-distribution CDF of
//! the WebMD/HealthBoards correlation graphs and (Fig. 8) their community
//! structure under degree-threshold ablations — the quantitative claims are
//! "the graph is not connected (consisting of several components)" and
//! "about 10 – 100 communities can be identified". This module provides
//! those statistics.

use crate::graph::Graph;

/// Summary of a community decomposition (Fig. 8).
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityStats {
    /// Number of connected components (including singletons).
    pub components: usize,
    /// Number of communities found by label propagation (excluding
    /// singleton isolated nodes).
    pub communities: usize,
    /// Sizes of the communities, decreasing.
    pub community_sizes: Vec<usize>,
    /// Number of isolated (degree-0) nodes.
    pub isolated: usize,
}

/// Connected-component labels: `labels[u]` is the smallest node id in `u`'s
/// component.
#[must_use]
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = start;
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            for &(v, _) in g.neighbors(u) {
                let v = v as usize;
                if label[v] == usize::MAX {
                    label[v] = start;
                    stack.push(v);
                }
            }
        }
    }
    label
}

/// Synchronous label propagation with deterministic tie-breaking (smallest
/// label wins). Runs at most `max_iters` sweeps; converges when no label
/// changes. Returns per-node community labels.
#[must_use]
pub fn label_propagation(g: &Graph, max_iters: usize) -> Vec<usize> {
    let n = g.node_count();
    let mut label: Vec<usize> = (0..n).collect();
    let mut counts: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
    for _ in 0..max_iters {
        let mut changed = false;
        for u in 0..n {
            if g.degree(u) == 0 {
                continue;
            }
            counts.clear();
            for &(v, w) in g.neighbors(u) {
                *counts.entry(label[v as usize]).or_insert(0.0) += w.max(1e-12);
            }
            // (indexing by `u` is intentional: synchronous sweep)
            // Highest weighted vote, ties to the smallest label for
            // determinism.
            let best = counts
                .iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite").then(b.0.cmp(a.0)))
                .map(|(&l, _)| l)
                .expect("non-isolated node has neighbors");
            if best != label[u] {
                label[u] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    label
}

/// Community statistics for Fig. 8 after removing nodes with degree less
/// than `min_degree` (the paper's ablation uses thresholds 11, 21, 31;
/// `min_degree = 0` keeps the original graph).
#[must_use]
pub fn community_stats(g: &Graph, min_degree: usize) -> CommunityStats {
    // Build the filtered subgraph over retained nodes.
    let retained: Vec<usize> = (0..g.node_count()).filter(|&u| g.degree(u) >= min_degree).collect();
    let mut index = vec![usize::MAX; g.node_count()];
    for (i, &u) in retained.iter().enumerate() {
        index[u] = i;
    }
    let mut b = crate::graph::GraphBuilder::new(retained.len());
    for &u in &retained {
        for &(v, w) in g.neighbors(u) {
            let v = v as usize;
            if u < v && index[v] != usize::MAX {
                b.add_edge(index[u], index[v], w);
            }
        }
    }
    let sub = b.build();
    let comp = connected_components(&sub);
    let n_components = distinct(&comp);
    let labels = label_propagation(&sub, 50);
    let isolated = (0..sub.node_count()).filter(|&u| sub.degree(u) == 0).count();
    let mut sizes: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for (u, &label) in labels.iter().enumerate() {
        if sub.degree(u) > 0 {
            *sizes.entry(label).or_insert(0) += 1;
        }
    }
    let mut community_sizes: Vec<usize> = sizes.values().copied().collect();
    community_sizes.sort_unstable_by(|a, b| b.cmp(a));
    CommunityStats {
        components: n_components,
        communities: community_sizes.len(),
        community_sizes,
        isolated,
    }
}

fn distinct(labels: &[usize]) -> usize {
    let mut set: Vec<usize> = labels.to_vec();
    set.sort_unstable();
    set.dedup();
    set.len()
}

/// Degree-distribution CDF (Fig. 7): for each point `(d, f)`, `f` is the
/// fraction of nodes with degree ≤ `d`. Points are emitted at every
/// distinct degree.
#[must_use]
pub fn degree_cdf(g: &Graph) -> Vec<(usize, f64)> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut degrees: Vec<usize> = (0..n).map(|u| g.degree(u)).collect();
    degrees.sort_unstable();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let d = degrees[i];
        let mut j = i;
        while j < n && degrees[j] == d {
            j += 1;
        }
        out.push((d, j as f64 / n as f64));
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Two triangles joined by nothing + an isolated node.
    fn two_cliques() -> Graph {
        let mut b = GraphBuilder::new(7);
        for &(a, x) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(a, x, 1.0);
        }
        b.build()
    }

    #[test]
    fn components_counted() {
        let comp = connected_components(&two_cliques());
        assert_eq!(distinct(&comp), 3); // two triangles + isolated node 6
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn label_propagation_splits_cliques() {
        let labels = label_propagation(&two_cliques(), 20);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn stats_on_two_cliques() {
        let s = community_stats(&two_cliques(), 0);
        assert_eq!(s.components, 3);
        assert_eq!(s.communities, 2);
        assert_eq!(s.community_sizes, vec![3, 3]);
        assert_eq!(s.isolated, 1);
    }

    #[test]
    fn degree_threshold_filters() {
        // Star: center degree 4, leaves degree 1.
        let mut b = GraphBuilder::new(5);
        for leaf in 1..5 {
            b.add_edge(0, leaf, 1.0);
        }
        let g = b.build();
        let s = community_stats(&g, 2);
        // Only the center survives, with no edges.
        assert_eq!(s.isolated, 1);
        assert_eq!(s.communities, 0);
    }

    #[test]
    fn degree_cdf_monotone_ends_at_one() {
        let cdf = degree_cdf(&two_cliques());
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        // 1/7 of nodes have degree 0.
        assert_eq!(cdf[0].0, 0);
        assert!((cdf[0].1 - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degree_cdf_empty_graph() {
        assert!(degree_cdf(&Graph::empty(0)).is_empty());
    }
}
