//! Compact weighted undirected graph with the local correlation features of
//! Section II-B: degree `d_i`, weighted degree `wd_i = Σ_j w_ij`, and the
//! Neighborhood Correlation Strength (NCS) vector `D_i` (edge weights in
//! decreasing order).

/// A weighted undirected graph over nodes `0..n`.
///
/// Parallel `add_edge` calls accumulate weight on the same edge, matching
/// the paper's definition of `w_ij` as the number of co-discussed threads.
/// Self-loops are ignored.
///
/// ```
/// use dehealth_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 1.0);
/// b.add_edge(0, 1, 1.0); // same thread pair again
/// b.add_edge(1, 2, 2.0);
/// let g = b.build();
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.edge_weight(0, 1), Some(2.0));
/// assert_eq!(g.ncs_vector(1), vec![2.0, 2.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    adj: Vec<Vec<(u32, f64)>>,
    n_edges: usize,
}

/// Incremental builder for [`Graph`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    weights: std::collections::HashMap<(u32, u32), f64>,
    n: usize,
}

impl GraphBuilder {
    /// Create a builder for a graph with `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { weights: std::collections::HashMap::new(), n }
    }

    /// Add `weight` to the undirected edge `(a, b)`. Self-loops are ignored.
    ///
    /// # Panics
    /// Panics if `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize, weight: f64) {
        assert!(a < self.n && b < self.n, "edge ({a},{b}) out of range (n={})", self.n);
        if a == b {
            return;
        }
        let key = if a < b { (a as u32, b as u32) } else { (b as u32, a as u32) };
        *self.weights.entry(key).or_insert(0.0) += weight;
    }

    /// Finish building.
    #[must_use]
    pub fn build(self) -> Graph {
        let mut adj = vec![Vec::new(); self.n];
        let n_edges = self.weights.len();
        for (&(a, b), &w) in &self.weights {
            adj[a as usize].push((b, w));
            adj[b as usize].push((a, w));
        }
        for nbrs in &mut adj {
            nbrs.sort_unstable_by_key(|&(v, _)| v);
        }
        Graph { adj, n_edges }
    }
}

impl Graph {
    /// An empty graph with `n` isolated nodes.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        GraphBuilder::new(n).build()
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.n_edges
    }

    /// Neighbors of `u` with edge weights, sorted by neighbor id.
    #[must_use]
    pub fn neighbors(&self, u: usize) -> &[(u32, f64)] {
        &self.adj[u]
    }

    /// Degree `d_u`.
    #[must_use]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Weighted degree `wd_u = Σ_{j∈N_u} w_uj`.
    #[must_use]
    pub fn weighted_degree(&self, u: usize) -> f64 {
        self.adj[u].iter().map(|&(_, w)| w).sum()
    }

    /// NCS vector `D_u`: the multiset of incident edge weights in
    /// decreasing order (Section II-B).
    #[must_use]
    pub fn ncs_vector(&self, u: usize) -> Vec<f64> {
        let mut ws: Vec<f64> = self.adj[u].iter().map(|&(_, w)| w).collect();
        ws.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite weights"));
        ws
    }

    /// Edge weight between `a` and `b`, if the edge exists.
    #[must_use]
    pub fn edge_weight(&self, a: usize, b: usize) -> Option<f64> {
        self.adj[a].binary_search_by_key(&(b as u32), |&(v, _)| v).ok().map(|i| self.adj[a][i].1)
    }

    /// Node ids sorted by decreasing degree (ties by id), truncated to `k`.
    /// This is the paper's landmark selection ("ħ users with the largest
    /// degrees ... sorted in the degree decreasing order").
    #[must_use]
    pub fn top_degree_nodes(&self, k: usize) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.node_count()).collect();
        ids.sort_unstable_by(|&a, &b| self.degree(b).cmp(&self.degree(a)).then(a.cmp(&b)));
        ids.truncate(k);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(0, 2, 3.0);
        b.build()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn weights_accumulate() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 0, 1.0);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
        assert_eq!(g.edge_weight(1, 0), Some(2.0));
    }

    #[test]
    fn self_loops_ignored() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 5.0);
        let g = b.build();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn weighted_degree_and_ncs() {
        let g = triangle();
        assert!((g.weighted_degree(0) - 4.0).abs() < 1e-12);
        assert_eq!(g.ncs_vector(0), vec![3.0, 1.0]);
        assert_eq!(g.ncs_vector(3), Vec::<f64>::new());
    }

    #[test]
    fn top_degree_nodes_ordering() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(0, 3, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        assert_eq!(g.top_degree_nodes(3), vec![0, 1, 2]);
        assert_eq!(g.top_degree_nodes(99).len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2, 1.0);
    }
}
