//! # dehealth-graph
//!
//! Graph substrate for the De-Health reproduction.
//!
//! Section II-B of the paper builds a *user correlation graph* `G =
//! (V,E,W)` where users are nodes and an edge `e_ij` with weight `w_ij`
//! counts how many threads users `i` and `j` co-discussed, then extends it
//! to the User-Data-Attribute (UDA) graph. This crate provides:
//!
//! - [`graph::Graph`] — a compact weighted undirected graph with degrees,
//!   weighted degrees, and Neighborhood Correlation Strength (NCS) vectors;
//! - [`paths`] — BFS hop distances and Dijkstra weighted distances to
//!   landmark sets (the global correlation features `H_u(S)`, `WH_u(S)`);
//! - [`community`] — connected components, label-propagation communities
//!   and degree-distribution CDFs (Figs. 7 and 8);
//! - [`matching`] — exact maximum-weight bipartite matching (Hungarian
//!   algorithm) used by the graph-matching Top-K candidate selection.
//!
//! The UDA attribute side lives in `dehealth-core`, which owns the feature
//! extraction dependency; this crate is deliberately dependency-free.

pub mod community;
pub mod graph;
pub mod matching;
pub mod paths;

pub use community::{connected_components, degree_cdf, label_propagation, CommunityStats};
pub use graph::{Graph, GraphBuilder};
pub use matching::max_weight_matching;
pub use paths::{bfs_hops, dijkstra_weighted};
