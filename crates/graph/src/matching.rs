//! Exact maximum-weight bipartite matching (Hungarian algorithm with
//! potentials, a.k.a. Jonker-Volgenant style, `O(n²·m)`).
//!
//! The graph-matching Top-K candidate selection of Algorithm 1 builds "a
//! weighted completely connected bipartite graph G(V1, V2)" and repeatedly
//! finds "a maximum weighted bipartite graph matching". This module
//! provides that primitive for dense score matrices.

/// Maximum-weight perfect-on-rows matching.
///
/// `weights[i][j]` is the score of assigning row `i` to column `j`; the
/// matrix must be rectangular with `rows ≤ cols` and finite entries.
/// Returns `assign` with `assign[i] = j`: every row is matched to a
/// distinct column, maximizing the total weight.
///
/// ```
/// use dehealth_graph::max_weight_matching;
/// // Both rows prefer column 0, but the optimum trades off.
/// let w = vec![vec![10.0, 9.0], vec![8.0, 0.0]];
/// assert_eq!(max_weight_matching(&w), vec![1, 0]);
/// ```
///
/// # Panics
/// Panics if the matrix is empty, ragged, has `rows > cols`, or contains
/// non-finite weights.
#[must_use]
pub fn max_weight_matching(weights: &[Vec<f64>]) -> Vec<usize> {
    let n = weights.len();
    assert!(n > 0, "empty weight matrix");
    let m = weights[0].len();
    assert!(weights.iter().all(|r| r.len() == m), "ragged weight matrix");
    assert!(n <= m, "need rows ({n}) <= cols ({m})");
    assert!(weights.iter().flatten().all(|w| w.is_finite()), "non-finite weight");

    // Classic potentials formulation for MIN-cost assignment on cost
    // a[i][j] = -weights[i][j], 1-indexed with a virtual column 0.
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; m + 1];
    let mut p = vec![0usize; m + 1]; // row matched to column j (0 = none)
    let mut way = vec![0usize; m + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = -weights[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assign = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            assign[p[j] - 1] = j - 1;
        }
    }
    debug_assert!(assign.iter().all(|&j| j != usize::MAX));
    assign
}

/// Total weight of an assignment.
#[must_use]
pub fn matching_weight(weights: &[Vec<f64>], assign: &[usize]) -> f64 {
    assign.iter().enumerate().map(|(i, &j)| weights[i][j]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive reference for small instances.
    fn brute_force(weights: &[Vec<f64>]) -> f64 {
        fn rec(weights: &[Vec<f64>], row: usize, used: &mut Vec<bool>) -> f64 {
            if row == weights.len() {
                return 0.0;
            }
            let mut best = f64::NEG_INFINITY;
            for j in 0..weights[0].len() {
                if !used[j] {
                    used[j] = true;
                    best = best.max(weights[row][j] + rec(weights, row + 1, used));
                    used[j] = false;
                }
            }
            best
        }
        rec(weights, 0, &mut vec![false; weights[0].len()])
    }

    #[test]
    fn square_identity() {
        let w = vec![vec![10.0, 1.0], vec![1.0, 10.0]];
        assert_eq!(max_weight_matching(&w), vec![0, 1]);
    }

    #[test]
    fn must_trade_off() {
        // Greedy per-row would pick (0→0, then 1 stuck with 0.0);
        // optimum is 0→1, 1→0 with total 9+8=17 vs 10+0=10.
        let w = vec![vec![10.0, 9.0], vec![8.0, 0.0]];
        let a = max_weight_matching(&w);
        assert_eq!(a, vec![1, 0]);
        assert!((matching_weight(&w, &a) - 17.0).abs() < 1e-9);
    }

    #[test]
    fn rectangular() {
        let w = vec![vec![1.0, 5.0, 3.0], vec![4.0, 1.0, 2.0]];
        let a = max_weight_matching(&w);
        assert!((matching_weight(&w, &a) - 9.0).abs() < 1e-9);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn negative_weights_allowed() {
        let w = vec![vec![-1.0, -5.0], vec![-5.0, -1.0]];
        let a = max_weight_matching(&w);
        assert_eq!(a, vec![0, 1]);
    }

    #[test]
    fn matches_brute_force_on_grid() {
        // Deterministic pseudo-random 5x7 matrix.
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) * 10.0
        };
        let w: Vec<Vec<f64>> = (0..5).map(|_| (0..7).map(|_| next()).collect()).collect();
        let a = max_weight_matching(&w);
        let got = matching_weight(&w, &a);
        let want = brute_force(&w);
        assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
    }

    #[test]
    fn single_cell() {
        assert_eq!(max_weight_matching(&[vec![3.0]]), vec![0]);
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn more_rows_than_cols_panics() {
        let _ = max_weight_matching(&[vec![1.0], vec![2.0]]);
    }
}
