//! Shortest-path distances used by the global correlation features
//! `H_u(S)` (hop distances to landmarks) and `WH_u(S)` (weighted
//! distances to landmarks) of Section II-B.
//!
//! Both functions compute distances from a single source to *all* nodes, so
//! the caller runs one traversal per landmark (|S| traversals) instead of
//! one per (user, landmark) pair.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::Graph;

/// Hop distance (unweighted BFS) from `source` to every node.
/// Unreachable nodes get `u32::MAX`.
#[must_use]
pub fn bfs_hops(g: &Graph, source: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.node_count()];
    dist[source] = 0;
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for &(v, _) in g.neighbors(u) {
            let v = v as usize;
            if dist[v] == u32::MAX {
                dist[v] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance via reversed comparison; distances are
        // finite non-NaN by construction.
        other.dist.partial_cmp(&self.dist).expect("finite distances")
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Weighted shortest-path distance (Dijkstra) from `source` to every node.
/// Unreachable nodes get `f64::INFINITY`.
///
/// Edge weights are interactivity *strengths*; a stronger tie should mean a
/// *shorter* effective distance, so each edge of weight `w` contributes
/// length `1/w`. Non-positive weights are treated as absent edges.
#[must_use]
pub fn dijkstra_weighted(g: &Graph, source: usize) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; g.node_count()];
    dist[source] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem { dist: 0.0, node: source });
    while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            if w <= 0.0 {
                continue;
            }
            let v = v as usize;
            let nd = d + 1.0 / w;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(HeapItem { dist: nd, node: v });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Path graph 0-1-2-3 plus isolated node 4.
    fn path_graph() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 3, 4.0);
        b.build()
    }

    #[test]
    fn bfs_distances() {
        let d = bfs_hops(&path_graph(), 0);
        assert_eq!(d, vec![0, 1, 2, 3, u32::MAX]);
    }

    #[test]
    fn dijkstra_inverse_weight_lengths() {
        let d = dijkstra_weighted(&path_graph(), 0);
        assert!((d[0] - 0.0).abs() < 1e-12);
        assert!((d[1] - 1.0).abs() < 1e-12);
        assert!((d[2] - 1.5).abs() < 1e-12);
        assert!((d[3] - 1.75).abs() < 1e-12);
        assert!(d[4].is_infinite());
    }

    #[test]
    fn dijkstra_prefers_strong_ties() {
        // 0-2 direct but weak (w=0.1, length 10); 0-1-2 strong (1+1=2).
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 0.1);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let d = dijkstra_weighted(&b.build(), 0);
        assert!((d[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_edges_do_not_connect() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.0);
        let d = dijkstra_weighted(&b.build(), 0);
        assert!(d[1].is_infinite());
    }
}
