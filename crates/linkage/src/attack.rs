//! The linkage-attack framework of Section VI: NameLink and AvatarLink,
//! cross-validation, and identity-profile aggregation.

use std::collections::HashMap;

use crate::avatar::AvatarIndex;
use crate::services::{Account, Service, World};
use crate::username::UsernameModel;

/// One confirmed link from a health-forum account to an account elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// Health-forum account (index into `World::health_forum`).
    pub forum_account: usize,
    /// Target service.
    pub service: Service,
    /// Target account index within that service's account list.
    pub target_account: usize,
    /// `true` if both accounts belong to the same hidden person.
    pub correct: bool,
}

/// NameLink parameters.
#[derive(Debug, Clone, Copy)]
pub struct NameLinkConfig {
    /// Minimum username surprisal (bits) to trust an exact-match link;
    /// lower-entropy usernames are considered collision-prone and skipped.
    pub min_entropy_bits: f64,
}

impl Default for NameLinkConfig {
    fn default() -> Self {
        Self { min_entropy_bits: 30.0 }
    }
}

/// AvatarLink parameters.
#[derive(Debug, Clone, Copy)]
pub struct AvatarLinkConfig {
    /// Maximum Hamming distance accepted by reverse image search.
    pub max_hamming: u32,
}

impl Default for AvatarLinkConfig {
    fn default() -> Self {
        Self { max_hamming: 8 }
    }
}

/// Run NameLink: entropy-rank forum usernames, exact-match them against
/// the other services, and keep matches above the entropy threshold.
#[must_use]
pub fn name_link(world: &World, config: &NameLinkConfig) -> Vec<Link> {
    let model = UsernameModel::train(world.health_forum.iter().map(|a| a.username.as_str()));
    // Exact-match indices for the target services.
    let index = |accounts: &[Account]| -> HashMap<String, Vec<usize>> {
        let mut m: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, a) in accounts.iter().enumerate() {
            m.entry(a.username.clone()).or_default().push(i);
        }
        m
    };
    let second_idx = index(&world.second_forum);
    let social_idx = index(&world.social);

    // Entropy-decreasing search order (the NameLink procedure, step ii).
    let mut order: Vec<usize> = (0..world.health_forum.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        let ea = model.entropy_bits(&world.health_forum[a].username);
        let eb = model.entropy_bits(&world.health_forum[b].username);
        eb.partial_cmp(&ea).expect("finite entropy").then(a.cmp(&b))
    });

    let mut links = Vec::new();
    for fa in order {
        let account = &world.health_forum[fa];
        if model.entropy_bits(&account.username) < config.min_entropy_bits {
            // All remaining usernames are lower-entropy; stop searching.
            break;
        }
        for (service, idx, accounts) in [
            (Service::SecondHealthForum, &second_idx, &world.second_forum),
            (Service::SocialNetwork, &social_idx, &world.social),
        ] {
            if let Some(hits) = idx.get(&account.username) {
                // A unique match is trustworthy; multiple hits mean the
                // username collides even at high entropy — skip.
                if let [target] = hits.as_slice() {
                    links.push(Link {
                        forum_account: fa,
                        service,
                        target_account: *target,
                        correct: accounts[*target].person == account.person,
                    });
                }
            }
        }
    }
    links
}

/// Run AvatarLink: reverse-image-search every forum avatar against the
/// social network's avatar index.
#[must_use]
pub fn avatar_link(world: &World, config: &AvatarLinkConfig) -> Vec<Link> {
    let mut index = AvatarIndex::new();
    for (i, a) in world.social.iter().enumerate() {
        if let Some(fp) = a.avatar {
            index.insert(fp, i);
        }
    }
    let mut links = Vec::new();
    for (fa, account) in world.health_forum.iter().enumerate() {
        let Some(fp) = account.avatar else { continue };
        let hits = index.search(fp, config.max_hamming);
        // Accept only an unambiguous nearest hit (manual-validation step).
        if let [(target, _), rest @ ..] = hits.as_slice() {
            if rest.is_empty() {
                links.push(Link {
                    forum_account: fa,
                    service: Service::SocialNetwork,
                    target_account: *target,
                    correct: world.social[*target].person == account.person,
                });
            }
        }
    }
    links
}

/// Aggregated identity knowledge about one de-anonymized forum user.
#[derive(Debug, Clone, Default)]
pub struct IdentityProfile {
    /// Full name, if a social or directory link revealed it.
    pub full_name: Option<String>,
    /// Birth year.
    pub birth_year: Option<u32>,
    /// Phone number, if the person is in the directory.
    pub phone: Option<String>,
    /// Health condition from the forum.
    pub condition: Option<&'static str>,
    /// Whether the exposed condition is sensitive.
    pub sensitive: bool,
    /// Services this user was linked to.
    pub services: Vec<Service>,
}

/// Outcome of the full linkage attack.
#[derive(Debug, Clone)]
pub struct LinkageReport {
    /// NameLink links.
    pub name_links: Vec<Link>,
    /// AvatarLink links.
    pub avatar_links: Vec<Link>,
    /// Forum accounts with a usable avatar (the paper's 2805).
    pub n_avatar_targets: usize,
    /// Forum accounts linked by both tools (the paper's 137 overlap).
    pub n_overlap: usize,
    /// Aggregated profiles per linked forum account.
    pub profiles: HashMap<usize, IdentityProfile>,
}

impl LinkageReport {
    /// Precision of a link set.
    #[must_use]
    pub fn precision(links: &[Link]) -> f64 {
        if links.is_empty() {
            return 0.0;
        }
        links.iter().filter(|l| l.correct).count() as f64 / links.len() as f64
    }

    /// Distinct forum accounts linked by AvatarLink (the paper's 347).
    #[must_use]
    pub fn n_avatar_linked(&self) -> usize {
        distinct_forum_accounts(&self.avatar_links)
    }

    /// Distinct forum accounts linked by NameLink (the paper's 1676).
    #[must_use]
    pub fn n_name_linked(&self) -> usize {
        distinct_forum_accounts(&self.name_links)
    }

    /// Fraction of avatar-linked users whose aggregated profile spans 2+
    /// services, including the Whitepages-style directory enrichment (the
    /// paper reports > 33.4%).
    #[must_use]
    pub fn multi_service_fraction(&self) -> f64 {
        let avatar_linked: Vec<usize> = self.avatar_links.iter().map(|l| l.forum_account).collect();
        if avatar_linked.is_empty() {
            return 0.0;
        }
        let multi = avatar_linked
            .iter()
            .filter(|fa| self.profiles.get(fa).is_some_and(|p| p.services.len() >= 2))
            .count();
        multi as f64 / avatar_linked.len() as f64
    }
}

fn distinct_forum_accounts(links: &[Link]) -> usize {
    let mut ids: Vec<usize> = links.iter().map(|l| l.forum_account).collect();
    ids.sort_unstable();
    ids.dedup();
    ids.len()
}

/// Run the full linkage attack: NameLink + AvatarLink + cross-validation
/// and profile aggregation.
#[must_use]
pub fn run_linkage_attack(
    world: &World,
    name_cfg: &NameLinkConfig,
    avatar_cfg: &AvatarLinkConfig,
) -> LinkageReport {
    let name_links = name_link(world, name_cfg);
    let avatar_links = avatar_link(world, avatar_cfg);
    let n_avatar_targets = world.health_forum.iter().filter(|a| a.avatar.is_some()).count();

    let named: std::collections::HashSet<usize> =
        name_links.iter().map(|l| l.forum_account).collect();
    let n_overlap = avatar_links
        .iter()
        .map(|l| l.forum_account)
        .collect::<std::collections::HashSet<usize>>()
        .intersection(&named)
        .count();

    // Aggregate identity profiles from every link, enriching with the
    // directory when the social link reveals the full name.
    let mut profiles: HashMap<usize, IdentityProfile> = HashMap::new();
    for link in avatar_links.iter().chain(&name_links) {
        let forum_acct = &world.health_forum[link.forum_account];
        let person = &world.people[forum_acct.person];
        let profile = profiles.entry(link.forum_account).or_default();
        profile.condition = Some(person.condition);
        profile.sensitive = person.sensitive;
        if !profile.services.contains(&link.service) {
            profile.services.push(link.service);
        }
        if link.service == Service::SocialNetwork && link.correct {
            // A social profile exposes the real name and birth year.
            profile.full_name = Some(person.full_name.clone());
            profile.birth_year = Some(person.birth_year);
            // Whitepages-style enrichment: name → phone. A successful
            // directory lookup is itself a service link.
            if world.directory.iter().any(|d| d.person == forum_acct.person) {
                profile.phone = Some(person.phone.clone());
                if !profile.services.contains(&Service::PeopleDirectory) {
                    profile.services.push(Service::PeopleDirectory);
                }
            }
        }
    }

    LinkageReport { name_links, avatar_links, n_avatar_targets, n_overlap, profiles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::services::WorldConfig;

    fn report() -> LinkageReport {
        let world = World::generate(&WorldConfig { n_people: 2000, ..WorldConfig::default() }, 3);
        run_linkage_attack(&world, &NameLinkConfig::default(), &AvatarLinkConfig::default())
    }

    #[test]
    fn avatar_links_are_precise() {
        let r = report();
        assert!(!r.avatar_links.is_empty());
        // Random 64-bit fingerprints essentially never collide at radius 8,
        // so precision should be near-perfect.
        assert!(LinkageReport::precision(&r.avatar_links) > 0.95);
    }

    #[test]
    fn name_links_are_mostly_correct() {
        let r = report();
        assert!(!r.name_links.is_empty());
        assert!(LinkageReport::precision(&r.name_links) > 0.8);
    }

    #[test]
    fn avatar_link_rate_matches_paper_shape() {
        // The paper links 12.4% of avatar targets; defaults are tuned for
        // the same order of magnitude.
        let r = report();
        let rate = r.n_avatar_linked() as f64 / r.n_avatar_targets as f64;
        assert!(rate > 0.05 && rate < 0.35, "avatar link rate = {rate}");
    }

    #[test]
    fn overlap_is_nonempty_and_bounded() {
        let r = report();
        assert!(r.n_overlap <= r.n_avatar_linked());
        assert!(r.n_overlap <= r.n_name_linked());
    }

    #[test]
    fn profiles_expose_sensitive_data() {
        let r = report();
        assert!(!r.profiles.is_empty());
        let with_name = r.profiles.values().filter(|p| p.full_name.is_some()).count();
        let with_phone = r.profiles.values().filter(|p| p.phone.is_some()).count();
        let sensitive = r.profiles.values().filter(|p| p.sensitive).count();
        assert!(with_name > 0, "no full names recovered");
        assert!(with_phone > 0, "no phone numbers recovered");
        assert!(sensitive > 0, "no sensitive conditions exposed");
        assert!(with_phone <= with_name);
    }

    #[test]
    fn multi_service_fraction_in_unit_interval() {
        let r = report();
        let f = r.multi_service_fraction();
        assert!((0.0..=1.0).contains(&f));
        assert!(f > 0.0, "expected some multi-service users");
    }

    #[test]
    fn entropy_threshold_controls_volume() {
        let world = World::generate(&WorldConfig { n_people: 1000, ..WorldConfig::default() }, 4);
        let strict = name_link(&world, &NameLinkConfig { min_entropy_bits: 50.0 });
        let lax = name_link(&world, &NameLinkConfig { min_entropy_bits: 5.0 });
        assert!(strict.len() <= lax.len());
        if !strict.is_empty() && !lax.is_empty() {
            assert!(LinkageReport::precision(&strict) >= LinkageReport::precision(&lax) - 0.05);
        }
    }
}
