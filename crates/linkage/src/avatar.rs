//! Avatar fingerprints — the substitute for Google Reverse Image Search.
//!
//! Real avatars are images; AvatarLink matches them across services via
//! reverse image search. We model an avatar as a 64-bit perceptual-hash
//! fingerprint: re-uploading the same photo to another service re-encodes
//! it, flipping a few random bits; reverse image search is a Hamming-ball
//! query. This preserves the attack-relevant behaviour (same photo →
//! near-identical fingerprint, different photos → ~32-bit distance) without
//! any image data.

use rand::rngs::StdRng;
use rand::Rng;

/// A 64-bit perceptual-hash-like avatar fingerprint.
pub type Fingerprint = u64;

/// Sample a fresh (uniformly random) fingerprint for a new photo.
#[must_use]
pub fn fresh(rng: &mut StdRng) -> Fingerprint {
    rng.gen()
}

/// Re-encode a photo for upload to another service: flips `noise_bits`
/// random (not necessarily distinct) bits.
#[must_use]
pub fn reencode(rng: &mut StdRng, fp: Fingerprint, noise_bits: u32) -> Fingerprint {
    let mut out = fp;
    for _ in 0..noise_bits {
        out ^= 1u64 << rng.gen_range(0..64u32);
    }
    out
}

/// Hamming distance between fingerprints.
#[must_use]
pub fn hamming(a: Fingerprint, b: Fingerprint) -> u32 {
    (a ^ b).count_ones()
}

/// A reverse-image-search index over fingerprints.
#[derive(Debug, Clone, Default)]
pub struct AvatarIndex {
    entries: Vec<(Fingerprint, usize)>,
}

impl AvatarIndex {
    /// Empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a fingerprint with its payload (e.g. account id).
    pub fn insert(&mut self, fp: Fingerprint, payload: usize) {
        self.entries.push((fp, payload));
    }

    /// All payloads within Hamming distance `radius` of `query`, closest
    /// first (ties by payload for determinism).
    #[must_use]
    pub fn search(&self, query: Fingerprint, radius: u32) -> Vec<(usize, u32)> {
        let mut hits: Vec<(usize, u32)> = self
            .entries
            .iter()
            .filter_map(|&(fp, payload)| {
                let d = hamming(fp, query);
                (d <= radius).then_some((payload, d))
            })
            .collect();
        hits.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        hits
    }

    /// Number of indexed fingerprints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming(0, 0), 0);
        assert_eq!(hamming(0b1011, 0b0010), 2);
        assert_eq!(hamming(u64::MAX, 0), 64);
    }

    #[test]
    fn reencode_flips_at_most_noise_bits() {
        let mut rng = StdRng::seed_from_u64(2);
        let fp = fresh(&mut rng);
        for noise in [0u32, 1, 4, 8] {
            let re = reencode(&mut rng, fp, noise);
            assert!(hamming(fp, re) <= noise);
        }
    }

    #[test]
    fn search_finds_reencoded_avatar() {
        let mut rng = StdRng::seed_from_u64(3);
        let original = fresh(&mut rng);
        let uploaded = reencode(&mut rng, original, 4);
        let mut index = AvatarIndex::new();
        index.insert(uploaded, 77);
        // Unrelated photos.
        for i in 0..100 {
            index.insert(fresh(&mut rng), i);
        }
        let hits = index.search(original, 8);
        assert_eq!(hits.first().map(|h| h.0), Some(77));
    }

    #[test]
    fn unrelated_photos_rarely_collide_at_small_radius() {
        let mut rng = StdRng::seed_from_u64(4);
        let query = fresh(&mut rng);
        let mut index = AvatarIndex::new();
        for i in 0..2000 {
            index.insert(fresh(&mut rng), i);
        }
        // Random 64-bit values have expected distance 32; radius 8 hits
        // are astronomically unlikely.
        assert!(index.search(query, 8).is_empty());
    }

    #[test]
    fn search_orders_by_distance() {
        let mut index = AvatarIndex::new();
        index.insert(0b0000, 0);
        index.insert(0b0001, 1);
        index.insert(0b0011, 2);
        let hits = index.search(0b0000, 2);
        assert_eq!(hits, vec![(0, 0), (1, 1), (2, 2)]);
    }
}
