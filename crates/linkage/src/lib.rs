//! # dehealth-linkage
//!
//! The linkage-attack framework of Section VI, which connects
//! de-anonymized health-forum accounts to real-world identities.
//!
//! The paper's proof-of-concept uses live services (Google Reverse Image
//! Search, Facebook/Twitter/LinkedIn, Whitepages) against real WebMD
//! users; those are neither available offline nor ethical to reproduce, so
//! this crate simulates the attack surface (DESIGN.md §2): a hidden
//! population of people with accounts on four services, with configurable
//! username reuse (after Perito et al.) and avatar reuse with re-encoding
//! noise.
//!
//! - [`username`] — character-level Markov surprisal model + username
//!   generator (NameLink's ranking statistic);
//! - [`avatar`] — 64-bit perceptual-hash-style fingerprints and a
//!   Hamming-ball reverse-image-search index (AvatarLink's oracle);
//! - [`services`] — the synthetic world with ground truth;
//! - [`attack`] — NameLink, AvatarLink, cross-validation and identity
//!   profile aggregation ([`attack::run_linkage_attack`]).

pub mod attack;
pub mod avatar;
pub mod services;
pub mod username;

pub use attack::{
    avatar_link, name_link, run_linkage_attack, AvatarLinkConfig, IdentityProfile, Link,
    LinkageReport, NameLinkConfig,
};
pub use avatar::{hamming, AvatarIndex, Fingerprint};
pub use services::{Account, Person, Service, World, WorldConfig};
pub use username::UsernameModel;
