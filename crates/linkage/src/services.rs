//! The synthetic world: real people and their accounts across Internet
//! services.
//!
//! Substitute for the paper's live targets (WebMD avatars, HealthBoards
//! profiles, Facebook/Twitter/LinkedIn, Whitepages). A hidden population
//! of [`Person`]s each hold accounts on up to four services; username and
//! avatar reuse across services is what the linkage attack exploits, and
//! the hidden person ids provide ground truth for scoring.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::avatar::{fresh, reencode, Fingerprint};
use crate::username::{generate_username, FIRST_NAMES, LAST_NAMES};

/// Services in the simulated Internet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Service {
    /// The attacked health forum (WebMD-like).
    HealthForum,
    /// A second health forum with richer profiles (HealthBoards-like).
    SecondHealthForum,
    /// A social network with real names and avatars.
    SocialNetwork,
    /// A people directory with phone numbers and addresses
    /// (Whitepages-like).
    PeopleDirectory,
}

/// A real-world person (hidden ground truth).
#[derive(Debug, Clone)]
pub struct Person {
    /// Full name.
    pub full_name: String,
    /// Birth year.
    pub birth_year: u32,
    /// Phone number (synthetic).
    pub phone: String,
    /// City index (opaque).
    pub city: usize,
    /// Health condition discussed on the forum.
    pub condition: &'static str,
    /// Whether the condition is of a sensitive category (the paper's
    /// examples: infectious disease, mental-health problems, suicidal
    /// tendency).
    pub sensitive: bool,
}

/// One account on one service.
#[derive(Debug, Clone)]
pub struct Account {
    /// Hidden owner (index into [`World::people`]).
    pub person: usize,
    /// Public username.
    pub username: String,
    /// Public avatar fingerprint, if the account has a custom avatar.
    pub avatar: Option<Fingerprint>,
    /// Which service the account lives on.
    pub service: Service,
}

/// World-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Number of people.
    pub n_people: usize,
    /// Probability a person reuses their health-forum username on other
    /// services (Perito et al. find username reuse is the norm).
    pub username_reuse_p: f64,
    /// Probability the health-forum account has a custom human avatar
    /// (the paper keeps 2805 of 89393 users after avatar filtering).
    pub avatar_upload_p: f64,
    /// Probability the same photo is reused on the social network.
    pub avatar_reuse_p: f64,
    /// Bits flipped when a photo is re-encoded by another service.
    pub avatar_noise_bits: u32,
    /// Probability a person has a social-network account.
    pub social_presence_p: f64,
    /// Probability a person also uses the second health forum.
    pub second_forum_p: f64,
    /// Fraction of people listed in the people directory.
    pub directory_p: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            n_people: 3000,
            username_reuse_p: 0.6,
            avatar_upload_p: 0.35,
            avatar_reuse_p: 0.35,
            avatar_noise_bits: 4,
            social_presence_p: 0.55,
            second_forum_p: 0.4,
            directory_p: 0.7,
        }
    }
}

const CONDITIONS: &[(&str, bool)] = &[
    ("hepatitis c", true),
    ("depression", true),
    ("hiv", true),
    ("suicidal ideation", true),
    ("diabetes", false),
    ("arthritis", false),
    ("migraine", false),
    ("asthma", false),
    ("back pain", false),
    ("eczema", false),
];

/// The simulated Internet.
#[derive(Debug, Clone)]
pub struct World {
    /// The hidden population.
    pub people: Vec<Person>,
    /// Accounts on the attacked health forum, one per person.
    pub health_forum: Vec<Account>,
    /// Accounts on the second health forum.
    pub second_forum: Vec<Account>,
    /// Accounts on the social network.
    pub social: Vec<Account>,
    /// Directory listings (username = full name slug).
    pub directory: Vec<Account>,
}

impl World {
    /// Generate a world.
    ///
    /// # Panics
    /// Panics if `config.n_people == 0`.
    #[must_use]
    pub fn generate(config: &WorldConfig, seed: u64) -> Self {
        assert!(config.n_people > 0, "need at least one person");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut people = Vec::with_capacity(config.n_people);
        let mut health_forum = Vec::with_capacity(config.n_people);
        let mut second_forum = Vec::new();
        let mut social = Vec::new();
        let mut directory = Vec::new();

        for pid in 0..config.n_people {
            let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
            let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
            let (condition, sensitive) = CONDITIONS[rng.gen_range(0..CONDITIONS.len())];
            people.push(Person {
                full_name: format!("{} {}", capitalize(first), capitalize(last)),
                birth_year: rng.gen_range(1940..2005),
                phone: format!("555-{:04}", rng.gen_range(0..10_000u32)),
                city: rng.gen_range(0..200),
                condition,
                sensitive,
            });

            let forum_username = generate_username(&mut rng, first, last);
            let photo = if rng.gen::<f64>() < config.avatar_upload_p {
                Some(fresh(&mut rng))
            } else {
                None
            };
            health_forum.push(Account {
                person: pid,
                username: forum_username.clone(),
                avatar: photo,
                service: Service::HealthForum,
            });

            let reuse_name = rng.gen::<f64>() < config.username_reuse_p;
            let alt_username = |rng: &mut StdRng| {
                if reuse_name {
                    forum_username.clone()
                } else {
                    generate_username(rng, first, last)
                }
            };

            if rng.gen::<f64>() < config.second_forum_p {
                let username = alt_username(&mut rng);
                second_forum.push(Account {
                    person: pid,
                    username,
                    avatar: None,
                    service: Service::SecondHealthForum,
                });
            }
            if rng.gen::<f64>() < config.social_presence_p {
                let username = alt_username(&mut rng);
                let avatar = match photo {
                    Some(fp) if rng.gen::<f64>() < config.avatar_reuse_p => {
                        Some(reencode(&mut rng, fp, config.avatar_noise_bits))
                    }
                    _ => Some(fresh(&mut rng)),
                };
                social.push(Account {
                    person: pid,
                    username,
                    avatar,
                    service: Service::SocialNetwork,
                });
            }
            if rng.gen::<f64>() < config.directory_p {
                directory.push(Account {
                    person: pid,
                    username: format!("{first}.{last}"),
                    avatar: None,
                    service: Service::PeopleDirectory,
                });
            }
        }
        Self { people, health_forum, second_forum, social, directory }
    }
}

fn capitalize(w: &str) -> String {
    let mut cs = w.chars();
    match cs.next() {
        Some(f) => f.to_uppercase().collect::<String>() + cs.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(&WorldConfig { n_people: 500, ..WorldConfig::default() }, 9)
    }

    #[test]
    fn one_forum_account_per_person() {
        let w = world();
        assert_eq!(w.health_forum.len(), w.people.len());
        for (pid, acct) in w.health_forum.iter().enumerate() {
            assert_eq!(acct.person, pid);
        }
    }

    #[test]
    fn service_sizes_track_probabilities() {
        let w = world();
        let frac = |n: usize| n as f64 / w.people.len() as f64;
        assert!((frac(w.social.len()) - 0.55).abs() < 0.1);
        assert!((frac(w.second_forum.len()) - 0.4).abs() < 0.1);
        assert!((frac(w.directory.len()) - 0.7).abs() < 0.1);
    }

    #[test]
    fn username_reuse_happens() {
        let w = world();
        let reused =
            w.social.iter().filter(|a| w.health_forum[a.person].username == a.username).count();
        assert!(reused > 0);
        assert!(reused < w.social.len());
    }

    #[test]
    fn avatar_reuse_keeps_fingerprints_close() {
        let w = world();
        let mut close = 0;
        for a in &w.social {
            if let (Some(fa), Some(ff)) = (a.avatar, w.health_forum[a.person].avatar) {
                if crate::avatar::hamming(fa, ff) <= 4 {
                    close += 1;
                }
            }
        }
        assert!(close > 0, "expected some reused avatars");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(&WorldConfig::default(), 5);
        let b = World::generate(&WorldConfig::default(), 5);
        assert_eq!(a.health_forum[0].username, b.health_forum[0].username);
        assert_eq!(a.people[7].full_name, b.people[7].full_name);
    }

    #[test]
    fn sensitive_conditions_flagged() {
        let w = world();
        assert!(w.people.iter().any(|p| p.sensitive));
        assert!(w.people.iter().any(|p| !p.sensitive));
    }
}
