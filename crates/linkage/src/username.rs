//! Username entropy model (after Perito et al., "How Unique and Traceable
//! are Usernames?", PETS 2011) and the synthetic username generator.
//!
//! The linkage attack's NameLink tool ranks usernames by information
//! surprisal under a character-level Markov model: a username that is very
//! improbable under the population model ("jwolf6589") is almost certainly
//! unique to one person, while a probable one ("john123") collides across
//! people and must be filtered.

use rand::rngs::StdRng;
use rand::Rng;

/// First names used by the username generator.
pub const FIRST_NAMES: &[&str] = &[
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael", "linda", "david",
    "susan", "william", "jessica", "richard", "sarah", "joseph", "karen", "thomas", "nancy",
    "chris", "lisa", "daniel", "betty", "matthew", "helen", "anthony", "sandra", "mark", "donna",
    "paul", "carol", "steven", "ruth", "andrew", "sharon", "kenneth", "michelle", "joshua",
    "laura", "kevin", "amy",
];

/// Last names used by the username generator.
pub const LAST_NAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "lee",
    "perez",
    "thompson",
    "white",
    "harris",
    "sanchez",
    "clark",
    "ramirez",
    "lewis",
    "robinson",
    "walker",
    "young",
    "allen",
    "king",
    "wright",
    "scott",
    "torres",
    "nguyen",
    "hill",
    "flores",
];

/// Hobby / noun words for handle-style usernames.
pub const HANDLE_WORDS: &[&str] = &[
    "wolf",
    "tiger",
    "moon",
    "star",
    "happy",
    "sunny",
    "blue",
    "red",
    "silver",
    "golden",
    "runner",
    "dreamer",
    "hiker",
    "gamer",
    "reader",
    "baker",
    "rider",
    "angel",
    "storm",
    "shadow",
    "river",
    "ocean",
    "mountain",
    "flower",
    "butterfly",
    "dragonfly",
    "hope",
    "grace",
    "lucky",
    "cozy",
];

/// A character-level first-order Markov model over usernames, with
/// add-one smoothing. Characters outside `[a-z0-9._-]` are mapped to a
/// catch-all symbol.
///
/// ```
/// use dehealth_linkage::UsernameModel;
/// let population: Vec<String> = (0..100).map(|i| format!("john{i}")).collect();
/// let model = UsernameModel::train(population.iter().map(String::as_str));
/// // A common pattern is far less surprising than a rare one.
/// assert!(model.entropy_bits("john7") < model.entropy_bits("xq9zkw"));
/// ```
#[derive(Debug, Clone)]
pub struct UsernameModel {
    // counts[prev][next]; index 0 is the start-of-string symbol.
    counts: Vec<Vec<u32>>,
    totals: Vec<u32>,
}

const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789._-";
const N_SYMBOLS: usize = ALPHABET.len() + 2; // + start + catch-all

fn symbol(c: char) -> usize {
    let c = c.to_ascii_lowercase();
    ALPHABET.iter().position(|&a| a as char == c).map_or(N_SYMBOLS - 1, |i| i + 1)
}

impl UsernameModel {
    /// Train on a username population.
    #[must_use]
    pub fn train<'a, I: IntoIterator<Item = &'a str>>(usernames: I) -> Self {
        let mut counts = vec![vec![0u32; N_SYMBOLS]; N_SYMBOLS];
        for name in usernames {
            let mut prev = 0usize; // start symbol
            for c in name.chars() {
                let s = symbol(c);
                counts[prev][s] += 1;
                prev = s;
            }
        }
        let totals = counts.iter().map(|row| row.iter().sum()).collect();
        Self { counts, totals }
    }

    /// Information surprisal (bits): `−Σ log₂ P(cᵢ | cᵢ₋₁)` with add-one
    /// smoothing. Larger = rarer = more identifying.
    #[must_use]
    pub fn entropy_bits(&self, username: &str) -> f64 {
        let mut bits = 0.0;
        let mut prev = 0usize;
        for c in username.chars() {
            let s = symbol(c);
            let num = f64::from(self.counts[prev][s]) + 1.0;
            let den = f64::from(self.totals[prev]) + N_SYMBOLS as f64;
            bits -= (num / den).log2();
            prev = s;
        }
        bits
    }
}

/// Deterministically generate one username for person `(first, last)` with
/// the generator's pattern mix. Low-entropy patterns (common first name +
/// short digits) are deliberately frequent so that collisions occur, as in
/// real populations.
#[must_use]
pub fn generate_username(rng: &mut StdRng, first: &str, last: &str) -> String {
    match rng.gen_range(0..6u8) {
        // Common, collision-prone patterns.
        0 => format!("{first}{}", rng.gen_range(1..100u32)),
        1 => format!(
            "{}{}",
            HANDLE_WORDS[rng.gen_range(0..HANDLE_WORDS.len())],
            rng.gen_range(1..100u32)
        ),
        // Distinctive patterns.
        2 => format!("{}{}{}", &first[..1], last, rng.gen_range(1000..10_000u32)),
        3 => format!("{first}.{last}"),
        4 => format!(
            "{}_{}{}",
            HANDLE_WORDS[rng.gen_range(0..HANDLE_WORDS.len())],
            HANDLE_WORDS[rng.gen_range(0..HANDLE_WORDS.len())],
            rng.gen_range(10..1000u32)
        ),
        _ => format!("{last}{}", rng.gen_range(1900..2010u32)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn entropy_is_positive_and_additive_in_length() {
        let m = UsernameModel::train(["john1", "john2", "mary9"]);
        let short = m.entropy_bits("john");
        let long = m.entropy_bits("johnjohn");
        assert!(short > 0.0);
        assert!(long > short);
    }

    #[test]
    fn common_patterns_have_lower_entropy() {
        // Train on a population dominated by "john"-like names.
        let population: Vec<String> = (0..200).map(|i| format!("john{i}")).collect();
        let m = UsernameModel::train(population.iter().map(String::as_str));
        assert!(m.entropy_bits("john42") < m.entropy_bits("xqzvkw42"));
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        assert_eq!(
            generate_username(&mut a, "john", "smith"),
            generate_username(&mut b, "john", "smith")
        );
    }

    #[test]
    fn generator_produces_collisions_across_people() {
        // Two different people can end up with the same low-entropy handle.
        let mut names = std::collections::HashSet::new();
        let mut collision = false;
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..500 {
            let f = FIRST_NAMES[i % FIRST_NAMES.len()];
            let l = LAST_NAMES[(i * 7) % LAST_NAMES.len()];
            if !names.insert(generate_username(&mut rng, f, l)) {
                collision = true;
                break;
            }
        }
        assert!(collision, "expected at least one username collision");
    }

    #[test]
    fn unknown_characters_fold_to_catch_all() {
        let m = UsernameModel::train(["abc"]);
        // Should not panic and should yield finite entropy.
        assert!(m.entropy_bits("\u{1f600}\u{1f600}").is_finite());
    }
}
