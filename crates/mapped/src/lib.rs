#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
//! # dehealth-mapped
//!
//! Read-only file mapping plus alignment-checked little-endian slice
//! casts — the foundation of the workspace's zero-copy snapshot loading.
//!
//! The rest of the workspace denies `unsafe_code` outright; this shim is
//! the one crate allowed to contain it, and it confines every unsafe
//! operation behind three small safe APIs:
//!
//! - [`MappedFile`] — a read-only file mapping created with raw
//!   `mmap`/`munmap` calls (no crates.io dependency), exposed as
//!   `Deref<Target = [u8]>`. Feature-gated (`mmap`, on by default) and
//!   unix-only; everywhere else [`MappedFile::open`] gracefully degrades
//!   to reading the file into an [`AlignedBytes`] heap buffer.
//! - [`AlignedBytes`] — an owned byte buffer whose base address is always
//!   8-byte aligned (it is backed by a `Vec<u64>`), so format-level
//!   alignment guarantees translate into *address*-level alignment even
//!   on the owned fallback path.
//! - [`LePod`] + [`ByteSource`] — sealed POD slice casts
//!   (`&[u8] → &[T]` for `T ∈ {u8, u32, u64, f64}`) that check pointer
//!   alignment and length, and refuse entirely on big-endian targets
//!   (where the on-disk little-endian layout does not match memory and
//!   callers must fall back to copying decoders).
//!
//! ## The standard mmap caveat
//!
//! A [`MappedFile`] reflects whatever the underlying file holds *now*: if
//! another process truncates the file while it is mapped, reads past the
//! new end can fault. The snapshot tooling treats snapshot files as
//! immutable once written — writers publish atomically (temp sibling
//! file + `rename`), so overwriting a path never truncates the inode an
//! existing mapping borrows — which is the same contract every
//! mmap-based store carries.

use std::fmt;
use std::io;
use std::ops::{Deref, Range};
use std::path::Path;
use std::sync::Arc;

/// Shared ownership of a loaded byte buffer — what zero-copy views clone
/// to keep their backing alive (the "owner" half of the owner-plus-view
/// split; the views hold `(SharedBytes, Range<usize>)` pairs instead of
/// self-referential slices).
pub type SharedBytes = Arc<ByteSource>;

/// An owned byte buffer with a guaranteed 8-byte-aligned base address.
///
/// Backed by a `Vec<u64>`, so casts of 8-byte-aligned *offsets* into the
/// buffer to `&[u64]`/`&[f64]` always succeed — which a plain `Vec<u8>`
/// (alignment 1) cannot promise.
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Copy `bytes` into a fresh 8-byte-aligned buffer.
    #[must_use]
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        Self::from_slice(&bytes)
    }

    /// Copy `bytes` into a fresh 8-byte-aligned buffer.
    #[must_use]
    pub fn from_slice(bytes: &[u8]) -> Self {
        let mut out = Self::zeroed(bytes.len());
        out.as_mut_bytes()[..bytes.len()].copy_from_slice(bytes);
        out
    }

    /// Read a whole file into an 8-byte-aligned buffer.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn read(path: &Path) -> io::Result<Self> {
        use io::Read as _;
        let mut file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::other("file too large for this address space"))?;
        let mut out = Self::zeroed(len);
        file.read_exact(out.as_mut_bytes())?;
        Ok(out)
    }

    fn zeroed(len: usize) -> Self {
        Self { words: vec![0u64; len.div_ceil(8)], len }
    }

    fn as_mut_bytes(&mut self) -> &mut [u8] {
        // SAFETY: the Vec<u64> owns `len.div_ceil(8) * 8 >= len`
        // initialized bytes; u8 has alignment 1, and the mutable borrow of
        // `self` makes the reborrow exclusive.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<u8>(), self.len) }
    }
}

impl Deref for AlignedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: the Vec<u64> owns at least `len` initialized bytes and
        // u8 has alignment 1; the lifetime is tied to `&self`.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

impl AsRef<[u8]> for AlignedBytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for AlignedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlignedBytes").field("len", &self.len).finish()
    }
}

#[cfg(all(unix, feature = "mmap"))]
mod sys {
    //! The two raw syscall bindings this crate exists to confine. Declared
    //! directly against the platform libc (which every Rust binary already
    //! links) — the workspace has no crates.io access, hence no `libc`
    //! crate.
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// `MAP_FAILED` is `(void *) -1`.
    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// A read-only memory-mapped file (see the [module docs](self)).
///
/// On unix targets with the `mmap` feature (the default) the bytes live
/// in the page cache, shared with every other process mapping the same
/// file; otherwise they live in an [`AlignedBytes`] heap copy. Either
/// way the base address is at least page- or 8-byte aligned, so the v2
/// snapshot format's 8-byte offset guarantees hold as address guarantees.
///
/// ```no_run
/// use dehealth_mapped::MappedFile;
/// let mapping = MappedFile::open(std::path::Path::new("corpus.snap")).unwrap();
/// assert_eq!(&mapping[..8], b"DEHSNAP\n");
/// ```
pub struct MappedFile {
    inner: MappedInner,
}

enum MappedInner {
    #[cfg(all(unix, feature = "mmap"))]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Fallback(AlignedBytes),
}

// SAFETY: a mapping is immutable shared memory for its whole lifetime
// (PROT_READ, and this crate never exposes a mutable view); sending or
// sharing the handle across threads cannot introduce data races. The
// fallback variant is an ordinary owned buffer.
unsafe impl Send for MappedFile {}
// SAFETY: see the Send impl — all access is read-only.
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Map `path` read-only. Uses `mmap` where available; degrades to an
    /// aligned heap read otherwise ([`Self::is_mapped`] tells which).
    ///
    /// # Errors
    /// Propagates filesystem/`mmap` errors.
    pub fn open(path: &Path) -> io::Result<Self> {
        #[cfg(all(unix, feature = "mmap"))]
        {
            use std::os::unix::io::AsRawFd as _;
            let file = std::fs::File::open(path)?;
            let len = usize::try_from(file.metadata()?.len())
                .map_err(|_| io::Error::other("file too large for this address space"))?;
            if len == 0 {
                // mmap rejects zero-length mappings; an empty buffer is
                // semantically identical.
                return Ok(Self { inner: MappedInner::Fallback(AlignedBytes::from_slice(&[])) });
            }
            // SAFETY: a fresh anonymous-address read-only private mapping
            // of an open fd; length is the current file size. The fd may
            // be closed afterwards — the mapping keeps the pages alive.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == sys::map_failed() {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { inner: MappedInner::Mapped { ptr: ptr.cast_const().cast(), len } })
        }
        #[cfg(not(all(unix, feature = "mmap")))]
        {
            Ok(Self { inner: MappedInner::Fallback(AlignedBytes::read(path)?) })
        }
    }

    /// `true` when the bytes are a real `mmap` mapping (sharing the page
    /// cache), `false` on the owned fallback.
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(all(unix, feature = "mmap"))]
            MappedInner::Mapped { .. } => true,
            MappedInner::Fallback(_) => false,
        }
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        match &self.inner {
            #[cfg(all(unix, feature = "mmap"))]
            MappedInner::Mapped { ptr, len } => {
                // SAFETY: `ptr/len` came from a successful mmap and are
                // unmapped exactly once, here.
                unsafe {
                    let _ = sys::munmap((*ptr).cast_mut().cast(), *len);
                }
            }
            MappedInner::Fallback(_) => {}
        }
    }
}

impl Deref for MappedFile {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(unix, feature = "mmap"))]
            MappedInner::Mapped { ptr, len } => {
                // SAFETY: the mapping covers `len` readable bytes for the
                // lifetime of `self` (unmapped only in Drop).
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            MappedInner::Fallback(bytes) => bytes,
        }
    }
}

impl AsRef<[u8]> for MappedFile {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedFile")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// One loaded snapshot's backing bytes: a real mapping or an owned
/// aligned buffer, behind one type so views need not care.
#[derive(Debug)]
pub enum ByteSource {
    /// A [`MappedFile`] (which may itself be the aligned-read fallback on
    /// non-unix targets).
    Mapped(MappedFile),
    /// An owned 8-byte-aligned buffer.
    Owned(AlignedBytes),
}

impl ByteSource {
    /// Map `path` (or aligned-read it where mapping is unavailable) and
    /// wrap it for sharing.
    ///
    /// # Errors
    /// Propagates filesystem/`mmap` errors.
    pub fn map(path: &Path) -> io::Result<SharedBytes> {
        Ok(Arc::new(Self::Mapped(MappedFile::open(path)?)))
    }

    /// Read `path` into an owned aligned buffer and wrap it for sharing.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn read(path: &Path) -> io::Result<SharedBytes> {
        Ok(Arc::new(Self::Owned(AlignedBytes::read(path)?)))
    }

    /// Wrap an in-memory byte buffer (copied into aligned storage).
    #[must_use]
    pub fn from_vec(bytes: Vec<u8>) -> SharedBytes {
        Arc::new(Self::Owned(AlignedBytes::from_vec(bytes)))
    }

    /// The loaded bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        match self {
            ByteSource::Mapped(m) => m,
            ByteSource::Owned(b) => b,
        }
    }

    /// `true` when the bytes come from a real `mmap` mapping.
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        match self {
            ByteSource::Mapped(m) => m.is_mapped(),
            ByteSource::Owned(_) => false,
        }
    }
}

impl AsRef<[u8]> for ByteSource {
    fn as_ref(&self) -> &[u8] {
        self.bytes()
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for f64 {}
}

/// Plain-old-data scalars stored little-endian on disk, castable straight
/// out of a byte buffer. Sealed: exactly `u8`, `u32`, `u64` and `f64` —
/// every bit pattern of each is a valid value, which is what makes the
/// cast sound.
pub trait LePod: sealed::Sealed + Copy + Send + Sync + 'static {
    /// Reinterpret `bytes` as a slice of `Self` without copying.
    ///
    /// Returns `None` when the pointer is not aligned for `Self`, when
    /// the length is not a multiple of `size_of::<Self>()`, or on
    /// big-endian targets (where the little-endian disk layout does not
    /// match memory) — callers fall back to a copying decode.
    fn cast_slice(bytes: &[u8]) -> Option<&[Self]>;
}

fn cast_pod<T: sealed::Sealed + Copy>(bytes: &[u8]) -> Option<&[T]> {
    if cfg!(target_endian = "big") {
        return None;
    }
    let size = std::mem::size_of::<T>();
    if bytes.len() % size != 0 || (bytes.as_ptr() as usize) % std::mem::align_of::<T>() != 0 {
        return None;
    }
    // SAFETY: alignment and length are checked above; `T` is one of the
    // sealed POD scalars (no invalid bit patterns, no padding); on
    // little-endian targets the disk byte order equals the memory byte
    // order; the returned slice inherits `bytes`' lifetime and
    // immutability.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / size) })
}

impl LePod for u8 {
    fn cast_slice(bytes: &[u8]) -> Option<&[Self]> {
        Some(bytes)
    }
}
impl LePod for u32 {
    fn cast_slice(bytes: &[u8]) -> Option<&[Self]> {
        cast_pod(bytes)
    }
}
impl LePod for u64 {
    fn cast_slice(bytes: &[u8]) -> Option<&[Self]> {
        cast_pod(bytes)
    }
}
impl LePod for f64 {
    fn cast_slice(bytes: &[u8]) -> Option<&[Self]> {
        cast_pod(bytes)
    }
}

/// The byte range `child` occupies within `parent`, or `None` when
/// `child` is not a subslice of `parent`. Pure pointer arithmetic — this
/// is how decoders turn a borrowed section subslice into a stable
/// `(SharedBytes, Range)` pair that outlives the borrow.
#[must_use]
pub fn subrange(parent: &[u8], child: &[u8]) -> Option<Range<usize>> {
    let parent_start = parent.as_ptr() as usize;
    let child_start = child.as_ptr() as usize;
    let start = child_start.checked_sub(parent_start)?;
    let end = start.checked_add(child.len())?;
    (end <= parent.len()).then_some(start..end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_bytes_roundtrip_and_alignment() {
        for len in [0usize, 1, 7, 8, 9, 4096] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let aligned = AlignedBytes::from_vec(data.clone());
            assert_eq!(&*aligned, &data[..]);
            assert_eq!(aligned.as_ptr() as usize % 8, 0, "base must be 8-aligned");
        }
    }

    #[test]
    fn mapped_file_matches_read() {
        let path = std::env::temp_dir().join("dehealth-mapped-test.bin");
        let data: Vec<u8> = (0..10_000u32).flat_map(u32::to_le_bytes).collect();
        std::fs::write(&path, &data).unwrap();
        let mapping = MappedFile::open(&path).unwrap();
        assert_eq!(&*mapping, &data[..]);
        #[cfg(all(unix, feature = "mmap"))]
        assert!(mapping.is_mapped());
        drop(mapping);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_bytes() {
        let path = std::env::temp_dir().join("dehealth-mapped-empty.bin");
        std::fs::write(&path, b"").unwrap();
        let mapping = MappedFile::open(&path).unwrap();
        assert!(mapping.is_empty());
        drop(mapping);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn casts_check_alignment_and_length() {
        let aligned = AlignedBytes::from_vec((0..64u8).collect());
        let bytes: &[u8] = &aligned;
        assert_eq!(u64::cast_slice(&bytes[..32]).map(<[u64]>::len), Some(4));
        assert_eq!(u32::cast_slice(&bytes[..32]).map(<[u32]>::len), Some(8));
        assert_eq!(f64::cast_slice(&bytes[..16]).map(<[f64]>::len), Some(2));
        // Misaligned base.
        assert!(u64::cast_slice(&bytes[4..36]).is_none());
        assert!(u32::cast_slice(&bytes[1..33]).is_none());
        // Length not a multiple of the element size.
        assert!(u64::cast_slice(&bytes[..12]).is_none());
        // u8 always casts.
        assert!(u8::cast_slice(&bytes[3..7]).is_some());
    }

    #[test]
    fn cast_values_are_little_endian() {
        let aligned = AlignedBytes::from_vec(0x0102_0304_0506_0708u64.to_le_bytes().to_vec());
        let words = u64::cast_slice(&aligned).unwrap();
        assert_eq!(words, &[0x0102_0304_0506_0708]);
        let halves = u32::cast_slice(&aligned).unwrap();
        assert_eq!(halves, &[0x0506_0708, 0x0102_0304]);
    }

    #[test]
    fn subrange_finds_children_and_rejects_strangers() {
        let buf = AlignedBytes::from_vec(vec![0u8; 100]);
        let parent: &[u8] = &buf;
        assert_eq!(subrange(parent, &parent[10..30]), Some(10..30));
        assert_eq!(subrange(parent, &parent[..0]), Some(0..0));
        assert_eq!(subrange(parent, &parent[100..]), Some(100..100));
        let other = [0u8; 16];
        assert_eq!(subrange(parent, &other), None);
    }

    #[test]
    fn byte_source_variants_agree() {
        let path = std::env::temp_dir().join("dehealth-mapped-source.bin");
        let data: Vec<u8> = (0..999).map(|i| (i % 256) as u8).collect();
        std::fs::write(&path, &data).unwrap();
        let mapped = ByteSource::map(&path).unwrap();
        let read = ByteSource::read(&path).unwrap();
        let owned = ByteSource::from_vec(data.clone());
        assert_eq!(mapped.bytes(), &data[..]);
        assert_eq!(read.bytes(), &data[..]);
        assert_eq!(owned.bytes(), &data[..]);
        assert!(!read.is_mapped());
        assert!(!owned.is_mapped());
        drop(mapped);
        std::fs::remove_file(&path).unwrap();
    }
}
