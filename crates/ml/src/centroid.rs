//! Nearest-centroid classifier (the "Nearest Neighbor (NN)" baseline the
//! paper lists among benchmark techniques, in its class-centroid form).

use crate::dataset::{euclidean, Classifier, Prediction, Samples};

/// Nearest-centroid classifier: each class is summarized by the mean of its
/// training samples; prediction picks the closest centroid.
#[derive(Debug, Clone, Default)]
pub struct NearestCentroid {
    classes: Vec<usize>,
    centroids: Vec<Vec<f64>>,
}

impl NearestCentroid {
    /// Create an unfitted model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Centroid of class `label`, if fitted.
    #[must_use]
    pub fn centroid(&self, label: usize) -> Option<&[f64]> {
        self.classes.iter().position(|&c| c == label).map(|i| self.centroids[i].as_slice())
    }
}

impl Classifier for NearestCentroid {
    fn fit(&mut self, train: &dyn Samples) {
        assert!(!train.is_empty(), "empty training set");
        self.classes = train.classes();
        let dim = train.dim();
        let mut sums = vec![vec![0.0; dim]; self.classes.len()];
        let mut counts = vec![0usize; self.classes.len()];
        for i in 0..train.len() {
            let c = self.classes.binary_search(&train.label(i)).expect("label in classes");
            counts[c] += 1;
            for (j, &v) in train.sample(i).iter().enumerate() {
                sums[c][j] += v;
            }
        }
        for (s, &n) in sums.iter_mut().zip(&counts) {
            for v in s.iter_mut() {
                *v /= n as f64;
            }
        }
        self.centroids = sums;
    }

    fn predict(&self, x: &[f64]) -> Prediction {
        assert!(!self.centroids.is_empty(), "predict before fit");
        let (best, dist) = self
            .centroids
            .iter()
            .map(|c| euclidean(c, x))
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distance"))
            .expect("at least one class");
        Prediction { label: self.classes[best], score: -dist }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn data() -> Dataset {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 5);
        d.push(&[2.0], 5);
        d.push(&[10.0], 8);
        d.push(&[12.0], 8);
        d
    }

    #[test]
    fn centroids_are_class_means() {
        let mut m = NearestCentroid::new();
        m.fit(&data());
        assert_eq!(m.centroid(5), Some(&[1.0][..]));
        assert_eq!(m.centroid(8), Some(&[11.0][..]));
        assert_eq!(m.centroid(99), None);
    }

    #[test]
    fn predicts_by_distance() {
        let mut m = NearestCentroid::new();
        m.fit(&data());
        assert_eq!(m.predict(&[0.5]).label, 5);
        assert_eq!(m.predict(&[11.5]).label, 8);
        // Score is negative distance: closer = larger.
        assert!(m.predict(&[1.0]).score > m.predict(&[4.0]).score);
    }
}
