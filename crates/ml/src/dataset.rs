//! Dense sample matrix, class labels, and the common classifier interface.

/// A dense supervised dataset: `n` samples of dimension `dim` with one
/// `usize` class label per sample.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    features: Vec<f64>,
    labels: Vec<usize>,
    dim: usize,
}

impl Dataset {
    /// Create an empty dataset of dimension `dim`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self { features: Vec::new(), labels: Vec::new(), dim }
    }

    /// Append a sample.
    ///
    /// # Panics
    /// Panics if `x.len() != dim`.
    pub fn push(&mut self, x: &[f64], label: usize) {
        assert_eq!(x.len(), self.dim, "sample dimension mismatch");
        self.features.extend_from_slice(x);
        self.labels.push(label);
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the dataset has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th sample.
    #[must_use]
    pub fn sample(&self, i: usize) -> &[f64] {
        &self.features[i * self.dim..(i + 1) * self.dim]
    }

    /// The `i`-th label.
    #[must_use]
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Sorted distinct labels.
    #[must_use]
    pub fn classes(&self) -> Vec<usize> {
        let mut c = self.labels.clone();
        c.sort_unstable();
        c.dedup();
        c
    }

    /// Subset by sample indices.
    #[must_use]
    pub fn select(&self, idx: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.dim);
        for &i in idx {
            out.push(self.sample(i), self.label(i));
        }
        out
    }

    /// Apply `f` to every feature value in place (used by scalers).
    pub fn map_features(&mut self, mut f: impl FnMut(usize, f64) -> f64) {
        let dim = self.dim;
        for (k, v) in self.features.iter_mut().enumerate() {
            *v = f(k % dim, *v);
        }
    }
}

/// A classification decision with a confidence score (larger = more
/// confident; scale is classifier-specific).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted class label.
    pub label: usize,
    /// Classifier-specific confidence (e.g. vote fraction, margin).
    pub score: f64,
}

/// Common train/predict interface implemented by every classifier in this
/// crate.
pub trait Classifier {
    /// Fit the model to `train`.
    ///
    /// # Panics
    /// Implementations may panic on empty training sets.
    fn fit(&mut self, train: &Dataset);

    /// Predict the class of one sample.
    fn predict(&self, x: &[f64]) -> Prediction;

    /// Predict a batch.
    fn predict_all(&self, xs: &Dataset) -> Vec<Prediction> {
        (0..xs.len()).map(|i| self.predict(xs.sample(i))).collect()
    }
}

/// Euclidean distance.
#[must_use]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Cosine similarity; 0 when either vector is all-zero.
#[must_use]
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut d = Dataset::new(2);
        d.push(&[1.0, 2.0], 7);
        d.push(&[3.0, 4.0], 9);
        assert_eq!(d.len(), 2);
        assert_eq!(d.sample(1), &[3.0, 4.0]);
        assert_eq!(d.label(0), 7);
        assert_eq!(d.classes(), vec![7, 9]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let mut d = Dataset::new(2);
        d.push(&[1.0], 0);
    }

    #[test]
    fn select_subset() {
        let mut d = Dataset::new(1);
        for i in 0..5 {
            d.push(&[i as f64], i);
        }
        let s = d.select(&[4, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.sample(0), &[4.0]);
        assert_eq!(s.label(1), 0);
    }

    #[test]
    fn distances() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert_eq!(cosine(&[0.0], &[1.0]), 0.0);
    }
}
