//! Dense sample matrix, class labels, and the common classifier interface.

/// Read-only access to a supervised training set: `n` samples of dimension
/// `dim` with one `usize` class label per sample.
///
/// Classifiers and scalers train through this trait, so an owned
/// [`Dataset`] and a zero-copy [`DatasetView`] over a shared feature arena
/// are interchangeable — given bit-identical rows in the same order, every
/// fit is bit-identical regardless of how the rows are stored.
///
/// ```
/// use dehealth_ml::{Dataset, DatasetView, Samples};
///
/// // The same two samples, owned vs viewed out of a shared arena.
/// let mut owned = Dataset::new(2);
/// owned.push(&[1.0, 2.0], 0);
/// owned.push(&[5.0, 6.0], 1);
///
/// let arena = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
/// let rows = [0u32, 2]; // gather arena rows 0 and 2
/// let labels = [0usize, 1];
/// let view = DatasetView::gathered(&arena, 2, &rows, &labels);
///
/// for i in 0..Samples::len(&owned) {
///     assert_eq!(owned.sample(i), Samples::sample(&view, i));
///     assert_eq!(owned.label(i), Samples::label(&view, i));
/// }
/// assert_eq!(view.classes(), vec![0, 1]);
/// ```
pub trait Samples {
    /// Number of samples.
    fn len(&self) -> usize;

    /// Feature dimension.
    fn dim(&self) -> usize;

    /// The `i`-th sample.
    fn sample(&self, i: usize) -> &[f64];

    /// The `i`-th label.
    fn label(&self, i: usize) -> usize;

    /// `true` if there are no samples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorted distinct labels.
    fn classes(&self) -> Vec<usize> {
        let mut c: Vec<usize> = (0..self.len()).map(|i| self.label(i)).collect();
        c.sort_unstable();
        c.dedup();
        c
    }
}

/// A dense supervised dataset: `n` samples of dimension `dim` with one
/// `usize` class label per sample.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    features: Vec<f64>,
    labels: Vec<usize>,
    dim: usize,
}

/// A borrowed training set over an external feature arena.
///
/// Rows either alias the arena contiguously (`rows = None`: view sample
/// `i` is arena row `i`) or through an index list (`rows = Some(idx)`:
/// view sample `i` is arena row `idx[i]`), so per-user training sets are
/// assembled by collecting row indices instead of copying feature floats.
#[derive(Debug, Clone, Copy)]
pub struct DatasetView<'a> {
    arena: &'a [f64],
    dim: usize,
    rows: Option<&'a [u32]>,
    labels: &'a [usize],
}

impl<'a> DatasetView<'a> {
    /// View of `labels.len()` contiguous rows at the start of `arena`.
    ///
    /// # Panics
    /// Panics if `arena` is shorter than `labels.len() * dim` or `dim == 0`.
    #[must_use]
    pub fn contiguous(arena: &'a [f64], dim: usize, labels: &'a [usize]) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(arena.len() >= labels.len() * dim, "arena shorter than labels require");
        Self { arena, dim, rows: None, labels }
    }

    /// View of the arena rows listed in `rows` (sample `i` = arena row
    /// `rows[i]`), labelled by the parallel `labels`.
    ///
    /// # Panics
    /// Panics if `rows` and `labels` differ in length, `dim == 0`, or any
    /// row index is out of the arena's bounds.
    #[must_use]
    pub fn gathered(arena: &'a [f64], dim: usize, rows: &'a [u32], labels: &'a [usize]) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        let n_rows = arena.len() / dim;
        assert!(
            rows.iter().all(|&r| (r as usize) < n_rows),
            "row index out of arena bounds ({} rows)",
            n_rows
        );
        Self { arena, dim, rows: Some(rows), labels }
    }
}

impl Samples for DatasetView<'_> {
    fn len(&self) -> usize {
        self.labels.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn sample(&self, i: usize) -> &[f64] {
        let row = self.rows.map_or(i, |rows| rows[i] as usize);
        &self.arena[row * self.dim..(row + 1) * self.dim]
    }

    fn label(&self, i: usize) -> usize {
        self.labels[i]
    }
}

impl Dataset {
    /// Create an empty dataset of dimension `dim`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self { features: Vec::new(), labels: Vec::new(), dim }
    }

    /// Append a sample.
    ///
    /// # Panics
    /// Panics if `x.len() != dim`.
    pub fn push(&mut self, x: &[f64], label: usize) {
        assert_eq!(x.len(), self.dim, "sample dimension mismatch");
        self.features.extend_from_slice(x);
        self.labels.push(label);
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the dataset has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th sample.
    #[must_use]
    pub fn sample(&self, i: usize) -> &[f64] {
        &self.features[i * self.dim..(i + 1) * self.dim]
    }

    /// The `i`-th label.
    #[must_use]
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Sorted distinct labels.
    #[must_use]
    pub fn classes(&self) -> Vec<usize> {
        let mut c = self.labels.clone();
        c.sort_unstable();
        c.dedup();
        c
    }

    /// Subset by sample indices.
    #[must_use]
    pub fn select(&self, idx: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.dim);
        for &i in idx {
            out.push(self.sample(i), self.label(i));
        }
        out
    }

    /// Apply `f` to every feature value in place (used by scalers).
    pub fn map_features(&mut self, mut f: impl FnMut(usize, f64) -> f64) {
        let dim = self.dim;
        for (k, v) in self.features.iter_mut().enumerate() {
            *v = f(k % dim, *v);
        }
    }

    /// Copy every sample of a [`Samples`] source into an owned dataset.
    #[must_use]
    pub fn from_samples(src: &dyn Samples) -> Self {
        let mut out = Dataset::new(src.dim());
        out.features.reserve_exact(src.len() * src.dim());
        out.labels.reserve_exact(src.len());
        for i in 0..src.len() {
            out.push(src.sample(i), src.label(i));
        }
        out
    }
}

impl Samples for Dataset {
    fn len(&self) -> usize {
        Dataset::len(self)
    }

    fn dim(&self) -> usize {
        Dataset::dim(self)
    }

    fn sample(&self, i: usize) -> &[f64] {
        Dataset::sample(self, i)
    }

    fn label(&self, i: usize) -> usize {
        Dataset::label(self, i)
    }

    fn is_empty(&self) -> bool {
        Dataset::is_empty(self)
    }

    fn classes(&self) -> Vec<usize> {
        Dataset::classes(self)
    }
}

/// A classification decision with a confidence score (larger = more
/// confident; scale is classifier-specific).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted class label.
    pub label: usize,
    /// Classifier-specific confidence (e.g. vote fraction, margin).
    pub score: f64,
}

/// Common train/predict interface implemented by every classifier in this
/// crate.
pub trait Classifier {
    /// Fit the model to `train` — an owned [`Dataset`] or a zero-copy
    /// [`DatasetView`] over a shared feature arena.
    ///
    /// # Panics
    /// Implementations may panic on empty training sets.
    fn fit(&mut self, train: &dyn Samples);

    /// Predict the class of one sample.
    fn predict(&self, x: &[f64]) -> Prediction;

    /// Predict a batch.
    fn predict_all(&self, xs: &Dataset) -> Vec<Prediction> {
        (0..Dataset::len(xs)).map(|i| self.predict(Dataset::sample(xs, i))).collect()
    }
}

/// Euclidean distance.
#[must_use]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Cosine similarity; 0 when either vector is all-zero.
#[must_use]
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut d = Dataset::new(2);
        d.push(&[1.0, 2.0], 7);
        d.push(&[3.0, 4.0], 9);
        assert_eq!(d.len(), 2);
        assert_eq!(d.sample(1), &[3.0, 4.0]);
        assert_eq!(d.label(0), 7);
        assert_eq!(d.classes(), vec![7, 9]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let mut d = Dataset::new(2);
        d.push(&[1.0], 0);
    }

    #[test]
    fn select_subset() {
        let mut d = Dataset::new(1);
        for i in 0..5 {
            d.push(&[i as f64], i);
        }
        let s = d.select(&[4, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.sample(0), &[4.0]);
        assert_eq!(s.label(1), 0);
    }

    #[test]
    fn contiguous_view_aliases_arena() {
        let arena = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let labels = [4usize, 2, 9];
        let v = DatasetView::contiguous(&arena, 2, &labels);
        assert_eq!(Samples::len(&v), 3);
        assert_eq!(Samples::dim(&v), 2);
        assert!(!Samples::is_empty(&v));
        assert_eq!(v.sample(1), &[3.0, 4.0]);
        assert_eq!(v.label(2), 9);
        assert_eq!(v.classes(), vec![2, 4, 9]);
    }

    #[test]
    fn gathered_view_indexes_rows() {
        let arena = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let rows = [2u32, 0];
        let labels = [7usize, 7];
        let v = DatasetView::gathered(&arena, 2, &rows, &labels);
        assert_eq!(Samples::len(&v), 2);
        assert_eq!(v.sample(0), &[5.0, 6.0]);
        assert_eq!(v.sample(1), &[1.0, 2.0]);
        assert_eq!(v.classes(), vec![7]);
    }

    #[test]
    #[should_panic(expected = "out of arena bounds")]
    fn gathered_view_rejects_out_of_range_rows() {
        let arena = [1.0, 2.0];
        let _ = DatasetView::gathered(&arena, 2, &[1], &[0]);
    }

    #[test]
    fn from_samples_copies_a_view() {
        let arena = [1.0, 2.0, 3.0, 4.0];
        let rows = [1u32, 0];
        let labels = [5usize, 6];
        let v = DatasetView::gathered(&arena, 2, &rows, &labels);
        let d = Dataset::from_samples(&v);
        assert_eq!(d.len(), 2);
        assert_eq!(d.sample(0), &[3.0, 4.0]);
        assert_eq!(d.label(1), 6);
    }

    #[test]
    fn distances() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert_eq!(cosine(&[0.0], &[1.0]), 0.0);
    }
}
