//! Evaluation helpers: accuracy, confusion counts and k-fold splits.

/// Fraction of positions where `pred[i] == truth[i]`.
///
/// # Panics
/// Panics if lengths differ or inputs are empty.
#[must_use]
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty inputs");
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / pred.len() as f64
}

/// `(correct, total)` counts.
#[must_use]
pub fn confusion_counts(pred: &[usize], truth: &[usize]) -> (usize, usize) {
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    (hits, pred.len())
}

/// Deterministic k-fold split of `0..n`: fold `f` gets indices `i` with
/// `i % k == f`, so folds are near-equal and label-order agnostic.
///
/// Returns `(train_indices, test_indices)` per fold.
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
#[must_use]
pub fn kfold_indices(n: usize, k: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k > 0 && k <= n, "need 0 < k <= n");
    (0..k)
        .map(|f| {
            let test: Vec<usize> = (0..n).filter(|i| i % k == f).collect();
            let train: Vec<usize> = (0..n).filter(|i| i % k != f).collect();
            (train, test)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert!((accuracy(&[1, 2, 3], &[1, 0, 3]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(confusion_counts(&[1, 2], &[1, 2]), (2, 2));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn kfold_partitions() {
        let folds = kfold_indices(10, 3);
        assert_eq!(folds.len(), 3);
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 10);
            // Disjoint.
            assert!(test.iter().all(|i| !train.contains(i)));
        }
        // Every index is a test index exactly once.
        let mut all_test: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..10).collect::<Vec<_>>());
    }
}
