//! k-nearest-neighbour classifier (the paper's "KNN algorithm", reference 31).

use crate::dataset::{cosine, euclidean, Classifier, Dataset, Prediction};

/// Distance/similarity metric for [`Knn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KnnMetric {
    /// Euclidean distance (smaller = closer).
    #[default]
    Euclidean,
    /// Cosine similarity (larger = closer); suits sparse frequency vectors.
    Cosine,
}

/// k-nearest-neighbour voting classifier. Ties are broken toward the
/// closest neighbour's class for determinism.
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    metric: KnnMetric,
    train: Dataset,
}

impl Knn {
    /// Create an unfitted KNN with neighbourhood size `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize, metric: KnnMetric) -> Self {
        assert!(k > 0, "k must be positive");
        Self { k, metric, train: Dataset::new(0) }
    }

    fn closeness(&self, a: &[f64], b: &[f64]) -> f64 {
        match self.metric {
            // Negate distance so that larger is always closer.
            KnnMetric::Euclidean => -euclidean(a, b),
            KnnMetric::Cosine => cosine(a, b),
        }
    }
}

impl Classifier for Knn {
    fn fit(&mut self, train: &Dataset) {
        assert!(!train.is_empty(), "empty training set");
        self.train = train.clone();
    }

    fn predict(&self, x: &[f64]) -> Prediction {
        assert!(!self.train.is_empty(), "predict before fit");
        let mut scored: Vec<(f64, usize)> = (0..self.train.len())
            .map(|i| (self.closeness(x, self.train.sample(i)), self.train.label(i)))
            .collect();
        // Sort by decreasing closeness; NaN-free by construction.
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite closeness"));
        let k = self.k.min(scored.len());
        let top = &scored[..k];
        let mut votes: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for &(_, label) in top {
            *votes.entry(label).or_insert(0) += 1;
        }
        let best_count = *votes.values().max().expect("k >= 1");
        // Tie-break: first (closest) neighbour whose class reached the max.
        let label = top
            .iter()
            .find(|(_, l)| votes[l] == best_count)
            .map(|&(_, l)| l)
            .expect("at least one neighbour");
        Prediction { label, score: best_count as f64 / k as f64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Dataset {
        let mut d = Dataset::new(2);
        for &(x, y) in &[(0.0, 0.0), (0.1, 0.0), (0.0, 0.1)] {
            d.push(&[x, y], 0);
        }
        for &(x, y) in &[(5.0, 5.0), (5.1, 5.0), (5.0, 5.1)] {
            d.push(&[x, y], 1);
        }
        d
    }

    #[test]
    fn classifies_blobs() {
        let mut knn = Knn::new(3, KnnMetric::Euclidean);
        knn.fit(&two_blobs());
        assert_eq!(knn.predict(&[0.05, 0.05]).label, 0);
        assert_eq!(knn.predict(&[4.9, 5.2]).label, 1);
    }

    #[test]
    fn k1_returns_nearest() {
        let mut knn = Knn::new(1, KnnMetric::Euclidean);
        knn.fit(&two_blobs());
        let p = knn.predict(&[5.1, 5.0]);
        assert_eq!(p.label, 1);
        assert!((p.score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vote_fraction_score() {
        let mut d = two_blobs();
        // One label-1 point close to the label-0 blob to create a 2/3 vote.
        d.push(&[0.05, 0.0], 1);
        let mut knn = Knn::new(3, KnnMetric::Euclidean);
        knn.fit(&d);
        let p = knn.predict(&[0.02, 0.02]);
        assert_eq!(p.label, 0);
        assert!((p.score - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_metric() {
        let mut d = Dataset::new(2);
        d.push(&[1.0, 0.0], 0);
        d.push(&[0.0, 1.0], 1);
        let mut knn = Knn::new(1, KnnMetric::Cosine);
        knn.fit(&d);
        assert_eq!(knn.predict(&[10.0, 0.5]).label, 0);
        assert_eq!(knn.predict(&[0.5, 10.0]).label, 1);
    }

    #[test]
    fn k_larger_than_train_is_clamped() {
        let mut knn = Knn::new(100, KnnMetric::Euclidean);
        knn.fit(&two_blobs());
        // All 6 points vote: tie 3-3, broken toward the closest point.
        assert_eq!(knn.predict(&[0.0, 0.0]).label, 0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = Knn::new(0, KnnMetric::Euclidean);
    }
}
