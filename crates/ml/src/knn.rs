//! k-nearest-neighbour classifier (the paper's "KNN algorithm", reference 31).

use std::collections::BinaryHeap;

use crate::dataset::{cosine, euclidean, Classifier, Dataset, Prediction, Samples};

/// Distance/similarity metric for [`Knn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KnnMetric {
    /// Euclidean distance (smaller = closer).
    #[default]
    Euclidean,
    /// Cosine similarity (larger = closer); suits sparse frequency vectors.
    Cosine,
}

impl KnnMetric {
    /// Closeness of `a` and `b`: larger is always closer.
    fn closeness(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            // Negate distance so that larger is always closer.
            KnnMetric::Euclidean => -euclidean(a, b),
            KnnMetric::Cosine => cosine(a, b),
        }
    }
}

/// One `(closeness, train index)` neighbour candidate. The ordering makes
/// the *worst* neighbour the heap maximum (the eviction victim): worse =
/// lower closeness, ties toward the larger train index — so the kept set
/// and its best-first order match a stable descending sort exactly.
#[derive(Debug, Clone, Copy)]
struct Neighbour {
    closeness: f64,
    index: usize,
}

impl PartialEq for Neighbour {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Neighbour {}

impl PartialOrd for Neighbour {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbour {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.closeness.total_cmp(&self.closeness).then_with(|| self.index.cmp(&other.index))
    }
}

/// Majority vote over the `k` highest-closeness items of a scored stream.
///
/// `scores` yields item `i`'s closeness (larger = closer) in index order;
/// `label_of` maps an item index to its class. The neighbourhood is
/// selected with a bounded `O(n log k)` heap instead of sorting all `n`
/// closeness values; the kept neighbours (and their best-first order) are
/// identical to a full stable sort by decreasing closeness, so the
/// decision is too. Ties are broken toward the closest neighbour's class
/// for determinism.
///
/// This is the voting core of [`knn_predict`]; callers with their own
/// distance kernel (e.g. a sparse-vector scorer) feed closeness values in
/// directly and inherit identical selection and tie-break semantics.
///
/// # Panics
/// Panics if `k == 0` or `scores` is empty.
#[must_use]
pub fn knn_vote_scored(
    scores: impl Iterator<Item = f64>,
    label_of: impl Fn(usize) -> usize,
    k: usize,
) -> Prediction {
    assert!(k > 0, "k must be positive");
    let mut heap: BinaryHeap<Neighbour> = BinaryHeap::with_capacity(k + 1);
    let mut n = 0usize;
    for (i, closeness) in scores.enumerate() {
        n += 1;
        let entry = Neighbour { closeness, index: i };
        if heap.len() < k {
            heap.push(entry);
        } else if let Some(worst) = heap.peek() {
            if entry < *worst {
                heap.pop();
                heap.push(entry);
            }
        }
    }
    assert!(n > 0, "predict before fit");
    let k = k.min(n);
    // Ascending by `Ord` = best-first (greater = worse).
    let top = heap.into_sorted_vec();
    let mut votes: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for neighbour in &top {
        *votes.entry(label_of(neighbour.index)).or_insert(0) += 1;
    }
    let best_count = *votes.values().max().expect("k >= 1");
    // Tie-break: first (closest) neighbour whose class reached the max.
    let label = top
        .iter()
        .map(|neighbour| label_of(neighbour.index))
        .find(|l| votes[l] == best_count)
        .expect("at least one neighbour");
    Prediction { label, score: best_count as f64 / k as f64 }
}

/// Classify `x` against a borrowed training set: majority vote over the
/// `k` nearest neighbours via [`knn_vote_scored`]. Training data is
/// accessed through [`Samples`], so callers holding rows in a shared
/// arena classify without copying a training set at all.
///
/// # Panics
/// Panics if `k == 0` or the training set is empty.
#[must_use]
pub fn knn_predict(train: &dyn Samples, k: usize, metric: KnnMetric, x: &[f64]) -> Prediction {
    assert!(!train.is_empty(), "predict before fit");
    knn_vote_scored(
        (0..train.len()).map(|i| metric.closeness(x, train.sample(i))),
        |i| train.label(i),
        k,
    )
}

/// k-nearest-neighbour voting classifier. Ties are broken toward the
/// closest neighbour's class for determinism.
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    metric: KnnMetric,
    train: Dataset,
}

impl Knn {
    /// Create an unfitted KNN with neighbourhood size `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize, metric: KnnMetric) -> Self {
        assert!(k > 0, "k must be positive");
        Self { k, metric, train: Dataset::new(0) }
    }
}

impl Classifier for Knn {
    fn fit(&mut self, train: &dyn Samples) {
        assert!(!train.is_empty(), "empty training set");
        self.train = Dataset::from_samples(train);
    }

    fn predict(&self, x: &[f64]) -> Prediction {
        knn_predict(&self.train, self.k, self.metric, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetView;

    fn two_blobs() -> Dataset {
        let mut d = Dataset::new(2);
        for &(x, y) in &[(0.0, 0.0), (0.1, 0.0), (0.0, 0.1)] {
            d.push(&[x, y], 0);
        }
        for &(x, y) in &[(5.0, 5.0), (5.1, 5.0), (5.0, 5.1)] {
            d.push(&[x, y], 1);
        }
        d
    }

    #[test]
    fn classifies_blobs() {
        let mut knn = Knn::new(3, KnnMetric::Euclidean);
        knn.fit(&two_blobs());
        assert_eq!(knn.predict(&[0.05, 0.05]).label, 0);
        assert_eq!(knn.predict(&[4.9, 5.2]).label, 1);
    }

    #[test]
    fn k1_returns_nearest() {
        let mut knn = Knn::new(1, KnnMetric::Euclidean);
        knn.fit(&two_blobs());
        let p = knn.predict(&[5.1, 5.0]);
        assert_eq!(p.label, 1);
        assert!((p.score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vote_fraction_score() {
        let mut d = two_blobs();
        // One label-1 point close to the label-0 blob to create a 2/3 vote.
        d.push(&[0.05, 0.0], 1);
        let mut knn = Knn::new(3, KnnMetric::Euclidean);
        knn.fit(&d);
        let p = knn.predict(&[0.02, 0.02]);
        assert_eq!(p.label, 0);
        assert!((p.score - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_metric() {
        let mut d = Dataset::new(2);
        d.push(&[1.0, 0.0], 0);
        d.push(&[0.0, 1.0], 1);
        let mut knn = Knn::new(1, KnnMetric::Cosine);
        knn.fit(&d);
        assert_eq!(knn.predict(&[10.0, 0.5]).label, 0);
        assert_eq!(knn.predict(&[0.5, 10.0]).label, 1);
    }

    #[test]
    fn k_larger_than_train_is_clamped() {
        let mut knn = Knn::new(100, KnnMetric::Euclidean);
        knn.fit(&two_blobs());
        // All 6 points vote: tie 3-3, broken toward the closest point.
        assert_eq!(knn.predict(&[0.0, 0.0]).label, 0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = Knn::new(0, KnnMetric::Euclidean);
    }

    #[test]
    fn borrowed_view_matches_owned_fit() {
        // knn_predict over a gathered view must agree with the owned path
        // on every k (the refined-DA fast path relies on this identity).
        let d = two_blobs();
        let arena: Vec<f64> = (0..d.len()).flat_map(|i| d.sample(i).to_vec()).collect();
        let rows: Vec<u32> = (0..d.len() as u32).collect();
        let labels: Vec<usize> = (0..d.len()).map(|i| d.label(i)).collect();
        let view = DatasetView::gathered(&arena, 2, &rows, &labels);
        for k in 1..=7 {
            let mut knn = Knn::new(k, KnnMetric::Euclidean);
            knn.fit(&d);
            for x in [[0.05, 0.02], [5.0, 5.05], [2.5, 2.5]] {
                let owned = knn.predict(&x);
                let viewed = knn_predict(&view, k, KnnMetric::Euclidean, &x);
                assert_eq!(owned, viewed, "k={k} x={x:?}");
            }
        }
    }

    #[test]
    fn bounded_selection_matches_full_sort() {
        // Duplicated closeness values at the selection boundary: the heap
        // must keep the same neighbours (smallest indices) a stable
        // descending sort would.
        let mut d = Dataset::new(1);
        for (i, &v) in [0.0, 1.0, 1.0, 1.0, 1.0, 2.0].iter().enumerate() {
            d.push(&[v], i);
        }
        for k in 1..=6 {
            let got = knn_predict(&d, k, KnnMetric::Euclidean, &[1.0]);
            // Stable-sort reference.
            let mut scored: Vec<(f64, usize)> =
                (0..d.len()).map(|i| (-euclidean(&[1.0], d.sample(i)), d.label(i))).collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            let top = &scored[..k];
            let mut votes = std::collections::HashMap::new();
            for &(_, l) in top {
                *votes.entry(l).or_insert(0usize) += 1;
            }
            let best = *votes.values().max().unwrap();
            let want = top.iter().find(|(_, l)| votes[l] == best).unwrap().1;
            assert_eq!(got.label, want, "k={k}");
        }
    }
}
