#![warn(missing_docs)]
//! # dehealth-ml
//!
//! Benchmark machine-learning substrate for the De-Health reproduction.
//!
//! The refined-DA phase of the paper trains "a classifier using benchmark
//! machine learning techniques" — concretely KNN and the Sequential
//! Minimal Optimization (SMO) SVM in the evaluation, with Nearest Neighbor
//! and Regularized Least Squares Classification (RLSC) named as
//! alternatives. No offline ML crate is available, so this crate
//! implements them from scratch:
//!
//! - [`dataset`] — dense sample matrix + labels, the read-only training
//!   access trait [`Samples`] (owned [`Dataset`] or zero-copy
//!   [`DatasetView`] over a shared feature arena), the common
//!   train/predict interface [`Classifier`], and deterministic helpers;
//! - [`scale`] — min-max and z-score feature scalers (fit on train only);
//! - [`knn`] — k-nearest-neighbour voting classifier;
//! - [`centroid`] — nearest-centroid ("NN" in the paper's list);
//! - [`svm`] — Platt's SMO dual solver with linear and RBF kernels and a
//!   one-vs-rest multiclass wrapper;
//! - [`rlsc`] — regularized least-squares classification via Cholesky;
//! - [`eval`] — accuracy / confusion helpers and k-fold splits;
//! - [`quant`] — u8 per-feature affine quantization and the
//!   integer-accumulation KNN cosine kernel behind the approximate
//!   refined-DA tier.

pub mod centroid;
pub mod dataset;
pub mod eval;
pub mod knn;
pub mod quant;
pub mod rlsc;
pub mod scale;
pub mod svm;

pub use centroid::NearestCentroid;
pub use dataset::{Classifier, Dataset, DatasetView, Prediction, Samples};
pub use eval::{accuracy, confusion_counts, kfold_indices};
pub use knn::{knn_predict, knn_vote_scored, Knn, KnnMetric};
pub use quant::{
    affine_params, cosine_from_dot, dequantize, dot_u8, knn_vote_quantized, norm_codes, quantize,
    scatter_dot_u8,
};
pub use rlsc::Rlsc;
pub use scale::{MinMaxScaler, ZScoreScaler};
pub use svm::{Kernel, SmoSvm, SvmParams};
