//! u8 affine feature quantization and integer-accumulation kernels — the
//! ML substrate of the approximate refined-DA tier.
//!
//! Each feature `j` is mapped through a per-feature affine code
//! `code = round((v - offset_j) / scale_j)`, saturating into `0..=255`.
//! The offset is the feature's minimum over the arena being quantized and
//! the scale spans its `min..max` range across the 256 code points, so
//! the mapping is monotone per feature and exact at both ends of the
//! range. Cosine closeness over codes is computed with pure integer
//! accumulation ([`dot_u8`] / [`scatter_dot_u8`]) — one `u64`
//! multiply-add per nonzero entry instead of an f64 FMA — and only the
//! final normalization touches floating point.
//!
//! [`knn_vote_quantized`] is the resulting KNN kernel: cosine over
//! quantized sparse rows, voted through the exact
//! [`knn_vote_scored`] selection machinery,
//! so approximate and exact classification share tie-break semantics.

use crate::dataset::Prediction;
use crate::knn::knn_vote_scored;

/// Number of quantization levels (`u8` codes `0..=255`).
pub const LEVELS: u32 = 256;

/// Fit one feature's affine parameters from its value range: returns
/// `(offset, scale)` such that `offset` maps to code 0 and `max` maps to
/// code 255. A degenerate (constant or empty) range gets scale `0.0`,
/// which [`quantize`] maps to code 0 and [`dequantize`] maps back to the
/// offset.
#[must_use]
pub fn affine_params(min: f64, max: f64) -> (f64, f64) {
    let range = max - min;
    if range > 0.0 {
        (min, range / f64::from(LEVELS - 1))
    } else {
        (min, 0.0)
    }
}

/// Quantize `v` against `(offset, scale)`: nearest code, saturating at
/// the arena bounds (values outside the fitted range clamp to code 0 or
/// 255 instead of wrapping).
#[must_use]
pub fn quantize(v: f64, offset: f64, scale: f64) -> u8 {
    if scale == 0.0 {
        return 0;
    }
    // Saturating cast: NaN → 0, below range → 0, above → 255.
    ((v - offset) / scale).round() as u8
}

/// Invert [`quantize`] onto the code's reconstruction level.
#[must_use]
pub fn dequantize(code: u8, offset: f64, scale: f64) -> f64 {
    offset + f64::from(code) * scale
}

/// Integer dot product of two dense code rows, accumulated in `u64`
/// (overflow-free for any practical dimension: `dim · 255² < 2^64`).
///
/// # Panics
/// Panics if the rows' lengths differ.
#[must_use]
pub fn dot_u8(a: &[u8], b: &[u8]) -> u64 {
    assert_eq!(a.len(), b.len(), "code rows disagree on dimension");
    a.iter().zip(b).map(|(&x, &y)| u64::from(x) * u64::from(y)).sum()
}

/// Integer dot product of a scattered dense query (`q_dense[j]` = the
/// query's code for feature `j`, 0 elsewhere) with one sparse code row
/// (`idx[e]` ↔ `codes[e]`). Every dense term this skips has a zero row
/// code, so the sum equals the dense [`dot_u8`] over the scattered rows.
#[must_use]
pub fn scatter_dot_u8(q_dense: &[u8], idx: &[u32], codes: &[u8]) -> u64 {
    let mut dot = 0u64;
    for (&j, &c) in idx.iter().zip(codes) {
        dot += u64::from(q_dense[j as usize]) * u64::from(c);
    }
    dot
}

/// Euclidean norm of a sparse code row — `sqrt` of the integer
/// sum-of-squares.
#[must_use]
pub fn norm_codes(codes: &[u8]) -> f64 {
    let sum: u64 = codes.iter().map(|&c| u64::from(c) * u64::from(c)).sum();
    (sum as f64).sqrt()
}

/// Cosine closeness from an integer dot and two precomputed norms; `0.0`
/// when either row is all-zero (matching the exact kernel's convention).
#[must_use]
pub fn cosine_from_dot(dot: u64, na: f64, nb: f64) -> f64 {
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot as f64 / (na * nb)
    }
}

/// The integer-accumulation KNN cosine kernel: classify one quantized
/// query (already scattered into `q_dense`, with norm `q_norm`) against
/// `n_train` quantized sparse training rows.
///
/// `row(i)` yields row `i`'s sparse `(feature indices, codes)`; `norm(i)`
/// its precomputed [`norm_codes`]; `label_of(i)` its class. Selection and
/// tie-breaks are exactly [`knn_vote_scored`]'s, so the only difference
/// from the exact sparse kernel is the quantized closeness values.
///
/// # Panics
/// Panics if `k == 0` or `n_train == 0`.
#[must_use]
pub fn knn_vote_quantized<'a>(
    k: usize,
    n_train: usize,
    q_dense: &[u8],
    q_norm: f64,
    row: impl Fn(usize) -> (&'a [u32], &'a [u8]),
    norm: impl Fn(usize) -> f64,
    label_of: impl Fn(usize) -> usize,
) -> Prediction {
    let scores = (0..n_train).map(|i| {
        let (idx, codes) = row(i);
        cosine_from_dot(scatter_dot_u8(q_dense, idx, codes), q_norm, norm(i))
    });
    knn_vote_scored(scores, label_of, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_monotone_per_feature() {
        let (offset, scale) = affine_params(0.25, 7.5);
        let mut prev = 0u8;
        let mut increased = false;
        for step in 0..=1000 {
            let v = 0.25 + (7.5 - 0.25) * step as f64 / 1000.0;
            let code = quantize(v, offset, scale);
            assert!(code >= prev, "quantization not monotone at v={v}");
            increased |= code > prev;
            prev = code;
        }
        assert!(increased, "mapping collapsed to a single code");
        assert_eq!(prev, 255, "range maximum must reach the top code");
    }

    #[test]
    fn saturates_at_arena_min_and_max() {
        let (offset, scale) = affine_params(1.0, 3.0);
        assert_eq!(quantize(1.0, offset, scale), 0);
        assert_eq!(quantize(3.0, offset, scale), 255);
        // Out-of-range values (the anonymized side can exceed the
        // auxiliary arena's bounds) clamp instead of wrapping.
        assert_eq!(quantize(-100.0, offset, scale), 0);
        assert_eq!(quantize(0.999, offset, scale), 0);
        assert_eq!(quantize(3.001, offset, scale), 255);
        assert_eq!(quantize(1e300, offset, scale), 255);
    }

    #[test]
    fn degenerate_range_maps_to_code_zero() {
        let (offset, scale) = affine_params(2.5, 2.5);
        assert_eq!(scale, 0.0);
        assert_eq!(quantize(2.5, offset, scale), 0);
        assert_eq!(quantize(99.0, offset, scale), 0);
        assert_eq!(dequantize(0, offset, scale), 2.5);
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_a_step() {
        let (offset, scale) = affine_params(0.0, 10.0);
        for step in 0..=997 {
            let v = 10.0 * step as f64 / 997.0;
            let back = dequantize(quantize(v, offset, scale), offset, scale);
            assert!((back - v).abs() <= scale / 2.0 + 1e-12, "v={v} back={back}");
        }
    }

    #[test]
    fn integer_dots_agree_dense_vs_scatter() {
        let a = [0u8, 3, 0, 255, 7, 0];
        let idx = [1u32, 3, 4];
        let codes = [3u8, 255, 7];
        let q = [2u8, 5, 9, 1, 0, 255];
        assert_eq!(dot_u8(&q, &a), scatter_dot_u8(&q, &idx, &codes));
        assert_eq!(dot_u8(&a, &a), norm_codes(&codes).powi(2).round() as u64);
    }

    #[test]
    fn quantized_knn_votes_like_exact_on_well_separated_classes() {
        // Two clearly separated sparse classes: the quantized kernel must
        // recover the same label a full-precision cosine vote would.
        let idx: Vec<Vec<u32>> = vec![vec![0, 1], vec![0, 1], vec![2, 3], vec![2, 3]];
        let codes: Vec<Vec<u8>> = vec![vec![250, 240], vec![255, 230], vec![5, 250], vec![1, 255]];
        let norms: Vec<f64> = codes.iter().map(|c| norm_codes(c)).collect();
        let labels = [0usize, 0, 1, 1];
        let mut q_dense = vec![0u8; 4];
        q_dense[0] = 200;
        q_dense[1] = 210;
        let p = knn_vote_quantized(
            3,
            4,
            &q_dense,
            norm_codes(&[200, 210]),
            |i| (&idx[i][..], &codes[i][..]),
            |i| norms[i],
            |i| labels[i],
        );
        assert_eq!(p.label, 0);
    }
}
