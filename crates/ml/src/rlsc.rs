//! Regularized Least Squares Classification (RLSC), one of the benchmark
//! techniques Section III names for the refined-DA classifier.
//!
//! We solve the dual ridge system `(G + λI) a = Y` where `G = X Xᵀ` is the
//! linear Gram matrix, via Cholesky decomposition — `n × n` for `n`
//! training samples, which fits the small candidate sets of refined DA.
//! Multiclass is one-vs-rest on `±1` targets.

use crate::dataset::{Classifier, Dataset, Prediction, Samples};

/// RLSC model (linear kernel, one-vs-rest).
#[derive(Debug, Clone)]
pub struct Rlsc {
    lambda: f64,
    classes: Vec<usize>,
    /// Per-class dual coefficients over training samples.
    alphas: Vec<Vec<f64>>,
    train: Dataset,
}

impl Rlsc {
    /// Create an unfitted RLSC with ridge parameter `lambda`.
    ///
    /// # Panics
    /// Panics if `lambda <= 0` (the system must be positive definite).
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        Self { lambda, classes: Vec::new(), alphas: Vec::new(), train: Dataset::new(0) }
    }

    /// Per-class decision values, parallel to [`Self::classes`].
    #[must_use]
    pub fn decision_values(&self, x: &[f64]) -> Vec<f64> {
        let k: Vec<f64> = (0..self.train.len()).map(|i| kernel(self.train.sample(i), x)).collect();
        self.alphas.iter().map(|a| dot(a, &k)).collect()
    }

    /// The distinct training classes in sorted order.
    #[must_use]
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Linear kernel with an implicit bias feature: `k(a,b) = a·b + 1`,
/// equivalent to augmenting every sample with a constant `1.0` component so
/// the discriminant has an intercept.
fn kernel(a: &[f64], b: &[f64]) -> f64 {
    dot(a, b) + 1.0
}

/// In-place Cholesky decomposition of a symmetric positive-definite matrix
/// (row-major `n × n`); returns the lower-triangular factor.
///
/// # Panics
/// Panics if the matrix is not positive definite.
fn cholesky(mut m: Vec<f64>, n: usize) -> Vec<f64> {
    for j in 0..n {
        for k in 0..j {
            let l_jk = m[j * n + k];
            for i in j..n {
                m[i * n + j] -= m[i * n + k] * l_jk;
            }
        }
        let d = m[j * n + j];
        assert!(d > 0.0, "matrix not positive definite");
        let s = d.sqrt();
        for i in j..n {
            m[i * n + j] /= s;
        }
    }
    // Zero the upper triangle for cleanliness.
    for i in 0..n {
        for j in i + 1..n {
            m[i * n + j] = 0.0;
        }
    }
    m
}

/// Solve `L Lᵀ x = b` given the Cholesky factor `L`.
fn cholesky_solve(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l[i * n + j] * y[j];
        }
        y[i] = s / l[i * n + i];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for j in i + 1..n {
            s -= l[j * n + i] * x[j];
        }
        x[i] = s / l[i * n + i];
    }
    x
}

impl Classifier for Rlsc {
    fn fit(&mut self, train: &dyn Samples) {
        assert!(!train.is_empty(), "empty training set");
        // Prediction evaluates kernels against the training samples, so an
        // owned copy is kept; it is O(n·dim) next to the O(n²) solve.
        self.train = Dataset::from_samples(train);
        self.classes = train.classes();
        let n = train.len();
        let mut gram = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let k = kernel(train.sample(i), train.sample(j));
                gram[i * n + j] = k;
                gram[j * n + i] = k;
            }
        }
        for i in 0..n {
            gram[i * n + i] += self.lambda;
        }
        let l = cholesky(gram, n);
        self.alphas = self
            .classes
            .iter()
            .map(|&cls| {
                let y: Vec<f64> =
                    (0..n).map(|i| if train.label(i) == cls { 1.0 } else { -1.0 }).collect();
                cholesky_solve(&l, n, &y)
            })
            .collect();
    }

    fn predict(&self, x: &[f64]) -> Prediction {
        assert!(!self.alphas.is_empty(), "predict before fit");
        let values = self.decision_values(x);
        let (best, &score) = values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite decision"))
            .expect("at least one class");
        Prediction { label: self.classes[best], score }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_known_factor() {
        // [[4,2],[2,3]] = L Lᵀ with L = [[2,0],[1,sqrt(2)]].
        let l = cholesky(vec![4.0, 2.0, 2.0, 3.0], 2);
        assert!((l[0] - 2.0).abs() < 1e-12);
        assert!((l[2] - 1.0).abs() < 1e-12);
        assert!((l[3] - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(l[1], 0.0);
    }

    #[test]
    fn cholesky_solve_roundtrip() {
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let l = cholesky(a.clone(), 2);
        let x = cholesky_solve(&l, 2, &[8.0, 7.0]);
        // A x should equal b.
        let b0 = a[0] * x[0] + a[1] * x[1];
        let b1 = a[2] * x[0] + a[3] * x[1];
        assert!((b0 - 8.0).abs() < 1e-9);
        assert!((b1 - 7.0).abs() < 1e-9);
    }

    #[test]
    fn separates_blobs() {
        let mut d = Dataset::new(2);
        for &(x, y) in &[(0.0, 0.0), (0.5, 0.0), (0.0, 0.5)] {
            d.push(&[x, y], 3);
        }
        for &(x, y) in &[(5.0, 5.0), (5.5, 5.0), (5.0, 5.5)] {
            d.push(&[x, y], 9);
        }
        let mut m = Rlsc::new(0.1);
        m.fit(&d);
        assert_eq!(m.predict(&[0.2, 0.2]).label, 3);
        assert_eq!(m.predict(&[5.2, 5.2]).label, 9);
    }

    #[test]
    fn three_classes() {
        let mut d = Dataset::new(2);
        for (l, &(cx, cy)) in [(0.0_f64, 0.0_f64), (10.0, 0.0), (0.0, 10.0)].iter().enumerate() {
            for k in 0..4 {
                d.push(&[cx + 0.2 * k as f64, cy + 0.1 * k as f64], l);
            }
        }
        let mut m = Rlsc::new(0.5);
        m.fit(&d);
        assert_eq!(m.predict(&[0.0, 0.2]).label, 0);
        assert_eq!(m.predict(&[10.0, 0.3]).label, 1);
        assert_eq!(m.predict(&[0.3, 10.0]).label, 2);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn zero_lambda_panics() {
        let _ = Rlsc::new(0.0);
    }
}
