//! Feature scalers. Stylometric feature magnitudes span several orders of
//! magnitude (letter frequencies vs character counts), so distance-based
//! classifiers need scaling; scalers are fit on the training split only and
//! then applied to both splits.

use crate::dataset::{Dataset, Samples};

/// Min-max scaler mapping each feature to `[0, 1]` over the fit range.
/// Constant features map to 0.
#[derive(Debug, Clone, Default)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Fit per-feature min/max on `train` (an owned [`Dataset`] or a
    /// borrowed [`crate::dataset::DatasetView`] — the fit visits rows in
    /// index order either way, so both yield bit-identical scalers).
    #[must_use]
    pub fn fit<S: Samples + ?Sized>(train: &S) -> Self {
        let dim = train.dim();
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for i in 0..train.len() {
            for (j, &v) in train.sample(i).iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        let ranges =
            mins.iter().zip(&maxs).map(|(&lo, &hi)| if hi > lo { hi - lo } else { 0.0 }).collect();
        if train.is_empty() {
            return Self { mins: vec![0.0; dim], ranges: vec![0.0; dim] };
        }
        Self { mins, ranges }
    }

    /// Scale a dataset in place.
    pub fn transform(&self, data: &mut Dataset) {
        data.map_features(|j, v| self.scale_value(j, v));
    }

    /// Scale one value of feature `j`, clamping to `[0, 1]`.
    #[must_use]
    pub fn scale_value(&self, j: usize, v: f64) -> f64 {
        if self.ranges[j] == 0.0 {
            0.0
        } else {
            ((v - self.mins[j]) / self.ranges[j]).clamp(0.0, 1.0)
        }
    }

    /// Scale one whole row into `dst` — the fused gather+scale step the
    /// refined-DA fast path uses instead of a dataset clone + transform.
    ///
    /// # Panics
    /// Panics if `src` and `dst` differ in length or don't match the
    /// fitted dimension.
    pub fn scale_row_into(&self, src: &[f64], dst: &mut [f64]) {
        assert_eq!(src.len(), dst.len(), "row length mismatch");
        assert_eq!(src.len(), self.ranges.len(), "row/scaler dimension mismatch");
        for (j, (d, &v)) in dst.iter_mut().zip(src).enumerate() {
            *d = self.scale_value(j, v);
        }
    }
}

/// Z-score scaler: `(v - mean) / std`. Constant features map to 0.
#[derive(Debug, Clone, Default)]
pub struct ZScoreScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl ZScoreScaler {
    /// Fit per-feature mean/std on `train`.
    #[must_use]
    pub fn fit<S: Samples + ?Sized>(train: &S) -> Self {
        let dim = train.dim();
        let n = train.len().max(1) as f64;
        let mut means = vec![0.0; dim];
        for i in 0..train.len() {
            for (j, &v) in train.sample(i).iter().enumerate() {
                means[j] += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; dim];
        for i in 0..train.len() {
            for (j, &v) in train.sample(i).iter().enumerate() {
                vars[j] += (v - means[j]).powi(2);
            }
        }
        let stds = vars.iter().map(|&v| (v / n).sqrt()).collect();
        Self { means, stds }
    }

    /// Scale a dataset in place.
    pub fn transform(&self, data: &mut Dataset) {
        data.map_features(|j, v| self.scale_value(j, v));
    }

    /// Scale one value of feature `j`.
    #[must_use]
    pub fn scale_value(&self, j: usize, v: f64) -> f64 {
        if self.stds[j] == 0.0 {
            0.0
        } else {
            (v - self.means[j]) / self.stds[j]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let mut d = Dataset::new(2);
        d.push(&[0.0, 10.0], 0);
        d.push(&[5.0, 10.0], 1);
        d.push(&[10.0, 10.0], 0);
        d
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let mut d = data();
        let s = MinMaxScaler::fit(&d);
        s.transform(&mut d);
        assert_eq!(d.sample(0), &[0.0, 0.0]);
        assert_eq!(d.sample(1), &[0.5, 0.0]);
        assert_eq!(d.sample(2), &[1.0, 0.0]);
    }

    #[test]
    fn minmax_clamps_out_of_range_test_values() {
        let d = data();
        let s = MinMaxScaler::fit(&d);
        assert_eq!(s.scale_value(0, -100.0), 0.0);
        assert_eq!(s.scale_value(0, 100.0), 1.0);
    }

    #[test]
    fn zscore_zero_mean_unit_std() {
        let mut d = data();
        let s = ZScoreScaler::fit(&d);
        s.transform(&mut d);
        let mean: f64 = (0..3).map(|i| d.sample(i)[0]).sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
        // Constant feature (column 1) maps to zero.
        assert!((0..3).all(|i| d.sample(i)[1] == 0.0));
    }

    #[test]
    fn empty_fit_does_not_panic() {
        let d = Dataset::new(3);
        let _ = MinMaxScaler::fit(&d);
        let _ = ZScoreScaler::fit(&d);
    }

    #[test]
    fn view_fit_matches_dataset_fit() {
        use crate::dataset::DatasetView;
        let d = data();
        let arena: Vec<f64> = (0..d.len()).flat_map(|i| d.sample(i).to_vec()).collect();
        let rows: Vec<u32> = (0..d.len() as u32).collect();
        let labels: Vec<usize> = (0..d.len()).map(|i| d.label(i)).collect();
        let view = DatasetView::gathered(&arena, d.dim(), &rows, &labels);
        let from_dataset = MinMaxScaler::fit(&d);
        let from_view = MinMaxScaler::fit(&view);
        for j in 0..d.dim() {
            for v in [-3.0, 0.0, 4.2, 11.0] {
                assert_eq!(
                    from_dataset.scale_value(j, v).to_bits(),
                    from_view.scale_value(j, v).to_bits()
                );
            }
        }
    }

    #[test]
    fn scale_row_into_matches_scale_value() {
        let d = data();
        let s = MinMaxScaler::fit(&d);
        let src = [7.5, 11.0];
        let mut dst = [0.0; 2];
        s.scale_row_into(&src, &mut dst);
        assert_eq!(dst[0], s.scale_value(0, 7.5));
        assert_eq!(dst[1], s.scale_value(1, 11.0));
    }
}
