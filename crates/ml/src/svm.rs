//! Support Vector Machine trained with Platt's Sequential Minimal
//! Optimization (SMO) — the paper's "SMO Support Vector Machine" (reference 32).
//!
//! The binary solver is the classic simplified SMO: iterate over the dual
//! variables, pick a violating pair, solve the two-variable QP analytically,
//! and repeat until no KKT violations remain. Multiclass is one-vs-rest on
//! the decision values. Randomized pair selection uses a caller-provided
//! seed so training is fully deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Classifier, Dataset, Prediction, Samples};

/// Kernel function for [`SmoSvm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// `k(a,b) = a·b`.
    Linear,
    /// `k(a,b) = exp(-gamma · ||a-b||²)`.
    Rbf {
        /// Width parameter; must be positive.
        gamma: f64,
    },
}

impl Kernel {
    fn eval(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Kernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
        }
    }
}

/// SMO hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmParams {
    /// Box constraint (soft-margin penalty).
    pub c: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Number of full passes without updates before stopping.
    pub max_passes: usize,
    /// Hard cap on optimization sweeps.
    pub max_iters: usize,
    /// Kernel.
    pub kernel: Kernel,
    /// RNG seed for the second-multiplier heuristic.
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        Self { c: 1.0, tol: 1e-3, max_passes: 5, max_iters: 200, kernel: Kernel::Linear, seed: 0 }
    }
}

/// One binary SMO model: dual coefficients over the training samples.
#[derive(Debug, Clone)]
struct BinaryModel {
    alpha_y: Vec<f64>, // alpha_i * y_i, non-zero only for support vectors
    bias: f64,
    /// For the linear kernel, the primal weight vector `w = Σ αᵢyᵢxᵢ` so
    /// prediction is O(dim) instead of O(support vectors × dim).
    weights: Option<Vec<f64>>,
}

/// One-vs-rest multiclass SVM trained with SMO.
#[derive(Debug, Clone)]
pub struct SmoSvm {
    params: SvmParams,
    classes: Vec<usize>,
    models: Vec<BinaryModel>,
    train: Dataset,
}

impl SmoSvm {
    /// Create an unfitted SVM.
    #[must_use]
    pub fn new(params: SvmParams) -> Self {
        Self { params, classes: Vec::new(), models: Vec::new(), train: Dataset::new(0) }
    }

    /// Decision value of binary model `m` on `x`.
    fn decision(&self, m: &BinaryModel, x: &[f64]) -> f64 {
        if let Some(w) = &m.weights {
            return m.bias + w.iter().zip(x).map(|(a, b)| a * b).sum::<f64>();
        }
        let mut f = m.bias;
        for (i, &ay) in m.alpha_y.iter().enumerate() {
            if ay != 0.0 {
                f += ay * self.params.kernel.eval(self.train.sample(i), x);
            }
        }
        f
    }

    /// Per-class decision values for `x`, parallel to [`Self::classes`].
    #[must_use]
    pub fn decision_values(&self, x: &[f64]) -> Vec<f64> {
        self.models.iter().map(|m| self.decision(m, x)).collect()
    }

    /// The distinct training classes in sorted order.
    #[must_use]
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    fn train_binary(&self, y: &[f64], gram: &[Vec<f64>], rng: &mut StdRng) -> BinaryModel {
        let n = y.len();
        let SvmParams { c, tol, max_passes, max_iters, .. } = self.params;
        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        // Error cache: fx[i] = Σ_k α_k·y_k·K(k,i) (bias excluded), updated
        // incrementally on every successful pair step so each KKT check is
        // O(1) instead of O(n).
        let mut fx = vec![0.0f64; n];
        let mut passes = 0usize;
        let mut iters = 0usize;
        while passes < max_passes && iters < max_iters {
            iters += 1;
            let mut num_changed = 0usize;
            for i in 0..n {
                let e_i = fx[i] + b - y[i];
                let r_i = y[i] * e_i;
                if !((r_i < -tol && alpha[i] < c) || (r_i > tol && alpha[i] > 0.0)) {
                    continue;
                }
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let e_j = fx[j] + b - y[j];
                let (a_i_old, a_j_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if (y[i] - y[j]).abs() > f64::EPSILON {
                    ((a_j_old - a_i_old).max(0.0), (c + a_j_old - a_i_old).min(c))
                } else {
                    ((a_i_old + a_j_old - c).max(0.0), (a_i_old + a_j_old).min(c))
                };
                if (hi - lo).abs() < 1e-12 {
                    continue;
                }
                let eta = 2.0 * gram[i][j] - gram[i][i] - gram[j][j];
                if eta >= 0.0 {
                    continue;
                }
                let mut a_j = a_j_old - y[j] * (e_i - e_j) / eta;
                a_j = a_j.clamp(lo, hi);
                if (a_j - a_j_old).abs() < 1e-7 {
                    continue;
                }
                let a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j);
                alpha[i] = a_i;
                alpha[j] = a_j;
                // Propagate the alpha deltas into the error cache.
                let d_i = y[i] * (a_i - a_i_old);
                let d_j = y[j] * (a_j - a_j_old);
                let (g_i, g_j) = (&gram[i], &gram[j]);
                for ((fk, &ki), &kj) in fx.iter_mut().zip(g_i).zip(g_j) {
                    *fk += d_i * ki + d_j * kj;
                }
                let b1 = b
                    - e_i
                    - y[i] * (a_i - a_i_old) * gram[i][i]
                    - y[j] * (a_j - a_j_old) * gram[i][j];
                let b2 = b
                    - e_j
                    - y[i] * (a_i - a_i_old) * gram[i][j]
                    - y[j] * (a_j - a_j_old) * gram[j][j];
                b = if a_i > 0.0 && a_i < c {
                    b1
                } else if a_j > 0.0 && a_j < c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                num_changed += 1;
            }
            if num_changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }
        let alpha_y: Vec<f64> = alpha.iter().zip(y).map(|(&a, &yy)| a * yy).collect();
        BinaryModel { alpha_y, bias: b, weights: None }
    }
}

impl Classifier for SmoSvm {
    fn fit(&mut self, train: &dyn Samples) {
        assert!(!train.is_empty(), "empty training set");
        // Linear models predict through their primal weight vector, so
        // only the RBF kernel needs the training samples kept around.
        self.train = if self.params.kernel == Kernel::Linear {
            Dataset::new(train.dim())
        } else {
            Dataset::from_samples(train)
        };
        self.classes = train.classes();
        let n = train.len();
        // Precompute the Gram matrix once; candidate sets are small
        // (hundreds of posts), so O(n²) memory is fine.
        let mut gram = vec![vec![0.0; n]; n];
        for i in 0..n {
            let (head, tail) = gram.split_at_mut(i + 1);
            let row_i = &mut head[i];
            row_i[i] = self.params.kernel.eval(train.sample(i), train.sample(i));
            for (off, row_j) in tail.iter_mut().enumerate() {
                let j = i + 1 + off;
                let k = self.params.kernel.eval(train.sample(i), train.sample(j));
                row_i[j] = k;
                row_j[i] = k;
            }
        }
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        self.models = self
            .classes
            .iter()
            .map(|&cls| {
                let y: Vec<f64> =
                    (0..n).map(|i| if train.label(i) == cls { 1.0 } else { -1.0 }).collect();
                let mut model = self.train_binary(&y, &gram, &mut rng);
                if self.params.kernel == Kernel::Linear {
                    let mut w = vec![0.0; train.dim()];
                    for (i, &ay) in model.alpha_y.iter().enumerate() {
                        if ay != 0.0 {
                            for (wk, &xk) in w.iter_mut().zip(train.sample(i)) {
                                *wk += ay * xk;
                            }
                        }
                    }
                    model.weights = Some(w);
                }
                model
            })
            .collect();
    }

    fn predict(&self, x: &[f64]) -> Prediction {
        assert!(!self.models.is_empty(), "predict before fit");
        let values = self.decision_values(x);
        let (best, &score) = values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite decision"))
            .expect("at least one class");
        Prediction { label: self.classes[best], score }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(centers: &[(f64, f64)], spread: f64, per_class: usize) -> Dataset {
        let mut d = Dataset::new(2);
        // Deterministic lattice jitter instead of RNG.
        for (label, &(cx, cy)) in centers.iter().enumerate() {
            for k in 0..per_class {
                let dx = spread * ((k % 3) as f64 - 1.0);
                let dy = spread * ((k / 3 % 3) as f64 - 1.0);
                d.push(&[cx + dx, cy + dy], label);
            }
        }
        d
    }

    #[test]
    fn binary_linear_separation() {
        let train = blobs(&[(0.0, 0.0), (6.0, 6.0)], 0.5, 9);
        let mut svm = SmoSvm::new(SvmParams::default());
        svm.fit(&train);
        assert_eq!(svm.predict(&[0.2, -0.3]).label, 0);
        assert_eq!(svm.predict(&[5.5, 6.4]).label, 1);
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let train = blobs(&[(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)], 0.5, 9);
        let mut svm = SmoSvm::new(SvmParams::default());
        svm.fit(&train);
        assert_eq!(svm.predict(&[0.1, 0.1]).label, 0);
        assert_eq!(svm.predict(&[7.9, 0.2]).label, 1);
        assert_eq!(svm.predict(&[0.3, 7.8]).label, 2);
        assert_eq!(svm.decision_values(&[0.0, 0.0]).len(), 3);
    }

    #[test]
    fn rbf_solves_xor() {
        let mut train = Dataset::new(2);
        // XOR with small clusters at each corner.
        for &(x, y, l) in &[
            (0.0, 0.0, 0),
            (0.2, 0.1, 0),
            (1.0, 1.0, 0),
            (0.9, 1.1, 0),
            (0.0, 1.0, 1),
            (0.1, 0.9, 1),
            (1.0, 0.0, 1),
            (1.1, 0.2, 1),
        ] {
            train.push(&[x, y], l);
        }
        let params = SvmParams {
            kernel: Kernel::Rbf { gamma: 4.0 },
            c: 10.0,
            max_iters: 500,
            ..SvmParams::default()
        };
        let mut svm = SmoSvm::new(params);
        svm.fit(&train);
        assert_eq!(svm.predict(&[0.05, 0.05]).label, 0);
        assert_eq!(svm.predict(&[0.95, 0.05]).label, 1);
        assert_eq!(svm.predict(&[0.05, 0.95]).label, 1);
        assert_eq!(svm.predict(&[0.95, 0.95]).label, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let train = blobs(&[(0.0, 0.0), (4.0, 4.0)], 0.8, 9);
        let mut a = SmoSvm::new(SvmParams::default());
        let mut b = SmoSvm::new(SvmParams::default());
        a.fit(&train);
        b.fit(&train);
        let x = [2.0, 2.1];
        assert_eq!(a.predict(&x).label, b.predict(&x).label);
        assert!((a.predict(&x).score - b.predict(&x).score).abs() < 1e-12);
    }

    #[test]
    fn single_class_training() {
        let train = blobs(&[(1.0, 1.0)], 0.2, 5);
        let mut svm = SmoSvm::new(SvmParams::default());
        svm.fit(&train);
        assert_eq!(svm.predict(&[0.0, 0.0]).label, 0);
    }
}
