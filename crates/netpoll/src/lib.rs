#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
//! # dehealth-netpoll
//!
//! Readiness notification for the serving layer: a single [`Poller`]
//! that multiplexes many nonblocking sockets over one thread, so the
//! daemon front can watch thousands of idle connections without a
//! thread per connection.
//!
//! The rest of the workspace denies `unsafe_code`; like
//! `dehealth-mapped`, this shim is allowed to contain it and confines
//! every unsafe operation (the readiness-API FFI) behind one safe type.
//! Three backends, picked automatically by [`Poller::new`]:
//!
//! - **epoll** (Linux, `os-poll` feature, on by default) — raw
//!   `epoll_create1`/`epoll_ctl`/`epoll_wait`, level-triggered.
//! - **poll** (other unix targets, `os-poll` feature) — `poll(2)` over
//!   the registered descriptor set; O(n) per wait but fully portable
//!   across unix.
//! - **tick** (everything else, or `--no-default-features`) — a timed
//!   tick that reports every registered source as maybe-ready.
//!
//! ## Readiness is advisory
//!
//! All three backends share one contract: an [`Event`] means *try the
//! operation now*, not *the operation will succeed*. Sockets must be
//! nonblocking and callers must treat [`std::io::ErrorKind::WouldBlock`]
//! as "not ready after all". Level-triggered OS backends only make
//! spurious wakeups rare; the tick backend makes them universal. Code
//! written against this contract runs identically (if less efficiently)
//! on all three.

use std::io;
use std::time::Duration;

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the source is (probably) readable.
    pub readable: bool,
    /// Wake when the source is (probably) writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READ: Self = Self { readable: true, writable: false };
    /// Writable only.
    pub const WRITE: Self = Self { readable: false, writable: true };
    /// Both directions — a connection with queued outgoing bytes.
    pub const READ_WRITE: Self = Self { readable: true, writable: true };
}

/// One readiness report from [`Poller::wait`].
///
/// `readable` is also set on error/hangup conditions so a plain read
/// loop observes the EOF or error without inspecting anything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token given at registration.
    pub token: usize,
    /// The source is (probably) readable, at EOF, or errored.
    pub readable: bool,
    /// The source is (probably) writable or errored.
    pub writable: bool,
}

/// The OS-level identity of a pollable source.
///
/// On unix this is the raw file descriptor; on other targets there is
/// no descriptor to speak of and the tick backend keys registrations by
/// token alone, so the identity is an ignored placeholder.
#[cfg(unix)]
pub type RawSource = std::os::unix::io::RawFd;
/// The OS-level identity of a pollable source (non-unix placeholder).
#[cfg(not(unix))]
pub type RawSource = usize;

/// Something the poller can watch. On unix every `AsRawFd` type (e.g.
/// `TcpListener`, `TcpStream`) is a source; elsewhere the identity is
/// irrelevant (the tick backend keys by token) and the common socket
/// types are covered explicitly so callers compile unchanged.
pub trait Pollable {
    /// The backend-level identity to register.
    fn raw_source(&self) -> RawSource;
}

#[cfg(unix)]
impl<T: std::os::unix::io::AsRawFd> Pollable for T {
    fn raw_source(&self) -> RawSource {
        self.as_raw_fd()
    }
}

#[cfg(not(unix))]
impl Pollable for std::net::TcpListener {
    fn raw_source(&self) -> RawSource {
        0
    }
}

#[cfg(not(unix))]
impl Pollable for std::net::TcpStream {
    fn raw_source(&self) -> RawSource {
        0
    }
}

/// How long one tick-backend wait sleeps before reporting everything
/// maybe-ready (also the cap on an unbounded tick wait, so `None`
/// timeouts cannot hang a backend that has no kernel queue to block on).
const TICK: Duration = Duration::from_millis(5);

/// A readiness multiplexer over nonblocking sources.
///
/// Register sources with a caller-chosen `token`; [`Poller::wait`]
/// blocks until at least one registered source is (probably) ready or
/// the timeout elapses, and reports which. See the crate docs for the
/// advisory-readiness contract and backend selection.
#[derive(Debug)]
pub struct Poller {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    #[cfg(all(target_os = "linux", feature = "os-poll"))]
    Epoll(epoll::Epoll),
    #[cfg(all(unix, not(target_os = "linux"), feature = "os-poll"))]
    Poll(pollset::PollSet),
    Tick(TickPoller),
}

impl Poller {
    /// Create a poller on the best backend this target supports.
    ///
    /// # Errors
    /// Propagates OS errors from creating the kernel readiness queue
    /// (epoll backend only; the others cannot fail).
    pub fn new() -> io::Result<Self> {
        #[cfg(all(target_os = "linux", feature = "os-poll"))]
        {
            return Ok(Self { inner: Inner::Epoll(epoll::Epoll::new()?) });
        }
        #[cfg(all(unix, not(target_os = "linux"), feature = "os-poll"))]
        {
            return Ok(Self { inner: Inner::Poll(pollset::PollSet::new()) });
        }
        #[allow(unreachable_code)]
        Ok(Self::tick())
    }

    /// Create a poller on the portable tick backend regardless of
    /// target — every registered source is reported maybe-ready each
    /// tick (5 ms). Exists so the fallback path stays testable on
    /// targets that would normally pick an OS backend.
    #[must_use]
    pub fn tick() -> Self {
        Self { inner: Inner::Tick(TickPoller::default()) }
    }

    /// Which backend this poller runs on: `"epoll"`, `"poll"`, or
    /// `"tick"`.
    #[must_use]
    pub fn backend(&self) -> &'static str {
        match &self.inner {
            #[cfg(all(target_os = "linux", feature = "os-poll"))]
            Inner::Epoll(_) => "epoll",
            #[cfg(all(unix, not(target_os = "linux"), feature = "os-poll"))]
            Inner::Poll(_) => "poll",
            Inner::Tick(_) => "tick",
        }
    }

    /// Start watching `source` for `interest`, reporting it as `token`.
    ///
    /// Tokens should be unique per live registration (events only carry
    /// the token back). Registering the same source twice without a
    /// [`Poller::deregister`] in between is a caller bug; the OS
    /// backends surface it as an error.
    ///
    /// # Errors
    /// Propagates OS errors (bad descriptor, duplicate registration).
    pub fn register(
        &mut self,
        source: &impl Pollable,
        token: usize,
        interest: Interest,
    ) -> io::Result<()> {
        match &mut self.inner {
            #[cfg(all(target_os = "linux", feature = "os-poll"))]
            Inner::Epoll(e) => e.register(source.raw_source(), token, interest),
            #[cfg(all(unix, not(target_os = "linux"), feature = "os-poll"))]
            Inner::Poll(p) => p.register(source.raw_source(), token, interest),
            Inner::Tick(t) => t.register(token, interest),
        }
    }

    /// Change the interest (and/or token) of an already-registered
    /// source.
    ///
    /// # Errors
    /// Propagates OS errors (e.g. the source was never registered).
    pub fn modify(
        &mut self,
        source: &impl Pollable,
        token: usize,
        interest: Interest,
    ) -> io::Result<()> {
        match &mut self.inner {
            #[cfg(all(target_os = "linux", feature = "os-poll"))]
            Inner::Epoll(e) => e.modify(source.raw_source(), token, interest),
            #[cfg(all(unix, not(target_os = "linux"), feature = "os-poll"))]
            Inner::Poll(p) => p.modify(source.raw_source(), token, interest),
            Inner::Tick(t) => t.register(token, interest),
        }
    }

    /// Stop watching `source` (registered as `token`).
    ///
    /// Call *before* closing the socket: the OS backends key on the
    /// descriptor, and a closed descriptor number can be reused by the
    /// next accept.
    ///
    /// # Errors
    /// Propagates OS errors (e.g. the source was never registered).
    pub fn deregister(&mut self, source: &impl Pollable, token: usize) -> io::Result<()> {
        match &mut self.inner {
            #[cfg(all(target_os = "linux", feature = "os-poll"))]
            Inner::Epoll(e) => e.deregister(source.raw_source(), token),
            #[cfg(all(unix, not(target_os = "linux"), feature = "os-poll"))]
            Inner::Poll(p) => p.deregister(source.raw_source(), token),
            Inner::Tick(t) => t.deregister(token),
        }
    }

    /// Block until at least one registered source is (probably) ready
    /// or `timeout` elapses (`None` = no limit on the OS backends, one
    /// 5 ms tick on the tick backend). Clears `events` and fills it
    /// with the ready set; returns how many.
    ///
    /// Interrupted waits (`EINTR`) are retried internally with the
    /// remaining budget, so a signal never surfaces as a spurious
    /// empty return.
    ///
    /// # Errors
    /// Propagates OS errors from the underlying wait call.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        match &mut self.inner {
            #[cfg(all(target_os = "linux", feature = "os-poll"))]
            Inner::Epoll(e) => e.wait(events, timeout),
            #[cfg(all(unix, not(target_os = "linux"), feature = "os-poll"))]
            Inner::Poll(p) => p.wait(events, timeout),
            Inner::Tick(t) => {
                t.wait(events, timeout);
                Ok(events.len())
            }
        }
    }
}

/// The portable fallback: no kernel queue, just a bounded sleep and a
/// report that everything registered is maybe-ready. Correct under the
/// advisory-readiness contract (callers retry and observe
/// `WouldBlock`), merely less efficient.
#[derive(Debug, Default)]
struct TickPoller {
    registered: std::collections::BTreeMap<usize, Interest>,
}

impl TickPoller {
    fn register(&mut self, token: usize, interest: Interest) -> io::Result<()> {
        self.registered.insert(token, interest);
        Ok(())
    }

    fn deregister(&mut self, token: usize) -> io::Result<()> {
        if self.registered.remove(&token).is_none() {
            return Err(io::Error::new(io::ErrorKind::NotFound, "token was not registered"));
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) {
        if self.registered.is_empty() {
            // Nothing can become ready mid-wait (`&mut self` excludes
            // concurrent registration), so honor the full timeout.
            std::thread::sleep(timeout.unwrap_or(TICK));
            return;
        }
        std::thread::sleep(timeout.unwrap_or(TICK).min(TICK));
        events.extend(self.registered.iter().map(|(&token, &interest)| Event {
            token,
            readable: interest.readable,
            writable: interest.writable,
        }));
    }
}

/// Convert an optional timeout to the millisecond convention of
/// `epoll_wait`/`poll`: `-1` blocks forever, `0` returns immediately,
/// sub-millisecond waits round **up** so short deadlines never busy-spin.
#[cfg(all(unix, feature = "os-poll"))]
fn timeout_millis(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis();
            if ms == 0 && !t.is_zero() {
                1
            } else {
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        }
    }
}

#[cfg(all(target_os = "linux", feature = "os-poll"))]
mod epoll {
    //! Raw level-triggered epoll. All `unsafe` in this module is plain
    //! FFI onto the epoll syscall wrappers; no pointers outlive a call.

    use super::{timeout_millis, Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    mod sys {
        use std::os::raw::c_int;

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;

        /// The kernel's `struct epoll_event`. Packed on x86-64 (the one
        /// ABI where the kernel declares it `__attribute__((packed))`);
        /// natural layout everywhere else.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            /// The `epoll_data_t` union; this crate only ever stores the
            /// token here, so a plain `u64` covers it.
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub fn close(fd: c_int) -> c_int;
        }
    }

    /// Most events decoded per wait call; more ready sources than this
    /// simply surface on the next wait (level-triggered, nothing lost).
    const MAX_EVENTS: usize = 256;

    #[derive(Debug)]
    pub struct Epoll {
        epfd: RawFd,
    }

    impl Epoll {
        pub fn new() -> io::Result<Self> {
            // SAFETY: plain syscall, no pointers involved.
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { epfd })
        }

        fn ctl(
            &self,
            op: std::os::raw::c_int,
            fd: RawFd,
            event: Option<sys::EpollEvent>,
        ) -> io::Result<()> {
            let mut event = event;
            let ptr = event.as_mut().map_or(std::ptr::null_mut(), std::ptr::from_mut);
            // SAFETY: `ptr` is null (allowed for DEL) or points at a
            // live, properly laid out `EpollEvent` for the duration of
            // the call; the kernel copies it and keeps no reference.
            let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_ADD, fd, Some(encode(token, interest)))
        }

        pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_MOD, fd, Some(encode(token, interest)))
        }

        pub fn deregister(&mut self, fd: RawFd, _token: usize) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut buf = [sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let deadline = timeout.map(|t| std::time::Instant::now() + t);
            loop {
                let remaining =
                    deadline.map(|d| d.saturating_duration_since(std::time::Instant::now()));
                // SAFETY: `buf` is a live array of MAX_EVENTS properly
                // laid out events; the kernel writes at most
                // `maxevents` entries into it during the call.
                let n = unsafe {
                    sys::epoll_wait(
                        self.epfd,
                        buf.as_mut_ptr(),
                        MAX_EVENTS as std::os::raw::c_int,
                        timeout_millis(remaining),
                    )
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        // Retry with the remaining budget; an elapsed
                        // deadline turns into a zero-timeout final poll.
                        continue;
                    }
                    return Err(err);
                }
                for event in &buf[..n as usize] {
                    let bits = event.events;
                    out.push(Event {
                        token: event.data as usize,
                        readable: bits
                            & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP)
                            != 0,
                        writable: bits & (sys::EPOLLOUT | sys::EPOLLERR) != 0,
                    });
                }
                return Ok(out.len());
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: `epfd` is a descriptor this struct owns exclusively.
            let _ = unsafe { sys::close(self.epfd) };
        }
    }

    fn encode(token: usize, interest: Interest) -> sys::EpollEvent {
        let mut events = 0u32;
        if interest.readable {
            events |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if interest.writable {
            events |= sys::EPOLLOUT;
        }
        sys::EpollEvent { events, data: token as u64 }
    }
}

#[cfg(all(unix, not(target_os = "linux"), feature = "os-poll"))]
mod pollset {
    //! Portable unix fallback over `poll(2)`: the registration list
    //! lives in userspace and every wait rebuilds the `pollfd` array —
    //! O(n) per wait, which is fine at daemon scale and runs on any
    //! unix. All `unsafe` is the single `poll` FFI call.

    use super::{timeout_millis, Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    mod sys {
        use std::os::raw::{c_int, c_short, c_uint};

        pub const POLLIN: c_short = 0x001;
        pub const POLLOUT: c_short = 0x004;
        pub const POLLERR: c_short = 0x008;
        pub const POLLHUP: c_short = 0x010;

        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct PollFd {
            pub fd: c_int,
            pub events: c_short,
            pub revents: c_short,
        }

        extern "C" {
            // `nfds_t` is `unsigned int` on the non-Linux unix targets
            // this backend serves (macOS and the BSDs).
            pub fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
        }
    }

    #[derive(Debug, Default)]
    pub struct PollSet {
        entries: Vec<(RawFd, usize, Interest)>,
    }

    impl PollSet {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            if self.entries.iter().any(|&(f, _, _)| f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "descriptor already registered",
                ));
            }
            self.entries.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            for entry in &mut self.entries {
                if entry.0 == fd {
                    *entry = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "descriptor was not registered"))
        }

        pub fn deregister(&mut self, fd: RawFd, _token: usize) -> io::Result<()> {
            let before = self.entries.len();
            self.entries.retain(|&(f, _, _)| f != fd);
            if self.entries.len() == before {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "descriptor was not registered",
                ));
            }
            Ok(())
        }

        pub fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut fds: Vec<sys::PollFd> = self
                .entries
                .iter()
                .map(|&(fd, _, interest)| sys::PollFd {
                    fd,
                    events: (if interest.readable { sys::POLLIN } else { 0 })
                        | (if interest.writable { sys::POLLOUT } else { 0 }),
                    revents: 0,
                })
                .collect();
            let deadline = timeout.map(|t| std::time::Instant::now() + t);
            loop {
                let remaining =
                    deadline.map(|d| d.saturating_duration_since(std::time::Instant::now()));
                // SAFETY: `fds` is a live, properly laid out array of
                // `nfds` pollfd entries for the duration of the call.
                let n = unsafe {
                    sys::poll(
                        fds.as_mut_ptr(),
                        fds.len() as std::os::raw::c_uint,
                        timeout_millis(remaining),
                    )
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(err);
                }
                for (pollfd, &(_, token, _)) in fds.iter().zip(&self.entries) {
                    let bits = pollfd.revents;
                    if bits == 0 {
                        continue;
                    }
                    out.push(Event {
                        token,
                        readable: bits & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0,
                        writable: bits & (sys::POLLOUT | sys::POLLERR) != 0,
                    });
                }
                return Ok(out.len());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    /// Wait (re-polling up to `budget`) until an event for `token`
    /// arrives, then return it. Panics when the budget runs out.
    fn wait_for(poller: &mut Poller, token: usize, budget: Duration) -> Event {
        let deadline = Instant::now() + budget;
        let mut events = Vec::new();
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            assert!(!remaining.is_zero(), "no event for token {token} within {budget:?}");
            poller.wait(&mut events, Some(remaining)).unwrap();
            if let Some(&event) = events.iter().find(|e| e.token == token) {
                return event;
            }
        }
    }

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn listener_becomes_readable_when_a_connection_arrives() {
        let mut poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.register(&listener, 7, Interest::READ).unwrap();

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let event = wait_for(&mut poller, 7, Duration::from_secs(5));
        assert!(event.readable);
        // The advisory contract holds: accept now succeeds.
        assert!(listener.accept().is_ok());
    }

    #[test]
    fn data_in_flight_makes_the_peer_readable_and_idle_sockets_stay_quiet() {
        let mut poller = Poller::new().unwrap();
        let (mut client, server) = pair();
        server.set_nonblocking(true).unwrap();
        poller.register(&server, 3, Interest::READ).unwrap();

        // Idle: nothing readable yet (OS backends only; the tick
        // backend is spurious by design).
        if poller.backend() != "tick" {
            let mut events = Vec::new();
            poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
            assert!(events.is_empty(), "idle socket must not report readable: {events:?}");
        }

        client.write_all(b"ping\n").unwrap();
        let event = wait_for(&mut poller, 3, Duration::from_secs(5));
        assert!(event.readable);
        let mut buf = [0u8; 16];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping\n");
    }

    #[test]
    fn write_interest_reports_writable_and_modify_switches_it_off() {
        let mut poller = Poller::new().unwrap();
        let (client, _server) = pair();
        client.set_nonblocking(true).unwrap();
        poller.register(&client, 11, Interest::READ_WRITE).unwrap();
        let event = wait_for(&mut poller, 11, Duration::from_secs(5));
        assert!(event.writable, "a fresh stream with buffer space must be writable");

        poller.modify(&client, 11, Interest::READ).unwrap();
        if poller.backend() != "tick" {
            let mut events = Vec::new();
            poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
            assert!(
                events.iter().all(|e| !e.writable),
                "after dropping write interest nothing should report writable: {events:?}"
            );
        }
    }

    #[test]
    fn peer_close_surfaces_as_readable() {
        let mut poller = Poller::new().unwrap();
        let (client, server) = pair();
        server.set_nonblocking(true).unwrap();
        poller.register(&server, 5, Interest::READ).unwrap();
        drop(client);
        let event = wait_for(&mut poller, 5, Duration::from_secs(5));
        assert!(event.readable, "hangup must surface through the readable bit");
        let mut buf = [0u8; 8];
        assert_eq!((&server).read(&mut buf).unwrap(), 0, "and the read observes EOF");
    }

    #[test]
    fn deregistered_sources_report_nothing_and_double_deregister_errors() {
        let mut poller = Poller::new().unwrap();
        let (mut client, server) = pair();
        server.set_nonblocking(true).unwrap();
        poller.register(&server, 9, Interest::READ).unwrap();
        poller.deregister(&server, 9).unwrap();

        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert!(events.iter().all(|e| e.token != 9), "deregistered token must stay silent");

        assert!(poller.deregister(&server, 9).is_err(), "double deregister is a caller bug");
    }

    #[test]
    fn empty_wait_honors_its_timeout() {
        let mut poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        let n = poller.wait(&mut events, Some(Duration::from_millis(60))).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(40), "wait returned too early");
    }

    #[test]
    fn tick_backend_reports_every_registration_as_maybe_ready() {
        let mut poller = Poller::tick();
        assert_eq!(poller.backend(), "tick");
        let (client, server) = pair();
        poller.register(&client, 1, Interest::READ).unwrap();
        poller.register(&server, 2, Interest::READ_WRITE).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], Event { token: 1, readable: true, writable: false });
        assert_eq!(events[1], Event { token: 2, readable: true, writable: true });
        poller.deregister(&client, 1).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(events.len(), 1);
    }
}
