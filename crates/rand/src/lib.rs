//! # rand (workspace shim)
//!
//! A dependency-free, in-tree stand-in for the subset of the `rand 0.8`
//! API this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] and [`Rng::gen_range`] over integer ranges. The build
//! environment has no crates.io access, so the workspace vendors this shim
//! instead of the real crate; swapping back is a one-line manifest change
//! because the call sites are API-compatible.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — a well-studied, fast, deterministic PRNG that is more than
//! adequate for synthetic-corpus generation and experiment seeding. It is
//! **not** cryptographically secure (neither is the workspace's use of it).

/// A source of random bits plus the derived sampling helpers.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an `RngCore` (the shim's
/// equivalent of `rand::distributions::Standard` sampling).
pub trait Uniform: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Uniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Bounds of a half-open or inclusive sampling range (the shim's
/// equivalent of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// `(low, high)` inclusive on both ends.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn bounds_inclusive(self) -> (T, T);
}

/// Integers samplable via `gen_range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from the inclusive interval `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Span fits in u64 for every supported type.
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = span + 1;
                // Debiased multiply-shift rejection (Lemire).
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let r = rng.next_u64();
                    if r <= zone {
                        return ((lo as $wide).wrapping_add((r % span) as $wide)) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn bounds_inclusive(self) -> ($t, $t) {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn bounds_inclusive(self) -> ($t, $t) {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                (lo, hi)
            }
        }
    )*};
}

impl_sample_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn bounds_inclusive(self) -> (f64, f64) {
        assert!(self.start < self.end, "cannot sample empty range");
        (self.start, self.end)
    }
}

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + <f64 as Uniform>::sample(rng) * (hi - lo)
    }
}

/// The user-facing sampling trait (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniformly random value of `T` (`f64` in `[0,1)`, full-range ints).
    fn gen<T: Uniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `range` (`a..b` or `a..=b`).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        let (lo, hi) = range.bounds_inclusive();
        T::sample_inclusive(self, lo, hi)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Uniform>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose full state is derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64 step, used to expand a 64-bit seed into generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Unlike the real `rand::rngs::StdRng` (ChaCha12) this is not a CSPRNG;
    /// the workspace only relies on statistical quality and determinism.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is unreachable from SplitMix64 expansion in
            // practice, but guard anyway: xoshiro must not start at zero.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5u32);
            assert!(y <= 5);
            let z = rng.gen_range(1940..2005i32);
            assert!((1940..2005).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| {
                let x = rng.gen::<f64>();
                assert!((0.0..1.0).contains(&x));
                x
            })
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn single_value_ranges_work() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.gen_range(4..5usize), 4);
        assert_eq!(rng.gen_range(4..=4usize), 4);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
    }
}
