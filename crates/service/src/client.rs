//! A blocking client for the daemon protocol — used by
//! `examples/attack_service.rs`, the wire benchmarks, and the parity
//! tests.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use dehealth_corpus::Forum;

use crate::json::Json;
use crate::protocol::{forum_to_json, AttackOptions};

/// Client-side failure.
#[derive(Debug)]
pub enum ServiceError {
    /// Socket failure.
    Io(std::io::Error),
    /// The server's bytes did not parse as a protocol response.
    Protocol(String),
    /// The server answered with `"ok": false`.
    Remote(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "service I/O error: {e}"),
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServiceError::Remote(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

/// The parsed result of a wire `attack`.
#[derive(Debug, Clone)]
pub struct AttackReply {
    /// Refined-DA decision per anonymized user (`None` = `u → ⊥`).
    pub mapping: Vec<Option<usize>>,
    /// Final candidate set per anonymized user.
    pub candidates: Vec<Vec<usize>>,
    /// The full response object (per-stage report, counters).
    pub raw: Json,
}

/// One connection to a running [`Daemon`](crate::daemon::Daemon).
#[derive(Debug)]
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ServiceClient {
    /// Connect to a daemon.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(Self { reader: BufReader::new(read_half), writer: BufWriter::new(stream) })
    }

    /// Send one request object and read the matching response line.
    ///
    /// # Errors
    /// [`ServiceError::Io`] on socket failure, [`ServiceError::Protocol`]
    /// when the response is not valid protocol JSON, and
    /// [`ServiceError::Remote`] when the server reports a failure.
    pub fn request(&mut self, request: &Json) -> Result<Json, ServiceError> {
        self.writer.write_all(request.emit().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ServiceError::Protocol("connection closed by server".into()));
        }
        let response = Json::parse(line.trim())
            .map_err(|e| ServiceError::Protocol(format!("unparseable response: {e}")))?;
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(response),
            Some(false) => Err(ServiceError::Remote(
                response.get("error").and_then(Json::as_str).unwrap_or("unknown error").into(),
            )),
            None => Err(ServiceError::Protocol("response missing ok field".into())),
        }
    }

    /// Ask the daemon to load the snapshot at `path` (a path on the
    /// **daemon's** filesystem).
    ///
    /// # Errors
    /// Like [`Self::request`].
    pub fn load_snapshot(&mut self, path: &str) -> Result<Json, ServiceError> {
        self.request(&Json::Obj(vec![
            ("cmd".into(), Json::Str("load_snapshot".into())),
            ("path".into(), Json::Str(path.into())),
        ]))
    }

    /// Stream a chunk of new auxiliary users into the standing corpus.
    ///
    /// # Errors
    /// Like [`Self::request`].
    pub fn add_auxiliary_users(&mut self, chunk: &Forum) -> Result<Json, ServiceError> {
        self.request(&Json::Obj(vec![
            ("cmd".into(), Json::Str("add_auxiliary_users".into())),
            ("forum".into(), forum_to_json(chunk)),
        ]))
    }

    /// De-anonymize a batch of users against the standing corpus.
    ///
    /// # Errors
    /// Like [`Self::request`], plus [`ServiceError::Protocol`] when the
    /// response's mapping/candidates have unexpected shapes.
    pub fn attack(
        &mut self,
        anonymized: &Forum,
        options: &AttackOptions,
    ) -> Result<AttackReply, ServiceError> {
        let mut fields = vec![
            ("cmd".into(), Json::Str("attack".into())),
            ("forum".into(), forum_to_json(anonymized)),
        ];
        fields.extend(options.to_fields());
        let raw = self.request(&Json::Obj(fields))?;
        let shape = |m: &str| ServiceError::Protocol(m.into());
        let mapping = raw
            .get("mapping")
            .and_then(Json::as_array)
            .ok_or_else(|| shape("missing mapping"))?
            .iter()
            .map(|v| match v {
                Json::Null => Ok(None),
                v => v.as_usize().map(Some).ok_or_else(|| shape("invalid mapping entry")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let candidates = raw
            .get("candidates")
            .and_then(Json::as_array)
            .ok_or_else(|| shape("missing candidates"))?
            .iter()
            .map(|c| {
                c.as_array()
                    .ok_or_else(|| shape("invalid candidate set"))?
                    .iter()
                    .map(|v| v.as_usize().ok_or_else(|| shape("invalid candidate id")))
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(AttackReply { mapping, candidates, raw })
    }

    /// Fetch the daemon's counters.
    ///
    /// # Errors
    /// Like [`Self::request`].
    pub fn stats(&mut self) -> Result<Json, ServiceError> {
        self.request(&Json::Obj(vec![("cmd".into(), Json::Str("stats".into()))]))
    }

    /// Fetch the daemon's full metric registry (the `metrics` command):
    /// the response's `"metrics"` field is the array described by
    /// [`registry_to_json`](crate::metrics::registry_to_json).
    ///
    /// # Errors
    /// Like [`Self::request`].
    pub fn metrics(&mut self) -> Result<Json, ServiceError> {
        self.request(&Json::Obj(vec![("cmd".into(), Json::Str("metrics".into()))]))
    }

    /// Ask the daemon to shut down (the response arrives before the
    /// daemon stops accepting).
    ///
    /// # Errors
    /// Like [`Self::request`].
    pub fn shutdown(&mut self) -> Result<(), ServiceError> {
        self.request(&Json::Obj(vec![("cmd".into(), Json::Str("shutdown".into()))])).map(|_| ())
    }
}
