//! A blocking client for the daemon protocol — used by
//! `examples/attack_service.rs`, the wire benchmarks, and the parity
//! tests.
//!
//! By default every call blocks until the daemon answers. A client
//! talking to an untrusted or flaky daemon should set
//! [`ClientTimeouts`]: a bounded connect ([`ServiceClient::connect_with`])
//! and a bounded per-response read ([`ServiceClient::set_read_timeout`]),
//! both surfacing as the typed [`ServiceError::Timeout`] instead of a
//! hang.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use dehealth_corpus::Forum;

use crate::frame::{encode_add_users_frame, encode_attack_frame};
use crate::json::Json;
use crate::protocol::{forum_to_json, AttackOptions};

/// How this client puts bulk requests (`attack`,
/// `add_auxiliary_users`) on the wire. Control commands and every
/// response stay newline-JSON either way; the daemon detects the
/// encoding per message, so one connection may switch freely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WireEncoding {
    /// Legacy newline-delimited JSON for everything (the default).
    #[default]
    Json,
    /// Length-prefixed, checksummed binary frames
    /// ([`frame`](crate::frame)) for bulk payloads — the forum body
    /// travels in the snapshot codec's byte layout, much smaller and
    /// cheaper to decode than its JSON rendering.
    Binary,
}

/// Client-side failure.
#[derive(Debug)]
pub enum ServiceError {
    /// Socket failure.
    Io(std::io::Error),
    /// The server's bytes did not parse as a protocol response.
    Protocol(String),
    /// The server answered with `"ok": false`.
    Remote(String),
    /// A configured client-side timeout elapsed (the bound that was
    /// exceeded) before the daemon connected or answered.
    Timeout(Duration),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "service I/O error: {e}"),
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServiceError::Remote(m) => write!(f, "server error: {m}"),
            ServiceError::Timeout(after) => {
                write!(f, "timed out after {:.3}s waiting for the daemon", after.as_secs_f64())
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

/// Client-side deadlines. `None` (the default for both) blocks
/// indefinitely — the right call against a trusted local daemon, a
/// footgun against anything else.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientTimeouts {
    /// Bound on establishing the TCP connection.
    pub connect: Option<Duration>,
    /// Bound on waiting for each response line.
    pub read: Option<Duration>,
}

/// The parsed result of a wire `attack`.
#[derive(Debug, Clone)]
pub struct AttackReply {
    /// Refined-DA decision per anonymized user (`None` = `u → ⊥`).
    pub mapping: Vec<Option<usize>>,
    /// Final candidate set per anonymized user.
    pub candidates: Vec<Vec<usize>>,
    /// The full response object (per-stage report, counters).
    pub raw: Json,
}

/// One connection to a running [`Daemon`](crate::daemon::Daemon).
#[derive(Debug)]
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    read_timeout: Option<Duration>,
    encoding: WireEncoding,
}

impl ServiceClient {
    /// Connect to a daemon with no client-side deadlines.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream, None)
    }

    /// Connect to a daemon with explicit [`ClientTimeouts`]: the
    /// connect attempt and every subsequent response read are bounded,
    /// both reported as [`ServiceError::Timeout`].
    ///
    /// # Errors
    /// [`ServiceError::Timeout`] when the connect bound elapses,
    /// [`ServiceError::Io`] on other socket errors (including
    /// unresolvable addresses).
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        timeouts: ClientTimeouts,
    ) -> Result<Self, ServiceError> {
        let stream = match timeouts.connect {
            None => TcpStream::connect(addr)?,
            Some(bound) => {
                // `TcpStream::connect_timeout` wants one resolved
                // address; try each in turn under the same bound.
                let mut last: Option<std::io::Error> = None;
                let mut stream = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, bound) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match stream {
                    Some(s) => s,
                    None => {
                        let e = last.unwrap_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                "address resolved to nothing",
                            )
                        });
                        return Err(classify_io(e, bound));
                    }
                }
            }
        };
        let mut client = Self::from_stream(stream, timeouts.read)?;
        client.set_read_timeout(timeouts.read)?;
        Ok(client)
    }

    fn from_stream(stream: TcpStream, read_timeout: Option<Duration>) -> std::io::Result<Self> {
        let read_half = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            read_timeout,
            encoding: WireEncoding::default(),
        })
    }

    /// Choose the wire encoding for subsequent bulk requests (`attack`,
    /// `add_auxiliary_users`). Takes effect immediately — the daemon
    /// detects the encoding per message.
    pub fn set_encoding(&mut self, encoding: WireEncoding) {
        self.encoding = encoding;
    }

    /// The encoding bulk requests currently use.
    #[must_use]
    pub fn encoding(&self) -> WireEncoding {
        self.encoding
    }

    /// Bound (or unbound, with `None`) every subsequent response read;
    /// an elapsed bound surfaces as [`ServiceError::Timeout`]. Attacks
    /// against large corpora run for minutes — size the bound for the
    /// slowest request this client issues, not for a network RTT.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        self.read_timeout = timeout;
        Ok(())
    }

    /// Send one request object and read the matching response line.
    ///
    /// # Errors
    /// [`ServiceError::Io`] on socket failure, [`ServiceError::Timeout`]
    /// when a configured read deadline elapses before the response,
    /// [`ServiceError::Protocol`] when the response is not valid
    /// protocol JSON, and [`ServiceError::Remote`] when the server
    /// reports a failure.
    pub fn request(&mut self, request: &Json) -> Result<Json, ServiceError> {
        self.writer.write_all(request.emit().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_reply()
    }

    /// Send raw request bytes — a pre-encoded binary frame
    /// ([`crate::frame`]) — and read the matching JSON response line
    /// (responses are newline-JSON regardless of request encoding).
    ///
    /// # Errors
    /// Like [`Self::request`].
    pub fn request_frame(&mut self, frame: &[u8]) -> Result<Json, ServiceError> {
        self.writer.write_all(frame)?;
        self.writer.flush()?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> Result<Json, ServiceError> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| classify_io(e, self.read_timeout.unwrap_or_default()))?;
        if n == 0 {
            return Err(ServiceError::Protocol("connection closed by server".into()));
        }
        let response = Json::parse(line.trim())
            .map_err(|e| ServiceError::Protocol(format!("unparseable response: {e}")))?;
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(response),
            Some(false) => Err(ServiceError::Remote(
                response.get("error").and_then(Json::as_str).unwrap_or("unknown error").into(),
            )),
            None => Err(ServiceError::Protocol("response missing ok field".into())),
        }
    }

    /// Ask the daemon to load the snapshot at `path` (a path on the
    /// **daemon's** filesystem).
    ///
    /// # Errors
    /// Like [`Self::request`].
    pub fn load_snapshot(&mut self, path: &str) -> Result<Json, ServiceError> {
        self.request(&Json::Obj(vec![
            ("cmd".into(), Json::Str("load_snapshot".into())),
            ("path".into(), Json::Str(path.into())),
        ]))
    }

    /// Stream a chunk of new auxiliary users into the standing corpus,
    /// in this client's [`WireEncoding`].
    ///
    /// # Errors
    /// Like [`Self::request`].
    pub fn add_auxiliary_users(&mut self, chunk: &Forum) -> Result<Json, ServiceError> {
        match self.encoding {
            WireEncoding::Binary => {
                let frame = encode_add_users_frame(chunk);
                self.request_frame(&frame)
            }
            WireEncoding::Json => self.request(&Json::Obj(vec![
                ("cmd".into(), Json::Str("add_auxiliary_users".into())),
                ("forum".into(), forum_to_json(chunk)),
            ])),
        }
    }

    /// De-anonymize a batch of users against the standing corpus, in
    /// this client's [`WireEncoding`]. Replies are identical across
    /// encodings (the parity suite holds them bit-for-bit equal).
    ///
    /// # Errors
    /// Like [`Self::request`], plus [`ServiceError::Protocol`] when the
    /// response's mapping/candidates have unexpected shapes.
    pub fn attack(
        &mut self,
        anonymized: &Forum,
        options: &AttackOptions,
    ) -> Result<AttackReply, ServiceError> {
        let bytes = self.encode_attack_request(anonymized, options);
        self.writer.write_all(&bytes)?;
        self.writer.flush()?;
        let raw = self.read_reply()?;
        let shape = |m: &str| ServiceError::Protocol(m.into());
        let mapping = raw
            .get("mapping")
            .and_then(Json::as_array)
            .ok_or_else(|| shape("missing mapping"))?
            .iter()
            .map(|v| match v {
                Json::Null => Ok(None),
                v => v.as_usize().map(Some).ok_or_else(|| shape("invalid mapping entry")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let candidates = raw
            .get("candidates")
            .and_then(Json::as_array)
            .ok_or_else(|| shape("missing candidates"))?
            .iter()
            .map(|c| {
                c.as_array()
                    .ok_or_else(|| shape("invalid candidate set"))?
                    .iter()
                    .map(|v| v.as_usize().ok_or_else(|| shape("invalid candidate id")))
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(AttackReply { mapping, candidates, raw })
    }

    /// The exact bytes [`Self::attack`] puts on the wire for this
    /// request under the current [`WireEncoding`] (the trailing newline
    /// included for JSON) — what a benchmark comparing bytes-on-wire
    /// across encodings should measure.
    #[must_use]
    pub fn encode_attack_request(&self, anonymized: &Forum, options: &AttackOptions) -> Vec<u8> {
        match self.encoding {
            WireEncoding::Binary => encode_attack_frame(anonymized, options),
            WireEncoding::Json => {
                let mut fields = vec![
                    ("cmd".into(), Json::Str("attack".into())),
                    ("forum".into(), forum_to_json(anonymized)),
                ];
                fields.extend(options.to_fields());
                let mut bytes = Json::Obj(fields).emit().into_bytes();
                bytes.push(b'\n');
                bytes
            }
        }
    }

    /// Fetch the daemon's counters.
    ///
    /// # Errors
    /// Like [`Self::request`].
    pub fn stats(&mut self) -> Result<Json, ServiceError> {
        self.request(&Json::Obj(vec![("cmd".into(), Json::Str("stats".into()))]))
    }

    /// Fetch the daemon's full metric registry (the `metrics` command):
    /// the response's `"metrics"` field is the array described by
    /// [`registry_to_json`](crate::metrics::registry_to_json).
    ///
    /// # Errors
    /// Like [`Self::request`].
    pub fn metrics(&mut self) -> Result<Json, ServiceError> {
        self.request(&Json::Obj(vec![("cmd".into(), Json::Str("metrics".into()))]))
    }

    /// Ask the daemon to shut down (the response arrives before the
    /// daemon stops accepting).
    ///
    /// # Errors
    /// Like [`Self::request`].
    pub fn shutdown(&mut self) -> Result<(), ServiceError> {
        self.request(&Json::Obj(vec![("cmd".into(), Json::Str("shutdown".into()))])).map(|_| ())
    }
}

/// Map an I/O error from a bounded read/connect to the typed timeout
/// (the platform reports an elapsed socket deadline as `WouldBlock` on
/// unix, `TimedOut` elsewhere).
fn classify_io(e: std::io::Error, bound: Duration) -> ServiceError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            ServiceError::Timeout(bound)
        }
        _ => ServiceError::Io(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;
    use std::time::Instant;

    /// A listener that accepts and then never answers: without a read
    /// timeout the client would block forever on the response line.
    fn stalling_listener() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind stalling listener");
        let addr = listener.local_addr().expect("listener addr");
        let handle = std::thread::spawn(move || {
            let Ok((mut stream, _)) = listener.accept() else { return };
            // Swallow the request so the client's write succeeds, then
            // go silent until the peer hangs up.
            let mut sink = [0u8; 1024];
            while let Ok(n) = stream.read(&mut sink) {
                if n == 0 {
                    break;
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn read_timeout_against_a_stalling_daemon_is_a_typed_error_not_a_hang() {
        let (addr, handle) = stalling_listener();
        let bound = Duration::from_millis(100);
        let mut client = ServiceClient::connect_with(
            addr,
            ClientTimeouts { connect: Some(Duration::from_secs(5)), read: Some(bound) },
        )
        .expect("connect");
        let started = Instant::now();
        let err = client.stats().expect_err("stalling daemon must time out");
        let waited = started.elapsed();
        assert!(matches!(err, ServiceError::Timeout(after) if after == bound), "got {err}");
        assert!(
            waited >= bound && waited < Duration::from_secs(5),
            "timeout fired after {waited:?}, bound was {bound:?}"
        );
        drop(client);
        handle.join().expect("stalling listener thread");
    }

    #[test]
    fn set_read_timeout_can_rebound_and_unbound_an_existing_client() {
        let (addr, handle) = stalling_listener();
        let mut client = ServiceClient::connect(addr).expect("connect");
        client.set_read_timeout(Some(Duration::from_millis(50))).expect("set timeout");
        let err = client.stats().expect_err("stalling daemon must time out");
        assert!(matches!(err, ServiceError::Timeout(_)), "got {err}");
        // Rebinding to a longer bound still times out (typed), proving
        // the stored bound is what the error reports.
        client.set_read_timeout(Some(Duration::from_millis(80))).expect("rebound");
        let err = client.stats().expect_err("still stalling");
        assert!(
            matches!(err, ServiceError::Timeout(after) if after == Duration::from_millis(80)),
            "got {err}"
        );
        drop(client);
        handle.join().expect("stalling listener thread");
    }
}
