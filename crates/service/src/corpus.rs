//! The standing auxiliary corpus: built once, persisted as a snapshot,
//! shared read-only by every attack session.
//!
//! A [`PreparedCorpus`] bundles everything [`Engine::run_prepared`] needs
//! about the auxiliary side of the attack:
//!
//! - the [`Forum`] (posts with author/thread structure),
//! - the per-post stylometric [`FeatureVector`]s — the product of the
//!   attack's single most expensive preprocessing step,
//! - the [`UdaGraph`] (correlation graph, attributes, profiles),
//! - the [`AttributeIndex`] behind the inverted-index Top-K scorer,
//! - the refined-DA [`RefinedContext`] feature arena.
//!
//! [`PreparedCorpus::save`] writes all of it into one snapshot file
//! (container format: [`dehealth_corpus::snapshot`], version 2 with
//! 8-byte-aligned sections; byte-level layout: ARCHITECTURE.md), and
//! [`PreparedCorpus::load`] restores it without touching any post text —
//! feature extraction is skipped entirely, which is what makes a daemon
//! restart orders of magnitude cheaper than a cold corpus build.
//! Round-trips are bit-exact: a loaded corpus re-saves to the identical
//! byte stream (`tests/snapshot_roundtrip.rs`).
//!
//! ## Load modes
//!
//! [`PreparedCorpus::load_with`] takes a [`LoadMode`]:
//!
//! - [`LoadMode::Owned`] — the eager path: read the file, verify every
//!   checksum, decode every section into owned structures. Works for v1
//!   and v2 snapshots.
//! - [`LoadMode::Mapped`] — the zero-copy path: `mmap` the file
//!   ([`dehealth_mapped`]), decode the forum/features sections (owned —
//!   they are pointer-rich structures), and *borrow* the attribute-index
//!   and refined-context arenas straight out of the mapping through
//!   [`ArenaView`](dehealth_core::arena::ArenaView)s. The mapping is
//!   kept alive by the views themselves (`Arc`-shared), so there is no
//!   self-referential state; dropping the corpus unmaps the file. The
//!   FNV checksum sweep is skipped for speed — every structural
//!   invariant is still re-validated — and reload time no longer pays
//!   for the largest sections at all. v1 files (which cannot be borrowed)
//!   transparently fall back to the owned decode.
//!
//! Wire attacks against a mapped corpus are bit-identical to the owned
//! path (`tests/service_parity.rs`); mutation ([`PreparedCorpus::
//! append_users`]) promotes borrowed arenas to owned copy-on-write.

use std::path::Path;
use std::time::Instant;

use dehealth_core::index::AttributeIndex;
use dehealth_core::quant::QuantizedContext;
use dehealth_core::refined::{ClassifierKind, RefinedContext, Side, N_STRUCT};
use dehealth_core::snapshot::{decode_features, encode_features};
use dehealth_core::uda::{extract_post_features, UdaGraph};
use dehealth_corpus::snapshot::{
    decode_forum, encode_forum, ParseOptions, SectionTag, SnapshotError, SnapshotReader,
    SnapshotStreamer, SnapshotWriter, V1, V2, V3,
};
use dehealth_corpus::{Forum, Post};
use dehealth_engine::{Engine, PreparedAuxiliary};
use dehealth_mapped::{ByteSource, SharedBytes};
use dehealth_stylometry::{FeatureVector, M};

/// Section holding the auxiliary [`Forum`].
pub const SECTION_FORUM: SectionTag = SectionTag(*b"FORM");
/// Section holding the per-post feature vectors.
pub const SECTION_FEATURES: SectionTag = SectionTag(*b"FEAT");
/// Section holding the [`AttributeIndex`].
pub const SECTION_INDEX: SectionTag = SectionTag(*b"AIDX");
/// Section holding the refined-DA [`RefinedContext`].
pub const SECTION_CONTEXT: SectionTag = SectionTag(*b"RCTX");
/// Optional section ([`V3`] snapshots) holding the approximate tier's
/// quantized mirror of the refined context.
pub const SECTION_QUANTIZED: SectionTag = SectionTag(*b"QCTX");

/// How [`PreparedCorpus::load_with`] materializes a snapshot (see the
/// [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// Read + verify + decode everything into owned structures.
    Owned,
    /// Memory-map the file and borrow the index/context arenas in place
    /// (v2 snapshots; v1 falls back to the owned decode).
    #[default]
    Mapped,
}

/// Where a loaded corpus's arena bytes live — the number the `--mmap`
/// CLI flag and the snapshot-load benchmark report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Arena bytes held on the heap (owned index/context storage).
    pub resident_arena_bytes: usize,
    /// Arena bytes borrowed from the snapshot mapping (not resident;
    /// backed by reclaimable, cross-process-shareable page-cache pages).
    pub borrowed_arena_bytes: usize,
}

/// A fully prepared auxiliary corpus (see the [module docs](self)).
///
/// The derived structures are kept consistent with `forum`/`features` by
/// construction: they are only ever produced by [`PreparedCorpus::build`],
/// [`PreparedCorpus::append_users`] or a validated
/// [`PreparedCorpus::load`].
#[derive(Debug, Clone)]
pub struct PreparedCorpus {
    forum: Forum,
    features: Vec<FeatureVector>,
    uda: UdaGraph,
    index: AttributeIndex,
    context: RefinedContext,
    classifier: ClassifierKind,
    /// The approximate tier's quantized mirror of `context`. Optional:
    /// built on demand ([`Self::ensure_quantized`]) or restored from a
    /// [`V3`] snapshot's `QCTX` section; invalidated by mutation.
    quantized: Option<QuantizedContext>,
}

impl PreparedCorpus {
    /// Prepare `forum` from scratch: extract every post's features (the
    /// expensive step a snapshot reload skips), then derive the UDA
    /// graph, attribute index, and the refined-DA context for
    /// `classifier`'s representation.
    #[must_use]
    pub fn build(forum: Forum, classifier: ClassifierKind) -> Self {
        let features = extract_post_features(&forum);
        Self::from_features(forum, features, classifier)
    }

    /// Derive the attack structures from already-extracted features
    /// (shared by [`Self::build`], [`Self::load`] re-validation paths and
    /// tests).
    ///
    /// # Panics
    /// Panics if `features` is not parallel to `forum.posts`.
    #[must_use]
    pub fn from_features(
        forum: Forum,
        features: Vec<FeatureVector>,
        classifier: ClassifierKind,
    ) -> Self {
        assert_eq!(features.len(), forum.posts.len(), "features/posts mismatch");
        let uda = UdaGraph::build_with_features(&forum, &features);
        let index = AttributeIndex::from_uda(&uda);
        let context = RefinedContext::build(
            &Side { forum: &forum, uda: &uda, post_features: &features },
            classifier,
        );
        Self { forum, features, uda, index, context, classifier, quantized: None }
    }

    /// The auxiliary forum.
    #[must_use]
    pub fn forum(&self) -> &Forum {
        &self.forum
    }

    /// Per-post feature vectors, parallel to the forum's posts.
    #[must_use]
    pub fn features(&self) -> &[FeatureVector] {
        &self.features
    }

    /// The forum's UDA graph.
    #[must_use]
    pub fn uda(&self) -> &UdaGraph {
        &self.uda
    }

    /// The attribute index over the forum's users.
    #[must_use]
    pub fn index(&self) -> &AttributeIndex {
        &self.index
    }

    /// The refined-DA feature context.
    #[must_use]
    pub fn context(&self) -> &RefinedContext {
        &self.context
    }

    /// The classifier whose representation [`Self::context`] holds.
    #[must_use]
    pub fn classifier(&self) -> ClassifierKind {
        self.classifier
    }

    /// The approximate tier's quantized mirror of the refined context,
    /// if one has been built or loaded.
    #[must_use]
    pub fn quantized(&self) -> Option<&QuantizedContext> {
        self.quantized.as_ref()
    }

    /// Build (or keep) the quantized mirror of the refined context.
    /// Returns `true` when a mirror is present afterwards — `false` for
    /// dense (non-KNN) contexts, which have nothing to quantize. Once
    /// built, the mirror is persisted by [`Self::to_snapshot_bytes`] as
    /// a [`V3`] `QCTX` section and handed to the engine by
    /// [`Self::prepared`].
    pub fn ensure_quantized(&mut self) -> bool {
        if self.quantized.is_none() {
            self.quantized = QuantizedContext::from_context(&self.context);
        }
        self.quantized.is_some()
    }

    /// Number of auxiliary users (present and absent).
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.forum.n_users
    }

    /// Number of auxiliary posts.
    #[must_use]
    pub fn n_posts(&self) -> usize {
        self.forum.posts.len()
    }

    /// The borrowed view [`Engine::run_prepared`] consumes.
    #[must_use]
    pub fn prepared(&self) -> PreparedAuxiliary<'_> {
        PreparedAuxiliary {
            forum: &self.forum,
            features: &self.features,
            uda: &self.uda,
            index: Some(&self.index),
            context: Some(&self.context),
            quantized: self.quantized.as_ref(),
        }
    }

    /// Ingest a chunk of **new** auxiliary users, mirroring
    /// `EngineSession::add_auxiliary_users`'s streaming convention:
    /// chunk-local user/thread ids are offset by the totals already in
    /// the corpus (chunks are disjoint user cohorts with their own
    /// threads). Only the chunk's posts run feature extraction; the UDA
    /// graph is re-derived over the merged corpus from cached features,
    /// while the index and refined context are **appended to in place**
    /// — under the disjoint-cohort convention earlier users' structural
    /// features are unchanged, so appending the new users'/posts' rows is
    /// bit-identical to a fresh union build (asserted by
    /// `append_matches_fresh_build_over_union`), the invariant the
    /// daemon's parity guarantee rests on.
    ///
    /// On a [`LoadMode::Mapped`] corpus this is where copy-on-write
    /// happens: the borrowed arenas are promoted to owned storage before
    /// the first new row lands, and the corpus detaches from its mapping.
    pub fn append_users(&mut self, chunk: &Forum) {
        let user_offset = self.forum.n_users;
        let thread_offset = self.forum.n_threads;
        let post_offset = self.forum.posts.len();
        let chunk_features = extract_post_features(chunk);

        let mut posts = std::mem::take(&mut self.forum.posts);
        posts.reserve(chunk.posts.len());
        for post in &chunk.posts {
            posts.push(Post {
                author: post.author + user_offset,
                thread: post.thread + thread_offset,
                text: post.text.clone(),
            });
        }
        let merged =
            Forum::from_posts(user_offset + chunk.n_users, thread_offset + chunk.n_threads, posts);
        let mut features = std::mem::take(&mut self.features);
        features.extend(chunk_features);

        // The merged UDA graph is rebuilt (it feeds every attack's
        // similarity engine); the index and context only append — chunks
        // are disjoint user cohorts with disjoint threads, so the first
        // `user_offset` users' attributes, degrees and post counts are
        // bit-identical to what the existing rows were built from.
        let uda = UdaGraph::build_with_features(&merged, &features);
        self.index.append_uda_suffix(&uda, user_offset);
        self.context.append_rows(
            &Side { forum: &merged, uda: &uda, post_features: &features },
            post_offset,
        );
        self.forum = merged;
        self.features = features;
        self.uda = uda;
        // The quantization grid was fit to the pre-append arena; drop it
        // rather than serve codes from a stale grid.
        self.quantized = None;
    }

    /// Serialize into current-version aligned snapshot bytes (sections:
    /// forum, features, index, context — see ARCHITECTURE.md for the
    /// exact layout): [`V2`] normally, [`V3`] with a trailing `QCTX`
    /// section when a quantized mirror is present
    /// ([`Self::ensure_quantized`]). The byte layouts are otherwise
    /// identical, and v2 files load everywhere v3 files do.
    #[must_use]
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = match &self.quantized {
            Some(_) => SnapshotWriter::with_version(V3),
            None => SnapshotWriter::new(),
        };
        encode_forum(&self.forum, w.section(SECTION_FORUM));
        encode_features(&self.features, w.section(SECTION_FEATURES));
        self.index.encode_v2(w.section(SECTION_INDEX));
        self.context.encode_v2(w.section(SECTION_CONTEXT));
        if let Some(q) = &self.quantized {
            q.encode_v2(w.section(SECTION_QUANTIZED));
        }
        w.finish()
    }

    /// Serialize into legacy [`V1`] snapshot bytes — what pre-v2
    /// deployments wrote. Kept so the v1 → v2 compatibility path stays
    /// round-trip tested.
    #[must_use]
    pub fn to_snapshot_bytes_v1(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::with_version(V1);
        encode_forum(&self.forum, w.section(SECTION_FORUM));
        encode_features(&self.features, w.section(SECTION_FEATURES));
        self.index.encode(w.section(SECTION_INDEX));
        self.context.encode(w.section(SECTION_CONTEXT));
        w.finish()
    }

    /// Write the snapshot to `path` **atomically**: the bytes land in a
    /// temporary sibling file first and are `rename`d over the target.
    /// This is what makes overwriting a snapshot that a live daemon has
    /// memory-mapped safe — the daemon's mapping keeps the old inode
    /// alive untruncated, instead of faulting on in-place truncation.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_snapshot_bytes())?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// Write the snapshot to `path` atomically like [`Self::save`], but
    /// **streamed**: each section's bytes go straight to the file as the
    /// codec produces them ([`SnapshotStreamer`]), so peak memory during
    /// a save stays at the corpus itself instead of corpus + two extra
    /// copies of the serialized stream. At 100k auxiliary users that is
    /// the difference between a save that fits alongside the build and
    /// one that doubles peak RSS. The resulting file is bit-identical to
    /// [`Self::save`]'s (`streamed_save_matches_materialized_save`) for
    /// corpora without a quantized mirror; the streamer always emits
    /// [`V2`] without the optional `QCTX` section, so a reloaded corpus
    /// degrades to on-the-fly quantization under the approximate tier.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_streaming(&self, path: &Path) -> Result<(), SnapshotError> {
        let mut w = SnapshotStreamer::create(path)?;
        w.section(SECTION_FORUM, |s| encode_forum(&self.forum, s))?;
        w.section(SECTION_FEATURES, |s| encode_features(&self.features, s))?;
        w.section(SECTION_INDEX, |s| self.index.encode_v2(s))?;
        w.section(SECTION_CONTEXT, |s| self.context.encode_v2(s))?;
        w.finish()
    }

    /// Restore a corpus from snapshot bytes (either container version),
    /// decoding everything into owned structures. The UDA graph is
    /// re-derived from the persisted forum and features (a cheap merge —
    /// no text is re-analyzed); the index and context are decoded
    /// directly and cross-checked against the forum for consistency.
    ///
    /// # Errors
    /// Any [`SnapshotError`]: bad magic, unsupported version, truncation,
    /// checksum mismatch, bad padding, missing sections, or cross-section
    /// inconsistency. Never panics on malformed input.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let reader = SnapshotReader::parse(bytes)?;
        Self::decode_sections(&reader, None)
    }

    /// Decode every section of a parsed snapshot. With a `backing`
    /// (which must hold the same bytes the reader parsed), v2 index and
    /// context arenas become zero-copy views borrowing it; v1 sections —
    /// or a missing backing — decode into owned storage.
    fn decode_sections(
        reader: &SnapshotReader<'_>,
        backing: Option<&SharedBytes>,
    ) -> Result<Self, SnapshotError> {
        let mut s = reader.section(SECTION_FORUM)?;
        let forum = decode_forum(&mut s)?;
        s.expect_end()?;

        let mut s = reader.section(SECTION_FEATURES)?;
        let features = decode_features(&mut s)?;
        s.expect_end()?;
        if features.len() != forum.posts.len() {
            return Err(SnapshotError::Malformed { context: "features/posts count mismatch" });
        }

        let mut s = reader.section(SECTION_INDEX)?;
        let index = match reader.version() {
            V2 | V3 => AttributeIndex::decode_v2(&mut s, backing)?,
            _ => AttributeIndex::decode(&mut s)?,
        };
        s.expect_end()?;
        if index.n_users() != forum.n_users {
            return Err(SnapshotError::Malformed { context: "index/forum user count mismatch" });
        }

        let mut s = reader.section(SECTION_CONTEXT)?;
        let context = match reader.version() {
            V2 | V3 => RefinedContext::decode_v2(&mut s, backing)?,
            _ => RefinedContext::decode(&mut s)?,
        };
        s.expect_end()?;
        if context.n_posts() != forum.posts.len() {
            return Err(SnapshotError::Malformed { context: "context/forum post count mismatch" });
        }
        if context.dim() != M + N_STRUCT {
            return Err(SnapshotError::Malformed { context: "context dimension mismatch" });
        }

        // The quantized mirror is an *optional* v3 section: a v3 file
        // without it (or any older file) simply loads with `None`, and
        // the engine quantizes on the fly when the approximate tier asks.
        let quantized = match reader.section(SECTION_QUANTIZED) {
            Ok(mut s) if reader.version() == V3 => {
                let q = QuantizedContext::decode_v2(&mut s, backing)?;
                s.expect_end()?;
                if !q.matches_context(&context) {
                    return Err(SnapshotError::Malformed { context: "quantized/context mismatch" });
                }
                Some(q)
            }
            _ => None,
        };

        let uda = UdaGraph::build_with_features(&forum, &features);
        let classifier =
            if context.is_sparse() { ClassifierKind::default() } else { ClassifierKind::Centroid };
        debug_assert!(context.matches_classifier(classifier));
        Ok(Self { forum, features, uda, index, context, classifier, quantized })
    }

    /// Read and restore a snapshot file, eagerly and fully owned
    /// ([`LoadMode::Owned`]).
    ///
    /// # Errors
    /// Like [`Self::from_snapshot_bytes`], plus I/O errors.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        Self::load_with(path, LoadMode::Owned)
    }

    /// Read and restore a snapshot file in the requested [`LoadMode`].
    ///
    /// [`LoadMode::Mapped`] maps the file, skips the checksum sweep
    /// (structural validation still runs in full), and borrows the v2
    /// index/context arenas from the mapping — the views keep the
    /// mapping alive, so the returned corpus is self-contained. A v1
    /// file cannot be borrowed and silently takes the owned decode
    /// instead (check [`Self::is_mapped`]).
    ///
    /// # Errors
    /// Like [`Self::from_snapshot_bytes`], plus I/O errors.
    pub fn load_with(path: &Path, mode: LoadMode) -> Result<Self, SnapshotError> {
        match mode {
            LoadMode::Owned => {
                let bytes = std::fs::read(path)?;
                Self::from_snapshot_bytes(&bytes)
            }
            LoadMode::Mapped => {
                let backing = ByteSource::map(path)?;
                Self::from_shared_bytes(&backing)
            }
        }
    }

    /// The zero-copy decode over an already-loaded backing — what
    /// [`LoadMode::Mapped`] runs after mapping the file.
    ///
    /// # Errors
    /// Like [`Self::from_snapshot_bytes`].
    pub fn from_shared_bytes(backing: &SharedBytes) -> Result<Self, SnapshotError> {
        let reader = SnapshotReader::parse_with(backing.bytes(), &ParseOptions::trusting())?;
        let zero_copy = (reader.version() != V1).then_some(backing);
        if zero_copy.is_none() {
            // v1: nothing can be borrowed; run the fully-verified owned
            // decode (the file is small-format legacy data anyway).
            let reader = SnapshotReader::parse(backing.bytes())?;
            return Self::decode_sections(&reader, None);
        }
        Self::decode_sections(&reader, zero_copy)
    }

    /// [`Self::load`] with wall-clock timing — the number the service
    /// benchmark compares against a cold [`Self::build`].
    ///
    /// # Errors
    /// Like [`Self::load`].
    pub fn load_timed(path: &Path) -> Result<(Self, f64), SnapshotError> {
        Self::load_timed_with(path, LoadMode::Owned)
    }

    /// [`Self::load_with`] with wall-clock timing.
    ///
    /// # Errors
    /// Like [`Self::load_with`].
    pub fn load_timed_with(path: &Path, mode: LoadMode) -> Result<(Self, f64), SnapshotError> {
        let t0 = Instant::now();
        let corpus = Self::load_with(path, mode)?;
        Ok((corpus, t0.elapsed().as_secs_f64()))
    }

    /// `true` when any index/context arena borrows a snapshot mapping
    /// (i.e. the corpus came from a successful [`LoadMode::Mapped`] load
    /// and has not been mutated since).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        self.index.is_borrowed() || self.context.is_borrowed()
    }

    /// Where this corpus's index/context arena bytes live (see
    /// [`MemoryStats`]).
    #[must_use]
    pub fn memory_stats(&self) -> MemoryStats {
        let (ir, ib) = self.index.arena_bytes();
        let (cr, cb) = self.context.arena_bytes();
        MemoryStats { resident_arena_bytes: ir + cr, borrowed_arena_bytes: ib + cb }
    }

    /// Run one attack against this corpus through `engine` — convenience
    /// for [`Engine::run_prepared`] on [`Self::prepared`].
    #[must_use]
    pub fn attack(&self, engine: &Engine, anonymized: &Forum) -> dehealth_engine::EngineOutcome {
        engine.run_prepared(&self.prepared(), anonymized)
    }

    /// Run a coalesced batch of attacks against this corpus in one
    /// fused engine pass
    /// ([`Engine::run_prepared_batch`](dehealth_engine::Engine::run_prepared_batch)):
    /// the prepared index and refined context are shared across every
    /// request, while each request's results stay bit-identical to a
    /// solo [`PreparedCorpus::attack`].
    pub fn attack_batch(
        &self,
        engine: &Engine,
        requests: &[dehealth_engine::BatchRequest<'_>],
    ) -> Vec<dehealth_engine::EngineOutcome> {
        engine.run_prepared_batch(&self.prepared(), requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dehealth_corpus::{closed_world_split, ForumConfig, SplitConfig};

    fn tiny_corpus() -> PreparedCorpus {
        let forum = Forum::generate(&ForumConfig::tiny(), 42);
        let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 7);
        PreparedCorpus::build(split.auxiliary, ClassifierKind::default())
    }

    #[test]
    fn snapshot_roundtrip_is_bit_exact() {
        let corpus = tiny_corpus();
        let bytes = corpus.to_snapshot_bytes();
        let loaded = PreparedCorpus::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(loaded.n_users(), corpus.n_users());
        assert_eq!(loaded.n_posts(), corpus.n_posts());
        // Re-encoding the loaded corpus reproduces the identical bytes —
        // forum, features, index and context round-trip bit-for-bit.
        assert_eq!(loaded.to_snapshot_bytes(), bytes);
    }

    #[test]
    fn streamed_save_matches_materialized_save() {
        let corpus = tiny_corpus();
        let dir = std::env::temp_dir();
        let materialized = dir.join("dehealth-corpus-save-materialized-test.snap");
        let streamed = dir.join("dehealth-corpus-save-streamed-test.snap");
        corpus.save(&materialized).unwrap();
        corpus.save_streaming(&streamed).unwrap();
        let a = std::fs::read(&materialized).unwrap();
        let b = std::fs::read(&streamed).unwrap();
        std::fs::remove_file(&materialized).unwrap();
        std::fs::remove_file(&streamed).unwrap();
        assert_eq!(a, b, "streamed snapshot differs from materialized snapshot");
        // The streamed file loads through both load modes.
        let back = PreparedCorpus::from_snapshot_bytes(&b).unwrap();
        assert_eq!(back.to_snapshot_bytes(), a);
    }

    #[test]
    fn append_matches_fresh_build_over_union() {
        let forum = Forum::generate(&ForumConfig::tiny(), 3);
        let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 5);
        let aux = split.auxiliary;
        let cut = aux.n_users / 2;
        let chunk_of = |lo: usize, hi: usize| {
            let posts: Vec<Post> = aux
                .posts
                .iter()
                .filter(|p| (lo..hi).contains(&p.author))
                .map(|p| Post { author: p.author - lo, thread: p.thread, text: p.text.clone() })
                .collect();
            Forum::from_posts(hi - lo, aux.n_threads, posts)
        };
        let mut incremental = PreparedCorpus::build(chunk_of(0, cut), ClassifierKind::default());
        incremental.append_users(&chunk_of(cut, aux.n_users));

        // The merged reference: chunk users/threads offset like the ingest.
        let mut merged_posts = Vec::new();
        for p in chunk_of(0, cut).posts.iter().cloned() {
            merged_posts.push(p);
        }
        for p in &chunk_of(cut, aux.n_users).posts {
            merged_posts.push(Post {
                author: p.author + cut,
                thread: p.thread + aux.n_threads,
                text: p.text.clone(),
            });
        }
        let merged = Forum::from_posts(aux.n_users, aux.n_threads * 2, merged_posts);
        let fresh = PreparedCorpus::build(merged, ClassifierKind::default());
        assert_eq!(incremental.to_snapshot_bytes(), fresh.to_snapshot_bytes());
    }

    #[test]
    fn dense_context_corpus_roundtrips() {
        let forum = Forum::generate(&ForumConfig::tiny(), 9);
        let corpus = PreparedCorpus::build(forum, ClassifierKind::Centroid);
        assert!(!corpus.context().is_sparse());
        let bytes = corpus.to_snapshot_bytes();
        let loaded = PreparedCorpus::from_snapshot_bytes(&bytes).unwrap();
        assert!(!loaded.context().is_sparse());
        assert_eq!(loaded.to_snapshot_bytes(), bytes);
    }

    #[test]
    fn cross_section_inconsistency_is_rejected() {
        let corpus = tiny_corpus();
        // Rebuild a snapshot whose index section comes from a *different*
        // (smaller) corpus: decodes fine, but must fail the cross-check.
        let other = {
            let mut config = ForumConfig::tiny();
            config.n_users = 17;
            let forum = Forum::generate(&config, 1234);
            PreparedCorpus::build(forum, ClassifierKind::default())
        };
        assert_ne!(other.n_users(), corpus.n_users());
        // In both container versions the cross-check, not a decode error,
        // must fire.
        let mut w = SnapshotWriter::new();
        encode_forum(corpus.forum(), w.section(SECTION_FORUM));
        encode_features(corpus.features(), w.section(SECTION_FEATURES));
        other.index().encode_v2(w.section(SECTION_INDEX));
        corpus.context().encode_v2(w.section(SECTION_CONTEXT));
        assert!(matches!(
            PreparedCorpus::from_snapshot_bytes(&w.finish()),
            Err(SnapshotError::Malformed { context: "index/forum user count mismatch" })
        ));
        let mut w = SnapshotWriter::with_version(V1);
        encode_forum(corpus.forum(), w.section(SECTION_FORUM));
        encode_features(corpus.features(), w.section(SECTION_FEATURES));
        other.index().encode(w.section(SECTION_INDEX));
        corpus.context().encode(w.section(SECTION_CONTEXT));
        assert!(matches!(
            PreparedCorpus::from_snapshot_bytes(&w.finish()),
            Err(SnapshotError::Malformed { context: "index/forum user count mismatch" })
        ));
    }

    #[test]
    fn v1_snapshot_loads_via_the_copying_path() {
        let corpus = tiny_corpus();
        let v1 = corpus.to_snapshot_bytes_v1();
        let loaded = PreparedCorpus::from_snapshot_bytes(&v1).unwrap();
        assert!(!loaded.is_mapped());
        // The v1-decoded corpus is the same corpus: re-encoding it in
        // either version reproduces the reference bytes.
        assert_eq!(loaded.to_snapshot_bytes_v1(), v1);
        assert_eq!(loaded.to_snapshot_bytes(), corpus.to_snapshot_bytes());
    }

    #[test]
    fn mapped_load_borrows_arenas_and_matches_owned() {
        let corpus = tiny_corpus();
        let path = std::env::temp_dir().join("dehealth-corpus-mapped-test.snap");
        corpus.save(&path).unwrap();
        let owned = PreparedCorpus::load_with(&path, LoadMode::Owned).unwrap();
        let mapped = PreparedCorpus::load_with(&path, LoadMode::Mapped).unwrap();
        assert!(!owned.is_mapped());
        assert!(mapped.is_mapped());
        let stats = mapped.memory_stats();
        assert_eq!(stats.resident_arena_bytes, 0, "mapped corpus keeps no arena bytes resident");
        assert!(stats.borrowed_arena_bytes > 0);
        assert!(owned.memory_stats().borrowed_arena_bytes == 0);
        // Bit-identical state: both re-serialize to the on-disk bytes.
        assert_eq!(mapped.to_snapshot_bytes(), owned.to_snapshot_bytes());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_append_promotes_and_matches_owned_append() {
        let forum = Forum::generate(&ForumConfig::tiny(), 3);
        let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 5);
        let chunk = Forum::generate(&ForumConfig::tiny(), 11);
        let corpus = PreparedCorpus::build(split.auxiliary, ClassifierKind::default());
        let path = std::env::temp_dir().join("dehealth-corpus-mapped-append-test.snap");
        corpus.save(&path).unwrap();

        let mut owned = PreparedCorpus::load_with(&path, LoadMode::Owned).unwrap();
        let mut mapped = PreparedCorpus::load_with(&path, LoadMode::Mapped).unwrap();
        owned.append_users(&chunk);
        mapped.append_users(&chunk);
        // Copy-on-write: the mutation detached the mapped corpus.
        assert!(!mapped.is_mapped());
        assert_eq!(mapped.memory_stats().borrowed_arena_bytes, 0);
        assert_eq!(mapped.to_snapshot_bytes(), owned.to_snapshot_bytes());
        std::fs::remove_file(&path).unwrap();
    }
}
