//! The long-lived attack daemon: a thread-per-connection TCP server over
//! the newline-delimited JSON [`protocol`](crate::protocol).
//!
//! One [`Daemon`] owns a listener thread plus one handler thread per
//! client connection. All handlers share the standing auxiliary corpus
//! through an `Arc<PreparedCorpus>` behind an `RwLock` slot:
//!
//! - `attack` requests clone the `Arc` (microseconds), drop the lock, and
//!   run the whole parallel pipeline on the **immutable** snapshot — so
//!   any number of concurrent attacks proceed without blocking each
//!   other, each on the engine's scoped worker pool.
//! - `load_snapshot` / `add_auxiliary_users` build the replacement corpus
//!   *outside* the lock and swap the slot afterwards
//!   (copy-on-write): in-flight attacks keep the corpus version they
//!   started with, and the old version is freed when the last of them
//!   drops its `Arc`.
//!
//! Shutdown is cooperative: the `shutdown` command (or
//! [`Daemon::request_shutdown`]) raises a flag that the accept loop and
//! every handler poll on short timeouts; [`Daemon::join`] then reaps all
//! threads.
//!
//! ## Telemetry
//!
//! Every daemon owns a [`Registry`] ([`Daemon::registry`]): per-command
//! request counters and end-to-end latency histograms (recorded via
//! RAII [`SpanTimer`]s, so even a panicking handler leaves a sample),
//! error counters by kind, connection gauges, corpus residency and
//! generation gauges, and — after every attack — the engine's per-stage
//! timings ([`EngineReport::record_into`](dehealth_engine::EngineReport::record_into)).
//! The whole registry is served by the `metrics` wire command (JSON,
//! [`registry_to_json`]) and by the
//! optional Prometheus scrape endpoint
//! ([`MetricsServer`](crate::metrics::MetricsServer)). [`DaemonStats`]
//! and the `stats` command read the same lock-free counters — there is
//! no stats mutex left to poison, so a panicked connection thread can
//! never make `stats`/`metrics` unreadable. Requests slower than
//! [`DaemonLimits::slow_request_threshold`] additionally emit a
//! structured `warn!` log line with the command, corpus generation, user
//! counts, and the per-stage breakdown.
//!
//! ## Hardening against untrusted peers
//!
//! Three [`DaemonLimits`] protect the daemon from misbehaving clients,
//! each answered with a **typed protocol error** (an `"ok": false`
//! response line) instead of a hang or a silent drop:
//!
//! - a per-request byte-size cap (a request line exceeding it is
//!   rejected and the connection closed before the daemon buffers
//!   unbounded data),
//! - a read deadline on half-open connections (a peer that starts a
//!   request and stalls mid-line is timed out and closed), and
//! - a max-connections cap (connections beyond it receive an error line
//!   and are closed immediately, so established sessions keep their
//!   threads).
//!
//! `tests/service_parity.rs` pins all three behaviors.

use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dehealth_core::AttackConfig;
use dehealth_engine::{Engine, EngineConfig};
use dehealth_telemetry::{info, warn, Counter, Gauge, Histogram, Registry, SpanTimer};

use crate::corpus::{LoadMode, PreparedCorpus};
use crate::json::Json;
use crate::metrics::registry_to_json;
use crate::protocol::{error_response, forum_from_json, ok_response, report_to_json};

/// How often blocked accept/read calls wake up to poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Every `cmd` label of the per-command metric families
/// (`daemon_command_requests_total`, `daemon_command_seconds`), all
/// pre-registered at bind time so the first scrape already shows the
/// full label space. `"invalid"` covers unparseable requests and
/// requests without a `cmd`; `"unknown"` covers unrecognized commands.
pub const COMMANDS: [&str; 8] = [
    "add_auxiliary_users",
    "attack",
    "invalid",
    "load_snapshot",
    "metrics",
    "shutdown",
    "stats",
    "unknown",
];

/// Every `kind` label of `daemon_error_kind_total`, pre-registered at
/// bind time. The first six classify error *responses*; the last three
/// classify rejected or dropped *connections* (which also answer with an
/// error line but are not counted as served requests).
pub const ERROR_KINDS: [&str; 9] = [
    "connection_cap",
    "invalid_argument",
    "invalid_json",
    "missing_cmd",
    "no_corpus",
    "oversize_request",
    "read_deadline",
    "snapshot_load",
    "unknown_cmd",
];

/// Protocol-hardening knobs (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonLimits {
    /// Maximum bytes one request line may occupy (including pipelined
    /// but not-yet-dispatched bytes buffered for the connection).
    pub max_request_bytes: usize,
    /// How long a connection may sit on an incomplete request line
    /// before it is timed out as half-open.
    pub read_deadline: Duration,
    /// Maximum concurrently served connections; further connections are
    /// rejected with an error line.
    pub max_connections: usize,
    /// Requests taking longer than this emit a structured slow-request
    /// log line (`warn!` level) with a per-stage breakdown.
    pub slow_request_threshold: Duration,
}

impl Default for DaemonLimits {
    fn default() -> Self {
        Self {
            max_request_bytes: 64 * 1024 * 1024,
            read_deadline: Duration::from_secs(30),
            max_connections: 64,
            slow_request_threshold: Duration::from_secs(30),
        }
    }
}

/// Request/served-work counters exposed by the `stats` command.
///
/// Since the telemetry layer landed this is a *view*: the daemon keeps
/// these counts in lock-free registry counters and materializes a
/// `DaemonStats` on demand ([`Daemon::stats`], the `stats` command), so
/// the struct and the wire response are unchanged from the mutex era
/// while the storage can no longer be poisoned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Total requests handled (including failed ones).
    pub requests: u64,
    /// Requests that returned an error response.
    pub errors: u64,
    /// `attack` requests served.
    pub attacks: u64,
    /// Anonymized users processed across all attacks.
    pub attacked_users: u64,
    /// Users mapped to some auxiliary identity (not `⊥`).
    pub mapped_users: u64,
    /// `load_snapshot` + `add_auxiliary_users` requests served.
    pub corpus_updates: u64,
    /// Connections rejected by the max-connections cap.
    pub rejected_connections: u64,
    /// Connections dropped for violating a request limit (oversize
    /// request line or half-open read deadline).
    pub dropped_connections: u64,
}

/// The daemon's registry plus cached handles for every hot-path counter.
///
/// Handle lookups by label (`command_requests`, `error_kind`) go through
/// the registry's read lock — cheap, and poison-immune by construction.
struct DaemonMetrics {
    registry: Arc<Registry>,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    attacks: Arc<Counter>,
    attacked_users: Arc<Counter>,
    mapped_users: Arc<Counter>,
    corpus_updates: Arc<Counter>,
    rejected_connections: Arc<Counter>,
    dropped_connections: Arc<Counter>,
    connections_live: Arc<Gauge>,
    corpus_users: Arc<Gauge>,
    corpus_posts: Arc<Gauge>,
    corpus_generation: Arc<Gauge>,
    corpus_resident_arena_bytes: Arc<Gauge>,
    corpus_borrowed_arena_bytes: Arc<Gauge>,
}

impl DaemonMetrics {
    fn new() -> Self {
        let registry = Arc::new(Registry::new());
        for cmd in COMMANDS {
            let _ = registry.counter_with("daemon_command_requests_total", &[("cmd", cmd)]);
            let _ = registry.histogram_with("daemon_command_seconds", &[("cmd", cmd)]);
        }
        for kind in ERROR_KINDS {
            let _ = registry.counter_with("daemon_error_kind_total", &[("kind", kind)]);
        }
        Self {
            requests: registry.counter("daemon_requests_total"),
            errors: registry.counter("daemon_errors_total"),
            attacks: registry.counter("daemon_attacks_total"),
            attacked_users: registry.counter("daemon_attacked_users_total"),
            mapped_users: registry.counter("daemon_mapped_users_total"),
            corpus_updates: registry.counter("daemon_corpus_updates_total"),
            rejected_connections: registry.counter("daemon_rejected_connections_total"),
            dropped_connections: registry.counter("daemon_dropped_connections_total"),
            connections_live: registry.gauge("daemon_connections_live"),
            corpus_users: registry.gauge("corpus_users"),
            corpus_posts: registry.gauge("corpus_posts"),
            corpus_generation: registry.gauge("corpus_generation"),
            corpus_resident_arena_bytes: registry.gauge("corpus_resident_arena_bytes"),
            corpus_borrowed_arena_bytes: registry.gauge("corpus_borrowed_arena_bytes"),
            registry,
        }
    }

    fn command_requests(&self, cmd: &str) -> Arc<Counter> {
        self.registry.counter_with("daemon_command_requests_total", &[("cmd", cmd)])
    }

    fn command_seconds(&self, cmd: &str) -> Arc<Histogram> {
        self.registry.histogram_with("daemon_command_seconds", &[("cmd", cmd)])
    }

    fn error_kind(&self, kind: &'static str) -> Arc<Counter> {
        self.registry.counter_with("daemon_error_kind_total", &[("kind", kind)])
    }

    /// Refresh the corpus gauges after a swap (or the initial load) and
    /// bump the generation.
    fn observe_corpus(&self, corpus: &PreparedCorpus) {
        let memory = corpus.memory_stats();
        self.corpus_users.set(corpus.n_users() as i64);
        self.corpus_posts.set(corpus.n_posts() as i64);
        self.corpus_resident_arena_bytes.set(memory.resident_arena_bytes as i64);
        self.corpus_borrowed_arena_bytes.set(memory.borrowed_arena_bytes as i64);
        self.corpus_generation.inc();
    }

    /// Materialize the classic [`DaemonStats`] view from the counters.
    fn stats(&self) -> DaemonStats {
        DaemonStats {
            requests: self.requests.get(),
            errors: self.errors.get(),
            attacks: self.attacks.get(),
            attacked_users: self.attacked_users.get(),
            mapped_users: self.mapped_users.get(),
            corpus_updates: self.corpus_updates.get(),
            rejected_connections: self.rejected_connections.get(),
            dropped_connections: self.dropped_connections.get(),
        }
    }
}

struct DaemonState {
    config: EngineConfig,
    limits: DaemonLimits,
    /// Currently served connections (for the max-connections cap).
    connections: AtomicUsize,
    corpus: RwLock<Option<Arc<PreparedCorpus>>>,
    /// Serializes corpus *updates* (`load_snapshot`, `add_auxiliary_users`)
    /// end to end. The copy-on-write rebuild happens outside the `corpus`
    /// lock so attacks never block on it — but without this mutex two
    /// concurrent updates would both clone the same base and the second
    /// swap would silently discard the first one's ingest.
    update: Mutex<()>,
    metrics: DaemonMetrics,
    started: Instant,
    shutting_down: AtomicBool,
}

impl DaemonState {
    /// Clone the current corpus `Arc` (poison-immune: the slot only ever
    /// holds a fully built corpus, swapped in as the last step of an
    /// update, so the value is coherent even after a panicked writer).
    fn corpus(&self) -> Option<Arc<PreparedCorpus>> {
        self.corpus.read().unwrap_or_else(PoisonError::into_inner).clone()
    }

    fn swap_corpus(&self, next: PreparedCorpus) {
        self.metrics.observe_corpus(&next);
        *self.corpus.write().unwrap_or_else(PoisonError::into_inner) = Some(Arc::new(next));
    }
}

/// A running attack service (see the [module docs](self)).
///
/// Dropping the handle does **not** stop the daemon; call
/// [`Daemon::request_shutdown`] (or send the `shutdown` command) and then
/// [`Daemon::join`].
pub struct Daemon {
    addr: SocketAddr,
    state: Arc<DaemonState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl Daemon {
    /// Bind `addr` (e.g. `"127.0.0.1:7699"`, or port 0 for an ephemeral
    /// port — see [`Daemon::addr`]) and start serving with no corpus
    /// loaded; clients must `load_snapshot` or `add_auxiliary_users`
    /// before attacking. `config` supplies the default attack parameters
    /// and worker-pool shape; requests may override `top_k`,
    /// `n_landmarks`, `threads` and `seed` per call.
    ///
    /// # Errors
    /// Propagates socket errors (bind/listen).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: EngineConfig) -> std::io::Result<Self> {
        Self::bind_with_corpus(addr, config, None)
    }

    /// [`Daemon::bind`] with a corpus pre-loaded (the `repro serve` path:
    /// load the snapshot before accepting traffic).
    ///
    /// # Errors
    /// Propagates socket errors (bind/listen).
    pub fn bind_with_corpus<A: ToSocketAddrs>(
        addr: A,
        config: EngineConfig,
        corpus: Option<PreparedCorpus>,
    ) -> std::io::Result<Self> {
        Self::bind_with(addr, config, corpus, DaemonLimits::default())
    }

    /// [`Daemon::bind_with_corpus`] with explicit protocol-hardening
    /// [`DaemonLimits`].
    ///
    /// # Errors
    /// Propagates socket errors (bind/listen).
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        config: EngineConfig,
        corpus: Option<PreparedCorpus>,
        limits: DaemonLimits,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics = DaemonMetrics::new();
        if let Some(corpus) = &corpus {
            metrics.observe_corpus(corpus);
        }
        let state = Arc::new(DaemonState {
            config,
            limits,
            connections: AtomicUsize::new(0),
            corpus: RwLock::new(corpus.map(Arc::new)),
            update: Mutex::new(()),
            metrics,
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
        });
        info!(
            "daemon listening",
            addr = addr,
            corpus_users = state.metrics.corpus_users.get(),
            max_connections = limits.max_connections
        );
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_state));
        Ok(Self { addr, state, accept_thread: Some(accept_thread) })
    }

    /// The bound address (with the actual port when bound to port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once shutdown has been requested (by a client or locally).
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutting_down.load(Ordering::SeqCst)
    }

    /// Raise the shutdown flag locally (equivalent to a client sending
    /// the `shutdown` command).
    pub fn request_shutdown(&self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
    }

    /// A copy of the served-work counters.
    #[must_use]
    pub fn stats(&self) -> DaemonStats {
        self.state.metrics.stats()
    }

    /// The daemon's metric registry — shared with the `metrics` wire
    /// command and any [`MetricsServer`](crate::metrics::MetricsServer)
    /// scrape endpoint; still readable after [`Daemon::join`] consumed
    /// the daemon (grab the `Arc` first).
    #[must_use]
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.state.metrics.registry)
    }

    /// Block until the daemon has shut down (flag raised and every
    /// connection drained), then reap its threads.
    ///
    /// # Panics
    /// Panics if the accept loop itself panicked.
    pub fn join(mut self) {
        if let Some(h) = self.accept_thread.take() {
            h.join().expect("daemon accept loop panicked");
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<DaemonState>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !state.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Max-connections cap: answer over-cap peers with a typed
                // protocol error and close, instead of either queueing
                // them invisibly or starving established sessions.
                let live = state.connections.load(Ordering::SeqCst);
                if live >= state.limits.max_connections {
                    state.metrics.rejected_connections.inc();
                    state.metrics.error_kind("connection_cap").inc();
                    reject_connection(stream, state.limits.max_connections);
                } else {
                    state.connections.fetch_add(1, Ordering::SeqCst);
                    state.metrics.connections_live.inc();
                    let state = Arc::clone(state);
                    handlers.push(std::thread::spawn(move || {
                        // Release the slot on unwind too: a panicking
                        // handler must not leak capacity until the cap
                        // rejects every future connection.
                        struct Slot<'a>(&'a DaemonState);
                        impl Drop for Slot<'_> {
                            fn drop(&mut self) {
                                self.0.connections.fetch_sub(1, Ordering::SeqCst);
                                self.0.metrics.connections_live.dec();
                            }
                        }
                        let _slot = Slot(&state);
                        handle_connection(&state, stream);
                    }));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Send one error line to an over-cap connection and drop it. Bounded by
/// a short write timeout so a peer that never reads cannot stall the
/// accept loop.
fn reject_connection(stream: TcpStream, cap: usize) {
    let _ = stream.set_write_timeout(Some(POLL_INTERVAL));
    let mut stream = stream;
    let response = error_response(&format!("connection limit reached ({cap})"));
    let _ = stream.write_all(response.emit().as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

/// Terminate a misbehaving connection: best-effort error line, counted
/// in the stats, connection closed by returning.
fn drop_connection(
    state: &Arc<DaemonState>,
    writer: &mut BufWriter<TcpStream>,
    kind: &'static str,
    message: &str,
) {
    state.metrics.dropped_connections.inc();
    state.metrics.error_kind(kind).inc();
    let response = error_response(message);
    let _ = writer.write_all(response.emit().as_bytes());
    let _ = writer.write_all(b"\n");
    let _ = writer.flush();
}

fn handle_connection(state: &Arc<DaemonState>, stream: TcpStream) {
    // Blocking I/O with a short timeout so handlers notice shutdown even
    // while a client holds the connection open without sending. Incoming
    // bytes accumulate in `pending` across timeouts — a request split
    // over several TCP segments must never lose its earlier bytes to a
    // poll tick (a `BufReader::read_line` loop here would: the partial
    // line read before a timeout gets dropped, the `\n` tail is then
    // skipped as an empty line, and the client waits forever for a
    // response that never comes).
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let limits = state.limits;
    let Ok(mut read_half) = stream.try_clone() else { return };
    let mut writer = BufWriter::new(stream);
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    // Set while `pending` holds an incomplete request line — the clock
    // the half-open read deadline runs on.
    let mut partial_since: Option<Instant> = None;
    loop {
        // Serve every complete line currently buffered (clients may
        // pipeline requests; responses keep request order).
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = pending.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (response, shutdown) = dispatch(state, line);
            // Counted after dispatch, like the mutex-era daemon: a
            // `stats` response reports the requests *before* it, not
            // itself.
            state.metrics.requests.inc();
            if response.get("ok").and_then(Json::as_bool) != Some(true) {
                state.metrics.errors.inc();
            }
            let ok = writer
                .write_all(response.emit().as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_ok();
            if shutdown {
                state.shutting_down.store(true, Ordering::SeqCst);
            }
            if !ok || shutdown {
                return;
            }
        }
        partial_since = if pending.is_empty() {
            None
        } else {
            // A request line larger than the cap can never complete —
            // reject it now instead of buffering without bound.
            if pending.len() > limits.max_request_bytes {
                drop_connection(
                    state,
                    &mut writer,
                    "oversize_request",
                    &format!("request exceeds {} byte limit", limits.max_request_bytes),
                );
                return;
            }
            Some(partial_since.unwrap_or_else(Instant::now))
        };
        if let Some(since) = partial_since {
            // Half-open read deadline: a peer that started a request and
            // stalled gets a typed error, not an immortal handler thread.
            if since.elapsed() > limits.read_deadline {
                drop_connection(
                    state,
                    &mut writer,
                    "read_deadline",
                    &format!(
                        "read deadline exceeded with a partial request ({:.1}s)",
                        limits.read_deadline.as_secs_f64()
                    ),
                );
                return;
            }
        }
        match read_half.read(&mut chunk) {
            Ok(0) => break, // client closed
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                if state.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// A failed command: the error-kind label for
/// `daemon_error_kind_total` plus the wire message.
struct CmdError {
    kind: &'static str,
    message: String,
}

impl CmdError {
    fn new(kind: &'static str, message: impl Into<String>) -> Self {
        Self { kind, message: message.into() }
    }
}

/// Parse and execute one request line; returns the response and whether
/// this request asked the daemon to shut down.
fn dispatch(state: &Arc<DaemonState>, line: &str) -> (Json, bool) {
    let received = Instant::now();
    // Resolve the command label first so the span timer can cover the
    // handler (a panicking handler still records its latency sample on
    // unwind); parse time before that is billed via `starting_at`.
    let parsed = Json::parse(line);
    let (label, shutdown): (&str, bool) = match &parsed {
        Err(_) => ("invalid", false),
        Ok(request) => match request.get("cmd").and_then(Json::as_str) {
            None => ("invalid", false),
            Some("load_snapshot") => ("load_snapshot", false),
            Some("add_auxiliary_users") => ("add_auxiliary_users", false),
            Some("attack") => ("attack", false),
            Some("stats") => ("stats", false),
            Some("metrics") => ("metrics", false),
            Some("shutdown") => ("shutdown", true),
            Some(_) => ("unknown", false),
        },
    };
    let timer = SpanTimer::starting_at(state.metrics.command_seconds(label), received);
    let result: Result<Vec<(String, Json)>, CmdError> = match &parsed {
        Err(e) => Err(CmdError::new("invalid_json", format!("invalid JSON: {e}"))),
        Ok(request) => match label {
            "invalid" => Err(CmdError::new("missing_cmd", "missing cmd")),
            "load_snapshot" => cmd_load_snapshot(state, request),
            "add_auxiliary_users" => cmd_add_auxiliary_users(state, request),
            "attack" => cmd_attack(state, request),
            "stats" => cmd_stats(state),
            "metrics" => Ok(vec![("metrics".into(), registry_to_json(&state.metrics.registry))]),
            "shutdown" => Ok(Vec::new()),
            _unknown => {
                let cmd = request.get("cmd").and_then(Json::as_str).unwrap_or_default();
                Err(CmdError::new("unknown_cmd", format!("unknown cmd {cmd:?}")))
            }
        },
    };
    let response = match result {
        Ok(fields) => ok_response(fields),
        Err(e) => {
            state.metrics.error_kind(e.kind).inc();
            error_response(&e.message)
        }
    };
    state.metrics.command_requests(label).inc();
    let elapsed = timer.stop();
    if elapsed >= state.limits.slow_request_threshold {
        warn!(
            "slow request",
            cmd = label,
            seconds = format!("{:.3}", elapsed.as_secs_f64()),
            corpus_generation = state.metrics.corpus_generation.get(),
            corpus_users = state.metrics.corpus_users.get(),
            request_users =
                response.get("mapping").and_then(Json::as_array).map_or(0, <[Json]>::len),
            stages = stage_breakdown(&response)
        );
    }
    (response, shutdown)
}

/// Compact `stage=secs` breakdown from a response's embedded report, for
/// the slow-request log line (`"-"` when the response carries none).
fn stage_breakdown(response: &Json) -> String {
    let Some(stages) =
        response.get("report").and_then(|r| r.get("stages")).and_then(Json::as_array)
    else {
        return "-".into();
    };
    let parts: Vec<String> = stages
        .iter()
        .filter_map(|s| {
            let name = s.get("stage").and_then(Json::as_str)?;
            let seconds = s.get("seconds").and_then(Json::as_f64)?;
            Some(format!("{name}={seconds:.3}s"))
        })
        .collect();
    if parts.is_empty() {
        "-".into()
    } else {
        parts.join(" ")
    }
}

fn cmd_load_snapshot(
    state: &Arc<DaemonState>,
    request: &Json,
) -> Result<Vec<(String, Json)>, CmdError> {
    let Some(path) = request.get("path").and_then(Json::as_str) else {
        return Err(CmdError::new("invalid_argument", "missing path"));
    };
    // Optional `"mode": "mmap" | "owned"` — default zero-copy.
    let mode = match request.get("mode").and_then(Json::as_str) {
        None | Some("mmap") => LoadMode::Mapped,
        Some("owned") => LoadMode::Owned,
        Some(other) => {
            return Err(CmdError::new(
                "invalid_argument",
                format!("invalid load mode {other:?} (mmap or owned)"),
            ))
        }
    };
    let _updating = state.update.lock().unwrap_or_else(PoisonError::into_inner);
    match PreparedCorpus::load_timed_with(Path::new(path), mode) {
        Ok((corpus, seconds)) => {
            let users = corpus.n_users();
            let posts = corpus.n_posts();
            let memory = corpus.memory_stats();
            let mapped = corpus.is_mapped();
            state.swap_corpus(corpus);
            state.metrics.corpus_updates.inc();
            info!(
                "corpus loaded",
                path = path,
                users = users,
                posts = posts,
                generation = state.metrics.corpus_generation.get()
            );
            Ok(vec![
                ("users".into(), Json::int(users)),
                ("posts".into(), Json::int(posts)),
                ("seconds".into(), Json::Num(seconds)),
                ("mapped".into(), Json::Bool(mapped)),
                ("resident_arena_bytes".into(), Json::int(memory.resident_arena_bytes)),
                ("borrowed_arena_bytes".into(), Json::int(memory.borrowed_arena_bytes)),
            ])
        }
        Err(e) => Err(CmdError::new("snapshot_load", format!("snapshot load failed: {e}"))),
    }
}

fn cmd_add_auxiliary_users(
    state: &Arc<DaemonState>,
    request: &Json,
) -> Result<Vec<(String, Json)>, CmdError> {
    let chunk = match request
        .get("forum")
        .ok_or("missing forum")
        .and_then(|v| forum_from_json(v).map_err(|_| "invalid forum"))
    {
        Ok(f) => f,
        Err(e) => return Err(CmdError::new("invalid_argument", e)),
    };
    // Copy-on-write under the update lock: clone the current corpus (or
    // bootstrap from the chunk alone), extend it outside the `corpus`
    // lock so attacks stay unblocked, then swap the slot. The update
    // lock makes concurrent ingests append sequentially instead of both
    // building on the same base and losing one chunk at the swap.
    let _updating = state.update.lock().unwrap_or_else(PoisonError::into_inner);
    let current = state.corpus();
    let next = match current {
        Some(corpus) => {
            let mut next = (*corpus).clone();
            next.append_users(&chunk);
            next
        }
        None => PreparedCorpus::build(chunk, state.config.attack.classifier),
    };
    let users = next.n_users();
    let posts = next.n_posts();
    state.swap_corpus(next);
    state.metrics.corpus_updates.inc();
    Ok(vec![("users".into(), Json::int(users)), ("posts".into(), Json::int(posts))])
}

fn cmd_attack(state: &Arc<DaemonState>, request: &Json) -> Result<Vec<(String, Json)>, CmdError> {
    let Some(corpus) = state.corpus() else {
        return Err(CmdError::new(
            "no_corpus",
            "no corpus loaded (send load_snapshot or add_auxiliary_users)",
        ));
    };
    let anonymized = match request
        .get("forum")
        .ok_or_else(|| "missing forum".to_string())
        .and_then(forum_from_json)
    {
        Ok(f) => f,
        Err(e) => return Err(CmdError::new("invalid_argument", e)),
    };

    let mut config = state.config.clone();
    let attack = &mut config.attack;
    if let Some(k) = request.get("top_k") {
        match k.as_usize() {
            Some(k) => attack.top_k = k,
            None => return Err(CmdError::new("invalid_argument", "invalid top_k")),
        }
    }
    if let Some(h) = request.get("n_landmarks") {
        match h.as_usize() {
            Some(h) => attack.n_landmarks = h,
            None => return Err(CmdError::new("invalid_argument", "invalid n_landmarks")),
        }
    }
    if let Some(s) = request.get("seed") {
        match s.as_usize() {
            Some(s) => attack.seed = s as u64,
            None => return Err(CmdError::new("invalid_argument", "invalid seed")),
        }
    }
    if let Some(t) = request.get("threads") {
        match t.as_usize() {
            Some(t) => config.n_threads = t,
            None => return Err(CmdError::new("invalid_argument", "invalid threads")),
        }
    }

    let engine = Engine::new(config);
    let outcome = corpus.attack(&engine, &anonymized);

    state.metrics.attacks.inc();
    state.metrics.attacked_users.add(anonymized.n_users as u64);
    state.metrics.mapped_users.add(outcome.mapping.iter().filter(|m| m.is_some()).count() as u64);
    // Per-stage latency histograms across requests — the engine report
    // flows into the daemon's registry.
    outcome.report.record_into(&state.metrics.registry);

    let mapping = outcome.mapping.iter().map(|m| m.map_or(Json::Null, Json::int)).collect();
    let candidates = outcome
        .candidates
        .iter()
        .map(|c| Json::Arr(c.iter().map(|&v| Json::int(v)).collect()))
        .collect();
    Ok(vec![
        ("mapping".into(), Json::Arr(mapping)),
        ("candidates".into(), Json::Arr(candidates)),
        ("report".into(), report_to_json(&outcome.report)),
    ])
}

fn cmd_stats(state: &Arc<DaemonState>) -> Result<Vec<(String, Json)>, CmdError> {
    let stats = state.metrics.stats();
    let (users, posts) = state.corpus().map_or((0, 0), |c| (c.n_users(), c.n_posts()));
    Ok(vec![
        ("corpus_users".into(), Json::int(users)),
        ("corpus_posts".into(), Json::int(posts)),
        ("requests".into(), Json::Num(stats.requests as f64)),
        ("errors".into(), Json::Num(stats.errors as f64)),
        ("attacks".into(), Json::Num(stats.attacks as f64)),
        ("attacked_users".into(), Json::Num(stats.attacked_users as f64)),
        ("mapped_users".into(), Json::Num(stats.mapped_users as f64)),
        ("corpus_updates".into(), Json::Num(stats.corpus_updates as f64)),
        ("rejected_connections".into(), Json::Num(stats.rejected_connections as f64)),
        ("dropped_connections".into(), Json::Num(stats.dropped_connections as f64)),
        ("uptime_seconds".into(), Json::Num(state.started.elapsed().as_secs_f64())),
    ])
}

/// Default engine configuration for a daemon: the paper-default attack
/// with machine parallelism (`n_threads = 0`).
#[must_use]
pub fn default_config() -> EngineConfig {
    EngineConfig { attack: AttackConfig::default(), ..EngineConfig::default() }
}
